#!/usr/bin/env python3
"""Visualize a multi-tenant execution timeline with the trace recorder.

Attaches a :class:`~repro.sim.trace.TraceRecorder` to the engine, runs a
short contended CaMDN workload and prints an ASCII Gantt chart ('#' =
executing a layer, '.' = waiting for cache pages) plus per-stream busy/wait
accounting — handy for spotting allocation stalls.

Usage::

    python examples/execution_timeline.py [--policy camdn-full]
"""

from __future__ import annotations

import argparse

from repro import SoCConfig
from repro.schedulers import make_scheduler
from repro.sim.engine import MultiTenantEngine
from repro.sim.trace import TraceRecorder
from repro.sim.workload import ClosedLoopWorkload, WorkloadSpec

TENANTS = ["RS.", "MB.", "EF.", "BE."] * 2


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--policy", default="camdn-full",
        choices=["baseline", "moca", "aurora", "camdn-hw", "camdn-full"],
    )
    args = parser.parse_args()

    trace = TraceRecorder()
    spec = WorkloadSpec(
        model_keys=TENANTS, inferences_per_stream=2, warmup_inferences=0
    )
    engine = MultiTenantEngine(
        SoCConfig(), make_scheduler(args.policy),
        ClosedLoopWorkload(spec), trace=trace,
    )
    result = engine.run()

    print(f"policy={args.policy}, {len(TENANTS)} streams, "
          f"{result.metrics.num_inferences} inferences, "
          f"{result.sim_time_s * 1e3:.2f} ms simulated\n")
    print(trace.timeline_text(width=70, max_rows=20))
    print()
    streams = sorted({s.instance_id for s in trace.spans})
    print(f"{'instance':<16}{'busy ms':>9}{'wait ms':>9}")
    for instance_id in streams[:10]:
        busy = trace.busy_time_s(instance_id) * 1e3
        wait = trace.wait_time_s(instance_id) * 1e3
        print(f"{instance_id:<16}{busy:>9.2f}{wait:>9.2f}")
    total_wait = trace.wait_time_s() * 1e3
    print(f"\ntotal page-wait time across tenants: {total_wait:.2f} ms")


if __name__ == "__main__":
    main()
