#!/usr/bin/env python3
"""Dynamic tenancy: tenants joining and leaving mid-run.

Builds a churn scenario — four resident closed-loop tenants plus three
late-joining, early-leaving tenants — and runs it under every policy,
watching how CaMDN reclaims a departing tenant's cache pages and
re-grants them to the survivors.  A probe subclass of the CaMDN(Full)
scheduler logs the allocator's free-page pool at every tenant admission
and retirement, making the reallocation visible.

Usage::

    python examples/dynamic_tenancy.py
"""

from __future__ import annotations

from repro import (
    ArrivalProcess,
    ScenarioSpec,
    StreamSpec,
    run,
    simulate_scenario,
)
from repro.schedulers.camdn_full import CaMDNFullScheduler

POLICIES = ("baseline", "moca", "aurora", "camdn-hw", "camdn-full")

#: Residents run the whole window; churners join late and leave early,
#: and one of them offers open-loop Poisson traffic instead of a closed
#: loop — both axes the pre-scenario workload layer could not express.
SCENARIO = ScenarioSpec(
    streams=(
        StreamSpec(model="RS.", qos_scale=1.0),
        StreamSpec(model="MB.", qos_scale=1.0),
        StreamSpec(model="EF.", qos_scale=1.0),
        StreamSpec(model="VT.", qos_scale=1.0),
        StreamSpec(model="BE.", qos_scale=1.0,
                   join_s=0.05, leave_s=0.22),
        StreamSpec(model="GN.", qos_scale=1.0,
                   join_s=0.10, leave_s=0.28),
        StreamSpec(model="WV.", qos_scale=1.0,
                   join_s=0.15,
                   arrival=ArrivalProcess.poisson(rate_hz=120.0)),
    ),
    duration_s=0.35,
    warmup_s=0.05,
)


class PageProbe(CaMDNFullScheduler):
    """CaMDN(Full) with a tenancy log of the allocator's page pool."""

    def __init__(self) -> None:
        super().__init__()
        self.log = []

    def _free_pages(self) -> int:
        return self.system.regions.free_pages

    def on_tenant_admit(self, stream_id, graph, now):
        super().on_tenant_admit(stream_id, graph, now)
        self.log.append(
            f"  t={now * 1e3:7.2f} ms  + {stream_id:<6} joins "
            f"({self._free_pages()} pages free)"
        )

    def on_tenant_retire(self, stream_id, now):
        super().on_tenant_retire(stream_id, now)
        self.log.append(
            f"  t={now * 1e3:7.2f} ms  - {stream_id:<6} leaves "
            f"({self._free_pages()} pages free)"
        )


def main() -> None:
    print(f"Scenario: {SCENARIO.num_streams} tenants, "
          f"{SCENARIO.duration_s * 1e3:.0f} ms window, QoS-M deadlines")
    for i, stream in enumerate(SCENARIO.streams):
        lifecycle = (
            f"joins {stream.join_s * 1e3:.0f} ms"
            + (f", leaves {stream.leave_s * 1e3:.0f} ms"
               if stream.leave_s is not None else ", stays")
        )
        print(f"  {stream.model}@{i}: {stream.arrival.kind:<11} "
              f"{lifecycle}")

    print("\nTenancy timeline under CaMDN(Full):")
    probe = PageProbe()
    probed = run(SCENARIO, policy=probe)
    for line in probe.log:
        print(line)

    header = (
        f"\n{'policy':<12}{'inferences':>11}{'avg ms':>8}{'p99 ms':>8}"
        f"{'QoS viol':>9}{'queue ms':>9}{'cancelled':>10}"
    )
    print(header)
    print("-" * (len(header) - 1))
    for policy in POLICIES:
        result = (
            probed if policy == "camdn-full"
            else simulate_scenario(policy, SCENARIO)
        )
        summary = result.summary()
        print(
            f"{policy:<12}{summary['inferences']:>11.0f}"
            f"{summary['avg_latency_ms']:>8.2f}"
            f"{summary['p99_latency_ms']:>8.2f}"
            f"{summary['qos_violations']:>9.0f}"
            f"{summary['avg_queue_delay_ms']:>9.3f}"
            f"{summary['cancelled_inferences']:>10.0f}"
        )
    print(
        "\nDeparting tenants' pages return to the pool the moment they "
        "leave,\nand Algorithm 1 re-grants them to the surviving "
        "tenants' regions."
    )


if __name__ == "__main__":
    main()
