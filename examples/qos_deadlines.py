#!/usr/bin/env python3
"""QoS study: deadline satisfaction under three scheduler generations.

Runs the paper's Figure 9 setup at a reduced scale: eight tenants with the
Table I latency targets at a chosen QoS level, under MoCA (bandwidth
partitioning), AuRORA (bandwidth + NPU co-allocation) and CaMDN (cache
scheduling on top of AuRORA's allocators), reporting SLA satisfaction,
system throughput (STP) and fairness.

Usage::

    python examples/qos_deadlines.py [--level H|M|L]
"""

from __future__ import annotations

import argparse

from repro import SoCConfig, isolated_latencies, simulate
from repro.models.zoo import BENCHMARK_MODELS
from repro.sim.qos import fairness, sla_rate, system_throughput

LEVELS = {"H": 0.8, "M": 1.0, "L": 1.2}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--level", choices=sorted(LEVELS), default="M",
                        help="QoS level: H=0.8x, M=1.0x, L=1.2x targets")
    args = parser.parse_args()
    qos_scale = LEVELS[args.level]

    soc = SoCConfig()
    tenants = list(BENCHMARK_MODELS)
    print(
        f"QoS-{args.level} ({qos_scale}x Table I targets), "
        f"{len(tenants)} tenants\n"
    )
    print("Measuring single-tenant latencies for STP/fairness baselines...")
    isolated = isolated_latencies(tenants, soc)

    header = f"{'policy':<14}{'SLA':>8}{'STP':>8}{'fairness':>10}"
    print()
    print(header)
    print("-" * len(header))
    for policy in ("moca", "aurora", "camdn-full"):
        kwargs = {"qos_mode": True} if policy.startswith("camdn") else {}
        result = simulate(
            policy, tenants, duration_s=0.15, warmup_s=0.03,
            qos_scale=qos_scale, soc=soc, **kwargs,
        )
        print(
            f"{policy:<14}"
            f"{sla_rate(result.metrics):>8.1%}"
            f"{system_throughput(result.metrics, isolated):>8.2f}"
            f"{fairness(result.metrics, isolated):>10.3f}"
        )

    print(
        "\nThe paper reports CaMDN improving SLA 5.9x, STP 2.5x and "
        "fairness 3.0x on average over these baselines."
    )


if __name__ == "__main__":
    main()
