#!/usr/bin/env python3
"""Explore the cache-aware mapper's candidates for one model.

Shows the offline half of CaMDN (Figure 6 left): for each layer of the
chosen model, the mapping candidate table's LWM candidates per cache-usage
level and the LBM candidate, with their predicted DRAM traffic — the
data structure Algorithm 1 selects from at runtime.

Usage::

    python examples/mapping_explorer.py [--model MB.] [--layers 8]
"""

from __future__ import annotations

import argparse

from repro import SoCConfig
from repro.core.mapper.layer_mapper import LayerMapper
from repro.models.zoo import BENCHMARK_MODELS, build_model


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="MB.",
                        choices=sorted(BENCHMARK_MODELS),
                        help="Table I model abbreviation (default MB.)")
    parser.add_argument("--layers", type=int, default=8,
                        help="number of layers to display (default 8)")
    args = parser.parse_args()

    soc = SoCConfig()
    graph = build_model(args.model)
    mapper = LayerMapper(soc)
    print(f"Mapping {graph.name} offline "
          f"(levels: {[lv // 1024 for lv in mapper.usage_levels]} KiB)...")
    mapping_file = mapper.map_model(graph)

    page = soc.cache.page_bytes
    print(f"\n{graph.describe()}")
    print(f"LBM blocks: {mapping_file.blocks}\n")
    for mct in mapping_file.mcts[:args.layers]:
        print(f"layer {mct.layer_index:<3} {mct.layer_name:<18} "
              f"Test={mct.est_latency_s * 1e6:7.1f} us")
        for candidate in mct.lwm:
            pinned = [
                f"{e.tensor}@{e.vcaddr:#x}"
                for e in candidate.cache_map if not e.bypass and e.size
            ]
            print(
                f"    LWM  pages={candidate.pages_needed(page):>3}  "
                f"dram={candidate.dram_bytes / 1e3:9.1f} KB  "
                f"pinned={pinned or ['-']}"
            )
        if mct.lbm is not None:
            print(
                f"    LBM  pages={mct.lbm.pages_needed(page):>3}  "
                f"dram={mct.lbm.dram_bytes / 1e3:9.1f} KB"
            )

    stats = mapper.mapping_stats(graph)
    print(
        f"\nwhole model: zero-cache traffic "
        f"{stats['dram_bytes_level0'] / 1e6:.1f} MB, best-level "
        f"{stats['dram_bytes_best_level'] / 1e6:.1f} MB "
        f"({stats['traffic_reduction']:.1%} LWM reduction; LBM removes "
        f"intermediate traffic on top)"
    )


if __name__ == "__main__":
    main()
