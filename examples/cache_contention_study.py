#!/usr/bin/env python3
"""Reproduce the paper's motivation (Section II-C / Figure 2) interactively.

Sweeps the number of co-located DNNs on an unmanaged transparent shared
cache and shows how hit rate collapses, memory access grows and latency
balloons — the inefficiency CaMDN attacks.

Usage::

    python examples/cache_contention_study.py [--cache-mb 16]
"""

from __future__ import annotations

import argparse

from repro import MiB, SoCConfig, simulate
from repro.sim.workload import random_model_mix


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cache-mb", type=int, default=16,
                        help="shared cache capacity in MiB (default 16)")
    parser.add_argument("--max-dnns", type=int, default=16,
                        help="largest tenant count to sweep (default 16)")
    args = parser.parse_args()

    soc = SoCConfig().with_cache_bytes(args.cache_mb * MiB)
    print(
        f"Transparent {args.cache_mb} MiB shared cache, "
        f"{soc.num_npu_cores} NPUs, unmanaged baseline\n"
    )
    header = (
        f"{'DNNs':>5}{'hit rate':>10}{'MB/model':>10}{'avg ms':>9}"
        f"{'vs solo':>9}"
    )
    print(header)
    print("-" * len(header))

    solo_latency = None
    counts = [n for n in (1, 2, 4, 8, 16, 32) if n <= args.max_dnns]
    for num_dnns in counts:
        result = simulate(
            "baseline",
            random_model_mix(num_dnns),
            duration_s=0.1,
            warmup_s=0.02,
            soc=soc,
        )
        summary = result.summary()
        if solo_latency is None:
            solo_latency = summary["avg_latency_ms"]
        print(
            f"{num_dnns:>5}"
            f"{summary['hit_rate']:>10.3f}"
            f"{summary['avg_dram_mb']:>10.1f}"
            f"{summary['avg_latency_ms']:>9.2f}"
            f"{summary['avg_latency_ms'] / solo_latency:>8.2f}x"
        )

    print(
        "\nThe paper observes (at 32 DNNs): hit rate down 18.9-59.7%, "
        "memory access up 32.7-64.1%, latency up 3.46-5.65x."
    )


if __name__ == "__main__":
    main()
