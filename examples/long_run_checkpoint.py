#!/usr/bin/env python3
"""Checkpoint & resume: killing a long run halfway and losing nothing.

Drives the ``diurnal-flash`` scenario (slow sinusoidal load with flash
crowds) under camdn-full three ways:

1. **Uninterrupted** — the reference run.
2. **Snapshot + resume** — capture an :class:`EngineSnapshot` mid-run,
   serialize it through its versioned, content-hashed JSON envelope,
   "crash", reload in a fresh engine and resume to completion.  The
   resumed ``metric_summary()`` is byte-identical to the reference.
3. **Rolling on-disk checkpoints** — ``run(checkpoint_every_s=...)``
   writes an atomically-replaced ``checkpoint.json`` at batch
   boundaries; the last one on disk resumes byte-identically too, which
   is exactly what a SIGKILLed long campaign does on restart.

Usage::

    python examples/long_run_checkpoint.py
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from repro import RunConfig, get_scenario, run
from repro.sim.snapshot import EngineSnapshot

SCENARIO = "diurnal-flash"
POLICY = "camdn-full"


def summary_bytes(result) -> str:
    return json.dumps(result.metric_summary(), sort_keys=True)


def main() -> None:
    spec = get_scenario(SCENARIO)

    # ------------------------------------------------------------------
    # 1. The uninterrupted reference run.
    # ------------------------------------------------------------------
    clean = run(spec, policy=POLICY)
    print(
        f"reference run: {clean.events_processed:,} events, "
        f"{clean.completed_inferences} completed inferences over "
        f"{clean.sim_time_s * 1e3:.0f} ms simulated"
    )

    # ------------------------------------------------------------------
    # 2. Snapshot halfway, serialize, "crash", reload, resume.
    # ------------------------------------------------------------------
    half = clean.events_processed // 2
    snapped = run(spec, policy=POLICY,
                  config=RunConfig(snapshot_at_events=half))
    snap = snapped.last_snapshot
    envelope = snap.to_json()
    print(
        f"\nsnapshot at event {snap.events_processed:,} "
        f"(t={snap.sim_time_s * 1e3:.1f} ms): "
        f"{len(envelope):,} byte envelope, schema-versioned and "
        f"SHA-256 content-hashed"
    )

    # Everything below could run in a different process, days later.
    engine = EngineSnapshot.from_json(envelope).resume()
    resumed = engine.resume_run()
    identical = summary_bytes(resumed) == summary_bytes(clean)
    print(
        f"resumed to completion: {resumed.completed_inferences} "
        f"completed; metric_summary byte-identical to the "
        f"uninterrupted run: {identical}"
    )
    assert identical

    # ------------------------------------------------------------------
    # 3. Rolling on-disk checkpoints, as a crashing campaign sees them.
    # ------------------------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        checked = run(
            spec, policy=POLICY,
            config=RunConfig(
                checkpoint_every_s=0.05,  # wall-clock cadence
                checkpoint_dir=tmp,
            ),
        )
        assert summary_bytes(checked) == summary_bytes(clean)
        path = Path(tmp) / "checkpoint.json"
        if not path.exists():
            print("\nrun finished inside one checkpoint interval "
                  "(nothing written) — identity still held")
            return
        last = EngineSnapshot.load(path)
        print(
            f"\nrolling checkpoint on disk: event "
            f"{last.events_processed:,} at t="
            f"{last.sim_time_s * 1e3:.1f} ms (atomically replaced — a "
            f"kill mid-write can never tear it)"
        )
        redone = last.resume().resume_run()
        assert summary_bytes(redone) == summary_bytes(clean)
        print(
            "resumed from the on-disk checkpoint: byte-identical "
            "again — a SIGKILL anywhere loses only wall-clock time"
        )


if __name__ == "__main__":
    main()
