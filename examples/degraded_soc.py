#!/usr/bin/env python3
"""Fault injection: running a multi-tenant SoC that is falling apart.

Walks the ``degraded-soc`` registered fault schedule — a DRAM thermal
throttle, a dead NPU core, an ECC page-retirement burst and a full
tenant-stall window, all inside one 0.4 s run — across every policy,
then escalates a core outage until tenants get preempted.  Throughout,
the engine's conservation law (``offered == completed + cancelled +
dropped``) and the cache allocator's invariants keep holding: faults
degrade service, never correctness.

Usage::

    python examples/degraded_soc.py
"""

from __future__ import annotations

from repro import (
    FaultEvent,
    FaultSpec,
    RunConfig,
    get_fault_schedule,
    run,
)
from repro.sim.faults import CORE_OFFLINE

POLICIES = ("baseline", "moca", "aurora", "camdn-hw", "camdn-full")

SCENARIO = "steady-quad"


def conservation_ok(result) -> bool:
    return result.offered_inferences == (
        result.completed_inferences + result.cancelled_inferences
        + result.dropped_inferences
    )


def main() -> None:
    # ------------------------------------------------------------------
    # 1. The registered degraded-soc schedule across every policy.
    # ------------------------------------------------------------------
    schedule = get_fault_schedule("degraded-soc")
    print(f"degraded-soc schedule ({len(schedule.events)} fault events):")
    for event in schedule.events:
        window = (
            f" for {event.duration_s * 1e3:.0f} ms"
            if event.duration_s is not None else " (permanent)"
        )
        print(f"  t={event.t_s * 1e3:5.0f} ms  {event.kind}{window}")
    print()

    header = (
        f"{'policy':<12}{'completed':>10}{'cancelled':>10}"
        f"{'avg ms':>8}{'pages retired':>15}{'conserved':>11}"
    )
    print(header)
    print("-" * len(header))
    for policy in POLICIES:
        clean = run(SCENARIO, policy=policy)
        faulted = run(SCENARIO, policy=policy,
                      config=RunConfig(faults="degraded-soc"))
        summary = faulted.summary()
        print(
            f"{policy:<12}"
            f"{faulted.completed_inferences:>6} "
            f"({faulted.completed_inferences / max(clean.completed_inferences, 1):.0%})"
            f"{faulted.cancelled_inferences:>10}"
            f"{summary['avg_latency_ms']:>8.2f}"
            f"{faulted.scheduler_stats.get('pages_retired', 0):>15.0f}"
            f"{str(conservation_ok(faulted)):>11}"
        )

    # ------------------------------------------------------------------
    # 2. Escalating core outage: preemption kicks in when the outage
    #    exceeds the free-core headroom.
    # ------------------------------------------------------------------
    print("\nEscalating mid-run core outage (camdn-full, 16-core SoC):")
    print(f"{'cores offline':>14}{'completed':>11}{'preempted':>11}")
    for cores in (4, 8, 12, 15):
        spec = FaultSpec(events=(
            FaultEvent(kind=CORE_OFFLINE, t_s=0.10, duration_s=0.15,
                       cores=cores),
        ))
        result = run(SCENARIO, policy="camdn-full",
                     config=RunConfig(faults=spec))
        assert conservation_ok(result)
        print(
            f"{cores:>14}{result.completed_inferences:>11}"
            f"{result.cancelled_inferences:>11}"
        )
    print(
        "\nPreempted inferences count as cancelled; closed-loop tenants"
        "\nre-offer and queue until cores come back online."
    )


if __name__ == "__main__":
    main()
