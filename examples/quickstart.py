#!/usr/bin/env python3
"""Quickstart: a contended SoC, CaMDN versus AuRORA.

Keeps all 16 NPUs of the paper's Table II SoC busy (ResNet50,
MobileNet-v2 and BERT-base streams) under the AuRORA baseline and under
the full CaMDN architecture-scheduling co-design, then prints per-model
latency and DRAM traffic side by side.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import simulate

MODELS = ["RS.", "MB.", "BE."]

#: 15 streams (5 of each model) keep nearly every NPU busy, creating the
#: shared-cache contention CaMDN targets.
TENANTS = MODELS * 5


def main() -> None:
    print(f"Co-located tenants: {len(TENANTS)} streams over "
          f"{', '.join(MODELS)}")
    print("Simulating 0.2 s of steady-state execution per policy...\n")

    results = {}
    for policy in ("aurora", "camdn-full"):
        results[policy] = simulate(
            policy, TENANTS, duration_s=0.2, warmup_s=0.04
        )

    header = (
        f"{'model':<8}{'AuRORA ms':>12}{'CaMDN ms':>12}{'speedup':>9}"
        f"{'AuRORA MB':>12}{'CaMDN MB':>11}"
    )
    print(header)
    print("-" * len(header))
    aurora = results["aurora"].metrics.by_model()
    camdn = results["camdn-full"].metrics.by_model()
    for model in MODELS:
        a, c = aurora[model], camdn[model]
        print(
            f"{model:<8}{a.avg_latency_ms:>12.2f}{c.avg_latency_ms:>12.2f}"
            f"{a.avg_latency_s / c.avg_latency_s:>9.2f}"
            f"{a.avg_dram_mb:>12.1f}{c.avg_dram_mb:>11.1f}"
        )

    a_sum = results["aurora"].summary()
    c_sum = results["camdn-full"].summary()
    print(
        f"\nsuite average: "
        f"{a_sum['avg_latency_ms']:.2f} ms -> "
        f"{c_sum['avg_latency_ms']:.2f} ms "
        f"({a_sum['avg_latency_ms'] / c_sum['avg_latency_ms']:.2f}x), "
        f"DRAM {a_sum['avg_dram_mb']:.1f} MB -> "
        f"{c_sum['avg_dram_mb']:.1f} MB per inference"
    )
    stats = results["camdn-full"].scheduler_stats
    print(
        f"CaMDN ran {stats['lbm_layers']:.0f} layers in LBM mode with "
        f"{stats['timeouts']:.0f} allocation timeouts."
    )


if __name__ == "__main__":
    main()
