#!/usr/bin/env python3
"""Fleet simulation: population percentiles over a device mix.

Simulates a small fleet — two hardware classes (paper Table II and a
cache-starved budget variant) running a mix of steady and Poisson
workloads — and prints the population view: p50/p95/p99 latency across
devices, fleet-wide QoS-violation rate, and the same fleet resumed from
a crash-safe journal to show the byte-identical population summary.

Usage::

    python examples/fleet_percentiles.py
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from repro import (
    MiB,
    DeviceClass,
    FleetSpec,
    ScenarioDraw,
    resume_fleet,
    run_fleet,
)

FLEET = FleetSpec(
    devices=12,
    policy="camdn-full",
    device_classes=(
        DeviceClass(name="table2", weight=3.0),
        DeviceClass(name="budget", weight=1.0, cache_bytes=2 * MiB),
    ),
    scenario_draws=(
        ScenarioDraw(scenario="steady-quad", weight=2.0),
        ScenarioDraw(scenario="poisson-eight", weight=1.0,
                     arrival_scale=0.5),
    ),
    mc_runs=2,
    scale=0.25,
    seed=7,
)


def main() -> None:
    print(
        f"fleet: {FLEET.devices} devices x {FLEET.mc_runs} Monte Carlo "
        f"runs = {FLEET.num_cells} cells ({FLEET.policy})"
    )

    with tempfile.TemporaryDirectory() as tmp:
        journal = Path(tmp) / "fleet.journal"
        result = run_fleet(FLEET, journal_path=journal)
        summary = result.fleet_summary()

        latency = summary["latency_ms"]
        print(
            f"\npopulation latency across devices: "
            f"p50 {latency['p50']:.2f} ms, p95 {latency['p95']:.2f} ms, "
            f"p99 {latency['p99']:.2f} ms"
        )
        print(
            f"fleet QoS-violation rate: "
            f"{summary['qos_violation_rate']:.1%} of "
            f"{summary['inferences']} inferences"
        )

        # The journal + sidecar make the fleet resumable: re-driving it
        # serves every cell from its committed result and folds to the
        # byte-identical population summary.
        resumed = resume_fleet(journal)
        identical = (
            json.dumps(resumed.fleet_summary(), sort_keys=True)
            == json.dumps(summary, sort_keys=True)
        )
        print(f"\nresumed from journal: population summary "
              f"byte-identical: {identical}")
        assert identical


if __name__ == "__main__":
    main()
