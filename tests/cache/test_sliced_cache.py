"""Integration tests: CPU / NPU subspace isolation in the sliced cache."""

import pytest

from repro.cache.sliced_cache import SlicedSharedCache
from repro.config import CacheConfig
from repro.core.cpt import CachePageTable
from repro.core.nec import NECOp, NECRequest
from repro.errors import CacheAddressError
from repro.memory.dram import MainMemory


@pytest.fixture
def cache():
    return SlicedSharedCache(CacheConfig(), MainMemory())


class TestCPUSide:
    def test_miss_then_hit(self, cache):
        assert cache.cpu_access(0x1000) is False
        assert cache.cpu_access(0x1000) is True
        assert cache.cpu_stats.hits == 1
        assert cache.cpu_stats.misses == 1

    def test_cpu_uses_only_cpu_ways(self, cache):
        # Fill far more lines than the CPU subspace holds in one set.
        cfg = cache.config
        set_stride = cfg.line_bytes * cfg.num_slices * cfg.sets_per_slice
        for i in range(10):
            cache.cpu_access(i * set_stride)  # same set, same slice
        assert cache.cpu_resident_lines() <= cache.way_mask.cpu_ways

    def test_cpu_never_touches_npu_subspace(self, cache):
        fabric = cache.install_necs()
        cpt = CachePageTable(cache.config)
        cpt.map(0, 0)
        paddr = cpt.translate(0)
        fabric.handle(NECRequest(NECOp.WRITE_LINE, paddr=paddr, data=42))
        before = cache.snapshot_npu_subspace()
        for i in range(10_000):
            cache.cpu_access(i * 64, write=True)
        assert cache.snapshot_npu_subspace() == before

    def test_dirty_eviction_writes_back(self, cache):
        cfg = cache.config
        set_stride = cfg.line_bytes * cfg.num_slices * cfg.sets_per_slice
        cache.cpu_access(0, write=True)
        for i in range(1, cfg.num_ways + 1):
            cache.cpu_access(i * set_stride)
        assert cache.cpu_stats.writebacks >= 1

    def test_negative_address_rejected(self, cache):
        with pytest.raises(CacheAddressError):
            cache.cpu_access(-64)


class TestNPUSide:
    def test_npu_data_survives_cpu_storm(self, cache):
        """The core isolation claim: CPU traffic cannot evict NPU lines."""
        fabric = cache.install_necs()
        cpt = CachePageTable(cache.config)
        cpt.remap_all([0, 1, 2, 3])
        written = {}
        for line in range(64):
            vcaddr = line * 64
            paddr = cpt.translate(vcaddr)
            fabric.handle(
                NECRequest(NECOp.WRITE_LINE, paddr=paddr, data=line)
            )
            written[vcaddr] = line
        for i in range(50_000):
            cache.cpu_access(i * 64, write=(i % 2 == 0))
        for vcaddr, expected in written.items():
            paddr = cpt.translate(vcaddr)
            (value,) = fabric.handle(
                NECRequest(NECOp.READ_LINE, paddr=paddr)
            )
            assert value == expected

    def test_npu_line_direct_access_guard(self, cache):
        with pytest.raises(CacheAddressError):
            cache.npu_line(0, 0, 0)  # way 0 is CPU-owned

    def test_all_cpu_ways_masked_off(self):
        cfg = CacheConfig(npu_ways=16)
        cache = SlicedSharedCache(cfg, MainMemory())
        # With zero CPU ways every access bypasses (misses).
        assert cache.cpu_access(0) is False
        assert cache.cpu_access(0) is False
