"""Tests for way-masked LRU replacement."""

import pytest

from repro.cache.replacement import LRUState
from repro.errors import ConfigError


class TestLRUState:
    def test_victim_is_least_recent(self):
        lru = LRUState([0, 1, 2])
        lru.touch(0)
        lru.touch(1)
        assert lru.victim() == 2

    def test_touch_reorders(self):
        lru = LRUState([0, 1, 2])
        lru.touch(0)  # order: 1,2,0
        assert lru.victim() == 1
        lru.touch(1)  # order: 2,0,1
        assert lru.victim() == 2

    def test_empty_policy_has_no_victim(self):
        assert LRUState([]).victim() is None

    def test_touch_unmanaged_way_raises(self):
        lru = LRUState([0, 1])
        with pytest.raises(ConfigError):
            lru.touch(5)

    def test_duplicate_ways_rejected(self):
        with pytest.raises(ConfigError):
            LRUState([1, 1])

    def test_restrict_keeps_recency(self):
        lru = LRUState([0, 1, 2, 3])
        lru.touch(2)
        lru.touch(0)
        lru.restrict([0, 2])
        assert lru.victim() == 2  # 2 touched before 0
        assert set(lru.allowed_ways) == {0, 2}

    def test_restrict_adds_new_ways_as_cold(self):
        lru = LRUState([0, 1])
        lru.touch(0)
        lru.touch(1)
        lru.restrict([0, 1, 5])
        assert lru.victim() == 5
