"""Tests for cache statistics counters."""

import pytest

from repro.cache.stats import CacheStats


class TestCacheStats:
    def test_empty_hit_rate_is_zero(self):
        assert CacheStats().hit_rate == 0.0

    def test_hit_rate(self):
        stats = CacheStats()
        stats.record_hit(3)
        stats.record_miss(1)
        assert stats.hit_rate == pytest.approx(0.75)
        assert stats.accesses == 4

    def test_dirty_eviction_counts_writeback(self):
        stats = CacheStats()
        stats.record_eviction(dirty=True)
        stats.record_eviction(dirty=False)
        assert stats.evictions == 2
        assert stats.writebacks == 1

    def test_merge(self):
        a, b = CacheStats(), CacheStats()
        a.record_hit(2)
        b.record_miss(3)
        a.merge(b)
        assert a.accesses == 5

    def test_reset(self):
        stats = CacheStats()
        stats.record_hit()
        stats.reset()
        assert stats.accesses == 0
