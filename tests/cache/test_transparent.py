"""Tests for the analytic transparent shared-cache model."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.cache.transparent import (
    AccessSegment,
    TransparentCacheModel,
    layer_access_segments,
)
from repro.config import MiB
from repro.errors import SimulationError
from repro.models.zoo import build_model


class TestHitProbability:
    def test_short_distance_hits(self):
        model = TransparentCacheModel(16 * MiB)
        assert model.hit_probability(1024) > 0.99

    def test_infinite_distance_misses(self):
        model = TransparentCacheModel(16 * MiB)
        assert model.hit_probability(math.inf) == 0.0

    def test_contention_inflates_distance(self):
        model = TransparentCacheModel(16 * MiB)
        solo = model.hit_probability(4 * MiB, contention_factor=1.0)
        shared = model.hit_probability(4 * MiB, contention_factor=8.0)
        assert shared < solo

    def test_bigger_cache_helps(self):
        small = TransparentCacheModel(4 * MiB)
        big = TransparentCacheModel(64 * MiB)
        assert big.hit_probability(8 * MiB) > small.hit_probability(8 * MiB)

    def test_contention_below_one_rejected(self):
        model = TransparentCacheModel(MiB)
        with pytest.raises(SimulationError):
            model.hit_probability(1024, contention_factor=0.5)

    @given(
        distance=st.floats(1.0, 1e9),
        factor=st.floats(1.0, 64.0),
    )
    def test_monotone_in_contention(self, distance, factor):
        model = TransparentCacheModel(16 * MiB)
        assert model.hit_probability(distance, factor) <= \
            model.hit_probability(distance, 1.0) + 1e-12


class TestLayerSegments:
    def test_weights_have_cross_inference_distance(self):
        graph = build_model("RS.")
        segments = layer_access_segments(graph, 2)
        weight_seg = max(segments, key=lambda s: s.reuse_distance
                         if not s.writes and not math.isinf(s.reuse_distance)
                         else 0)
        assert weight_seg.reuse_distance >= \
            graph.compulsory_traffic_elems() * 0.5

    def test_first_layer_input_is_compulsory(self):
        graph = build_model("RS.")
        segments = layer_access_segments(graph, 0)
        input_segs = [s for s in segments if not s.writes
                      and math.isinf(s.reuse_distance)]
        assert input_segs  # model input always misses

    def test_skip_edges_get_long_distance_segments(self):
        graph = build_model("RS.")
        add_index = next(
            i for i, layer in enumerate(graph.layers)
            if layer.name.endswith("_add")
        )
        segments = layer_access_segments(graph, add_index)
        reads = [s for s in segments if not s.writes]
        assert len(reads) >= 2  # direct operand + skip operand

    def test_total_read_bytes_match_inputs(self):
        graph = build_model("MB.")
        for i in (1, 5, 10):
            layer = graph.layers[i]
            segments = layer_access_segments(graph, i)
            read_bytes = sum(s.bytes_ for s in segments if not s.writes)
            assert read_bytes == pytest.approx(
                layer.weight_elems + layer.input_elems, rel=1e-6
            )

    def test_out_of_range_layer(self):
        with pytest.raises(SimulationError):
            layer_access_segments(build_model("MB."), 9999)


class TestModelTraffic:
    def test_contention_increases_traffic(self):
        model = TransparentCacheModel(16 * MiB)
        graph = build_model("RS.")
        solo, solo_hit = model.model_traffic(graph)
        shared, shared_hit = model.model_traffic(graph,
                                                 contention_factor=16.0)
        assert shared > solo
        assert shared_hit < solo_hit

    def test_traffic_at_least_writes(self):
        model = TransparentCacheModel(64 * MiB)
        graph = build_model("MB.")
        traffic, _ = model.model_traffic(graph)
        writes = sum(layer.output_elems for layer in graph.layers)
        assert traffic >= writes

    def test_layer_traffic_accounting(self):
        model = TransparentCacheModel(16 * MiB)
        segments = [
            AccessSegment(bytes_=1000, reuse_distance=10.0),
            AccessSegment(bytes_=500, reuse_distance=math.inf),
            AccessSegment(bytes_=200, reuse_distance=0.0, writes=True),
        ]
        dram, hits, accesses = model.layer_traffic(segments)
        assert accesses == 1500
        assert hits == pytest.approx(1000 * model.hit_probability(10.0))
        assert dram == pytest.approx(1500 - hits + 200 - 500 + 500)
