"""Tests for the Figure 7 (speedup) and Figure 8 (scaling) harnesses."""

import pytest

from repro.experiments.fig7_speedup import format_fig7, run_fig7
from repro.experiments.fig8_scaling import format_fig8, run_fig8

pytestmark = [pytest.mark.slow, pytest.mark.experiment]


@pytest.fixture(scope="module")
def fig7_rows():
    return run_fig7(scale=0.2)


class TestFig7:
    def test_all_models_present(self, fig7_rows):
        assert {r.model for r in fig7_rows} == {
            "RS.", "MB.", "EF.", "VT.", "BE.", "GN.", "WV.", "PP.",
        }

    def test_full_speeds_up_on_average(self, fig7_rows):
        avg = sum(r.full_speedup for r in fig7_rows) / len(fig7_rows)
        assert avg > 1.2  # paper: 1.88x

    def test_full_beats_hw_only_on_average(self, fig7_rows):
        avg_full = sum(r.full_speedup for r in fig7_rows) / len(fig7_rows)
        avg_hw = sum(r.hw_only_speedup for r in fig7_rows) / len(fig7_rows)
        assert avg_full > avg_hw  # paper: 1.18x gap

    def test_dwconv_models_benefit_most(self, fig7_rows):
        """Paper: MB and EF reach the highest speedups (intermediate data
        served from cache by LBM)."""
        by_model = {r.model: r.full_speedup for r in fig7_rows}
        dwconv_best = max(by_model["MB."], by_model["EF."])
        others_avg = sum(
            v for k, v in by_model.items() if k not in ("MB.", "EF.")
        ) / 6
        assert dwconv_best > others_avg

    def test_format(self, fig7_rows):
        text = format_fig7(fig7_rows)
        assert "paper: Full up to 2.56x" in text


class TestFig8:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_fig8(dnn_counts=(1, 8), cache_sizes_mb=(16,), scale=0.2)

    def test_grid(self, rows):
        assert len(rows) == 2

    def test_camdn_reduces_traffic_multi_tenant(self, rows):
        multi = next(r for r in rows if r.num_dnns == 8)
        assert multi.dram_reduction > 0.0

    def test_camdn_reduces_latency_multi_tenant(self, rows):
        multi = next(r for r in rows if r.num_dnns == 8)
        assert multi.latency_reduction > 0.0

    def test_format(self, rows):
        text = format_fig8(rows)
        assert "paper 34.3%..42.3%" in text
