"""Tests for the churn harness, the unified run_scenario pipeline and
the experiment-scale validation."""

import pytest

from repro.errors import WorkloadError
from repro.experiments.common import ExperimentScale, run_scenario
from repro.experiments.fig_churn import (
    CHURN_POLICIES,
    churn_scenario,
    format_churn,
    run_churn,
)

pytestmark = pytest.mark.experiment


class TestExperimentScaleValidation:
    def test_defaults_valid(self):
        scale = ExperimentScale(scale=0.5)
        assert scale.duration_s == pytest.approx(0.2)
        assert scale.warmup_s == pytest.approx(0.04)

    def test_rejects_warmup_at_or_after_duration(self):
        with pytest.raises(WorkloadError):
            ExperimentScale(base_duration_s=0.1, base_warmup_s=0.1)
        with pytest.raises(WorkloadError):
            ExperimentScale(base_duration_s=0.1, base_warmup_s=0.2)

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(WorkloadError):
            ExperimentScale(base_duration_s=0.0)

    def test_rejects_out_of_range_scale(self):
        with pytest.raises(ValueError):
            ExperimentScale(scale=0.0)


class TestRunScenarioEntryPoint:
    def test_accepts_registry_names(self):
        result = run_scenario("steady-quad", policy="baseline")
        assert result.metrics.num_inferences > 0

    def test_unknown_name_raises(self):
        with pytest.raises(WorkloadError):
            run_scenario("no-such-scenario")

    def test_policy_instance_rejects_qos_mode(self):
        """qos_mode silently configuring nothing on a pre-built policy
        instance would fake a Figure 9 run; it must raise instead."""
        from repro.schedulers.camdn_full import CaMDNFullScheduler

        with pytest.raises(ValueError):
            run_scenario("steady-quad", policy=CaMDNFullScheduler(),
                         qos_mode=True)


@pytest.mark.slow
class TestChurnHarness:
    def test_churn_rows_cover_policies(self):
        rows = run_churn(scale=0.25, use_cache=False)
        assert [r.policy for r in rows] == list(CHURN_POLICIES)
        for row in rows:
            assert row.inferences > 0
            assert row.tenant_admits == 8
            assert row.tenant_retires == 8
            # The staggered churners leave mid-run with work in flight.
            assert row.cancelled_inferences >= 1

    def test_churn_scenario_scaled_keeps_churn_inside_window(self):
        spec = churn_scenario(0.25)
        duration = spec.duration_s
        for stream in spec.streams:
            assert stream.join_s < duration
            if stream.leave_s is not None:
                assert stream.leave_s < duration
            assert stream.qos_scale == 1.0

    def test_format_churn_renders(self):
        rows = run_churn(scale=0.25, use_cache=False)
        text = format_churn(rows)
        assert "camdn-full" in text
        assert "QoS viol" in text


class TestRunnerScenarioList:
    def test_list_scenarios_flag(self, capsys):
        from repro.experiments.runner import main

        assert main(["--list-scenarios"]) == 0
        out = capsys.readouterr().out
        assert "churn-eight" in out
        assert "poisson-eight" in out

    def test_experiment_still_required_without_flag(self, capsys):
        from repro.experiments.runner import main

        with pytest.raises(SystemExit):
            main([])
