"""Tests for the ablation harnesses."""

import pytest

from repro.experiments.ablation import (
    AblationRow,
    format_ablation,
    multicast_traffic_savings,
    run_lbm_budget_ablation,
    run_way_partition_ablation,
)

pytestmark = [pytest.mark.slow, pytest.mark.experiment]


class TestMulticastSavings:
    def test_all_models_covered(self):
        savings = multicast_traffic_savings()
        assert len(savings) == 8

    def test_savings_positive(self):
        for row in multicast_traffic_savings(num_cores=2).values():
            assert row["saved_fraction"] > 0
            assert row["multicast_mb"] < row["replicated_mb"]

    def test_more_cores_bigger_savings(self):
        two = multicast_traffic_savings(num_cores=2)
        four = multicast_traffic_savings(num_cores=4)
        for key in two:
            assert four[key]["saved_fraction"] > two[key]["saved_fraction"]


class TestSweeps:
    def test_way_partition_rows(self):
        rows = run_way_partition_ablation(npu_way_options=(8, 16),
                                          scale=0.1)
        assert [r.value for r in rows] == ["8/16", "16/16"]
        assert all(r.avg_latency_ms > 0 for r in rows)

    def test_lbm_budget_rows(self):
        """Budget changes block shapes: under contention, smaller blocks
        need fewer pages and can enable LBM *more* often — the sweep must
        respond to the knob either way."""
        rows = run_lbm_budget_ablation(fractions=(0.05, 0.5), scale=0.1)
        assert all(r.lbm_layers > 0 for r in rows)
        assert rows[0].lbm_layers != rows[1].lbm_layers

    def test_format(self):
        rows = [
            AblationRow(knob="x", value="a", avg_latency_ms=1.0,
                        avg_dram_mb=2.0, lbm_layers=3),
        ]
        text = format_ablation(rows, "demo")
        assert "demo" in text and "a" in text
