"""Tests for the parallel experiment sweep runner."""

import math

import pytest

from repro.config import MiB
from repro.errors import WorkloadError
from repro.experiments.sweep import SweepCell, run_sweep

pytestmark = pytest.mark.experiment

_KEYS = ("MB.", "EF.")


class TestSweepCell:
    def test_rejects_empty_workload(self):
        with pytest.raises(WorkloadError):
            SweepCell(policy="baseline", model_keys=())

    def test_random_mix_is_deterministic_in_seed(self):
        # Streams beyond the first eight (the distinct-model prefix) are
        # drawn from the seeded RNG, so the seed must matter there.
        a = SweepCell.random_mix("baseline", 12, seed=7)
        b = SweepCell.random_mix("baseline", 12, seed=7)
        c = SweepCell.random_mix("baseline", 12, seed=8)
        assert a == b
        assert a.model_keys != c.model_keys

    def test_random_mix_covers_distinct_models_first(self):
        cell = SweepCell.random_mix("moca", 4, seed=1)
        assert len(set(cell.model_keys)) == 4


class TestRunSweep:
    def test_results_in_cell_order(self):
        cells = [
            SweepCell(policy=policy, model_keys=_KEYS, scale=0.1)
            for policy in ("baseline", "camdn-full")
        ]
        results = run_sweep(cells, max_workers=1)
        assert [r.scheduler_name for r in results] == \
            ["baseline", "camdn-full"]

    def test_serial_matches_cell_count(self):
        cells = [
            SweepCell(policy="baseline", model_keys=_KEYS, scale=0.1),
            SweepCell(policy="baseline", model_keys=_KEYS, scale=0.1,
                      cache_bytes=8 * MiB),
        ]
        results = run_sweep(cells, max_workers=1)
        assert len(results) == 2
        for result in results:
            assert result.metrics.num_inferences > 0

    def test_cache_override_changes_behaviour(self):
        base, small = run_sweep(
            [
                SweepCell(policy="baseline", model_keys=_KEYS, scale=0.1),
                SweepCell(policy="baseline", model_keys=_KEYS, scale=0.1,
                          cache_bytes=4 * MiB),
            ],
            max_workers=1,
        )
        # A smaller transparent cache can only lower the hit rate.
        assert small.metrics.overall_hit_rate() <= \
            base.metrics.overall_hit_rate()

    def test_qos_cells_carry_deadlines(self):
        (result,) = run_sweep(
            [
                SweepCell(policy="camdn-full", model_keys=_KEYS,
                          qos_scale=1.0, qos_mode=True, scale=0.1),
            ],
            max_workers=1,
        )
        assert all(
            not math.isinf(r.qos_target_s) for r in result.metrics.records
        )

    def test_rerun_is_deterministic(self):
        # use_cache=False: with the persistent cache on, the second run
        # would deserialize the first run's file and the comparison
        # would be vacuous.
        cells = [SweepCell(policy="moca", model_keys=_KEYS, scale=0.1)]
        first = run_sweep(cells, max_workers=1, use_cache=False)[0]
        second = run_sweep(cells, max_workers=1, use_cache=False)[0]
        assert first.metric_summary() == second.metric_summary()

    def test_process_pool_matches_serial(self):
        """The parallel path (cells pickled to workers, results pickled
        back) must return byte-identical results in cell order.  The
        persistent cache is disabled so the pool is actually exercised."""
        cells = [
            SweepCell(policy=policy, model_keys=_KEYS, scale=0.1)
            for policy in ("baseline", "moca")
        ]
        serial = run_sweep(cells, max_workers=1, use_cache=False)
        pooled = run_sweep(cells, max_workers=2, use_cache=False)
        assert [r.scheduler_name for r in pooled] == \
            [r.scheduler_name for r in serial]
        assert [r.metric_summary() for r in pooled] == \
            [r.metric_summary() for r in serial]
