"""Tests for the parallel experiment sweep runner."""

import math

import pytest

from repro.config import MiB
from repro.errors import WorkloadError
from repro.experiments.sweep import SweepCell, run_sweep
from repro.sim.scenario import ArrivalProcess, ScenarioSpec, StreamSpec

pytestmark = pytest.mark.experiment

_KEYS = ("MB.", "EF.")


def _poisson_spec(rate_hz: float = 150.0) -> ScenarioSpec:
    return ScenarioSpec(
        streams=tuple(
            StreamSpec(
                model=key,
                arrival=ArrivalProcess.poisson(rate_hz=rate_hz,
                                               seed=11 + i),
            )
            for i, key in enumerate(_KEYS)
        ),
        duration_s=0.05,
    )


class TestSweepCell:
    def test_rejects_empty_workload(self):
        with pytest.raises(WorkloadError):
            SweepCell(policy="baseline", model_keys=())

    def test_random_mix_is_deterministic_in_seed(self):
        # Streams beyond the first eight (the distinct-model prefix) are
        # drawn from the seeded RNG, so the seed must matter there.
        a = SweepCell.random_mix("baseline", 12, seed=7)
        b = SweepCell.random_mix("baseline", 12, seed=7)
        c = SweepCell.random_mix("baseline", 12, seed=8)
        assert a == b
        assert a.model_keys != c.model_keys

    def test_random_mix_covers_distinct_models_first(self):
        cell = SweepCell.random_mix("moca", 4, seed=1)
        assert len(set(cell.model_keys)) == 4


class TestRunSweep:
    def test_results_in_cell_order(self):
        cells = [
            SweepCell(policy=policy, model_keys=_KEYS, scale=0.1)
            for policy in ("baseline", "camdn-full")
        ]
        results = run_sweep(cells, max_workers=1)
        assert [r.scheduler_name for r in results] == \
            ["baseline", "camdn-full"]

    def test_serial_matches_cell_count(self):
        cells = [
            SweepCell(policy="baseline", model_keys=_KEYS, scale=0.1),
            SweepCell(policy="baseline", model_keys=_KEYS, scale=0.1,
                      cache_bytes=8 * MiB),
        ]
        results = run_sweep(cells, max_workers=1)
        assert len(results) == 2
        for result in results:
            assert result.metrics.num_inferences > 0

    def test_cache_override_changes_behaviour(self):
        base, small = run_sweep(
            [
                SweepCell(policy="baseline", model_keys=_KEYS, scale=0.1),
                SweepCell(policy="baseline", model_keys=_KEYS, scale=0.1,
                          cache_bytes=4 * MiB),
            ],
            max_workers=1,
        )
        # A smaller transparent cache can only lower the hit rate.
        assert small.metrics.overall_hit_rate() <= \
            base.metrics.overall_hit_rate()

    def test_qos_cells_carry_deadlines(self):
        (result,) = run_sweep(
            [
                SweepCell(policy="camdn-full", model_keys=_KEYS,
                          qos_scale=1.0, qos_mode=True, scale=0.1),
            ],
            max_workers=1,
        )
        assert all(
            not math.isinf(r.qos_target_s) for r in result.metrics.records
        )

    def test_rerun_is_deterministic(self):
        # use_cache=False: with the persistent cache on, the second run
        # would deserialize the first run's file and the comparison
        # would be vacuous.
        cells = [SweepCell(policy="moca", model_keys=_KEYS, scale=0.1)]
        first = run_sweep(cells, max_workers=1, use_cache=False)[0]
        second = run_sweep(cells, max_workers=1, use_cache=False)[0]
        assert first.metric_summary() == second.metric_summary()

    def test_process_pool_matches_serial(self):
        """The parallel path (cells pickled to workers, results pickled
        back) must return byte-identical results in cell order.  The
        persistent cache is disabled so the pool is actually exercised."""
        cells = [
            SweepCell(policy=policy, model_keys=_KEYS, scale=0.1)
            for policy in ("baseline", "moca")
        ]
        serial = run_sweep(cells, max_workers=1, use_cache=False)
        pooled = run_sweep(cells, max_workers=2, use_cache=False)
        assert [r.scheduler_name for r in pooled] == \
            [r.scheduler_name for r in serial]
        assert [r.metric_summary() for r in pooled] == \
            [r.metric_summary() for r in serial]


class TestScenarioCells:
    def test_cell_rejects_both_keys_and_scenario(self):
        with pytest.raises(WorkloadError):
            SweepCell(policy="baseline", model_keys=_KEYS,
                      scenario=_poisson_spec())
        with pytest.raises(WorkloadError):
            SweepCell(policy="baseline")

    def test_cell_rejects_qos_scale_on_scenario(self):
        """Per-stream QoS lives in the spec; a cell-level qos_scale on a
        scenario cell would be silently ignored, so it is rejected."""
        with pytest.raises(WorkloadError):
            SweepCell.from_scenario("camdn-full", _poisson_spec(),
                                    qos_scale=0.8)

    def test_scenario_cell_runs_open_loop(self):
        (result,) = run_sweep(
            [SweepCell.from_scenario("camdn-full", _poisson_spec())],
            max_workers=1, use_cache=False,
        )
        assert result.offered_inferences > 0
        assert result.metrics.num_inferences > 0
        assert "avg_queue_delay_ms" in result.summary()

    def test_seeded_poisson_deterministic_across_jobs(self):
        """A Poisson scenario simulates byte-identically whether cells
        run in-process or on pool workers (arrival randomness derives
        from the spec alone, never from process state)."""
        cells = [
            SweepCell.from_scenario(policy, _poisson_spec())
            for policy in ("baseline", "camdn-full")
        ]
        serial = run_sweep(cells, max_workers=1, use_cache=False)
        pooled = run_sweep(cells, max_workers=2, use_cache=False)
        assert [r.metric_summary() for r in serial] == \
            [r.metric_summary() for r in pooled]
        assert [
            [rec.arrival_time for rec in r.metrics.records]
            for r in serial
        ] == [
            [rec.arrival_time for rec in r.metrics.records]
            for r in pooled
        ]

    def test_scenario_cell_cache_roundtrip(self, tmp_path, monkeypatch):
        """Scenario results (offered/cancelled/load-ratio fields
        included) survive the persistent cache byte-identically."""
        monkeypatch.setenv("REPRO_SWEEP_CACHE_DIR", str(tmp_path))
        cells = [SweepCell.from_scenario("camdn-full", _poisson_spec())]
        (cold,) = run_sweep(cells, max_workers=1)
        (warm,) = run_sweep(cells, max_workers=1)
        assert warm.metric_summary() == cold.metric_summary()
        warm_summary, cold_summary = warm.summary(), cold.summary()
        warm_summary.pop("wall_time_s"), cold_summary.pop("wall_time_s")
        assert warm_summary == cold_summary
        assert warm.offered_inferences == cold.offered_inferences
        assert warm.offered_load_ratio == cold.offered_load_ratio
