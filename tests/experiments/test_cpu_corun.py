"""Tests for the CPU co-run future-work study."""

import pytest

from repro.cache.sliced_cache import SlicedSharedCache
from repro.config import CacheConfig
from repro.experiments.cpu_corun import (
    DEFAULT_CPU_MIX,
    CPUProgram,
    format_corun,
    run_cpu_corun_study,
    run_cpu_program,
)
from repro.memory.dram import MainMemory

pytestmark = [pytest.mark.slow, pytest.mark.experiment]


class TestCPUProgram:
    def test_rejects_bad_locality(self):
        with pytest.raises(ValueError):
            CPUProgram("x", 1024, locality=1.5)

    def test_rejects_empty_working_set(self):
        with pytest.raises(ValueError):
            CPUProgram("x", 0, locality=0.5)


class TestRunCPUProgram:
    def _cache(self, npu_ways=12):
        return SlicedSharedCache(CacheConfig(npu_ways=npu_ways),
                                 MainMemory())

    def test_local_program_hits(self):
        cache = self._cache()
        program = CPUProgram("local", 64 * 1024, locality=0.95)
        hit_rate = run_cpu_program(cache, program, 5000)
        assert hit_rate > 0.7

    def test_streaming_program_misses(self):
        cache = self._cache()
        program = CPUProgram("stream", 64 * 1024 * 1024, locality=0.0)
        hit_rate = run_cpu_program(cache, program, 5000)
        assert hit_rate < 0.2

    def test_more_cpu_ways_help_midsize_sets(self):
        # A cyclically-rewalked 2 MiB set thrashes a 1 MiB CPU subspace
        # (15/16 NPU ways) but fits a 12 MiB one (4/16 NPU ways).  The
        # access count covers the working set several times so capacity,
        # not cold misses, dominates.
        tight = self._cache(npu_ways=15)
        roomy = self._cache(npu_ways=4)
        program = CPUProgram("mid", 2 * 1024 * 1024, locality=0.0)
        accesses = 3 * (2 * 1024 * 1024 // 64)
        assert run_cpu_program(roomy, program, accesses) > \
            run_cpu_program(tight, program, accesses) + 0.2

    def test_deterministic_by_seed(self):
        program = CPUProgram("mid", 256 * 1024, locality=0.5)
        a = run_cpu_program(self._cache(), program, 2000, seed=3)
        b = run_cpu_program(self._cache(), program, 2000, seed=3)
        assert a == b


class TestStudy:
    def test_rows_and_format(self):
        rows = run_cpu_corun_study(
            npu_way_options=(8, 14),
            accesses_per_program=3000,
            scale=0.1,
        )
        assert len(rows) == 2
        assert all(r.dnn_latency_ms > 0 for r in rows)
        text = format_corun(rows)
        assert "8/8" in text and "14/2" in text
        for program in DEFAULT_CPU_MIX:
            assert program.name in text

    def test_tradeoff_direction(self):
        rows = run_cpu_corun_study(
            npu_way_options=(8, 14),
            accesses_per_program=5000,
            scale=0.1,
        )
        few_npu, many_npu = rows
        # The cache-friendly CPU program should not get *better* when its
        # subspace shrinks from 8 to 2 ways.
        friendly = "kernel-build"
        assert many_npu.cpu_hit_rates[friendly] <= \
            few_npu.cpu_hit_rates[friendly] + 0.05
