"""Tests for the Figure 9 (QoS) and Table III (area) harnesses."""

import pytest

from repro.experiments.fig9_qos import (
    QOS_LEVELS,
    QOS_POLICIES,
    format_fig9,
    improvement_summary,
    run_fig9,
)
from repro.experiments.table3_area import (
    PAPER_TABLE3,
    format_table3,
    run_table3,
)
from repro.models.zoo import BENCHMARK_MODELS

pytestmark = [pytest.mark.slow, pytest.mark.experiment]


@pytest.fixture(scope="module")
def fig9_rows():
    # Scaled-down QoS run: 8 streams, short window.
    return run_fig9(scale=0.2, model_keys=BENCHMARK_MODELS)


class TestFig9:
    def test_grid_complete(self, fig9_rows):
        assert len(fig9_rows) == len(QOS_POLICIES) * len(QOS_LEVELS)

    def test_metrics_in_valid_ranges(self, fig9_rows):
        for row in fig9_rows:
            assert 0.0 <= row.sla <= 1.0
            assert row.stp > 0.0
            assert 0.0 <= row.fairness <= 1.0

    def test_camdn_improves_sla(self, fig9_rows):
        for level, _ in QOS_LEVELS:
            camdn = next(r for r in fig9_rows
                         if r.policy == "camdn-full"
                         and r.qos_level == level)
            baselines = [r for r in fig9_rows
                         if r.policy != "camdn-full"
                         and r.qos_level == level]
            assert camdn.sla >= max(r.sla for r in baselines) - 0.05

    def test_looser_targets_raise_sla(self, fig9_rows):
        for policy in QOS_POLICIES:
            tight = next(r for r in fig9_rows
                         if r.policy == policy and r.qos_level == "QoS-H")
            loose = next(r for r in fig9_rows
                         if r.policy == policy and r.qos_level == "QoS-L")
            assert loose.sla >= tight.sla - 0.05

    def test_improvement_summary_structure(self, fig9_rows):
        summary = improvement_summary(fig9_rows)
        assert set(summary) == {"sla", "stp", "fairness"}
        assert summary["stp"] > 0.8  # CaMDN should not lose throughput

    def test_format(self, fig9_rows):
        text = format_fig9(fig9_rows)
        assert "paper 5.9x" in text


class TestTable3:
    def test_breakdown_close_to_paper(self):
        table = run_table3()
        flat = {name: (area, pct)
                for rows in table.values() for name, area, pct in rows}
        for component, (paper_area, paper_pct) in PAPER_TABLE3.items():
            area, pct = flat[component]
            assert area == pytest.approx(paper_area, rel=0.15), component
            assert pct == pytest.approx(paper_pct, abs=0.5), component

    def test_format_mentions_paper(self):
        text = format_table3(run_table3())
        assert "paper" in text
        assert "NEC" in text
