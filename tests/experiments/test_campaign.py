"""Crash-safe campaign runner: journal semantics, resume, SIGKILL.

The campaign bar, stated as tests: a campaign killed at any instant —
hard SIGKILL included — resumes from its append-only fsync'd journal
with no duplicated and no lost cells, and the merged result grid is
byte-identical to an uninterrupted campaign.  The journal tolerates a
torn final line (a crash mid-append), refuses foreign files and
unknown schema versions, and a writer killed between writing a result
and publishing it never leaves a partial entry visible (atomic
temp + fsync + rename everywhere).
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from repro.errors import WorkloadError
from repro.experiments import sweep
from repro.experiments.sweep import (
    CAMPAIGN_SCHEMA_VERSION,
    CampaignJournal,
    SweepCell,
    last_sweep_failures,
    last_sweep_stats,
    resume_campaign,
    run_campaign,
    run_sweep,
)
from repro.sim.faults import get_fault_schedule
from repro.sim.scenario import get_scenario

pytestmark = pytest.mark.experiment

_REPO = Path(__file__).resolve().parents[2]

_KEYS = ("MB.", "EF.")


def _cells(policies=("baseline", "moca")):
    return [SweepCell(policy=p, model_keys=_KEYS, scale=0.1)
            for p in policies]


def _grid(results):
    """Byte-comparable form of a result grid (None for failed cells)."""
    return [
        json.dumps(r.metric_summary(), sort_keys=True)
        if r is not None else None
        for r in results
    ]


#: Original cell runner, captured at import for the fault-injecting
#: wrappers below.
_REAL_RUN_CELL = sweep._run_cell


class _FailOnce:
    """Raise on the first call (sentinel absent), then delegate."""

    def __init__(self, sentinel: str) -> None:
        self.sentinel = sentinel

    def __call__(self, item):
        if not os.path.exists(self.sentinel):
            with open(self.sentinel, "w"):
                pass
            raise RuntimeError("injected transient fault")
        return _REAL_RUN_CELL(item)


def _always_fail(item):
    raise RuntimeError("cell should have been served, not simulated")


class TestCampaignJournal:
    def test_create_refuses_clobber(self, tmp_path):
        path = tmp_path / "run.journal"
        CampaignJournal.create(path, _cells(), sweep.SoCConfig())
        with pytest.raises(WorkloadError, match="already exists"):
            CampaignJournal.create(path, _cells(), sweep.SoCConfig())

    def test_header_round_trips_cells(self, tmp_path):
        cells = [
            SweepCell(policy="baseline", model_keys=_KEYS, scale=0.1),
            SweepCell.from_scenario(
                "camdn-full", get_scenario("steady-quad"), scale=0.25,
                faults=get_fault_schedule("core-flap"),
            ),
        ]
        soc = sweep.SoCConfig()
        journal = CampaignJournal.create(tmp_path / "j", cells, soc)
        again, soc_again, done, failed, started = journal.read()
        assert again == cells
        assert soc_again == soc
        assert done == {} and failed == {} and started == set()

    def test_not_a_journal_rejected(self, tmp_path):
        path = tmp_path / "garbage"
        path.write_text("this is not jsonl\n")
        with pytest.raises(WorkloadError, match="not a campaign"):
            CampaignJournal(path).read()

    def test_missing_journal_rejected(self, tmp_path):
        with pytest.raises(WorkloadError, match="cannot read"):
            CampaignJournal(tmp_path / "absent").read()

    def test_unknown_schema_version_rejected(self, tmp_path):
        path = tmp_path / "j"
        journal = CampaignJournal.create(path, _cells(),
                                         sweep.SoCConfig())
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        records[0]["campaign_schema_version"] = \
            CAMPAIGN_SCHEMA_VERSION + 1
        path.write_text("\n".join(json.dumps(r) for r in records) + "\n")
        with pytest.raises(WorkloadError, match="schema"):
            journal.read()

    def test_torn_final_line_tolerated(self, tmp_path):
        """A crash mid-append leaves a torn tail; the intact prefix
        still reads, and the interrupted cell is simply in flight."""
        path = tmp_path / "j"
        journal = CampaignJournal.create(path, _cells(),
                                         sweep.SoCConfig())
        journal.record_start(0, 0)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "done", "ind')  # torn mid-record
        cells, _soc, done, failed, started = journal.read()
        assert len(cells) == 2
        assert started == {0}
        assert done == {} and failed == {}

    def test_done_without_result_file_reruns(self, tmp_path):
        """A done record whose result file is missing or corrupt does
        not count as completed (the cell re-runs on resume)."""
        path = tmp_path / "j"
        journal = CampaignJournal.create(path, _cells(),
                                         sweep.SoCConfig())
        journal.record_start(0, 0)
        journal._append({"kind": "done", "index": 0})
        _cells_, _soc, done, _failed, _started = journal.read()
        assert done == {}


class TestCampaignRun:
    def test_campaign_matches_sweep_byte_identically(self, tmp_path):
        cells = _cells(("baseline", "moca", "camdn-full"))
        reference = run_sweep(cells, max_workers=1, use_cache=False)
        results = run_campaign(cells, tmp_path / "run.journal",
                               max_workers=1, use_cache=False)
        assert _grid(results) == _grid(reference)
        assert last_sweep_failures() == []
        stats = last_sweep_stats()
        assert stats["failed_cells"] == 0.0
        assert stats["recovered_cells"] == 0.0
        # Every cell is journaled done with a committed result file.
        journal = CampaignJournal(tmp_path / "run.journal")
        _c, _s, done, _f, started = journal.read()
        assert sorted(done) == [0, 1, 2]
        assert started == {0, 1, 2}
        assert sorted(journal.result_dir.glob("*.json")) == [
            journal.result_dir / f"{i}.json" for i in range(3)
        ]

    def test_resume_serves_completed_cells_without_rerunning(
        self, tmp_path, monkeypatch
    ):
        cells = _cells()
        first = run_campaign(cells, tmp_path / "j", max_workers=1,
                             use_cache=False)
        # Resume must not simulate anything: every cell is on record.
        monkeypatch.setattr(sweep, "_run_cell", _always_fail)
        again = resume_campaign(tmp_path / "j", max_workers=1,
                                use_cache=False)
        assert _grid(again) == _grid(first)
        assert last_sweep_stats()["recovered_cells"] == 2.0
        assert last_sweep_failures() == []

    def test_transient_failure_retries_and_succeeds(self, tmp_path,
                                                    monkeypatch):
        sentinel = tmp_path / "raised-once"
        monkeypatch.setattr(sweep, "_run_cell",
                            _FailOnce(str(sentinel)))
        (result,) = run_campaign(_cells(("baseline",)), tmp_path / "j",
                                 max_workers=1, use_cache=False)
        assert result is not None
        assert last_sweep_failures() == []
        assert sentinel.exists()

    def test_failed_cell_recorded_then_resumed(self, tmp_path,
                                               monkeypatch):
        """A cell that exhausts its retries is journaled failed (and
        exits the grid as None); a later resume re-runs just that cell
        and completes the grid byte-identically to a clean run."""
        cells = _cells(("baseline", "moca"))
        reference = run_sweep(cells, max_workers=1, use_cache=False)
        monkeypatch.setattr(sweep, "_run_cell", _always_fail)
        results = run_campaign(cells, tmp_path / "j", max_workers=1,
                               use_cache=False, retries=0)
        assert results == [None, None]
        assert last_sweep_stats()["failed_cells"] == 2.0
        _c, _s, _done, failed, _started = \
            CampaignJournal(tmp_path / "j").read()
        assert sorted(failed) == [0, 1]
        monkeypatch.setattr(sweep, "_run_cell", _REAL_RUN_CELL)
        resumed = resume_campaign(tmp_path / "j", max_workers=1,
                                  use_cache=False)
        assert _grid(resumed) == _grid(reference)
        assert last_sweep_failures() == []

    def test_deadline_kills_hung_cell_then_resume_completes(
        self, tmp_path
    ):
        """``deadline_s=0`` makes every attempt exceed its wall budget:
        the watchdog kills the cell, retries are exhausted, the failure
        is journaled — and a resume without the deadline completes the
        grid byte-identically."""
        cells = _cells(("baseline",))
        reference = run_sweep(cells, max_workers=1, use_cache=False)
        results = run_campaign(cells, tmp_path / "j", max_workers=1,
                               use_cache=False, deadline_s=0.0)
        assert results == [None]
        (failure,) = last_sweep_failures()
        assert "wall-clock budget" in str(failure["error"])
        resumed = resume_campaign(tmp_path / "j", max_workers=1,
                                  use_cache=False)
        assert _grid(resumed) == _grid(reference)

    def test_cache_hits_are_journaled_as_done(self, tmp_path,
                                              monkeypatch):
        """A cell served from the persistent sweep cache is journaled
        start+done like a computed one, so the journal alone always
        describes the full grid."""
        monkeypatch.setenv("REPRO_SWEEP_CACHE_DIR",
                           str(tmp_path / "cache"))
        cells = _cells(("baseline",))
        reference = run_sweep(cells, max_workers=1)  # populates cache
        monkeypatch.setattr(sweep, "_run_cell", _always_fail)
        results = run_campaign(cells, tmp_path / "j", max_workers=1)
        assert _grid(results) == _grid(reference)
        _c, _s, done, _f, _started = \
            CampaignJournal(tmp_path / "j").read()
        assert sorted(done) == [0]


class TestAtomicWriterKill:
    """A writer SIGKILLed mid-write never publishes a partial entry."""

    def _run_child(self, target: Path, kill: bool):
        script = textwrap.dedent("""
            import os, signal, sys
            from pathlib import Path
            from repro.core.serialize import atomic_write_text

            target = Path(sys.argv[1])
            if sys.argv[2] == "kill":
                def kill_before_publish(src, dst):
                    os.kill(os.getpid(), signal.SIGKILL)
                os.replace = kill_before_publish
            atomic_write_text(target, '{"fresh": true}' + " " * 65536)
        """)
        env = dict(os.environ)
        env["PYTHONPATH"] = str(_REPO / "src")
        return subprocess.run(
            [sys.executable, "-c", script, str(target),
             "kill" if kill else "ok"],
            env=env, capture_output=True, timeout=120,
        )

    def test_killed_writer_leaves_old_entry_intact(self, tmp_path):
        target = tmp_path / "entry.json"
        target.write_text('{"old": true}')
        proc = self._run_child(target, kill=True)
        assert proc.returncode == -signal.SIGKILL
        # The published entry is exactly the old bytes; the torn write
        # is confined to a temp file no reader globs (*.json).
        assert target.read_text() == '{"old": true}'
        assert list(tmp_path.glob("*.json")) == [target]

    def test_killed_writer_leaves_no_entry_when_none_existed(
        self, tmp_path
    ):
        target = tmp_path / "entry.json"
        proc = self._run_child(target, kill=True)
        assert proc.returncode == -signal.SIGKILL
        assert list(tmp_path.glob("*.json")) == []

    def test_unkilled_writer_publishes(self, tmp_path):
        target = tmp_path / "entry.json"
        proc = self._run_child(target, kill=False)
        assert proc.returncode == 0
        assert json.loads(target.read_text()) == {"fresh": True}


@pytest.mark.slow
class TestCampaignSigkillResume:
    """End to end: SIGKILL a live campaign subprocess mid-grid, resume
    from the journal, and get the uninterrupted campaign's grid back
    byte-for-byte with no duplicated or lost cells."""

    CELL_ARGS = [
        "--campaign-scenarios", "steady-quad,poisson-eight",
        "--campaign-policies", "baseline,moca,camdn-full",
        "--scale", "0.5", "--jobs", "1", "--no-cache",
    ]
    NUM_CELLS = 6

    def _env(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(_REPO / "src")
        env["REPRO_SWEEP_CACHE_DIR"] = ""  # cells must really simulate
        return env

    def _runner(self, *args):
        return [sys.executable, "-m", "repro.experiments.runner",
                *args]

    def _cell_lines(self, stdout: str):
        return [line for line in stdout.splitlines()
                if line.startswith('{"cell"')]

    def _done_count(self, journal: Path) -> int:
        if not journal.exists():
            return 0
        return sum(
            1 for line in journal.read_text(errors="replace")
            .splitlines() if '"kind": "done"' in line
        )

    def test_sigkilled_campaign_resumes_byte_identically(
        self, tmp_path
    ):
        env = self._env()
        # Uninterrupted reference campaign.
        ref = subprocess.run(
            self._runner("--campaign", str(tmp_path / "ref.journal"),
                         *self.CELL_ARGS),
            env=env, capture_output=True, text=True, timeout=600,
        )
        assert ref.returncode == 0, ref.stderr
        ref_lines = self._cell_lines(ref.stdout)
        assert len(ref_lines) == self.NUM_CELLS

        # Live campaign, SIGKILLed once at least one cell committed.
        journal = tmp_path / "crash.journal"
        proc = subprocess.Popen(
            self._runner("--campaign", str(journal), *self.CELL_ARGS),
            env=env, stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 300
            while self._done_count(journal) < 1 \
                    and proc.poll() is None:
                assert time.monotonic() < deadline, \
                    "campaign never committed a cell"
                time.sleep(0.02)
            proc.send_signal(signal.SIGKILL)
        finally:
            proc.wait(timeout=60)

        interrupted = self._done_count(journal)
        assert interrupted >= 1

        # Resume from the journal: exit 0, full grid, byte-identical.
        res = subprocess.run(
            self._runner("--resume", str(journal), "--jobs", "1",
                         "--no-cache"),
            env=env, capture_output=True, text=True, timeout=600,
        )
        assert res.returncode == 0, res.stderr
        assert self._cell_lines(res.stdout) == ref_lines

        # No lost or duplicated cells: every index committed exactly
        # once in the merged journal state.
        _c, _s, done, failed, _started = CampaignJournal(journal).read()
        assert sorted(done) == list(range(self.NUM_CELLS))
        assert failed == {}


class TestRunnerExitCodes:
    def _run(self, tmp_path, *extra):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(_REPO / "src")
        env["REPRO_SWEEP_CACHE_DIR"] = ""
        return subprocess.run(
            [sys.executable, "-m", "repro.experiments.runner",
             "--campaign", str(tmp_path / "run.journal"),
             "--campaign-scenarios", "steady-quad",
             "--campaign-policies", "baseline,no-such-policy",
             "--scale", "0.1", "--jobs", "1", "--no-cache", *extra],
            env=env, capture_output=True, text=True, timeout=600,
        )

    def test_failed_cell_exits_nonzero(self, tmp_path):
        proc = self._run(tmp_path)
        assert proc.returncode == 1
        assert "no-such-policy" in proc.stdout

    def test_keep_going_exits_zero(self, tmp_path):
        proc = self._run(tmp_path, "--keep-going")
        assert proc.returncode == 0
        assert "no-such-policy" in proc.stdout
