"""Tests for the Figure 2 and Figure 3 experiment harnesses."""

import pytest

from repro.experiments.fig2_motivation import (
    degradation_summary,
    format_fig2,
    run_fig2,
)
from repro.experiments.fig3_reuse import format_fig3, run_fig3
from repro.models.reuse import REUSE_COUNT_BUCKETS

pytestmark = [pytest.mark.slow, pytest.mark.experiment]


@pytest.fixture(scope="module")
def fig2_rows():
    # Tiny sweep: 1 vs 8 tenants on two cache sizes.
    return run_fig2(dnn_counts=(1, 8), cache_sizes_mb=(4, 16), scale=0.15)


class TestFig2:
    def test_grid_complete(self, fig2_rows):
        assert len(fig2_rows) == 4

    def test_hit_rate_drops_with_tenants(self, fig2_rows):
        for cache_mb in (4, 16):
            solo = next(r for r in fig2_rows
                        if r.cache_mb == cache_mb and r.num_dnns == 1)
            shared = next(r for r in fig2_rows
                          if r.cache_mb == cache_mb and r.num_dnns == 8)
            assert shared.hit_rate < solo.hit_rate

    def test_memory_access_grows_with_tenants(self, fig2_rows):
        for cache_mb in (4, 16):
            solo = next(r for r in fig2_rows
                        if r.cache_mb == cache_mb and r.num_dnns == 1)
            shared = next(r for r in fig2_rows
                          if r.cache_mb == cache_mb and r.num_dnns == 8)
            assert shared.dram_mb_per_model > solo.dram_mb_per_model

    def test_bigger_cache_hits_more(self, fig2_rows):
        small = next(r for r in fig2_rows
                     if r.cache_mb == 4 and r.num_dnns == 1)
        big = next(r for r in fig2_rows
                   if r.cache_mb == 16 and r.num_dnns == 1)
        assert big.hit_rate > small.hit_rate

    def test_degradation_summary(self, fig2_rows):
        summary = degradation_summary(fig2_rows)
        lo, hi = summary["memory_access_growth_range"]
        assert lo > 0

    def test_format_renders_all_panels(self, fig2_rows):
        text = format_fig2(fig2_rows)
        assert "hit_rate" in text
        assert "dram_mb_per_model" in text
        assert "avg_latency_ms" in text


class TestFig3:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_fig3()

    def test_all_models_plus_average(self, rows):
        assert len(rows) == 9
        assert rows[-1].model == "Avg."

    def test_fractions_normalized(self, rows):
        for row in rows:
            assert sum(row.count_fractions.values()) == pytest.approx(1.0)
            assert sum(row.distance_fractions.values()) == \
                pytest.approx(1.0)

    def test_average_no_reuse_in_paper_regime(self, rows):
        avg = rows[-1]
        # Paper: 68.0 % with count 1.
        assert 0.4 <= avg.count_fractions["1"] <= 0.9

    def test_average_long_distances_in_paper_regime(self, rows):
        avg = rows[-1]
        above_1mb = 1.0 - avg.distance_fractions["(0MB,1MB]"]
        assert above_1mb >= 0.35  # paper: 61.8 %

    def test_format(self, rows):
        text = format_fig3(rows)
        for label, _, _ in REUSE_COUNT_BUCKETS:
            assert label in text
