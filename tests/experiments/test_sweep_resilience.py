"""Sweep fault tolerance and corrupt-cache recovery.

A sweep must survive its workers: a cell whose simulation raises — or
whose pool worker dies outright — is retried once serially in the
parent, and a deterministic failure is *reported* (``None`` placeholder
plus :func:`last_sweep_failures`) instead of aborting the grid.  The
persistent result cache must survive its disk: garbage bytes in an
entry are detected, logged, invalidated and rebuilt transparently.
"""

import json
import logging
import os

import pytest

from repro.experiments import sweep
from repro.experiments.sweep import (
    SweepCell,
    last_sweep_failures,
    last_sweep_stats,
    run_sweep,
)

pytestmark = pytest.mark.experiment

_KEYS = ("MB.", "EF.")


def _cell(policy="baseline"):
    return SweepCell(policy=policy, model_keys=_KEYS, scale=0.1)


#: Original cell runner, captured at import so the fault-injecting
#: wrappers below can delegate to it (they are module-level classes so
#: they pickle into pool workers).
_REAL_RUN_CELL = sweep._run_cell


class _FailOnce:
    """Raise on the first call (sentinel file absent), then delegate."""

    def __init__(self, sentinel: str) -> None:
        self.sentinel = sentinel

    def __call__(self, item):
        if not os.path.exists(self.sentinel):
            with open(self.sentinel, "w"):
                pass
            raise RuntimeError("injected transient fault")
        return _REAL_RUN_CELL(item)


class _DieOnceInWorker:
    """Kill the process on the first call, then delegate.

    ``os._exit`` models a worker death (OOM kill, segfault): the pool
    breaks with ``BrokenProcessPool`` rather than a clean exception.
    """

    def __init__(self, sentinel: str) -> None:
        self.sentinel = sentinel

    def __call__(self, item):
        if not os.path.exists(self.sentinel):
            with open(self.sentinel, "w"):
                pass
            os._exit(1)
        return _REAL_RUN_CELL(item)


class TestSweepFaultTolerance:
    def test_transient_failure_recovers_via_serial_retry(
        self, tmp_path, monkeypatch
    ):
        sentinel = tmp_path / "raised-once"
        monkeypatch.setattr(sweep, "_run_cell",
                            _FailOnce(str(sentinel)))
        (result,) = run_sweep([_cell()], max_workers=1, use_cache=False)
        assert result is not None
        assert result.metrics.num_inferences > 0
        assert last_sweep_failures() == []
        assert last_sweep_stats()["failed_cells"] == 0.0
        assert sentinel.exists()

    def test_deterministic_failure_reported_not_raised(self):
        cells = [_cell(), _cell("no-such-policy"), _cell("camdn-full")]
        results = run_sweep(cells, max_workers=1, use_cache=False)
        assert results[0] is not None
        assert results[1] is None
        assert results[2] is not None
        (failure,) = last_sweep_failures()
        assert failure["index"] == 1
        assert failure["policy"] == "no-such-policy"
        assert "no-such-policy" in str(failure["error"])
        stats = last_sweep_stats()
        assert stats["failed_cells"] == 1.0
        assert stats["cells"] == 2.0

    def test_dead_pool_worker_recovers_via_serial_retry(
        self, tmp_path, monkeypatch
    ):
        """A worker death breaks the pool mid-sweep; every affected cell
        recovers through the parent's serial retry."""
        sentinel = tmp_path / "died-once"
        monkeypatch.setattr(sweep, "_run_cell",
                            _DieOnceInWorker(str(sentinel)))
        cells = [_cell(), _cell("moca")]
        results = run_sweep(cells, max_workers=2, use_cache=False)
        assert all(r is not None for r in results)
        assert last_sweep_failures() == []
        assert last_sweep_stats()["failed_cells"] == 0.0

    def test_successful_sweep_has_no_none_entries(self):
        results = run_sweep([_cell(), _cell("moca")], max_workers=1,
                            use_cache=False)
        assert all(r is not None for r in results)
        assert last_sweep_failures() == []


class TestCorruptSweepCache:
    @pytest.fixture
    def sweepcache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_CACHE_DIR", str(tmp_path))
        return tmp_path

    def test_corrupt_entry_resimulates_and_rebuilds(self, sweepcache,
                                                    caplog):
        (first,) = run_sweep([_cell()], max_workers=1)
        (entry,) = sweepcache.glob("*.json")
        entry.write_text('{"truncated": ')
        with caplog.at_level(logging.WARNING,
                             logger="repro.experiments.sweep"):
            (again,) = run_sweep([_cell()], max_workers=1)
        assert any("corrupt" in rec.message for rec in caplog.records)
        assert json.dumps(again.metric_summary(), sort_keys=True) == \
            json.dumps(first.metric_summary(), sort_keys=True)
        # The entry was rebuilt into valid JSON and serves again.
        json.loads(entry.read_text())
        (served,) = run_sweep([_cell()], max_workers=1)
        assert last_sweep_stats()["cached_cells"] == 1.0
        assert json.dumps(served.metric_summary(), sort_keys=True) == \
            json.dumps(first.metric_summary(), sort_keys=True)

    def test_garbage_bytes_entry_recovers(self, sweepcache):
        (first,) = run_sweep([_cell()], max_workers=1)
        (entry,) = sweepcache.glob("*.json")
        entry.write_bytes(b"\x00\xff garbage not json \x00")
        (again,) = run_sweep([_cell()], max_workers=1)
        assert last_sweep_stats()["cached_cells"] == 0.0
        assert json.dumps(again.metric_summary(), sort_keys=True) == \
            json.dumps(first.metric_summary(), sort_keys=True)

    def test_valid_json_wrong_shape_recovers(self, sweepcache):
        """An entry that parses as JSON but is not a serialized result
        (schema drift, a stray file) is treated as corrupt too."""
        (first,) = run_sweep([_cell()], max_workers=1)
        (entry,) = sweepcache.glob("*.json")
        entry.write_text('{"not": "a result"}')
        (again,) = run_sweep([_cell()], max_workers=1)
        assert again is not None
        assert json.dumps(again.metric_summary(), sort_keys=True) == \
            json.dumps(first.metric_summary(), sort_keys=True)
