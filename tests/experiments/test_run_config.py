"""RunConfig: the consolidated run-control surface of run_scenario.

PR 10 collapsed run_scenario's dozen run-control keywords into one
frozen :class:`RunConfig`.  The contract, stated as tests: the new
``config=`` form is byte-identical to the legacy keyword form, legacy
keywords still work but warn :class:`DeprecationWarning`, invalid
combinations fail at construction (not mid-simulation), and mixing
both forms is an error.
"""

import dataclasses
import json

import pytest

from repro.errors import WorkloadError
from repro.experiments.common import run_scenario
from repro.runconfig import RUN_CONFIG_KEYS, RunConfig

SCENARIO = "steady-quad"


def summary_bytes(result) -> str:
    return json.dumps(result.metric_summary(), sort_keys=True)


class TestConstruction:
    def test_frozen(self):
        config = RunConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.qos_mode = True

    def test_replace(self):
        config = RunConfig().replace(qos_mode=True)
        assert config.qos_mode is True
        assert RunConfig().qos_mode is False

    def test_keys_match_fields(self):
        """The legacy-shim key set and the dataclass fields must never
        drift apart."""
        fields = {f.name for f in dataclasses.fields(RunConfig)}
        assert fields == set(RUN_CONFIG_KEYS)

    def test_checkpoint_cadence_requires_dir(self):
        """The satellite fix: a checkpoint cadence with nowhere to
        write is a WorkloadError at construction, not a silent no-op
        or a mid-run ValueError."""
        with pytest.raises(WorkloadError, match="checkpoint_dir"):
            RunConfig(checkpoint_every_s=1.0)

    def test_checkpoint_cadence_not_negative(self):
        # 0.0 is the legacy "checkpoint at every batch boundary" form
        # and stays valid; only negative cadences are rejected.
        with pytest.raises(WorkloadError, match="negative"):
            RunConfig(checkpoint_every_s=-1.0, checkpoint_dir="/tmp/x")
        RunConfig(checkpoint_every_s=0.0, checkpoint_dir="/tmp/x")

    def test_max_events_positive(self):
        with pytest.raises(WorkloadError, match="max_events"):
            RunConfig(max_events=0)

    def test_max_wall_nonnegative(self):
        with pytest.raises(WorkloadError, match="max_wall_s"):
            RunConfig(max_wall_s=-1.0)

    def test_replace_revalidates(self):
        with pytest.raises(WorkloadError, match="checkpoint_dir"):
            RunConfig().replace(checkpoint_every_s=1.0)


class TestShim:
    def test_config_form_matches_legacy_byte_identically(self):
        reference = run_scenario(SCENARIO, policy="camdn-full",
                                 config=RunConfig(qos_mode=True))
        with pytest.warns(DeprecationWarning, match="qos_mode"):
            legacy = run_scenario(SCENARIO, policy="camdn-full",
                                  qos_mode=True)
        assert summary_bytes(legacy) == summary_bytes(reference)

    def test_legacy_keywords_warn(self):
        with pytest.warns(DeprecationWarning,
                          match="config=RunConfig"):
            run_scenario(SCENARIO, policy="baseline", max_wall_s=600.0)

    def test_config_form_does_not_warn(self, recwarn):
        run_scenario(SCENARIO, policy="baseline",
                     config=RunConfig(max_wall_s=600.0))
        assert not [w for w in recwarn.list
                    if issubclass(w.category, DeprecationWarning)]

    def test_mixing_forms_rejected(self):
        with pytest.raises(ValueError, match="not both"), \
                pytest.warns(DeprecationWarning):
            run_scenario(SCENARIO, policy="baseline",
                         config=RunConfig(), max_events=50)

    def test_legacy_checkpoint_validation_still_fires(self):
        """The lowered legacy keywords go through RunConfig validation
        too."""
        with pytest.raises(WorkloadError, match="checkpoint_dir"), \
                pytest.warns(DeprecationWarning):
            run_scenario(SCENARIO, policy="baseline",
                         checkpoint_every_s=1.0)

    def test_config_qos_mode_reaches_the_scheduler(self):
        """``config.qos_mode`` selects the QoS integration exactly like
        the legacy keyword did (the scheduler reports its own row
        name)."""
        result = run_scenario(SCENARIO, policy="camdn-full",
                              config=RunConfig(qos_mode=True))
        assert result.scheduler_name == "camdn-qos"

    def test_qos_mode_is_redundant_not_fatal_on_camdn_qos(self):
        """``qos_mode=True`` alongside ``policy="camdn-qos"`` (which
        already pins the flag in the factory) must not blow up with a
        duplicate-keyword TypeError."""
        result = run_scenario(SCENARIO, policy="camdn-qos",
                              config=RunConfig(qos_mode=True))
        assert result.scheduler_name == "camdn-qos"


class TestConfigControls:
    def test_max_events_arms_the_watchdog(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError, match="event cap"):
            run_scenario(SCENARIO, policy="baseline",
                         config=RunConfig(max_events=100))

    def test_snapshot_at_events(self):
        result = run_scenario(
            SCENARIO, policy="baseline",
            config=RunConfig(snapshot_at_events=50),
        )
        assert result.last_snapshot is not None
        assert result.last_snapshot.events_processed >= 50

    def test_checkpoint_dir_writes_checkpoints(self, tmp_path):
        run_scenario(
            SCENARIO, policy="baseline",
            config=RunConfig(checkpoint_every_s=0.0001,
                             checkpoint_dir=str(tmp_path)),
        )
        assert (tmp_path / "checkpoint.json").exists()
