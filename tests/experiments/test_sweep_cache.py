"""Tests for the persistent sweep-result cache."""

import json

import pytest

from repro.config import MiB, SoCConfig
from repro.experiments.sweep import (
    SweepCell,
    cell_cache_key,
    clear_sweep_cache,
    default_cache_dir,
    last_sweep_stats,
    run_sweep,
)

pytestmark = pytest.mark.experiment

_KEYS = ("MB.", "EF.")
_CELLS = [SweepCell(policy="baseline", model_keys=_KEYS, scale=0.1)]


class TestCacheKey:
    def test_key_is_stable(self):
        soc = SoCConfig()
        cell = SweepCell(policy="moca", model_keys=_KEYS, scale=0.25)
        assert cell_cache_key(cell, soc) == cell_cache_key(cell, soc)

    def test_key_tracks_cell_fields(self):
        soc = SoCConfig()
        a = SweepCell(policy="moca", model_keys=_KEYS, scale=0.25)
        b = SweepCell(policy="moca", model_keys=_KEYS, scale=0.5)
        c = SweepCell(policy="aurora", model_keys=_KEYS, scale=0.25)
        d = SweepCell(policy="moca", model_keys=_KEYS, scale=0.25,
                      cache_bytes=4 * MiB)
        keys = {cell_cache_key(x, soc) for x in (a, b, c, d)}
        assert len(keys) == 4

    def test_key_tracks_soc(self):
        cell = SweepCell(policy="baseline", model_keys=_KEYS)
        assert cell_cache_key(cell, SoCConfig()) != \
            cell_cache_key(cell, SoCConfig().with_cache_bytes(8 * MiB))

    def test_key_tracks_arrival_process(self):
        """Two scenario cells differing only in the arrival process must
        hash to different cache entries (regression for the scenario-era
        schema bump: arrival dynamics are part of the cell identity)."""
        from repro.sim.scenario import (
            ArrivalProcess,
            ScenarioSpec,
            StreamSpec,
        )

        soc = SoCConfig()

        def spec(arrival):
            return ScenarioSpec(
                streams=tuple(
                    StreamSpec(model=key, arrival=arrival)
                    for key in _KEYS
                ),
                duration_s=0.1,
            )

        closed = SweepCell.from_scenario(
            "camdn-full", spec(ArrivalProcess.closed_loop())
        )
        poisson = SweepCell.from_scenario(
            "camdn-full", spec(ArrivalProcess.poisson(rate_hz=100.0))
        )
        reseeded = SweepCell.from_scenario(
            "camdn-full",
            spec(ArrivalProcess.poisson(rate_hz=100.0, seed=7)),
        )
        keys = {cell_cache_key(c, soc)
                for c in (closed, poisson, reseeded)}
        assert len(keys) == 3

    def test_replay_cell_and_source_cell_hash_differently(self):
        """A replay scenario captured from a run and the scenario that
        produced it are distinct cache identities: the replay pins exact
        arrival instants while the source re-derives them, so sharing a
        cache slot would silently serve one for the other."""
        from repro.experiments.common import run_scenario
        from repro.sim.scenario import (
            ArrivalProcess,
            ScenarioSpec,
            StreamSpec,
        )

        soc = SoCConfig()
        source_spec = ScenarioSpec(
            streams=(
                StreamSpec(model="MB.",
                           arrival=ArrivalProcess.poisson(rate_hz=120.0)),
            ),
            duration_s=0.05,
        )
        result = run_scenario(source_spec, soc, "baseline",
                              capture_trace=True)
        replay_spec = result.event_trace.replay_scenario()
        source = SweepCell.from_scenario("baseline", source_spec)
        replay = SweepCell.from_scenario("baseline", replay_spec)
        assert cell_cache_key(source, soc) != cell_cache_key(replay, soc)
        # ... yet the replay reproduces the source run byte-identically.
        replayed = run_scenario(replay_spec, soc, "baseline")
        assert json.dumps(replayed.metric_summary(), sort_keys=True) == \
            json.dumps(result.metric_summary(), sort_keys=True)

    def test_closed_loop_cell_and_scenario_cell_hash_differently(self):
        """A legacy closed-loop cell and the equivalent explicit-scenario
        cell are distinct cache identities (the cell fields differ even
        though the resolved scenarios coincide)."""
        soc = SoCConfig()
        legacy = SweepCell(policy="baseline", model_keys=_KEYS, scale=0.1)
        explicit = SweepCell.from_scenario(
            "baseline", legacy.resolve_scenario()
        )
        assert legacy.resolve_scenario() == explicit.resolve_scenario()
        assert cell_cache_key(legacy, soc) != cell_cache_key(explicit, soc)


class TestPersistentCache:
    def test_warm_rerun_hits_cache_and_is_byte_identical(
            self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_CACHE_DIR", str(tmp_path))
        cold = run_sweep(_CELLS, max_workers=1)
        assert last_sweep_stats()["cached_cells"] == 0
        warm = run_sweep(_CELLS, max_workers=1)
        stats = last_sweep_stats()
        assert stats["cached_cells"] == 1
        assert json.dumps(cold[0].metric_summary(), sort_keys=True) == \
            json.dumps(warm[0].metric_summary(), sort_keys=True)
        # The full metrics survive the round trip, not just the summary.
        assert [r.latency_s for r in warm[0].metrics.records] == \
            [r.latency_s for r in cold[0].metrics.records]
        assert warm[0].scheduler_stats == cold[0].scheduler_stats

    def test_no_cache_flag_bypasses_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_CACHE_DIR", str(tmp_path))
        run_sweep(_CELLS, max_workers=1, use_cache=False)
        assert list(tmp_path.glob("*.json")) == []

    def test_empty_env_disables_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_CACHE_DIR", "")
        assert default_cache_dir() is None
        results = run_sweep(_CELLS, max_workers=1)
        assert results[0].metrics.num_inferences > 0

    def test_corrupt_entry_recomputes(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_CACHE_DIR", str(tmp_path))
        first = run_sweep(_CELLS, max_workers=1)
        (entry,) = tmp_path.glob("*.json")
        entry.write_text("{not json")
        again = run_sweep(_CELLS, max_workers=1)
        assert last_sweep_stats()["cached_cells"] == 0
        assert again[0].metric_summary() == first[0].metric_summary()

    def test_clear_sweep_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_CACHE_DIR", str(tmp_path))
        run_sweep(_CELLS, max_workers=1)
        assert clear_sweep_cache() == 1
        assert list(tmp_path.glob("*.json")) == []
