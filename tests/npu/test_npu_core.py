"""Tests for NPU cores and the DMA / NEC interface plumbing."""

import pytest

from repro.cache.sliced_cache import SlicedSharedCache
from repro.config import SoCConfig
from repro.core.mct import CacheMapEntry
from repro.core.nec import NECOp
from repro.core.region import RegionManager
from repro.errors import CacheAddressError, SimulationError
from repro.memory.dram import MainMemory
from repro.npu.dma import DMAOp, DMARequest
from repro.npu.npu_core import NPUCore


@pytest.fixture
def soc():
    return SoCConfig()


@pytest.fixture
def core(soc):
    return NPUCore(core_id=0, soc=soc)


class TestCoreState:
    def test_assign_release(self, core):
        assert not core.busy
        core.assign("task0")
        assert core.busy
        assert core.task_id == "task0"
        core.release()
        assert not core.busy

    def test_double_assign_conflict(self, core):
        core.assign("a")
        with pytest.raises(SimulationError):
            core.assign("b")

    def test_reassign_same_task_ok(self, core):
        core.assign("a")
        core.assign("a")

    def test_release_clears_scratchpad(self, core):
        core.scratchpad.allocate("tile", 64)
        core.release()
        assert core.scratchpad.used_bytes == 0


class TestDMA:
    def test_pinned_entry_generates_cached_reads(self, core):
        entry = CacheMapEntry("weight", vcaddr=0, size=256, reuse=True,
                              bypass=False)
        requests = list(
            core.dma.requests_for_entry(entry, mem_base_line=0, load=True)
        )
        assert len(requests) == 4  # 256 B / 64 B lines
        assert all(r.op is DMAOp.READ_LINE for r in requests)

    def test_bypass_entry_uses_bypass_op(self, core):
        entry = CacheMapEntry("input", vcaddr=0, size=0, reuse=False,
                              bypass=True)
        requests = list(
            core.dma.requests_for_entry(entry, mem_base_line=10, load=True)
        )
        assert all(r.op is DMAOp.BYPASS_READ for r in requests)

    def test_multicast_selected_for_groups(self, core):
        entry = CacheMapEntry("weight", vcaddr=0, size=64, reuse=True,
                              bypass=False)
        requests = list(
            core.dma.requests_for_entry(entry, 0, load=True, group_size=4)
        )
        assert all(r.op is DMAOp.MULTICAST_READ for r in requests)

    def test_store_uses_write_line(self, core):
        entry = CacheMapEntry("output", vcaddr=0, size=64, reuse=True,
                              bypass=False)
        requests = list(
            core.dma.requests_for_entry(entry, 0, load=False)
        )
        assert all(r.op is DMAOp.WRITE_LINE for r in requests)

    def test_addressless_request_rejected(self, core):
        with pytest.raises(CacheAddressError):
            core.dma.to_nec_request(DMARequest(op=DMAOp.READ_LINE))


class TestEndToEndDataPath:
    def test_region_backed_dma_roundtrip(self, soc):
        """NPU -> CPT -> NEC -> data array -> NEC -> NPU roundtrip."""
        memory = MainMemory()
        cache = SlicedSharedCache(soc.cache, memory)
        fabric = cache.install_necs()
        regions = RegionManager(soc.cache)
        region = regions.create_region("model0", 2)

        core = NPUCore(0, soc)
        core.assign("model0")
        core.adopt_region_cpt(region.cpt)

        entry = CacheMapEntry("weight", vcaddr=0, size=512, reuse=True,
                              bypass=False)
        writes = [
            DMARequest(op=NECOp.WRITE_LINE, vcaddr=i * 64, data=i)
            for i in range(8)
        ]
        core.dma.issue(writes, fabric)
        reads = list(core.dma.requests_for_entry(entry, 0, load=True))
        values = core.dma.issue(reads, fabric)
        assert [v[0] for v in values] == list(range(8))
