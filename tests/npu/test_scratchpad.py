"""Tests for the scratchpad segment allocator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError, MappingError
from repro.npu.scratchpad import Scratchpad


class TestAllocate:
    def test_basic_allocation(self):
        spad = Scratchpad(1024)
        seg = spad.allocate("w", 256)
        assert seg.offset == 0
        assert spad.used_bytes == 256

    def test_first_fit_packs(self):
        spad = Scratchpad(1024)
        spad.allocate("a", 100)
        b = spad.allocate("b", 100)
        assert b.offset == 100

    def test_free_opens_gap(self):
        spad = Scratchpad(1024)
        spad.allocate("a", 100)
        spad.allocate("b", 100)
        spad.free("a")
        c = spad.allocate("c", 50)
        assert c.offset == 0  # reuses the gap

    def test_gap_too_small_skipped(self):
        spad = Scratchpad(1024)
        spad.allocate("a", 100)
        spad.allocate("b", 100)
        spad.free("a")
        c = spad.allocate("c", 200)
        assert c.offset == 200  # gap (100) skipped

    def test_overflow_raises(self):
        spad = Scratchpad(256)
        with pytest.raises(MappingError):
            spad.allocate("big", 512)

    def test_duplicate_name_raises(self):
        spad = Scratchpad(1024)
        spad.allocate("a", 10)
        with pytest.raises(MappingError):
            spad.allocate("a", 10)

    def test_zero_size_raises(self):
        with pytest.raises(MappingError):
            Scratchpad(1024).allocate("a", 0)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ConfigError):
            Scratchpad(0)


class TestFreeAndReset:
    def test_free_unknown_raises(self):
        with pytest.raises(MappingError):
            Scratchpad(64).free("ghost")

    def test_reset_clears_all(self):
        spad = Scratchpad(1024)
        spad.allocate("a", 100)
        spad.allocate("b", 100)
        spad.reset()
        assert spad.used_bytes == 0

    def test_get(self):
        spad = Scratchpad(64)
        spad.allocate("a", 8)
        assert spad.get("a").size == 8
        assert spad.get("zz") is None

    def test_fits(self):
        spad = Scratchpad(100)
        assert spad.fits(40, 60)
        assert not spad.fits(40, 61)


class TestProperties:
    @given(
        sizes=st.lists(st.integers(1, 64), min_size=1, max_size=20),
    )
    @settings(max_examples=50)
    def test_segments_never_overlap(self, sizes):
        spad = Scratchpad(1024)
        for i, size in enumerate(sizes):
            try:
                spad.allocate(f"s{i}", size)
            except MappingError:
                break
        segments = spad.segments()
        for a, b in zip(segments, segments[1:]):
            assert a.end <= b.offset
        for seg in segments:
            assert 0 <= seg.offset and seg.end <= 1024
