"""Tests for the systolic-array timing model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import NPUConfig
from repro.models.layers import conv2d, dwconv2d, elementwise, matmul
from repro.npu.systolic import SystolicModel, compute_cycles


@pytest.fixture(scope="module")
def model():
    return SystolicModel(NPUConfig())


class TestGEMMCycles:
    def test_single_tile(self, model):
        # One 32x32 weight tile, 32 activations: 32 + 62 cycles.
        assert model.gemm_cycles(32, 32, 32) == 32 + 62

    def test_passes_scale_with_nk(self, model):
        base = model.gemm_cycles(128, 32, 32)
        double_n = model.gemm_cycles(128, 64, 32)
        double_k = model.gemm_cycles(128, 32, 64)
        assert double_n == 2 * base
        assert double_k == 2 * base

    def test_m_amortizes_fill(self, model):
        short = model.gemm_cycles(32, 32, 32)
        long = model.gemm_cycles(3200, 32, 32)
        # Long streams amortize the fill/drain overhead.
        assert long / 100 < short

    @given(
        m=st.integers(1, 4096),
        n=st.integers(1, 4096),
        k=st.integers(1, 4096),
    )
    @settings(max_examples=50)
    def test_cycles_bounded_by_macs(self, m, n, k):
        model = SystolicModel(NPUConfig())
        cycles = model.gemm_cycles(m, n, k)
        # Never better than peak: macs/cycle <= 1024.
        assert m * n * k <= cycles * 1024


class TestLayerCycles:
    def test_vector_layers_use_simd(self, model):
        layer = elementwise("e", 3200)
        assert model.layer_cycles(layer) == 100

    def test_dwconv_pays_efficiency_penalty(self, model):
        dense = conv2d("c", 28, 28, 32, 32, kernel=3)
        dw = dwconv2d("d", 28, 28, 32, kernel=3)
        # Depth-wise achieves far fewer MACs/cycle than dense conv.
        dense_util = model.utilization(dense)
        dw_util = model.utilization(dw)
        assert dw_util < dense_util

    def test_attention_groups_multiply(self, model):
        from repro.models.layers import attention_matmul

        single = attention_matmul("a", 128, 64, heads=1)
        multi = attention_matmul("a", 128, 64, heads=12)
        assert model.layer_cycles(multi) == 12 * model.layer_cycles(single)

    def test_minimum_one_cycle(self, model):
        layer = elementwise("tiny", 1)
        assert model.layer_cycles(layer) >= 1


class TestLayerTime:
    def test_multi_core_sublinear(self, model):
        layer = matmul("m", 1024, 1024, 1024)
        one = model.layer_time_s(layer, num_cores=1)
        two = model.layer_time_s(layer, num_cores=2)
        assert one / 2 < two < one

    def test_frequency_scaling(self):
        layer = matmul("m", 256, 256, 256)
        slow = SystolicModel(NPUConfig(frequency_hz=5e8))
        fast = SystolicModel(NPUConfig(frequency_hz=1e9))
        assert slow.layer_time_s(layer) == \
            pytest.approx(2 * fast.layer_time_s(layer))

    def test_model_cycles_sums(self, model, mobilenet):
        total = model.model_cycles(mobilenet.layers)
        assert total == sum(
            model.layer_cycles(layer) for layer in mobilenet.layers
        )


class TestConvenience:
    def test_compute_cycles_default_config(self):
        layer = matmul("m", 64, 64, 64)
        assert compute_cycles(layer) == \
            SystolicModel(NPUConfig()).layer_cycles(layer)


class TestPaperScaleSanity:
    """Single-core compute times must be commensurate with QoS targets."""

    def test_resnet_under_qos(self, model, resnet):
        time_s = model.model_cycles(resnet.layers) / 1e9
        assert time_s < resnet.qos_target_ms * 1e-3

    def test_mobilenet_fast(self, model, mobilenet):
        time_s = model.model_cycles(mobilenet.layers) / 1e9
        assert time_s < 2.8e-3
