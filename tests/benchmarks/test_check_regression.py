"""Unit tests for the manifest-driven benchmark regression checker."""

import importlib.util
import json
from pathlib import Path

import pytest

_MODULE_PATH = (
    Path(__file__).parent.parent.parent
    / "benchmarks" / "check_regression.py"
)
_spec = importlib.util.spec_from_file_location(
    "check_regression", _MODULE_PATH
)
check_regression = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_regression)


def _engine_doc(rates):
    return {
        "meta": {"streams": 8},
        "policies": {
            name: {"kernel": {"events_per_s": rate, "events": 1000,
                              "wall_s": 1000 / rate}}
            for name, rate in rates.items()
        },
    }


def _write(path: Path, doc) -> None:
    path.write_text(json.dumps(doc))


@pytest.fixture()
def bench_dirs(tmp_path):
    current = tmp_path / "current"
    baseline = tmp_path / "baseline"
    current.mkdir()
    baseline.mkdir()
    return current, baseline


class TestToleranceResolution:
    def test_cli_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_TOLERANCE", "0.5")
        assert check_regression.resolve_tolerance(0.1) == 0.1

    def test_env_parsed(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_TOLERANCE", "0.65")
        assert check_regression.resolve_tolerance(None) == 0.65

    def test_default_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_TOLERANCE", raising=False)
        assert check_regression.resolve_tolerance(None) == \
            check_regression.DEFAULT_TOLERANCE

    def test_malformed_env_exits(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_TOLERANCE", "half")
        with pytest.raises(SystemExit):
            check_regression.resolve_tolerance(None)


class TestCheckBench:
    def test_within_tolerance_passes(self, bench_dirs):
        current, baseline = bench_dirs
        _write(current / "BENCH_engine.json",
               _engine_doc({"camdn-full": 90.0}))
        _write(baseline / "BENCH_engine.baseline.json",
               _engine_doc({"camdn-full": 100.0}))
        failures = check_regression.check_bench(
            "engine", 0.30, current_dir=current, baseline_dir=baseline
        )
        assert failures == []

    def test_rate_exactly_at_floor_passes(self, bench_dirs):
        current, baseline = bench_dirs
        base = 123_456.0
        tolerance = 0.30
        floor = (1.0 - tolerance) * base
        _write(current / "BENCH_engine.json",
               _engine_doc({"camdn-full": floor}))
        _write(baseline / "BENCH_engine.baseline.json",
               _engine_doc({"camdn-full": base}))
        failures = check_regression.check_bench(
            "engine", tolerance,
            current_dir=current, baseline_dir=baseline,
        )
        assert failures == []

    def test_rate_below_floor_fails(self, bench_dirs):
        current, baseline = bench_dirs
        _write(current / "BENCH_engine.json",
               _engine_doc({"camdn-full": 69.9}))
        _write(baseline / "BENCH_engine.baseline.json",
               _engine_doc({"camdn-full": 100.0}))
        failures = check_regression.check_bench(
            "engine", 0.30, current_dir=current, baseline_dir=baseline
        )
        assert len(failures) == 1
        assert "camdn-full" in failures[0]

    def test_deeper_tolerance_admits_same_drop(self, bench_dirs):
        current, baseline = bench_dirs
        _write(current / "BENCH_engine.json",
               _engine_doc({"camdn-full": 55.0}))
        _write(baseline / "BENCH_engine.baseline.json",
               _engine_doc({"camdn-full": 100.0}))
        assert check_regression.check_bench(
            "engine", 0.50, current_dir=current, baseline_dir=baseline
        ) == []
        assert check_regression.check_bench(
            "engine", 0.30, current_dir=current, baseline_dir=baseline
        ) != []

    def test_row_missing_from_current_fails(self, bench_dirs):
        current, baseline = bench_dirs
        _write(current / "BENCH_engine.json", _engine_doc({}))
        _write(baseline / "BENCH_engine.baseline.json",
               _engine_doc({"moca": 100.0}))
        failures = check_regression.check_bench(
            "engine", 0.30, current_dir=current, baseline_dir=baseline
        )
        assert failures == ["engine/moca: missing from current run"]

    def test_extra_current_rows_are_ignored(self, bench_dirs):
        # A new policy without a committed baseline row must not fail
        # the gate (the baseline is refreshed in the same PR normally).
        current, baseline = bench_dirs
        _write(current / "BENCH_engine.json",
               _engine_doc({"moca": 100.0, "brand-new": 1.0}))
        _write(baseline / "BENCH_engine.baseline.json",
               _engine_doc({"moca": 100.0}))
        assert check_regression.check_bench(
            "engine", 0.30, current_dir=current, baseline_dir=baseline
        ) == []


class TestBadInputs:
    def test_absent_current_output_exits(self, bench_dirs):
        current, baseline = bench_dirs
        _write(baseline / "BENCH_engine.baseline.json",
               _engine_doc({"moca": 100.0}))
        with pytest.raises(SystemExit, match="current file missing"):
            check_regression.check_bench(
                "engine", 0.30,
                current_dir=current, baseline_dir=baseline,
            )

    def test_absent_baseline_exits(self, bench_dirs):
        current, baseline = bench_dirs
        _write(current / "BENCH_engine.json",
               _engine_doc({"moca": 100.0}))
        with pytest.raises(SystemExit, match="baseline file missing"):
            check_regression.check_bench(
                "engine", 0.30,
                current_dir=current, baseline_dir=baseline,
            )

    def test_malformed_baseline_json_exits(self, bench_dirs):
        current, baseline = bench_dirs
        _write(current / "BENCH_engine.json",
               _engine_doc({"moca": 100.0}))
        (baseline / "BENCH_engine.baseline.json").write_text("{nope")
        with pytest.raises(SystemExit, match="malformed"):
            check_regression.check_bench(
                "engine", 0.30,
                current_dir=current, baseline_dir=baseline,
            )

    def test_missing_section_exits(self, bench_dirs):
        current, baseline = bench_dirs
        _write(current / "BENCH_engine.json", {"meta": {}})
        _write(baseline / "BENCH_engine.baseline.json",
               _engine_doc({"moca": 100.0}))
        with pytest.raises(SystemExit, match="section"):
            check_regression.check_bench(
                "engine", 0.30,
                current_dir=current, baseline_dir=baseline,
            )

    def test_unknown_bench_name_exits(self, bench_dirs):
        current, baseline = bench_dirs
        with pytest.raises(SystemExit, match="unknown bench"):
            check_regression.check_bench(
                "frobnicator", 0.30,
                current_dir=current, baseline_dir=baseline,
            )

    def test_malformed_rate_entry_fails_row(self, bench_dirs):
        current, baseline = bench_dirs
        _write(current / "BENCH_engine.json",
               {"policies": {"moca": {"kernel": {}}}})
        _write(baseline / "BENCH_engine.baseline.json",
               _engine_doc({"moca": 100.0}))
        failures = check_regression.check_bench(
            "engine", 0.30, current_dir=current, baseline_dir=baseline
        )
        assert failures == ["engine/moca: malformed rate entry"]


class TestMain:
    def test_manifest_covers_all_benches(self):
        assert set(check_regression.MANIFEST) == \
            {"engine", "scenario", "allocator", "fleet"}
        for spec in check_regression.MANIFEST.values():
            baseline = (
                Path(check_regression.BASELINE_DIR) / spec.baseline
            )
            assert baseline.exists(), baseline

    def test_main_green_run(self, bench_dirs, capsys):
        current, baseline = bench_dirs
        _write(current / "BENCH_engine.json",
               _engine_doc({"moca": 100.0}))
        _write(baseline / "BENCH_engine.baseline.json",
               _engine_doc({"moca": 100.0}))
        code = check_regression.main([
            "engine",
            "--current-dir", str(current),
            "--baseline-dir", str(baseline),
            "--tolerance", "0.3",
        ])
        assert code == 0
        assert "within tolerance" in capsys.readouterr().out

    def test_main_regression_is_nonzero(self, bench_dirs, capsys):
        current, baseline = bench_dirs
        _write(current / "BENCH_engine.json",
               _engine_doc({"moca": 10.0}))
        _write(baseline / "BENCH_engine.baseline.json",
               _engine_doc({"moca": 100.0}))
        code = check_regression.main([
            "engine",
            "--current-dir", str(current),
            "--baseline-dir", str(baseline),
            "--tolerance", "0.3",
        ])
        assert code == 1
        assert "REGRESSED" in capsys.readouterr().out
