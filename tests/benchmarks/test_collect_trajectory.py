"""Unit tests for the trajectory collector's ROADMAP row emitter."""

import importlib.util
import json
import sys
from pathlib import Path

_MODULE_PATH = (
    Path(__file__).parent.parent.parent
    / "benchmarks" / "collect_trajectory.py"
)
# The collector imports its sibling check_regression the way the CLI
# does (benchmarks/ on sys.path); mirror that for the standalone load.
sys.path.insert(0, str(_MODULE_PATH.parent))
try:
    _spec = importlib.util.spec_from_file_location(
        "collect_trajectory", _MODULE_PATH
    )
    collect_trajectory = importlib.util.module_from_spec(_spec)
    _spec.loader.exec_module(collect_trajectory)
finally:
    sys.path.remove(str(_MODULE_PATH.parent))


def _doc():
    return {
        "meta": {
            "captured_utc": "2026-08-07T02:00:00+00:00",
            "commit": "0123456789abcdef",
        },
        "benches": {
            "engine": {
                "policies": {
                    "camdn-full": {"kernel": {"events_per_s": 132_611.0}},
                    "aurora": {"kernel": {"events_per_s": 228_957.0}},
                },
            },
            "scenario": {
                "policies": {
                    "camdn-qos/churn-heavy": {
                        "kernel": {"events_per_s": 172_818.0}
                    },
                },
            },
        },
    }


class TestRoadmapRow:
    def test_row_shape_and_content(self):
        row = collect_trajectory.roadmap_row(_doc(), label="PR 9")
        # One table row: milestone | wall-time placeholder | notes.
        assert row.startswith("| PR 9 (2026-08-07, 012345678) |")
        assert row.count("|") == 4
        assert "(tier-1 wall: fill in)" in row
        assert "engine: aurora 229k, camdn-full 133k ev/s" in row
        assert "scenario: camdn-qos/churn-heavy 173k ev/s" in row

    def test_policies_sorted_for_stable_diffs(self):
        row = collect_trajectory.roadmap_row(_doc())
        assert row.index("aurora") < row.index("camdn-full")

    def test_empty_doc_degrades(self):
        row = collect_trajectory.roadmap_row({"meta": {}, "benches": {}})
        assert "no bench outputs in doc" in row

    def test_row_from_cli_round_trips(self, tmp_path, capsys):
        path = tmp_path / "BENCH_trajectory.json"
        path.write_text(json.dumps(_doc()))
        assert collect_trajectory.main(
            ["--row-from", str(path), "--roadmap-label", "PR 9"]
        ) == 0
        out = capsys.readouterr().out.strip()
        assert out == collect_trajectory.roadmap_row(_doc(), label="PR 9")
