"""Tests for bandwidth allocation policies."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.memory.bwalloc import (
    BandwidthAllocation,
    DemandProportionalPolicy,
    EqualSharePolicy,
    SlackWeightedPolicy,
)


class TestBandwidthAllocation:
    def test_rejects_oversubscription(self):
        with pytest.raises(SimulationError):
            BandwidthAllocation(shares={"a": 0.7, "b": 0.7})

    def test_rejects_non_positive_share(self):
        with pytest.raises(SimulationError):
            BandwidthAllocation(shares={"a": 0.0})

    def test_share_of_missing_task(self):
        allocation = BandwidthAllocation(shares={"a": 1.0})
        assert allocation.share_of("ghost") == 0.0


class TestEqualShare:
    def test_even_split(self):
        allocation = EqualSharePolicy().allocate({"a": 1, "b": 1, "c": 1})
        for share in allocation.shares.values():
            assert share == pytest.approx(1 / 3)

    def test_empty(self):
        assert EqualSharePolicy().allocate({}).shares == {}


class TestDemandProportional:
    def test_proportionality(self):
        policy = DemandProportionalPolicy(floor=0.0)
        allocation = policy.allocate({"a": 3e9, "b": 1e9})
        assert allocation.share_of("a") == pytest.approx(0.75)
        assert allocation.share_of("b") == pytest.approx(0.25)

    def test_floor_protects_light_tasks(self):
        policy = DemandProportionalPolicy(floor=0.05)
        allocation = policy.allocate({"a": 1e12, "b": 1.0})
        assert allocation.share_of("b") >= 0.05

    def test_zero_demand_falls_back_to_equal(self):
        policy = DemandProportionalPolicy(floor=0.0)
        allocation = policy.allocate({"a": 0.0, "b": 0.0})
        assert allocation.share_of("a") == pytest.approx(0.5)

    @given(
        demands=st.dictionaries(
            st.sampled_from(list("abcdefgh")),
            st.floats(0.0, 1e12),
            min_size=1,
        )
    )
    def test_shares_always_sum_to_one(self, demands):
        allocation = DemandProportionalPolicy().allocate(demands)
        assert sum(allocation.shares.values()) == pytest.approx(1.0)


class TestSlackWeighted:
    def test_behind_task_gets_boost(self):
        policy = SlackWeightedPolicy(floor=0.0)
        allocation = policy.allocate(
            demands={"late": 1e9, "early": 1e9},
            slacks={"late": -0.5, "early": 0.5},
        )
        assert allocation.share_of("late") > allocation.share_of("early")

    def test_equal_slack_follows_demand(self):
        policy = SlackWeightedPolicy(floor=0.0)
        allocation = policy.allocate(
            demands={"a": 2e9, "b": 1e9},
            slacks={"a": 0.0, "b": 0.0},
        )
        assert allocation.share_of("a") > allocation.share_of("b")

    def test_urgency_must_be_positive(self):
        with pytest.raises(SimulationError):
            SlackWeightedPolicy(urgency=0.0)

    @given(
        slack=st.floats(-2.0, 2.0),
    )
    def test_shares_sum_to_one(self, slack):
        policy = SlackWeightedPolicy()
        allocation = policy.allocate(
            demands={"a": 1e9, "b": 1e9},
            slacks={"a": slack, "b": 0.0},
        )
        assert sum(allocation.shares.values()) == pytest.approx(1.0)
