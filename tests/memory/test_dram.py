"""Tests for the DRAM substrate."""

import pytest

from repro.config import DRAMConfig
from repro.errors import CacheAddressError
from repro.memory.dram import DRAMTimingModel, MainMemory


class TestMainMemory:
    def test_uninitialized_reads_zero(self):
        assert MainMemory().read_line(10) == 0

    def test_write_read_roundtrip(self):
        memory = MainMemory()
        memory.write_line(5, 123)
        assert memory.read_line(5) == 123

    def test_traffic_counters(self):
        memory = MainMemory(line_bytes=64)
        memory.write_line(0, 1)
        memory.read_line(0)
        memory.read_line(1)
        assert memory.total_bytes_moved == 3 * 64

    def test_reset_counters(self):
        memory = MainMemory()
        memory.write_line(0, 1)
        memory.reset_counters()
        assert memory.total_bytes_moved == 0

    def test_negative_address_rejected(self):
        with pytest.raises(CacheAddressError):
            MainMemory().read_line(-1)

    def test_none_write_rejected(self):
        with pytest.raises(CacheAddressError):
            MainMemory().write_line(0, None)


class TestTimingModel:
    def test_full_bandwidth_time(self):
        model = DRAMTimingModel()
        t = model.transfer_time_s(102.4e9, bandwidth_share=1.0)
        assert t == pytest.approx(1.0)

    def test_share_scales_time(self):
        model = DRAMTimingModel()
        full = model.transfer_time_s(1e9, 1.0)
        half = model.transfer_time_s(1e9, 0.5)
        assert half == pytest.approx(2 * full)

    def test_first_access_latency(self):
        model = DRAMTimingModel(config=DRAMConfig(access_latency_s=1e-7))
        with_latency = model.transfer_time_s(64, 1.0, first_access=True)
        without = model.transfer_time_s(64, 1.0)
        assert with_latency - without == pytest.approx(1e-7)

    def test_share_clamped_to_one(self):
        model = DRAMTimingModel()
        assert model.transfer_time_s(1e9, 5.0) == \
            model.transfer_time_s(1e9, 1.0)

    def test_zero_share_rejected(self):
        with pytest.raises(CacheAddressError):
            DRAMTimingModel().transfer_time_s(64, 0.0)

    def test_accounting(self):
        model = DRAMTimingModel()
        model.account(1000)
        model.account(24)
        assert model.total_bytes == 1024
