"""Tests for the SoC configuration (paper Table II)."""

import pytest

from repro.config import (
    CACHE_PAGE_BYTES,
    KiB,
    MiB,
    CacheConfig,
    DRAMConfig,
    NPUConfig,
    SoCConfig,
    default_soc,
)
from repro.errors import ConfigError


class TestTableII:
    """The default configuration must match paper Table II exactly."""

    def test_pe_array(self):
        soc = default_soc()
        assert soc.npu.pe_rows == 32
        assert soc.npu.pe_cols == 32

    def test_scratchpad(self):
        assert default_soc().npu.scratchpad_bytes == 256 * KiB

    def test_cores(self):
        assert default_soc().num_npu_cores == 16

    def test_cache_capacity(self):
        assert default_soc().cache.total_bytes == 16 * MiB

    def test_way_split(self):
        cache = default_soc().cache
        assert cache.npu_ways == 12
        assert cache.num_ways == 16

    def test_slices(self):
        assert default_soc().cache.num_slices == 8

    def test_dram_bandwidth(self):
        assert default_soc().dram.total_bandwidth_bytes_per_s == \
            pytest.approx(102.4e9)

    def test_dram_channels(self):
        assert default_soc().dram.num_channels == 4

    def test_frequency(self):
        assert default_soc().npu.frequency_hz == pytest.approx(1e9)


class TestCacheGeometry:
    def test_page_size_is_32k(self):
        assert CACHE_PAGE_BYTES == 32 * KiB

    def test_npu_subspace(self):
        cache = CacheConfig()
        assert cache.npu_subspace_bytes == 12 * MiB
        assert cache.cpu_subspace_bytes == 4 * MiB

    def test_num_pages(self):
        # 12 MiB NPU subspace / 32 KiB pages = 384 pages.
        assert CacheConfig().num_pages == 384

    def test_sets_per_slice(self):
        cache = CacheConfig()
        assert cache.sets_per_slice * cache.num_ways * cache.line_bytes \
            == cache.slice_bytes

    def test_slice_bytes(self):
        assert CacheConfig().slice_bytes == 2 * MiB

    def test_invalid_way_split(self):
        with pytest.raises(ConfigError):
            CacheConfig(npu_ways=17)

    def test_invalid_line_size(self):
        with pytest.raises(ConfigError):
            CacheConfig(line_bytes=48)

    def test_page_must_divide_subspace(self):
        with pytest.raises(ConfigError):
            CacheConfig(total_bytes=16 * MiB + 64)


class TestNPUConfig:
    def test_macs_per_cycle(self):
        assert NPUConfig().macs_per_cycle == 1024

    def test_rejects_zero_pe(self):
        with pytest.raises(ConfigError):
            NPUConfig(pe_rows=0)

    def test_rejects_bad_efficiency(self):
        with pytest.raises(ConfigError):
            NPUConfig(dwconv_efficiency=0.0)
        with pytest.raises(ConfigError):
            NPUConfig(dwconv_efficiency=1.5)


class TestDRAMConfig:
    def test_channel_bandwidth(self):
        dram = DRAMConfig()
        assert dram.channel_bandwidth_bytes_per_s == \
            pytest.approx(102.4e9 / 4)

    def test_rejects_negative_latency(self):
        with pytest.raises(ConfigError):
            DRAMConfig(access_latency_s=-1e-9)


class TestSoCConfig:
    def test_with_cache_bytes_preserves_ratio(self):
        soc = SoCConfig().with_cache_bytes(4 * MiB)
        assert soc.cache.total_bytes == 4 * MiB
        assert soc.cache.npu_ways == 12
        assert soc.cache.num_ways == 16
        assert soc.cache.num_slices == 8

    def test_with_cache_bytes_keeps_other_subsystems(self):
        soc = SoCConfig().with_cache_bytes(64 * MiB)
        assert soc.npu == SoCConfig().npu
        assert soc.dram == SoCConfig().dram

    def test_peak_macs(self):
        soc = default_soc()
        assert soc.peak_macs_per_s == pytest.approx(1024 * 1e9 * 16)

    def test_rejects_zero_cores(self):
        with pytest.raises(ConfigError):
            SoCConfig(num_npu_cores=0)

    def test_rejects_zero_dtype(self):
        with pytest.raises(ConfigError):
            SoCConfig(dtype_bytes=0)
