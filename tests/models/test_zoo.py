"""Tests for the model registry."""

import pytest

from repro.errors import ModelGraphError
from repro.models.zoo import (
    BENCHMARK_MODELS,
    QOS_TARGETS_MS,
    build_model,
    load_benchmark_suite,
)


class TestRegistry:
    def test_eight_models(self):
        assert len(BENCHMARK_MODELS) == 8

    def test_build_by_abbr(self):
        assert build_model("RS.").name == "ResNet50"

    def test_build_by_full_name(self):
        assert build_model("MobileNet-v2").abbr == "MB."

    def test_unknown_model_raises(self):
        with pytest.raises(ModelGraphError):
            build_model("AlexNet")

    def test_builders_are_cached(self):
        assert build_model("RS.") is build_model("RS.")

    def test_qos_targets_cover_all_models(self):
        assert set(QOS_TARGETS_MS) == set(BENCHMARK_MODELS)

    def test_suite_order(self):
        suite = load_benchmark_suite()
        assert [g.abbr for g in suite] == list(BENCHMARK_MODELS)

    def test_domains(self):
        domains = {g.abbr: g.domain for g in load_benchmark_suite()}
        assert domains["WV."] == "Audio Processing"
        assert domains["PP."] == "Point Cloud"
        assert domains["GN."] == "Natural Language Processing"
