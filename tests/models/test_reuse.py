"""Tests for the reuse profiler (Figure 3 substrate)."""

import pytest

from repro.models.graph import ModelGraph, SkipEdge
from repro.models.layers import elementwise, matmul
from repro.models.reuse import (
    REUSE_COUNT_BUCKETS,
    REUSE_DISTANCE_BUCKETS,
    average_fractions,
    profile_model,
    profile_suite,
)
from repro.models.zoo import load_benchmark_suite


def _toy_graph():
    layers = (
        matmul("l0", 1000, 64, 64),
        matmul("l1", 1000, 64, 64),
        elementwise("add", 1000 * 64, operands=2),
    )
    return ModelGraph(
        name="toy", abbr="T.", layers=layers,
        skip_edges=(SkipEdge(0, 2),),
    )


class TestProfileModel:
    def test_fractions_sum_to_one(self):
        profile = profile_model(_toy_graph())
        assert sum(profile.count_fractions().values()) == \
            pytest.approx(1.0)
        assert sum(profile.distance_fractions().values()) == \
            pytest.approx(1.0)

    def test_weights_counted_once(self):
        profile = profile_model(_toy_graph())
        weight_bytes = 2 * 64 * 64  # two matmuls
        assert profile.count_bytes["1"] >= weight_bytes

    def test_skip_producer_has_two_consumers(self):
        # l0's output is read by l1 and by the add: count = 1 write + 2
        # reads = 3 -> bucket [2,4].
        profile = profile_model(_toy_graph())
        assert profile.count_bytes["[2,4]"] >= 1000 * 64

    def test_distance_buckets_are_exhaustive(self):
        labels = [label for label, _, _ in REUSE_DISTANCE_BUCKETS]
        profile = profile_model(_toy_graph())
        assert set(profile.distance_bytes) == set(labels)

    def test_model_output_is_single_use(self):
        graph = ModelGraph(
            name="one", abbr="O.", layers=(matmul("l0", 10, 10, 10),)
        )
        profile = profile_model(graph)
        assert profile.count_fractions()["1"] == pytest.approx(1.0)


class TestPaperClaims:
    """Figure 3's headline statistics should hold qualitatively."""

    @pytest.fixture(scope="class")
    def profiles(self):
        return list(profile_suite(load_benchmark_suite()).values())

    def test_majority_of_data_not_reused(self, profiles):
        # Paper: 68.0 % of data has no future reuse on average.
        count_avg, _ = average_fractions(profiles)
        assert 0.4 <= count_avg["1"] <= 0.9

    def test_long_reuse_distances_dominate(self, profiles):
        # Paper: 61.8 % of intermediate data above 1 MB reuse distance.
        _, dist_avg = average_fractions(profiles)
        above_1mb = 1.0 - dist_avg["(0MB,1MB]"]
        assert above_1mb >= 0.35

    def test_above_2mb_fraction(self, profiles):
        # Paper: 47.9 % above 2 MB; ours should be in the same regime.
        _, dist_avg = average_fractions(profiles)
        above_2mb = dist_avg["(2MB,4MB]"] + dist_avg["(4MB,inf)"]
        assert above_2mb >= 0.25

    def test_every_model_has_data(self, profiles):
        for profile in profiles:
            assert profile.total_bytes > 0
            assert profile.total_intermediate_bytes > 0


class TestBuckets:
    def test_count_buckets_match_figure(self):
        labels = [label for label, _, _ in REUSE_COUNT_BUCKETS]
        assert labels == ["1", "[2,4]", "[5,8]", "[9,inf)"]

    def test_distance_buckets_match_figure(self):
        labels = [label for label, _, _ in REUSE_DISTANCE_BUCKETS]
        assert labels == [
            "(0MB,1MB]", "(1MB,2MB]", "(2MB,4MB]", "(4MB,inf)",
        ]

    def test_fraction_distance_above(self):
        profile = profile_model(_toy_graph())
        assert profile.fraction_distance_above(0) == pytest.approx(1.0)
