"""Tests for model graphs, skip edges and layer-block segmentation."""

import pytest
from hypothesis import given, strategies as st

from repro.config import MiB
from repro.errors import ModelGraphError
from repro.models.graph import ModelGraph, SkipEdge, segment_into_blocks
from repro.models.layers import elementwise, matmul


def _chain(n_layers: int, elems: int = 1000) -> ModelGraph:
    layers = [
        matmul(f"l{i}", elems, 8, 8) for i in range(n_layers)
    ]
    return ModelGraph(name="chain", abbr="CH.", layers=tuple(layers))


class TestModelGraph:
    def test_rejects_empty(self):
        with pytest.raises(ModelGraphError):
            ModelGraph(name="x", abbr="X.", layers=())

    def test_rejects_duplicate_layer_names(self):
        layers = (matmul("a", 4, 4, 4), matmul("a", 4, 4, 4))
        with pytest.raises(ModelGraphError):
            ModelGraph(name="x", abbr="X.", layers=layers)

    def test_rejects_backward_skip(self):
        with pytest.raises(ModelGraphError):
            SkipEdge(producer=5, consumer=3)

    def test_rejects_out_of_range_skip(self):
        layers = (matmul("a", 4, 4, 4), matmul("b", 4, 4, 4))
        with pytest.raises(ModelGraphError):
            ModelGraph(name="x", abbr="X.", layers=layers,
                       skip_edges=(SkipEdge(0, 5),))

    def test_totals(self):
        graph = _chain(3, elems=10)
        assert graph.total_macs == 3 * 10 * 8 * 8
        assert graph.num_layers == 3

    def test_compulsory_traffic(self):
        graph = _chain(2, elems=10)
        expected = (
            graph.total_weight_elems
            + graph.layers[0].input_elems
            + graph.layers[-1].output_elems
        )
        assert graph.compulsory_traffic_elems() == expected

    def test_last_use_direct(self):
        graph = _chain(3)
        assert graph.last_use(0) == 1

    def test_last_use_with_skip(self):
        layers = tuple(matmul(f"l{i}", 16, 8, 8) for i in range(4))
        graph = ModelGraph(
            name="x", abbr="X.", layers=layers,
            skip_edges=(SkipEdge(0, 3),),
        )
        assert graph.last_use(0) == 3
        assert graph.skip_consumers(0) == [3]


class TestBlockSegmentation:
    def test_whole_model_one_block_when_budget_large(self):
        graph = _chain(5, elems=100)
        blocks = segment_into_blocks(graph, max_intermediate_bytes=MiB)
        assert len(blocks) == 1
        assert blocks[0].start == 0
        assert blocks[0].end == 5

    def test_blocks_cover_all_layers_once(self):
        graph = _chain(10, elems=5000)
        blocks = segment_into_blocks(graph, max_intermediate_bytes=6000)
        covered = []
        for block in blocks:
            covered.extend(range(block.start, block.end))
        assert covered == list(range(10))

    def test_budget_respected_for_multi_layer_blocks(self):
        graph = _chain(10, elems=5000)
        budget = 9000
        blocks = segment_into_blocks(graph, max_intermediate_bytes=budget)
        for block in blocks:
            if block.num_layers > 1:
                assert block.intermediate_elems <= budget

    def test_rejects_zero_budget(self):
        with pytest.raises(ModelGraphError):
            segment_into_blocks(_chain(2), 0)

    def test_skip_edges_extend_live_set(self):
        # layer0's output stays live until the add at layer 3, so the block
        # peak must include it while layers 1-2 run.
        layers = (
            matmul("l0", 1000, 8, 8),
            matmul("l1", 1000, 8, 8),
            matmul("l2", 1000, 8, 8),
            elementwise("add", 1000 * 8, operands=2),
        )
        graph = ModelGraph(
            name="res", abbr="R.", layers=layers,
            skip_edges=(SkipEdge(0, 3),),
        )
        blocks = segment_into_blocks(graph, max_intermediate_bytes=10**9)
        # peak live: during layer 2 we hold l0 out (8000), l1 out (8000)
        # and l2's own output (8000).
        assert blocks[0].intermediate_elems >= 3 * 8000

    @given(n_layers=st.integers(2, 12),
           budget=st.integers(2000, 50000))
    def test_segmentation_is_partition(self, n_layers, budget):
        graph = _chain(n_layers, elems=1500)
        blocks = segment_into_blocks(graph, budget)
        assert blocks[0].start == 0
        assert blocks[-1].end == n_layers
        for prev, cur in zip(blocks, blocks[1:]):
            assert prev.end == cur.start


class TestBenchmarkGraphs:
    def test_all_models_build(self, suite):
        assert len(suite) == 8

    def test_abbreviations_match_table1(self, suite):
        assert [g.abbr for g in suite] == [
            "RS.", "MB.", "EF.", "VT.", "BE.", "GN.", "WV.", "PP.",
        ]

    def test_qos_targets_match_table1(self, suite):
        targets = {g.abbr: g.qos_target_ms for g in suite}
        assert targets == {
            "RS.": 6.7, "MB.": 2.8, "EF.": 2.8, "VT.": 40.0,
            "BE.": 40.0, "GN.": 6.7, "WV.": 16.7, "PP.": 100.0,
        }

    def test_resnet50_parameter_count(self, resnet):
        # ~25.5 M parameters is the published ResNet50 size.
        assert resnet.total_weight_elems == pytest.approx(25.5e6, rel=0.02)

    def test_mobilenet_parameter_count(self, mobilenet):
        assert mobilenet.total_weight_elems == pytest.approx(3.5e6,
                                                             rel=0.05)

    def test_bert_parameter_count(self, bert):
        # Encoder-only parameters (no embedding table): ~85 M.
        assert bert.total_weight_elems == pytest.approx(85e6, rel=0.02)

    def test_resnet_macs(self, resnet):
        assert resnet.total_macs == pytest.approx(4.1e9, rel=0.05)

    def test_residual_models_have_skips(self, suite):
        for graph in suite:
            if graph.abbr in ("RS.", "MB.", "EF.", "VT.", "BE."):
                assert graph.skip_edges, f"{graph.abbr} lost its skips"

    def test_model_types_match_table1(self, suite):
        types = {g.abbr: g.model_type for g in suite}
        assert types["RS."] == "Conv"
        assert types["MB."] == "DwConv"
        assert types["GN."] == "LSTM"
        assert types["BE."] == "Trans"
