"""Tests for layer specs and GEMM lowering."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ModelGraphError
from repro.models.layers import (
    LayerKind,
    attention_matmul,
    conv1d,
    conv2d,
    dwconv2d,
    elementwise,
    matmul,
    pool2d,
)


class TestConv2D:
    def test_gemm_lowering(self):
        layer = conv2d("c", h=56, w=56, c_in=64, c_out=128, kernel=3)
        assert layer.m == 56 * 56
        assert layer.n == 128
        assert layer.k == 64 * 9

    def test_stride_halves_output(self):
        layer = conv2d("c", 56, 56, 64, 128, kernel=3, stride=2)
        assert layer.m == 28 * 28

    def test_macs(self):
        layer = conv2d("c", 8, 8, 4, 4, kernel=1, padding=0)
        assert layer.macs == 8 * 8 * 4 * 4

    def test_weight_footprint(self):
        layer = conv2d("c", 8, 8, 16, 32, kernel=3)
        assert layer.weight_elems == 32 * 16 * 9

    def test_explicit_padding(self):
        layer = conv2d("c", 224, 224, 3, 64, kernel=7, stride=2, padding=3)
        assert layer.m == 112 * 112

    def test_rejects_degenerate(self):
        with pytest.raises(ModelGraphError):
            conv2d("c", 2, 2, 4, 4, kernel=7, stride=8, padding=0)


class TestDwConv2D:
    def test_small_reduction_dim(self):
        layer = dwconv2d("d", 56, 56, channels=144, kernel=3)
        assert layer.k == 9
        assert layer.n == 144

    def test_macs_scale_with_channels_not_squared(self):
        small = dwconv2d("d", 8, 8, channels=16, kernel=3)
        big = dwconv2d("d", 8, 8, channels=32, kernel=3)
        assert big.macs == 2 * small.macs

    def test_kind(self):
        assert dwconv2d("d", 8, 8, 16, 3).kind is LayerKind.DWCONV


class TestMatmul:
    def test_dims(self):
        layer = matmul("m", 128, 3072, 768)
        assert (layer.m, layer.n, layer.k) == (128, 3072, 768)
        assert layer.weight_elems == 3072 * 768
        assert layer.macs == 128 * 3072 * 768

    def test_weightless(self):
        layer = matmul("m", 16, 16, 16, has_weights=False)
        assert layer.weight_elems == 0
        assert layer.input_elems == 16 * 16 * 2


class TestAttention:
    def test_scores_shape(self):
        layer = attention_matmul("a", seq=128, head_dim=64, heads=12)
        assert (layer.m, layer.n, layer.k) == (128, 128, 64)
        assert layer.groups == 12
        assert layer.weight_elems == 0

    def test_context_shape(self):
        layer = attention_matmul("a", 128, 64, 12, transposed=True)
        assert (layer.m, layer.n, layer.k) == (128, 64, 128)

    def test_macs_include_heads(self):
        layer = attention_matmul("a", 128, 64, 12)
        assert layer.macs == 12 * 128 * 128 * 64


class TestConv1D:
    def test_feature_extractor_shape(self):
        layer = conv1d("f", length=16000, c_in=1, c_out=512, kernel=10,
                       stride=5)
        assert layer.m == (16000 - 10) // 5 + 1
        assert layer.n == 512


class TestPoolAndElemwise:
    def test_pool_no_weights(self):
        layer = pool2d("p", 8, 8, 64, kernel=2)
        assert layer.weight_elems == 0
        assert layer.m == 4 * 4

    def test_elementwise_operands(self):
        layer = elementwise("e", 1000, operands=3)
        assert layer.input_elems == 3000
        assert layer.output_elems == 1000


class TestLayerSpecInvariants:
    def test_rejects_empty_name(self):
        with pytest.raises(ModelGraphError):
            matmul("", 4, 4, 4)

    def test_arithmetic_intensity(self):
        layer = matmul("m", 256, 256, 256)
        assert layer.arithmetic_intensity == pytest.approx(
            layer.macs / layer.total_elems
        )

    def test_memory_dominated_flag(self):
        gemv = matmul("v", 1, 4096, 4096)  # classic memory-bound GEMV
        big = matmul("b", 1024, 1024, 1024)
        assert gemv.is_memory_dominated
        assert not big.is_memory_dominated

    @given(
        m=st.integers(1, 512),
        n=st.integers(1, 512),
        k=st.integers(1, 512),
    )
    def test_matmul_macs_product(self, m, n, k):
        layer = matmul("m", m, n, k)
        assert layer.macs == m * n * k
        assert layer.total_elems == m * k + k * n + m * n

    @given(
        h=st.integers(4, 64),
        c_in=st.integers(1, 64),
        c_out=st.integers(1, 64),
        kernel=st.sampled_from([1, 3, 5]),
        stride=st.sampled_from([1, 2]),
    )
    def test_conv_macs_consistent_with_gemm(self, h, c_in, c_out, kernel,
                                            stride):
        layer = conv2d("c", h, h, c_in, c_out, kernel, stride)
        assert layer.macs == layer.m * layer.n * layer.k
        assert layer.output_elems == layer.m * layer.n
