"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.config import KiB, MiB, CacheConfig, NPUConfig, SoCConfig
from repro.models.zoo import build_model, load_benchmark_suite


@pytest.fixture(scope="session")
def soc() -> SoCConfig:
    """The paper's Table II SoC."""
    return SoCConfig()


@pytest.fixture(scope="session")
def small_soc() -> SoCConfig:
    """A scaled-down SoC for fast functional tests: 1 MiB cache, 2 slices,
    4 cores.  Keeps page/line geometry realistic while making exhaustive
    sweeps cheap."""
    return SoCConfig(
        npu=NPUConfig(scratchpad_bytes=64 * KiB),
        num_npu_cores=4,
        cache=CacheConfig(
            total_bytes=1 * MiB,
            num_slices=2,
            num_ways=8,
            npu_ways=6,
            page_bytes=32 * KiB,
        ),
    )


@pytest.fixture(scope="session")
def resnet():
    return build_model("RS.")


@pytest.fixture(scope="session")
def mobilenet():
    return build_model("MB.")


@pytest.fixture(scope="session")
def bert():
    return build_model("BE.")


@pytest.fixture(scope="session")
def suite():
    return load_benchmark_suite()
