"""Property-based invariant tests for allocation and way partitioning.

Hypothesis drives random operation sequences against the dynamic cache
allocator (Algorithm 1), the region manager's page accounting and the
way-mask registers, checking the safety properties the architecture rests
on: pages are never double-allocated, way partitions stay disjoint and
exact, and frees restore the capacity they took.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import KiB, CacheConfig
from repro.core.allocator import DynamicCacheAllocator
from repro.core.mct import (
    MappingCandidate,
    MappingCandidateTable,
    ModelMappingFile,
)
from repro.core.region import RegionManager
from repro.core.way_mask import WayMask
from repro.errors import ConfigError, PageAllocationError

PAGE = 32 * KiB
TOTAL_PAGES = 24


def _candidate(cache_bytes, dram=100.0, kind="LWM"):
    return MappingCandidate(
        kind=kind, usage_limit_bytes=cache_bytes, cache_bytes=cache_bytes,
        dram_bytes=dram, compute_cycles=10,
    )


def _mapping_file(num_layers, lwm_page_counts, lbm_pages):
    mcts = []
    for i in range(num_layers):
        mct = MappingCandidateTable(layer_index=i, layer_name=f"l{i}")
        mct.lwm = [
            _candidate(pages * PAGE, dram=1000.0 - pages)
            for pages in lwm_page_counts
        ]
        if lbm_pages:
            mct.lbm = _candidate(lbm_pages * PAGE, dram=10.0, kind="LBM")
        mct.est_latency_s = 0.001
        mcts.append(mct)
    return ModelMappingFile(
        model_name="toy",
        usage_levels=tuple(p * PAGE for p in lwm_page_counts),
        mcts=mcts,
        blocks=[(0, num_layers)],
    )


#: One allocator step: (task index, layer index, op code).
_ops = st.lists(
    st.tuples(
        st.integers(0, 3),            # task
        st.integers(0, 3),            # layer
        st.sampled_from(["begin", "end", "finish"]),
    ),
    min_size=1,
    max_size=60,
)


class TestDynamicAllocatorProperties:
    @given(ops=_ops, lbm_pages=st.integers(0, 10))
    @settings(max_examples=60, deadline=None)
    def test_no_page_overcommit_and_frees_restore_capacity(
        self, ops, lbm_pages
    ):
        """Random begin/end/finish sequences never overcommit pages, and
        finishing a task restores exactly the pages it held."""
        alloc = DynamicCacheAllocator(page_bytes=PAGE,
                                      total_pages=TOTAL_PAGES)
        mf = _mapping_file(num_layers=4, lwm_page_counts=(0, 2, 8),
                           lbm_pages=lbm_pages)
        registered = set()
        now = 0.0
        for task_idx, layer, op in ops:
            task = f"T{task_idx}"
            if task not in registered:
                alloc.register_task(task, mf)
                registered.add(task)
            state = alloc.task(task)
            if op == "begin":
                decision = alloc.select(task, layer, now)
                # Emulate the engine's grant check: commit only when the
                # delta fits in the currently idle pages.
                delta = decision.pages_needed - state.palloc
                if delta <= alloc.idle_pages():
                    alloc.commit(task, decision, layer)
            elif op == "end":
                alloc.end_layer(task, layer, now)
            else:
                idle_before = alloc.idle_pages()
                held = state.palloc
                alloc.finish_task(task, now)
                assert alloc.idle_pages() == idle_before + held
            assert 0 <= alloc.idle_pages() <= TOTAL_PAGES
            alloc.check_invariants()
            now += 0.0005

    @given(lbm_pages=st.integers(1, 12), start_pages=st.integers(0, 12))
    @settings(max_examples=40, deadline=None)
    def test_downgrade_chain_terminates_at_zero_pages(
        self, lbm_pages, start_pages
    ):
        """Repeated timeouts walk candidates strictly downward to the
        zero-page fallback (so waits cannot loop forever)."""
        alloc = DynamicCacheAllocator(page_bytes=PAGE, total_pages=4)
        mf = _mapping_file(num_layers=1, lwm_page_counts=(0, 2, 8),
                           lbm_pages=lbm_pages)
        alloc.register_task("T", mf)
        decision = alloc.select("T", 0, now=0.0)
        seen_pages = [decision.pages_needed]
        while True:
            smaller = alloc.downgrade("T", 0, decision)
            if smaller is None:
                break
            if decision.candidate.kind != "LBM":
                assert smaller.pages_needed < decision.pages_needed
            decision = smaller
            seen_pages.append(decision.pages_needed)
            assert len(seen_pages) < 20, "downgrade chain did not shrink"
        assert decision.pages_needed == 0


class TestRegionManagerProperties:
    @given(
        ops=st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, TOTAL_PAGES)),
            min_size=1, max_size=40,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_regions_never_share_pages(self, ops):
        """Random region resizes keep page ownership exclusive and
        conserve the page pool (no double allocation across tenants)."""
        cache = CacheConfig(
            total_bytes=1 * 1024 * 1024, num_slices=2, num_ways=8,
            npu_ways=6, page_bytes=32 * KiB,
        )
        manager = RegionManager(cache)
        live = set()
        for task_idx, target in ops:
            task = f"T{task_idx}"
            if task not in live:
                manager.create_region(task, 0)
                live.add(task)
            try:
                manager.resize_region(task, target)
            except PageAllocationError:
                pass  # growth beyond free pages: a legal wait condition
            owned = [
                pcpn for region in manager.regions()
                for pcpn in region.pcpns
            ]
            assert len(owned) == len(set(owned)), "page double-allocated"
            assert len(owned) + manager.free_pages == cache.num_pages
            manager.check_invariants()
        for task in sorted(live):
            held = manager.region_of(task).num_pages
            free_before = manager.free_pages
            assert manager.destroy_region(task) == held
            assert manager.free_pages == free_before + held
        assert manager.free_pages == cache.num_pages


class TestWayMaskProperties:
    @given(
        num_ways=st.integers(1, 32),
        repartitions=st.lists(st.integers(0, 32), max_size=8),
        data=st.data(),
    )
    @settings(max_examples=80, deadline=None)
    def test_partition_stays_exact_under_repartitioning(
        self, num_ways, repartitions, data
    ):
        """NPU and CPU way sets stay disjoint and exhaustive through any
        sequence of legal repartitions."""
        npu_ways = data.draw(st.integers(0, num_ways))
        mask = WayMask(num_ways, npu_ways)
        for target in repartitions:
            if 0 <= target <= num_ways:
                mask.repartition(target)
            else:
                with pytest.raises(ConfigError):
                    mask.repartition(target)
            npu = set(mask.npu_way_indices())
            cpu = set(mask.cpu_way_indices())
            assert npu | cpu == set(range(num_ways))
            assert not npu & cpu
            assert len(npu) == mask.npu_ways
            assert mask.npu_ways + mask.cpu_ways == num_ways
