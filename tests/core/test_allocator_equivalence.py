"""Equivalence proofs for the incremental allocator core.

The PR 3 refactor rebuilt Algorithm 1 around precomputed MCT geometry,
flat SoA predictor arrays and memoized decisions.  These tests drive the
new :class:`~repro.core.allocator.DynamicCacheAllocator` and the frozen
pre-refactor transcription (:mod:`tests.core.reference_algorithm1`)
through identical traces and assert *identical* outputs: decisions
(candidate identity, page counts, timeouts, LBM flags), grant order, and
the ``Tnext``/``Pnext``/``Palloc`` arrays after every step.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import KiB
from repro.core.allocator import DynamicCacheAllocator
from repro.core.mct import (
    MappingCandidate,
    MappingCandidateTable,
    ModelMappingFile,
)

from reference_algorithm1 import ReferenceAllocator

PAGE = 32 * KiB
TOTAL_PAGES = 24


def _candidate(cache_bytes, dram=100.0, kind="LWM"):
    return MappingCandidate(
        kind=kind, usage_limit_bytes=cache_bytes, cache_bytes=cache_bytes,
        dram_bytes=dram, compute_cycles=10,
    )


def _mapping_file(num_layers, lwm_page_counts, lbm_pages, blocks=None,
                  est=0.001):
    mcts = []
    for i in range(num_layers):
        mct = MappingCandidateTable(layer_index=i, layer_name=f"l{i}")
        mct.lwm = [
            _candidate(pages * PAGE, dram=1000.0 - pages)
            for pages in lwm_page_counts
        ]
        if lbm_pages:
            mct.lbm = _candidate(lbm_pages * PAGE, dram=10.0, kind="LBM")
        mct.est_latency_s = est * (1 + 0.1 * i)
        mcts.append(mct)
    return ModelMappingFile(
        model_name="toy",
        usage_levels=tuple(p * PAGE for p in lwm_page_counts),
        mcts=mcts,
        blocks=blocks if blocks is not None else [(0, num_layers)],
    )


def _decisions_equal(new, ref):
    """Decision equivalence: same candidate object, pages, timeout and
    LBM flag (timeouts are compared exactly — they must be the same
    float arithmetic)."""
    if new is None or ref is None:
        return new is None and ref is None
    return (
        new.candidate is ref.candidate
        and new.pages_needed == ref.pages_needed
        and (new.timeout_s == ref.timeout_s
             or (math.isinf(new.timeout_s) and math.isinf(ref.timeout_s)))
        and new.enables_lbm == ref.enables_lbm
    )


def _states_equal(alloc, ref, task_ids):
    for task in task_ids:
        s_new = alloc.task(task)
        s_ref = ref.task(task)
        if (s_new.palloc, s_new.pnext, s_new.lbm_block) != \
                (s_ref.palloc, s_ref.pnext, s_ref.lbm_block):
            return False
        if s_new.tnext != s_ref.tnext and not (
            math.isinf(s_new.tnext) and math.isinf(s_ref.tnext)
        ):
            return False
    return True


#: One allocator step: (task index, layer index, op code).
_ops = st.lists(
    st.tuples(
        st.integers(0, 3),
        st.integers(0, 3),
        st.sampled_from(["begin", "begin", "begin", "retry", "end",
                         "finish"]),
    ),
    min_size=1,
    max_size=80,
)


class TestAlgorithm1Equivalence:
    @given(
        ops=_ops,
        lbm_pages=st.integers(0, 12),
        lwm_counts=st.lists(
            st.integers(0, 10), min_size=1, max_size=5
        ).map(lambda xs: tuple(sorted(set([0] + xs)))),
        split_blocks=st.booleans(),
    )
    @settings(max_examples=120, deadline=None)
    def test_random_traces_produce_identical_algorithm1_outputs(
        self, ops, lbm_pages, lwm_counts, split_blocks
    ):
        """Random multi-tenant admit/begin/retry/end/finish traces give
        byte-identical decisions, grants and predictor arrays."""
        blocks = [(0, 2), (2, 4)] if split_blocks else [(0, 4)]
        mf = _mapping_file(4, lwm_counts, lbm_pages, blocks=blocks)
        # The two allocators share the mapping file: candidate identity
        # comparisons below are therefore exact object comparisons.
        alloc = DynamicCacheAllocator(page_bytes=PAGE,
                                      total_pages=TOTAL_PAGES)
        ref = ReferenceAllocator(page_bytes=PAGE,
                                 total_pages=TOTAL_PAGES)
        registered = []
        last_decision = {}
        now = 0.0
        for task_idx, layer, op in ops:
            task = f"T{task_idx}"
            if task not in registered:
                alloc.register_task(task, mf)
                ref.register_task(task, mf)
                registered.append(task)
            if op == "begin":
                d_new = alloc.select(task, layer, now)
                d_ref = ref.select(task, layer, now)
                assert _decisions_equal(d_new, d_ref)
                last_decision[task] = (d_new, d_ref, layer)
                # Emulate the engine's grant check on both sides.
                delta = d_new.pages_needed - alloc.task(task).palloc
                if delta <= alloc.idle_pages():
                    alloc.commit(task, d_new, layer)
                    ref.commit(task, d_ref, layer)
            elif op == "retry":
                entry = last_decision.get(task)
                if entry is not None:
                    d_new, d_ref, d_layer = entry
                    s_new = alloc.downgrade(task, d_layer, d_new)
                    s_ref = ref.downgrade(task, d_layer, d_ref)
                    assert _decisions_equal(s_new, s_ref)
                    if s_new is not None:
                        last_decision[task] = (s_new, s_ref, d_layer)
            elif op == "end":
                alloc.end_layer(task, layer, now)
                ref.end_layer(task, layer, now)
            else:
                alloc.finish_task(task, now)
                ref.finish_task(task, now)
            assert alloc.idle_pages() == ref.idle_pages()
            assert alloc.pred_avail_pages(now + 0.002, "T0") == \
                ref.pred_avail_pages(now + 0.002, "T0")
            assert _states_equal(alloc, ref, registered)
            alloc.check_invariants()
            now += 0.0004


class TestSelectionRegression:
    """Hand-built MCT cases pinning the exact selection semantics the
    sorted-array refactor must reproduce (satellite: the quadratic
    ``select`` inner loop is gone, its output is not)."""

    def _setup(self, lwm_counts, lbm_pages=0, blocks=None):
        mf = _mapping_file(2, lwm_counts, lbm_pages, blocks=blocks)
        alloc = DynamicCacheAllocator(page_bytes=PAGE, total_pages=24)
        alloc.register_task("A", mf)
        return alloc, mf

    def test_largest_fitting_candidate_wins(self):
        alloc, mf = self._setup((0, 1, 2, 8))
        decision = alloc.select("A", 1, now=0.0)
        assert decision.pages_needed == 8
        assert decision.candidate is mf.mcts[1].lwm[3]

    def test_prediction_bound_limits_selection(self):
        alloc, mf = self._setup((0, 1, 2, 8))
        hog = alloc.register_task("B", mf)
        hog.palloc = 21
        hog.pnext = 21
        hog.tnext = math.inf
        decision = alloc.select("A", 1, now=0.0)
        # Only 3 pages predicted available: the 2-page candidate wins.
        assert decision.pages_needed == 2
        assert decision.candidate is mf.mcts[1].lwm[2]

    def test_tied_page_counts_select_first_candidate(self):
        """Candidates with equal page need: the original scan kept the
        first one (strict ``best_pages < pages`` update)."""
        mf = _mapping_file(2, (0,), 0)
        for mct in mf.mcts:
            # Two distinct candidates, both needing exactly one page.
            mct.lwm = [
                _candidate(0),
                _candidate(10, dram=500.0),
                _candidate(PAGE, dram=400.0),
            ]
            mct.invalidate_geometry()
        mf.invalidate_caches()
        alloc = DynamicCacheAllocator(page_bytes=PAGE, total_pages=24)
        alloc.register_task("A", mf)
        decision = alloc.select("A", 1, now=0.0)
        assert decision.pages_needed == 1
        assert decision.candidate is mf.mcts[1].lwm[1]

    def test_downgrade_ties_pick_last_smaller_candidate(self):
        """``smaller_than`` kept the *last* candidate below the target."""
        mf = _mapping_file(2, (0,), 0)
        for mct in mf.mcts:
            mct.lwm = [
                _candidate(0),
                _candidate(10, dram=500.0),
                _candidate(PAGE, dram=400.0),
                _candidate(4 * PAGE, dram=300.0),
            ]
            mct.invalidate_geometry()
        mf.invalidate_caches()
        alloc = DynamicCacheAllocator(page_bytes=PAGE, total_pages=24)
        alloc.register_task("A", mf)
        decision = alloc.select("A", 1, now=0.0)
        assert decision.pages_needed == 4
        smaller = alloc.downgrade("A", 1, decision)
        # Both 1-page candidates are below 4; the last one wins.
        assert smaller.candidate is mf.mcts[1].lwm[2]

    def test_zero_prediction_falls_back_to_first_candidate(self):
        alloc, mf = self._setup((0, 2, 8))
        hog = alloc.register_task("B", mf)
        hog.palloc = 24
        hog.pnext = 24
        hog.tnext = math.inf
        decision = alloc.select("A", 1, now=0.0)
        assert decision.candidate is mf.mcts[1].lwm[0]
        assert decision.pages_needed == 0

    def test_single_candidate_layers_skip_prediction(self):
        """Single-level MCTs select without consulting co-tenants (the
        fast path must not change the outcome)."""
        mf = _mapping_file(2, (0,), 0)
        alloc = DynamicCacheAllocator(page_bytes=PAGE, total_pages=24)
        alloc.register_task("A", mf)
        decision = alloc.select("A", 0, now=0.0)
        assert decision.candidate is mf.mcts[0].lwm[0]
        assert decision.timeout_s == pytest.approx(
            mf.mcts[0].est_latency_s * 0.2
        )

    def test_unsorted_lwm_keeps_first_candidate_fallback(self):
        """On a (hand-built, unvalidated) unsorted LWM list whose first
        candidate exceeds the budget, the original scan keeps ``lwm[0]``
        even though smaller candidates would fit — the bisect path must
        reproduce that, not pick the largest fitting candidate."""
        mf = _mapping_file(2, (0,), 0)
        for mct in mf.mcts:
            mct.lwm = [
                _candidate(5 * PAGE, dram=500.0),
                _candidate(3 * PAGE, dram=400.0),
            ]
            mct.invalidate_geometry()
        mf.invalidate_caches()
        alloc = DynamicCacheAllocator(page_bytes=PAGE, total_pages=24)
        ref = ReferenceAllocator(page_bytes=PAGE, total_pages=24)
        alloc.register_task("A", mf)
        ref.register_task("A", mf)
        # Constrain the prediction to 4 pages via a hogging co-tenant.
        for a in (alloc, ref):
            hog = a.register_task("B", mf)
            hog.palloc = 20
            hog.pnext = 20
            hog.tnext = math.inf
        d_new = alloc.select("A", 1, now=0.0)
        d_ref = ref.select("A", 1, now=0.0)
        assert _decisions_equal(d_new, d_ref)
        assert d_new.candidate is mf.mcts[1].lwm[0]

    def test_block_head_timeout_uses_block_latency(self):
        alloc, mf = self._setup((0, 1), lbm_pages=4, blocks=[(0, 2)])
        decision = alloc.select("A", 0, now=0.0)
        assert decision.candidate.kind == "LBM"
        assert decision.enables_lbm
        block_est = mf.mcts[0].est_latency_s + mf.mcts[1].est_latency_s
        assert decision.timeout_s == block_est * 0.2
