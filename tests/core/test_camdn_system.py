"""Integration tests for the CaMDNSystem facade."""

import pytest

from repro.config import SoCConfig
from repro.core.camdn import CaMDNSystem
from repro.errors import SimulationError
from repro.models.zoo import build_model


@pytest.fixture(scope="module")
def soc():
    return SoCConfig()


@pytest.fixture
def system(soc):
    return CaMDNSystem(soc, mode="full")


class TestTaskLifecycle:
    def test_admit_produces_mapping(self, system):
        mf = system.admit_task("t0", build_model("MB."))
        assert len(mf.mcts) == len(build_model("MB.").layers)
        assert system.active_tasks == 1

    def test_retire_frees_everything(self, system):
        system.admit_task("t0", build_model("MB."))
        grant = system.begin_layer("t0", 0, now=0.0)
        assert grant.granted
        system.retire_task("t0", now=1.0)
        assert system.active_tasks == 0
        assert system.regions.free_pages == system.soc.cache.num_pages

    def test_unknown_mode_rejected(self, soc):
        with pytest.raises(SimulationError):
            CaMDNSystem(soc, mode="bogus")


class TestLayerProtocol:
    def test_full_inference_walkthrough(self, system):
        graph = build_model("MB.")
        system.admit_task("t0", graph)
        now = 0.0
        for layer_index in range(len(graph.layers)):
            grant = system.begin_layer("t0", layer_index, now)
            while not grant.granted:
                grant = system.retry_layer("t0", layer_index, grant)
            system.check_invariants()
            now += 1e-4
            system.finish_layer("t0", layer_index, now)
        system.retire_task("t0", now)

    def test_grant_resizes_region(self, system):
        system.admit_task("t0", build_model("MB."))
        grant = system.begin_layer("t0", 0, now=0.0)
        assert grant.granted
        region = system.regions.region_of("t0")
        assert region.num_pages == grant.decision.pages_needed

    def test_contended_grants_eventually_succeed(self, system):
        """With many tenants, downgrading must always terminate at the
        zero-page fallback."""
        graph = build_model("MB.")
        for i in range(16):
            system.admit_task(f"t{i}", graph)
        for i in range(16):
            grant = system.begin_layer(f"t{i}", 0, now=0.0)
            retries = 0
            while not grant.granted:
                grant = system.retry_layer(f"t{i}", 0, grant)
                retries += 1
                assert retries < 20
            system.check_invariants()

    def test_page_conservation_under_contention(self, system):
        graph = build_model("EF.")
        for i in range(8):
            system.admit_task(f"t{i}", graph)
        now = 0.0
        for layer_index in range(0, 20):
            for i in range(8):
                grant = system.begin_layer(f"t{i}", layer_index, now)
                while not grant.granted:
                    grant = system.retry_layer(f"t{i}", layer_index, grant)
                system.finish_layer(f"t{i}", layer_index, now)
            now += 1e-4
            system.check_invariants()


class TestHWOnlyMode:
    def test_static_share_respected(self, soc):
        system = CaMDNSystem(soc, mode="hw_only")
        graph = build_model("RS.")
        for i in range(4):
            system.admit_task(f"t{i}", graph)
        share = soc.cache.num_pages // 4
        for i in range(4):
            grant = system.begin_layer(f"t{i}", 0, now=0.0)
            assert grant.granted
            assert grant.decision.pages_needed <= share

    def test_hw_only_never_waits_on_first_grant(self, soc):
        system = CaMDNSystem(soc, mode="hw_only")
        graph = build_model("MB.")
        for i in range(16):
            system.admit_task(f"t{i}", graph)
        for i in range(16):
            grant = system.begin_layer(f"t{i}", 0, now=0.0)
            assert grant.granted


class TestFullVsHWOnly:
    def test_full_uses_more_cache_when_alone(self, soc):
        """A lone tenant under Full should claim at least as much cache as
        under the 1/16-style static policy with many admitted tenants."""
        full = CaMDNSystem(soc, mode="full")
        full.admit_task("solo", build_model("RS."))
        grant = full.begin_layer("solo", 2, now=0.0)
        assert grant.granted

        static = CaMDNSystem(soc, mode="hw_only")
        for i in range(16):
            static.admit_task(f"t{i}", build_model("RS."))
        static_grant = static.begin_layer("t0", 2, now=0.0)
        assert grant.decision.pages_needed >= \
            static_grant.decision.pages_needed


class TestRegionlessTasks:
    """Tasks registered on the allocator directly (never admitted) have
    no region: the layer protocol must degrade to denied grants, not
    crash (the pre-context code converted the missing-region resize
    failure into a denied grant)."""

    def test_begin_layer_without_region_is_denied(self, soc):
        system = CaMDNSystem(soc, mode="full")
        mf = system.mapper.map_model(build_model("MB."))
        system.allocator.register_task("ghost-region", mf)
        grant = system.begin_layer("ghost-region", 0, now=0.0)
        assert not grant.granted

    def test_retry_and_finish_without_region(self, soc):
        system = CaMDNSystem(soc, mode="full")
        mf = system.mapper.map_model(build_model("MB."))
        system.allocator.register_task("ghost-region", mf)
        grant = system.begin_layer("ghost-region", 0, now=0.0)
        while grant.decision.pages_needed:
            grant = system.retry_layer("ghost-region", 0, grant)
        assert not grant.granted  # even zero pages: no region to grant
        system.finish_layer("ghost-region", 0, now=0.001)
        assert system.allocator.task("ghost-region").pnext >= 0
