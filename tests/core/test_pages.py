"""Tests for the cache page allocator, including exclusivity invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pages import CachePageAllocator
from repro.errors import PageAllocationError


class TestAllocate:
    def test_initial_state(self):
        alloc = CachePageAllocator(384)
        assert alloc.free_pages == 384
        assert alloc.used_pages == 0

    def test_allocate_grants_exact_count(self):
        alloc = CachePageAllocator(16)
        grant = alloc.allocate("A", 5)
        assert grant.num_pages == 5
        assert alloc.free_pages == 11

    def test_exclusivity(self):
        alloc = CachePageAllocator(16)
        a = set(alloc.allocate("A", 8).pcpns)
        b = set(alloc.allocate("B", 8).pcpns)
        assert a & b == set()

    def test_over_allocation_raises(self):
        alloc = CachePageAllocator(4)
        alloc.allocate("A", 3)
        with pytest.raises(PageAllocationError):
            alloc.allocate("B", 2)

    def test_zero_allocation_ok(self):
        alloc = CachePageAllocator(4)
        grant = alloc.allocate("A", 0)
        assert grant.num_pages == 0

    def test_negative_allocation_raises(self):
        with pytest.raises(PageAllocationError):
            CachePageAllocator(4).allocate("A", -1)

    def test_owner_of(self):
        alloc = CachePageAllocator(8)
        grant = alloc.allocate("A", 2)
        for pcpn in grant.pcpns:
            assert alloc.owner_of(pcpn) == "A"
        free = next(
            p for p in range(8) if p not in grant.pcpns
        )
        assert alloc.owner_of(free) is None


class TestRelease:
    def test_release_all(self):
        alloc = CachePageAllocator(8)
        alloc.allocate("A", 5)
        released = alloc.release("A")
        assert released == 5
        assert alloc.free_pages == 8

    def test_release_specific(self):
        alloc = CachePageAllocator(8)
        grant = alloc.allocate("A", 4)
        alloc.release("A", list(grant.pcpns[:2]))
        assert len(alloc.pages_of("A")) == 2

    def test_release_foreign_page_raises(self):
        alloc = CachePageAllocator(8)
        alloc.allocate("A", 2)
        grant_b = alloc.allocate("B", 2)
        with pytest.raises(PageAllocationError):
            alloc.release("A", list(grant_b.pcpns))

    def test_released_pages_are_reusable(self):
        alloc = CachePageAllocator(4)
        alloc.allocate("A", 4)
        alloc.release("A")
        assert alloc.allocate("B", 4).num_pages == 4


class TestResize:
    def test_grow(self):
        alloc = CachePageAllocator(16)
        alloc.allocate("A", 4)
        delta = alloc.resize_owner("A", 10)
        assert delta == 6
        assert len(alloc.pages_of("A")) == 10

    def test_shrink(self):
        alloc = CachePageAllocator(16)
        alloc.allocate("A", 10)
        delta = alloc.resize_owner("A", 3)
        assert delta == -7
        assert alloc.free_pages == 13

    def test_resize_to_same_is_noop(self):
        alloc = CachePageAllocator(16)
        alloc.allocate("A", 4)
        assert alloc.resize_owner("A", 4) == 0

    def test_resize_new_owner_from_zero(self):
        alloc = CachePageAllocator(16)
        assert alloc.resize_owner("A", 5) == 5


class TestInvariants:
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["alloc", "free", "resize"]),
                st.sampled_from(["A", "B", "C"]),
                st.integers(0, 12),
            ),
            max_size=40,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_random_op_sequences_conserve_pages(self, ops):
        alloc = CachePageAllocator(24)
        for op, owner, count in ops:
            try:
                if op == "alloc":
                    alloc.allocate(owner, count)
                elif op == "free":
                    alloc.release(owner)
                else:
                    alloc.resize_owner(owner, count)
            except PageAllocationError:
                pass  # over-allocation / double-release are legal rejections
            alloc.check_invariants()
            assert alloc.free_pages + alloc.used_pages == 24
