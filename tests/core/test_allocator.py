"""Tests for Algorithm 1 (dynamic cache allocation)."""

import math

import pytest

from repro.config import KiB
from repro.core.allocator import (
    LOOKAHEAD_FRACTION,
    DynamicCacheAllocator,
)
from repro.core.mct import (
    MappingCandidate,
    MappingCandidateTable,
    ModelMappingFile,
)
from repro.errors import SimulationError

PAGE = 32 * KiB


def _candidate(cache_bytes, dram=100.0, kind="LWM"):
    return MappingCandidate(
        kind=kind, usage_limit_bytes=cache_bytes, cache_bytes=cache_bytes,
        dram_bytes=dram, compute_cycles=10,
    )


def _mapping_file(num_layers=4, lwm_sizes=(0, PAGE, 4 * PAGE),
                  lbm_pages=6, blocks=None, est=0.001):
    mcts = []
    for i in range(num_layers):
        mct = MappingCandidateTable(layer_index=i, layer_name=f"l{i}")
        mct.lwm = [
            _candidate(size, dram=1000.0 - size / PAGE)
            for size in lwm_sizes
        ]
        if lbm_pages:
            mct.lbm = _candidate(lbm_pages * PAGE, dram=10.0, kind="LBM")
        mct.est_latency_s = est
        mcts.append(mct)
    return ModelMappingFile(
        model_name="toy", usage_levels=tuple(lwm_sizes), mcts=mcts,
        blocks=blocks if blocks is not None else [(0, num_layers)],
    )


@pytest.fixture
def allocator():
    return DynamicCacheAllocator(page_bytes=PAGE, total_pages=32)


class TestTaskLifecycle:
    def test_register_unregister(self, allocator):
        allocator.register_task("A", _mapping_file())
        assert "A" in allocator.tasks
        allocator.unregister_task("A")
        assert "A" not in allocator.tasks

    def test_double_register_raises(self, allocator):
        allocator.register_task("A", _mapping_file())
        with pytest.raises(SimulationError):
            allocator.register_task("A", _mapping_file())

    def test_unknown_task_raises(self, allocator):
        with pytest.raises(SimulationError):
            allocator.select("ghost", 0, 0.0)


class TestPredAvailPages:
    def test_all_idle_initially(self, allocator):
        allocator.register_task("A", _mapping_file())
        assert allocator.pred_avail_pages(1.0, "A") == 32

    def test_counts_cotenant_frees(self, allocator):
        allocator.register_task("A", _mapping_file())
        allocator.register_task("B", _mapping_file())
        state_b = allocator.task("B")
        state_b.palloc = 10
        state_b.pnext = 2
        state_b.tnext = 0.5
        # B is predicted to free 8 pages before t=1.0.
        assert allocator.pred_avail_pages(1.0, "A") == (32 - 10) + 8

    def test_ignores_frees_beyond_horizon(self, allocator):
        allocator.register_task("A", _mapping_file())
        allocator.register_task("B", _mapping_file())
        state_b = allocator.task("B")
        state_b.palloc = 10
        state_b.pnext = 2
        state_b.tnext = 5.0
        assert allocator.pred_avail_pages(1.0, "A") == 32 - 10

    def test_excludes_current_task(self, allocator):
        allocator.register_task("A", _mapping_file())
        state = allocator.task("A")
        state.palloc = 10
        state.pnext = 0
        state.tnext = 0.0
        # A's own pages are not "predicted frees" for itself.
        assert allocator.pred_avail_pages(1.0, "A") == 32 - 10


class TestSelect:
    def test_lbm_preferred_at_block_head_when_pages_available(
            self, allocator):
        allocator.register_task("A", _mapping_file())
        decision = allocator.select("A", 0, now=0.0)
        assert decision.candidate.kind == "LBM"
        assert decision.enables_lbm
        assert decision.timeout_s == pytest.approx(
            4 * 0.001 * LOOKAHEAD_FRACTION
        )

    def test_enabled_lbm_sticks_with_infinite_timeout(self, allocator):
        allocator.register_task("A", _mapping_file())
        decision = allocator.select("A", 0, now=0.0)
        allocator.commit("A", decision, 0)
        decision2 = allocator.select("A", 1, now=0.001)
        assert decision2.candidate.kind == "LBM"
        assert math.isinf(decision2.timeout_s)

    def test_lbm_skipped_when_prediction_too_small(self, allocator):
        # LBM needs 40 pages but the pool has 32.
        mf = _mapping_file(lbm_pages=40)
        allocator.register_task("A", mf)
        decision = allocator.select("A", 0, now=0.0)
        assert decision.candidate.kind == "LWM"

    def test_largest_fitting_lwm_selected(self, allocator):
        mf = _mapping_file(lbm_pages=0)
        allocator.register_task("A", mf)
        decision = allocator.select("A", 1, now=0.0)
        # mid-block layer, no LBM: largest LWM (4 pages) fits 32.
        assert decision.pages_needed == 4

    def test_lwm_bounded_by_prediction(self, allocator):
        mf = _mapping_file(lbm_pages=0)
        allocator.register_task("A", mf)
        allocator.register_task("B", _mapping_file(lbm_pages=0))
        hog = allocator.task("B")
        hog.palloc = 30
        hog.pnext = 30
        hog.tnext = math.inf
        decision = allocator.select("A", 1, now=0.0)
        # Only 2 pages free forever -> the 1-page candidate wins.
        assert decision.pages_needed == 1


class TestDowngrade:
    def test_walks_to_smaller(self, allocator):
        mf = _mapping_file(lbm_pages=0)
        allocator.register_task("A", mf)
        decision = allocator.select("A", 1, now=0.0)
        smaller = allocator.downgrade("A", 1, decision)
        assert smaller.pages_needed < decision.pages_needed

    def test_zero_page_has_no_smaller(self, allocator):
        mf = _mapping_file(lwm_sizes=(0,), lbm_pages=0)
        allocator.register_task("A", mf)
        decision = allocator.select("A", 1, now=0.0)
        assert allocator.downgrade("A", 1, decision) is None

    def test_lbm_downgrades_to_lwm(self, allocator):
        allocator.register_task("A", _mapping_file())
        decision = allocator.select("A", 0, now=0.0)
        assert decision.candidate.kind == "LBM"
        downgraded = allocator.downgrade("A", 0, decision)
        assert downgraded.candidate.kind == "LWM"


class TestEndLayerPredictions:
    def test_updates_tnext_and_pnext(self, allocator):
        allocator.register_task("A", _mapping_file(lbm_pages=0))
        decision = allocator.select("A", 0, now=0.0)
        allocator.commit("A", decision, 0)
        allocator.end_layer("A", 0, now=0.002)
        state = allocator.task("A")
        assert state.tnext == pytest.approx(0.002 + 0.001)
        assert state.pnext <= state.palloc

    def test_last_layer_frees_everything(self, allocator):
        mf = _mapping_file(num_layers=2, lbm_pages=0)
        allocator.register_task("A", mf)
        decision = allocator.select("A", 1, now=0.0)
        allocator.commit("A", decision, 1)
        allocator.end_layer("A", 1, now=0.001)
        assert allocator.task("A").pnext == 0

    def test_lbm_block_expires_at_tail(self, allocator):
        mf = _mapping_file(num_layers=4, blocks=[(0, 2), (2, 4)])
        allocator.register_task("A", mf)
        decision = allocator.select("A", 0, now=0.0)
        allocator.commit("A", decision, 0)
        assert allocator.task("A").lbm_block == (0, 2)
        allocator.end_layer("A", 0, now=0.001)
        allocator.end_layer("A", 1, now=0.002)
        assert allocator.task("A").lbm_block is None

    def test_finish_task_resets(self, allocator):
        allocator.register_task("A", _mapping_file())
        decision = allocator.select("A", 0, now=0.0)
        allocator.commit("A", decision, 0)
        allocator.finish_task("A", now=1.0)
        state = allocator.task("A")
        assert state.palloc == 0
        assert state.lbm_block is None

    def test_invariant_checker(self, allocator):
        allocator.register_task("A", _mapping_file())
        allocator.task("A").palloc = 100
        with pytest.raises(SimulationError):
            allocator.check_invariants()
