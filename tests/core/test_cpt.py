"""Tests for the cache page table (Section III-B3, Figure 5(b))."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import CacheConfig, KiB, MiB
from repro.core.cpt import CachePageTable
from repro.errors import CacheAddressError, CPTError


@pytest.fixture
def cpt():
    return CachePageTable(CacheConfig())


class TestTableManagement:
    def test_paper_sram_budget(self, cpt):
        # Paper: <= 512 entries x 3 bytes = 1.5 KiB for a 16 MiB cache.
        # With a 12/16 way split the NPU subspace holds 384 pages.
        assert cpt.max_entries == 384
        assert cpt.sram_bytes == 384 * 3

    def test_full_cache_cpt_is_512_entries(self):
        cache = CacheConfig(npu_ways=16)
        assert CachePageTable(cache).max_entries == 512

    def test_map_unmap(self, cpt):
        cpt.map(0, 42)
        assert cpt.lookup(0) == 42
        assert cpt.unmap(0) == 42
        assert cpt.lookup(0) is None

    def test_double_map_raises(self, cpt):
        cpt.map(0, 1)
        with pytest.raises(CPTError):
            cpt.map(0, 2)

    def test_unmap_invalid_raises(self, cpt):
        with pytest.raises(CPTError):
            cpt.unmap(3)

    def test_out_of_range_vcpn(self, cpt):
        with pytest.raises(CPTError):
            cpt.map(cpt.max_entries, 0)

    def test_out_of_range_pcpn(self, cpt):
        with pytest.raises(CPTError):
            cpt.map(0, 10_000)

    def test_remap_all(self, cpt):
        cpt.remap_all([5, 6, 7])
        assert cpt.num_mapped == 3
        assert cpt.mapped_vcpns() == [0, 1, 2]
        assert cpt.lookup(1) == 6


class TestTranslation:
    def test_identity_page_offset_carried(self, cpt):
        cpt.map(0, 0)
        paddr = cpt.translate(100)
        assert paddr.byte_offset == 100 % 64

    def test_unmapped_page_faults(self, cpt):
        with pytest.raises(CacheAddressError):
            cpt.translate(0)

    def test_negative_vcaddr(self, cpt):
        with pytest.raises(CacheAddressError):
            cpt.translate(-1)

    def test_beyond_virtual_space(self, cpt):
        with pytest.raises(CacheAddressError):
            cpt.translate(cpt.max_entries * 32 * KiB)

    def test_npu_way_range(self, cpt):
        """Decoded ways always land inside the NPU subspace (ways 4..15
        for the 12/16 split)."""
        cpt.remap_all(list(range(10)))
        for vcaddr in range(0, 10 * 32 * KiB, 4096):
            paddr = cpt.translate(vcaddr)
            assert 4 <= paddr.way_index < 16

    def test_consecutive_lines_interleave_slices(self, cpt):
        """Figure 5(b): consecutive data lines spread across all slices."""
        cpt.map(0, 0)
        slices = [
            cpt.translate(i * 64).slice_index for i in range(8)
        ]
        assert sorted(slices) == list(range(8))

    def test_translation_is_injective(self, cpt):
        cpt.remap_all(list(range(16)))
        seen = set()
        for vcaddr in range(0, 16 * 32 * KiB, 64):
            paddr = cpt.translate(vcaddr)
            key = paddr.as_tuple()[:3]  # slice/set/way identify the line
            assert key not in seen
            seen.add(key)


class TestTranslationProperties:
    @given(
        pcpns=st.lists(
            st.integers(0, 383), unique=True, min_size=1, max_size=32
        ),
        data=st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_distinct_pages_never_collide(self, pcpns, data):
        cpt = CachePageTable(CacheConfig())
        cpt.remap_all(pcpns)
        vcpn_a = data.draw(st.integers(0, len(pcpns) - 1))
        vcpn_b = data.draw(st.integers(0, len(pcpns) - 1))
        offset = data.draw(
            st.integers(0, 32 * KiB - 1).map(lambda x: x - x % 64)
        )
        pa = cpt.translate(vcpn_a * 32 * KiB + offset)
        pb = cpt.translate(vcpn_b * 32 * KiB + offset)
        if vcpn_a != vcpn_b:
            assert pa.as_tuple()[:3] != pb.as_tuple()[:3]
        else:
            assert pa == pb

    @given(offset=st.integers(0, 32 * KiB - 1))
    def test_byte_offset_roundtrip(self, offset):
        cpt = CachePageTable(CacheConfig())
        cpt.map(0, 7)
        paddr = cpt.translate(offset)
        assert paddr.byte_offset == offset % 64
        assert paddr.pcpn == 7

    @given(cache_mb=st.sampled_from([4, 8, 16, 32, 64]))
    def test_scaling_cache_sizes(self, cache_mb):
        cache = CacheConfig(total_bytes=cache_mb * MiB)
        cpt = CachePageTable(cache)
        assert cpt.max_entries == cache.num_pages
        cpt.map(0, cache.num_pages - 1)
        paddr = cpt.translate(0)
        assert paddr.slice_index < cache.num_slices
        assert paddr.set_index < cache.sets_per_slice
