"""Tests for mapping candidate tables (Section III-C3)."""

import pytest

from repro.config import KiB
from repro.core.mct import (
    CacheMapEntry,
    LoopLevel,
    MappingCandidate,
    MappingCandidateTable,
    ModelMappingFile,
)
from repro.errors import MappingError

PAGE = 32 * KiB


def _candidate(cache_bytes: int, dram: float = 100.0,
               kind: str = "LWM") -> MappingCandidate:
    return MappingCandidate(
        kind=kind,
        usage_limit_bytes=cache_bytes,
        cache_bytes=cache_bytes,
        dram_bytes=dram,
        compute_cycles=10,
    )


def _mct(cache_sizes) -> MappingCandidateTable:
    mct = MappingCandidateTable(layer_index=0, layer_name="l0")
    mct.lwm = [_candidate(c) for c in cache_sizes]
    return mct


class TestLoopLevel:
    def test_valid(self):
        LoopLevel("m", 4, "dram")

    def test_rejects_bad_dim(self):
        with pytest.raises(MappingError):
            LoopLevel("x", 4, "dram")

    def test_rejects_bad_level(self):
        with pytest.raises(MappingError):
            LoopLevel("m", 4, "l3")

    def test_rejects_zero_factor(self):
        with pytest.raises(MappingError):
            LoopLevel("m", 0, "npu")


class TestCacheMapEntry:
    def test_bypass_has_no_size(self):
        with pytest.raises(MappingError):
            CacheMapEntry("weight", 0, 100, reuse=False, bypass=True)

    def test_reuse_bypass_conflict(self):
        with pytest.raises(MappingError):
            CacheMapEntry("weight", 0, 0, reuse=True, bypass=True)

    def test_valid_pinned(self):
        entry = CacheMapEntry("input", 0x200, 0x100, reuse=True,
                              bypass=False)
        assert entry.size == 0x100


class TestMappingCandidate:
    def test_pages_needed_rounds_up(self):
        candidate = _candidate(PAGE + 1)
        assert candidate.pages_needed(PAGE) == 2

    def test_zero_cache_needs_zero_pages(self):
        assert _candidate(0).pages_needed(PAGE) == 0

    def test_rejects_over_limit(self):
        with pytest.raises(MappingError):
            MappingCandidate(
                kind="LWM", usage_limit_bytes=10, cache_bytes=20,
                dram_bytes=0, compute_cycles=0,
            )

    def test_rejects_unknown_kind(self):
        with pytest.raises(MappingError):
            MappingCandidate(
                kind="XXX", usage_limit_bytes=0, cache_bytes=0,
                dram_bytes=0, compute_cycles=0,
            )

    def test_cache_map_cannot_exceed_claim(self):
        with pytest.raises(MappingError):
            MappingCandidate(
                kind="LWM", usage_limit_bytes=64, cache_bytes=64,
                dram_bytes=0, compute_cycles=0,
                cache_map=(
                    CacheMapEntry("weight", 0, 128, reuse=True,
                                  bypass=False),
                ),
            )


class TestMCT:
    def test_validate_requires_zero_fallback(self):
        mct = _mct([PAGE])
        with pytest.raises(MappingError):
            mct.validate(PAGE)

    def test_validate_requires_sorted(self):
        mct = MappingCandidateTable(0, "l0")
        mct.lwm = [_candidate(2 * PAGE), _candidate(0)]
        with pytest.raises(MappingError):
            mct.validate(PAGE)

    def test_validate_ok(self):
        _mct([0, PAGE, 4 * PAGE]).validate(PAGE)

    def test_smaller_than_walks_down(self):
        mct = _mct([0, PAGE, 4 * PAGE])
        smaller = mct.smaller_than(mct.lwm[2], PAGE)
        assert smaller is mct.lwm[1]
        smallest = mct.smaller_than(smaller, PAGE)
        assert smallest is mct.lwm[0]
        assert mct.smaller_than(smallest, PAGE) is None


class TestModelMappingFile:
    def _file(self):
        mcts = []
        for i in range(4):
            mct = _mct([0, PAGE])
            mct.layer_index = i
            mct.est_latency_s = 0.001 * (i + 1)
            mcts.append(mct)
        return ModelMappingFile(
            model_name="toy", usage_levels=(0, PAGE),
            mcts=mcts, blocks=[(0, 2), (2, 4)],
        )

    def test_mct_for(self):
        mf = self._file()
        assert mf.mct_for(2).layer_index == 2
        with pytest.raises(MappingError):
            mf.mct_for(10)

    def test_block_of(self):
        mf = self._file()
        assert mf.block_of(0) == (0, 2)
        assert mf.block_of(3) == (2, 4)

    def test_is_block_head(self):
        mf = self._file()
        assert mf.is_block_head(0)
        assert not mf.is_block_head(1)
        assert mf.is_block_head(2)

    def test_block_est_latency_sums_members(self):
        mf = self._file()
        assert mf.block_est_latency_s(0) == pytest.approx(0.001 + 0.002)
        assert mf.block_est_latency_s(2) == pytest.approx(0.003 + 0.004)

    def test_total_dram_bytes_picks_fitting_candidates(self):
        mf = self._file()
        # At level 0 only the zero-cache candidates fit.
        assert mf.total_dram_bytes(0) == pytest.approx(4 * 100.0)
