"""Tests for the on-disk mapping-file cache under LayerMapper."""

import json

import pytest

from repro.config import SoCConfig
from repro.core.mapper.layer_mapper import (
    LayerMapper,
    mapping_cache_dir,
)
from repro.core.serialize import mapping_file_to_dict
from repro.models.zoo import build_model


@pytest.fixture()
def mapcache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_MAPPING_CACHE_DIR", str(tmp_path))
    # Work on a private process memo so this test controls cold/warm.
    monkeypatch.setattr(LayerMapper, "_SHARED_CACHE", {})
    return tmp_path


class TestMappingDiskCache:
    def test_solve_writes_and_reload_is_exact(self, mapcache):
        mapper = LayerMapper(SoCConfig())
        graph = build_model("MB.")
        solved = mapper.map_model(graph)
        (entry,) = mapcache.glob("*.json")
        # Cold process, warm disk: must load the identical mapping.
        LayerMapper._SHARED_CACHE.clear()
        loaded = LayerMapper(SoCConfig()).map_model(graph)
        assert loaded is not solved
        assert json.dumps(mapping_file_to_dict(loaded), sort_keys=True) \
            == json.dumps(mapping_file_to_dict(solved), sort_keys=True)
        assert entry.exists()

    def test_corrupt_entry_resolves_fresh(self, mapcache):
        mapper = LayerMapper(SoCConfig())
        graph = build_model("MB.")
        first = mapper.map_model(graph)
        (entry,) = mapcache.glob("*.json")
        entry.write_text("{broken")
        LayerMapper._SHARED_CACHE.clear()
        again = LayerMapper(SoCConfig()).map_model(graph)
        assert json.dumps(mapping_file_to_dict(again), sort_keys=True) \
            == json.dumps(mapping_file_to_dict(first), sort_keys=True)

    def test_empty_env_disables_disk(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_MAPPING_CACHE_DIR", "")
        monkeypatch.setattr(LayerMapper, "_SHARED_CACHE", {})
        assert mapping_cache_dir() is None
        LayerMapper(SoCConfig()).map_model(build_model("MB."))
        assert list(tmp_path.glob("*.json")) == []

    def test_key_tracks_mapper_knobs(self, mapcache):
        graph = build_model("MB.")
        LayerMapper(SoCConfig()).map_model(graph)
        LayerMapper(SoCConfig(),
                    lbm_occupancy_fraction=0.5).map_model(graph)
        assert len(list(mapcache.glob("*.json"))) == 2
