"""Tests for the NPU-exclusive controller semantics (Section III-B2)."""

import pytest

from repro.cache.sliced_cache import SlicedSharedCache
from repro.config import CacheConfig
from repro.core.cpt import CachePageTable
from repro.core.nec import NECOp, NECRequest, NECStats
from repro.errors import CacheAddressError
from repro.memory.dram import MainMemory


@pytest.fixture
def setup():
    cache_cfg = CacheConfig()
    memory = MainMemory()
    cache = SlicedSharedCache(cache_cfg, memory)
    fabric = cache.install_necs()
    cpt = CachePageTable(cache_cfg)
    cpt.map(0, 0)
    return cache_cfg, memory, cache, fabric, cpt


class TestBasicSemantics:
    def test_fetch_then_read(self, setup):
        _, memory, _, fabric, cpt = setup
        memory.write_line(1000, 0xABCD)
        paddr = cpt.translate(0)
        fabric.handle(NECRequest(NECOp.FETCH_LINE, paddr=paddr,
                                 mem_addr=1000))
        (value,) = fabric.handle(NECRequest(NECOp.READ_LINE, paddr=paddr))
        assert value == 0xABCD

    def test_write_then_writeback(self, setup):
        _, memory, _, fabric, cpt = setup
        paddr = cpt.translate(64)
        fabric.handle(NECRequest(NECOp.WRITE_LINE, paddr=paddr, data=77))
        fabric.handle(NECRequest(NECOp.WRITEBACK_LINE, paddr=paddr,
                                 mem_addr=500))
        assert memory.read_line(500) == 77

    def test_read_uninitialized_faults(self, setup):
        _, _, _, fabric, cpt = setup
        paddr = cpt.translate(128)
        with pytest.raises(CacheAddressError):
            fabric.handle(NECRequest(NECOp.READ_LINE, paddr=paddr))

    def test_write_requires_data(self, setup):
        _, _, _, fabric, cpt = setup
        paddr = cpt.translate(0)
        with pytest.raises(CacheAddressError):
            fabric.handle(NECRequest(NECOp.WRITE_LINE, paddr=paddr))


class TestBypassSemantics:
    def test_bypass_read_skips_cache(self, setup):
        _, memory, cache, fabric, _ = setup
        memory.write_line(2000, 1234)
        before = cache.snapshot_npu_subspace()
        (value,) = fabric.handle(
            NECRequest(NECOp.BYPASS_READ, mem_addr=2000)
        )
        assert value == 1234
        assert cache.snapshot_npu_subspace() == before

    def test_bypass_write_skips_cache(self, setup):
        _, memory, cache, fabric, _ = setup
        before = cache.snapshot_npu_subspace()
        fabric.handle(
            NECRequest(NECOp.BYPASS_WRITE, mem_addr=3000, data=55)
        )
        assert memory.read_line(3000) == 55
        assert cache.snapshot_npu_subspace() == before


class TestMulticastSemantics:
    def test_multicast_read_delivers_to_group(self, setup):
        _, _, _, fabric, cpt = setup
        paddr = cpt.translate(0)
        fabric.handle(NECRequest(NECOp.WRITE_LINE, paddr=paddr, data=9))
        values = fabric.handle(
            NECRequest(NECOp.MULTICAST_READ, paddr=paddr, group_size=4)
        )
        assert values == (9, 9, 9, 9)

    def test_multicast_combines_memory_requests(self, setup):
        _, memory, _, fabric, _ = setup
        memory.write_line(100, 5)
        memory.reset_counters()
        values = fabric.handle(
            NECRequest(NECOp.MULTICAST_BYPASS_READ, mem_addr=100,
                       group_size=8)
        )
        assert len(values) == 8
        assert memory.read_lines == 1  # one DRAM read serves 8 NPUs

    def test_multicast_saved_lines_counted(self, setup):
        _, _, _, fabric, _ = setup
        fabric.handle(
            NECRequest(NECOp.MULTICAST_BYPASS_READ, mem_addr=0,
                       group_size=4)
        )
        stats = fabric.total_stats()
        assert stats.multicast_lines_saved == 3


class TestIsolationAndRouting:
    def test_request_routed_to_correct_slice(self, setup):
        _, _, _, fabric, cpt = setup
        for line in range(8):
            paddr = cpt.translate(line * 64)
            fabric.handle(
                NECRequest(NECOp.WRITE_LINE, paddr=paddr, data=line)
            )
        per_slice = [nec.stats.cache_write_lines for nec in fabric.necs]
        assert per_slice == [1] * 8  # perfect interleave

    def test_nec_rejects_cpu_subspace_way(self, setup):
        cache_cfg, _, _, fabric, cpt = setup
        paddr = cpt.translate(0)
        bad = type(paddr)(
            pcpn=paddr.pcpn,
            slice_index=paddr.slice_index,
            set_index=paddr.set_index,
            way_index=0,  # CPU-owned way
            byte_offset=0,
        )
        with pytest.raises(CacheAddressError):
            fabric.necs[bad.slice_index].handle(
                NECRequest(NECOp.READ_LINE, paddr=bad)
            )

    def test_wrong_slice_rejected(self, setup):
        _, _, _, fabric, cpt = setup
        paddr = cpt.translate(0)
        wrong = (paddr.slice_index + 1) % 8
        with pytest.raises(CacheAddressError):
            fabric.necs[wrong].handle(
                NECRequest(NECOp.READ_LINE, paddr=paddr)
            )


class TestStats:
    def test_dram_accounting(self, setup):
        _, _, _, fabric, cpt = setup
        paddr = cpt.translate(0)
        fabric.handle(NECRequest(NECOp.FETCH_LINE, paddr=paddr, mem_addr=0))
        fabric.handle(NECRequest(NECOp.BYPASS_READ, mem_addr=1))
        fabric.handle(NECRequest(NECOp.BYPASS_WRITE, mem_addr=2, data=1))
        stats = fabric.total_stats()
        assert stats.dram_read_lines == 2
        assert stats.dram_write_lines == 1
        assert stats.dram_bytes(64) == 3 * 64

    def test_merge(self):
        a = NECStats()
        b = NECStats()
        a.record(NECOp.READ_LINE)
        b.record(NECOp.READ_LINE)
        b.record(NECOp.BYPASS_READ)
        a.merge(b)
        assert a.op_counts[NECOp.READ_LINE] == 2
        assert a.dram_read_lines == 1
