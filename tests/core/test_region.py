"""Tests for model-exclusive region management."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import CacheConfig
from repro.core.region import RegionManager
from repro.errors import PageAllocationError


@pytest.fixture
def manager():
    return RegionManager(CacheConfig())


class TestRegionLifecycle:
    def test_create_and_destroy(self, manager):
        region = manager.create_region("A", 10)
        assert region.num_pages == 10
        assert manager.free_pages == 384 - 10
        assert manager.destroy_region("A") == 10
        assert manager.free_pages == 384

    def test_double_create_raises(self, manager):
        manager.create_region("A", 1)
        with pytest.raises(PageAllocationError):
            manager.create_region("A", 1)

    def test_destroy_unknown_raises(self, manager):
        with pytest.raises(PageAllocationError):
            manager.destroy_region("ghost")

    def test_region_bytes(self, manager):
        region = manager.create_region("A", 4)
        assert region.bytes == 4 * 32 * 1024


class TestResize:
    def test_grow_preserves_existing_mappings(self, manager):
        region = manager.create_region("A", 4)
        before = list(region.pcpns)
        manager.resize_region("A", 8)
        assert region.pcpns[:4] == before  # cached data survives growth

    def test_shrink_drops_highest_vcpns(self, manager):
        region = manager.create_region("A", 8)
        kept = list(region.pcpns[:3])
        manager.resize_region("A", 3)
        assert region.pcpns == kept
        assert region.cpt.lookup(2) == kept[2]
        assert region.cpt.lookup(3) is None

    def test_resize_to_zero(self, manager):
        manager.create_region("A", 8)
        manager.resize_region("A", 0)
        assert manager.region_of("A").num_pages == 0
        assert manager.free_pages == 384

    def test_grow_beyond_capacity_raises(self, manager):
        manager.create_region("A", 380)
        with pytest.raises(PageAllocationError):
            manager.resize_region("A", 390)

    def test_failed_grow_leaves_state_intact(self, manager):
        manager.create_region("A", 380)
        manager.create_region("B", 4)
        with pytest.raises(PageAllocationError):
            manager.resize_region("B", 10)
        manager.check_invariants()
        assert manager.region_of("B").num_pages == 4


class TestIsolation:
    def test_regions_never_share_pages(self, manager):
        a = manager.create_region("A", 100)
        b = manager.create_region("B", 100)
        assert set(a.pcpns) & set(b.pcpns) == set()

    def test_cpts_translate_disjointly(self, manager):
        a = manager.create_region("A", 4)
        b = manager.create_region("B", 4)
        lines_a = {
            a.cpt.translate(off).as_tuple()[:3]
            for off in range(0, 4 * 32 * 1024, 64)
        }
        lines_b = {
            b.cpt.translate(off).as_tuple()[:3]
            for off in range(0, 4 * 32 * 1024, 64)
        }
        assert lines_a & lines_b == set()

    @given(
        sizes=st.lists(st.integers(0, 60), min_size=1, max_size=6),
        resizes=st.lists(st.integers(0, 60), min_size=1, max_size=6),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_resizes_keep_invariants(self, sizes, resizes):
        manager = RegionManager(CacheConfig())
        for i, size in enumerate(sizes):
            manager.create_region(f"T{i}", size)
        for i, target in enumerate(resizes[:len(sizes)]):
            try:
                manager.resize_region(f"T{i}", target)
            except PageAllocationError:
                pass
            manager.check_invariants()
