"""Tests for mapping-file JSON serialization."""

import json

import pytest

from repro.config import SoCConfig
from repro.core.mapper.layer_mapper import LayerMapper
from repro.core.serialize import (
    SCHEMA_VERSION,
    load_mapping_file,
    mapping_file_from_dict,
    mapping_file_to_dict,
    save_mapping_file,
)
from repro.errors import MappingError
from repro.models.zoo import build_model


@pytest.fixture(scope="module")
def mapping_file():
    return LayerMapper(SoCConfig()).map_model(build_model("MB."))


class TestRoundTrip:
    def test_dict_round_trip(self, mapping_file):
        restored = mapping_file_from_dict(
            mapping_file_to_dict(mapping_file)
        )
        assert restored.model_name == mapping_file.model_name
        assert restored.usage_levels == mapping_file.usage_levels
        assert restored.blocks == mapping_file.blocks
        assert len(restored.mcts) == len(mapping_file.mcts)

    def test_candidates_preserved(self, mapping_file):
        restored = mapping_file_from_dict(
            mapping_file_to_dict(mapping_file)
        )
        for original, loaded in zip(mapping_file.mcts, restored.mcts):
            assert original.layer_name == loaded.layer_name
            assert original.est_latency_s == loaded.est_latency_s
            assert len(original.lwm) == len(loaded.lwm)
            for a, b in zip(original.lwm, loaded.lwm):
                assert a == b
            assert (original.lbm is None) == (loaded.lbm is None)
            if original.lbm is not None:
                assert original.lbm == loaded.lbm

    def test_file_round_trip(self, mapping_file, tmp_path):
        path = save_mapping_file(mapping_file, tmp_path / "mb.json")
        restored = load_mapping_file(path)
        assert restored.mcts[0].lwm[0] == mapping_file.mcts[0].lwm[0]

    def test_restored_file_validates(self, mapping_file, tmp_path):
        path = save_mapping_file(mapping_file, tmp_path / "mb.json")
        restored = load_mapping_file(path)
        for mct in restored.mcts:
            mct.validate(SoCConfig().cache.page_bytes)

    def test_json_is_plain_data(self, mapping_file, tmp_path):
        path = save_mapping_file(mapping_file, tmp_path / "mb.json")
        data = json.loads(path.read_text())
        assert data["schema_version"] == SCHEMA_VERSION
        assert data["model_name"] == "MobileNet-v2"


class TestErrors:
    def test_wrong_schema_rejected(self, mapping_file):
        data = mapping_file_to_dict(mapping_file)
        data["schema_version"] = 999
        with pytest.raises(MappingError):
            mapping_file_from_dict(data)

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("not json {")
        with pytest.raises(MappingError):
            load_mapping_file(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(MappingError):
            load_mapping_file(tmp_path / "missing.json")


class TestSoCConfigRoundTrip:
    def test_round_trip_default(self):
        from repro.core.serialize import (
            soc_config_from_dict,
            soc_config_to_dict,
        )

        soc = SoCConfig()
        assert soc_config_from_dict(soc_config_to_dict(soc)) == soc

    def test_round_trip_through_json(self):
        from repro.config import MiB
        from repro.core.serialize import (
            soc_config_from_dict,
            soc_config_to_dict,
        )

        soc = SoCConfig().with_cache_bytes(8 * MiB)
        blob = json.dumps(soc_config_to_dict(soc), sort_keys=True)
        assert soc_config_from_dict(json.loads(blob)) == soc


class TestSimulationResultRoundTrip:
    def test_metrics_survive_exactly(self):
        from repro import simulate
        from repro.core.serialize import (
            simulation_result_from_dict,
            simulation_result_to_dict,
        )

        result = simulate("baseline", ("MB.",), inferences_per_stream=1)
        blob = json.dumps(simulation_result_to_dict(result))
        restored = simulation_result_from_dict(json.loads(blob))
        assert restored.metric_summary() == result.metric_summary()
        assert restored.summary() == result.summary()
        assert [r.latency_s for r in restored.metrics.records] == \
            [r.latency_s for r in result.metrics.records]

    def test_wrong_result_schema_rejected(self):
        from repro.core.serialize import simulation_result_from_dict

        with pytest.raises(MappingError):
            simulation_result_from_dict({"result_schema_version": 999})


class TestStableContentHash:
    def test_order_insensitive(self):
        from repro.core.serialize import stable_content_hash

        assert stable_content_hash({"a": 1, "b": [1.5, 2.5]}) == \
            stable_content_hash({"b": [1.5, 2.5], "a": 1})

    def test_value_sensitive(self):
        from repro.core.serialize import stable_content_hash

        assert stable_content_hash({"a": 1.0}) != \
            stable_content_hash({"a": 1.0000000000000002})
