"""Tests for mapping-file JSON serialization."""

import json

import pytest

from repro.config import SoCConfig
from repro.core.mapper.layer_mapper import LayerMapper
from repro.core.serialize import (
    SCHEMA_VERSION,
    load_mapping_file,
    mapping_file_from_dict,
    mapping_file_to_dict,
    save_mapping_file,
)
from repro.errors import MappingError
from repro.models.zoo import build_model


@pytest.fixture(scope="module")
def mapping_file():
    return LayerMapper(SoCConfig()).map_model(build_model("MB."))


class TestRoundTrip:
    def test_dict_round_trip(self, mapping_file):
        restored = mapping_file_from_dict(
            mapping_file_to_dict(mapping_file)
        )
        assert restored.model_name == mapping_file.model_name
        assert restored.usage_levels == mapping_file.usage_levels
        assert restored.blocks == mapping_file.blocks
        assert len(restored.mcts) == len(mapping_file.mcts)

    def test_candidates_preserved(self, mapping_file):
        restored = mapping_file_from_dict(
            mapping_file_to_dict(mapping_file)
        )
        for original, loaded in zip(mapping_file.mcts, restored.mcts):
            assert original.layer_name == loaded.layer_name
            assert original.est_latency_s == loaded.est_latency_s
            assert len(original.lwm) == len(loaded.lwm)
            for a, b in zip(original.lwm, loaded.lwm):
                assert a == b
            assert (original.lbm is None) == (loaded.lbm is None)
            if original.lbm is not None:
                assert original.lbm == loaded.lbm

    def test_file_round_trip(self, mapping_file, tmp_path):
        path = save_mapping_file(mapping_file, tmp_path / "mb.json")
        restored = load_mapping_file(path)
        assert restored.mcts[0].lwm[0] == mapping_file.mcts[0].lwm[0]

    def test_restored_file_validates(self, mapping_file, tmp_path):
        path = save_mapping_file(mapping_file, tmp_path / "mb.json")
        restored = load_mapping_file(path)
        for mct in restored.mcts:
            mct.validate(SoCConfig().cache.page_bytes)

    def test_json_is_plain_data(self, mapping_file, tmp_path):
        path = save_mapping_file(mapping_file, tmp_path / "mb.json")
        data = json.loads(path.read_text())
        assert data["schema_version"] == SCHEMA_VERSION
        assert data["model_name"] == "MobileNet-v2"


class TestErrors:
    def test_wrong_schema_rejected(self, mapping_file):
        data = mapping_file_to_dict(mapping_file)
        data["schema_version"] = 999
        with pytest.raises(MappingError):
            mapping_file_from_dict(data)

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("not json {")
        with pytest.raises(MappingError):
            load_mapping_file(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(MappingError):
            load_mapping_file(tmp_path / "missing.json")
