"""Tests for the heuristic-solver-hybrid layer mapper (Section III-C)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import KiB, MiB, NPUConfig, SoCConfig
from repro.core.mapper.dram_model import (
    TilingChoice,
    dram_traffic_bytes,
    pinned_cache_bytes,
    refetch_factors,
    scratchpad_bytes,
)
from repro.core.mapper.heuristics import HeuristicRules
from repro.core.mapper.layer_mapper import DEFAULT_USAGE_LEVELS, LayerMapper
from repro.core.mapper.loopnest import GEMMShape, tile_candidates, trip_count
from repro.core.mapper.solver import SubspaceSolver
from repro.models.layers import conv2d, matmul
from repro.models.zoo import build_model


class TestLoopnest:
    def test_trip_count_ceil(self):
        assert trip_count(100, 32) == 4

    def test_tile_candidates_aligned(self):
        tiles = tile_candidates(100, 32)
        assert 100 in tiles
        for tile in tiles:
            assert tile == 100 or tile % 32 == 0

    def test_small_dim_single_candidate(self):
        assert tile_candidates(16, 32) == [16]

    def test_gemm_shape_of_conv_uses_actual_footprints(self):
        layer = conv2d("c", 56, 56, 64, 128, kernel=3)
        shape = GEMMShape.of(layer)
        # im2col would inflate the input by 9x; the shape must carry the
        # true activation footprint.
        assert shape.input_elems == 56 * 56 * 64
        assert shape.weight_elems == layer.weight_elems

    def test_gemm_shape_of_attention_moves_operand_to_weight_stream(self):
        from repro.models.layers import attention_matmul

        layer = attention_matmul("a", 128, 64, 12)
        shape = GEMMShape.of(layer)
        assert shape.weight_elems == 12 * 64 * 128
        assert shape.input_elems + shape.weight_elems == layer.input_elems


class TestDramModel:
    def test_refetch_innermost_m_saves_weights(self):
        shape = GEMMShape(m=1024, n=512, k=512)
        choice = TilingChoice(tm=128, tn=128, tk=128, innermost="m")
        factors = refetch_factors(shape, choice)
        assert factors["weight"] == 1
        assert factors["input"] == trip_count(512, 128)

    def test_output_partial_sum_traffic(self):
        # Multiple output tiles evict each other between k iterations.
        shape = GEMMShape(m=256, n=256, k=512)
        choice = TilingChoice(tm=128, tn=256, tk=128, innermost="m")
        factors = refetch_factors(shape, choice)
        assert factors["output"] == 2 * 4 - 1

    def test_single_output_tile_never_spills(self):
        # One output tile accumulates in scratchpad across the whole
        # reduction regardless of loop order (validated by repro.core.isa).
        shape = GEMMShape(m=256, n=256, k=512)
        choice = TilingChoice(tm=256, tn=256, tk=128, innermost="m")
        assert refetch_factors(shape, choice)["output"] == 1

    def test_single_k_tile_writes_once(self):
        shape = GEMMShape(m=256, n=256, k=128)
        choice = TilingChoice(tm=64, tn=64, tk=128, innermost="n")
        assert refetch_factors(shape, choice)["output"] == 1

    def test_pinning_reduces_traffic_to_compulsory(self):
        shape = GEMMShape(m=1024, n=512, k=512)
        choice = TilingChoice(tm=128, tn=128, tk=128, innermost="k",
                              pinned=frozenset({"input"}))
        streaming = TilingChoice(tm=128, tn=128, tk=128, innermost="k")
        assert dram_traffic_bytes(shape, choice) < \
            dram_traffic_bytes(shape, streaming)

    def test_lbm_input_is_free(self):
        shape = GEMMShape(m=256, n=256, k=256)
        lbm = TilingChoice(tm=256, tn=256, tk=256, innermost="m",
                           lbm_input=True)
        plain = TilingChoice(tm=256, tn=256, tk=256, innermost="m")
        saved = dram_traffic_bytes(shape, plain) - \
            dram_traffic_bytes(shape, lbm)
        assert saved == shape.input_elems

    def test_pinned_cache_bytes(self):
        shape = GEMMShape(m=64, n=64, k=64)
        choice = TilingChoice(tm=64, tn=64, tk=64, innermost="m",
                              pinned=frozenset({"weight", "output"}))
        assert pinned_cache_bytes(shape, choice) == \
            shape.weight_elems + shape.output_elems

    def test_scratchpad_double_buffering(self):
        choice = TilingChoice(tm=32, tn=32, tk=32, innermost="m")
        single = scratchpad_bytes(choice, double_buffer=False)
        double = scratchpad_bytes(choice, double_buffer=True)
        assert double == single + 2 * 32 * 32


class TestHeuristics:
    def test_tile_space_respects_scratchpad(self):
        rules = HeuristicRules(npu=NPUConfig())
        shape = GEMMShape(m=4096, n=4096, k=4096)
        for tm, tn, tk in rules.tile_space(shape):
            choice = TilingChoice(tm=tm, tn=tn, tk=tk, innermost="m")
            assert scratchpad_bytes(choice) <= 256 * KiB

    def test_tile_space_prunes(self):
        rules = HeuristicRules(npu=NPUConfig())
        shape = GEMMShape(m=4096, n=4096, k=4096)
        list(rules.tile_space(shape))
        stats = rules.stats
        assert stats["tile_space_kept"] < stats["tile_space_total"]

    def test_zero_budget_only_empty_pinning(self):
        rules = HeuristicRules(npu=NPUConfig())
        shape = GEMMShape(m=256, n=256, k=256)
        subspaces = rules.subspaces(shape, usage_limit_bytes=0)
        assert all(not s.pinned for s in subspaces)

    def test_dominated_pins_dropped(self):
        rules = HeuristicRules(npu=NPUConfig())
        shape = GEMMShape(m=256, n=256, k=256)
        subspaces = rules.subspaces(shape, usage_limit_bytes=MiB)
        for s in subspaces:
            if s.innermost == "m":
                assert "weight" not in s.pinned


class TestSolver:
    def test_more_cache_never_hurts(self):
        solver = SubspaceSolver(NPUConfig())
        shape = GEMMShape.of(matmul("m", 512, 2048, 1024))
        prev = float("inf")
        for level in DEFAULT_USAGE_LEVELS:
            solved = solver.solve(shape, level)
            assert solved.dram_bytes <= prev + 1e-9
            prev = solved.dram_bytes

    def test_solution_respects_budget(self):
        solver = SubspaceSolver(NPUConfig())
        shape = GEMMShape.of(matmul("m", 512, 2048, 1024))
        for level in DEFAULT_USAGE_LEVELS:
            assert solver.solve(shape, level).cache_bytes <= level

    def test_zero_budget_streams_everything(self):
        solver = SubspaceSolver(NPUConfig())
        shape = GEMMShape.of(matmul("m", 256, 256, 256))
        solved = solver.solve(shape, 0)
        assert solved.cache_bytes == 0
        assert not solved.choice.pinned

    def test_traffic_never_below_compulsory(self):
        solver = SubspaceSolver(NPUConfig())
        shape = GEMMShape.of(matmul("m", 512, 512, 512))
        solved = solver.solve(shape, 4 * MiB)
        compulsory = (
            shape.input_elems + shape.weight_elems + shape.output_elems
        )
        assert solved.dram_bytes >= compulsory

    @given(
        m=st.integers(32, 2048),
        n=st.integers(32, 2048),
        k=st.integers(32, 2048),
    )
    @settings(max_examples=25, deadline=None)
    def test_solver_feasible_on_arbitrary_gemms(self, m, n, k):
        solver = SubspaceSolver(NPUConfig())
        shape = GEMMShape(m=m, n=n, k=k)
        solved = solver.solve(shape, 512 * KiB)
        assert solved.dram_bytes > 0
        assert solved.scratchpad_bytes <= 256 * KiB


class TestLayerMapper:
    @pytest.fixture(scope="class")
    def mapper(self):
        return LayerMapper(SoCConfig())

    @pytest.fixture(scope="class")
    def resnet_file(self, mapper):
        return mapper.map_model(build_model("RS."))

    def test_one_mct_per_layer(self, resnet_file):
        assert len(resnet_file.mcts) == len(build_model("RS.").layers)

    def test_every_mct_validates(self, resnet_file):
        for mct in resnet_file.mcts:
            mct.validate(32 * KiB)

    def test_every_layer_has_zero_fallback(self, resnet_file):
        for mct in resnet_file.mcts:
            assert mct.lwm[0].cache_bytes == 0

    def test_candidates_monotone_in_dram(self, resnet_file):
        """Larger candidates never cost more DRAM traffic."""
        for mct in resnet_file.mcts:
            drams = [c.dram_bytes for c in mct.lwm]
            assert drams == sorted(drams, reverse=True)

    def test_est_latency_positive(self, resnet_file):
        for mct in resnet_file.mcts:
            assert mct.est_latency_s > 0

    def test_blocks_cover_model(self, resnet_file):
        covered = []
        for start, end in resnet_file.blocks:
            covered.extend(range(start, end))
        assert covered == list(range(len(resnet_file.mcts)))

    def test_mapping_is_memoized(self, mapper):
        first = mapper.map_model(build_model("MB."))
        second = mapper.map_model(build_model("MB."))
        assert first is second

    def test_lbm_reduces_model_traffic(self, mapper):
        """LBM must beat the best LWM on intermediate-heavy MobileNet."""
        mf = mapper.map_model(build_model("MB."))
        lwm_total = mf.total_dram_bytes(4 * MiB)
        lbm_total = sum(
            mct.lbm.dram_bytes if mct.lbm else
            min(c.dram_bytes for c in mct.lwm)
            for mct in mf.mcts
        )
        assert lbm_total < lwm_total

    def test_mapping_stats(self, mapper):
        stats = mapper.mapping_stats(build_model("MB."))
        assert stats["layers"] == len(build_model("MB.").layers)
        assert 0.0 <= stats["traffic_reduction"] <= 1.0
