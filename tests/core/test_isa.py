"""Tests for NPU instruction generation — and the cross-validation of the
closed-form refetch model against the executable loop-nest spec."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.isa import (
    NPUOp,
    Source,
    generate_layer_program,
    lbm_extra_dram_elems,
    program_stats,
)
from repro.core.mapper.dram_model import TilingChoice
from repro.core.mapper.loopnest import GEMMShape


def _shape(m=256, n=128, k=64) -> GEMMShape:
    return GEMMShape(m=m, n=n, k=k)


class TestProgramStructure:
    def test_exec_macs_cover_gemm(self):
        shape = _shape()
        choice = TilingChoice(tm=64, tn=64, tk=64, innermost="m")
        stats = program_stats(shape, choice)
        assert stats.macs == shape.m * shape.n * shape.k

    def test_single_tile_program(self):
        shape = GEMMShape(m=32, n=32, k=32)
        choice = TilingChoice(tm=32, tn=32, tk=32, innermost="m")
        instrs = list(generate_layer_program(shape, choice))
        ops = [i.op for i in instrs]
        assert ops == [NPUOp.LOAD_TILE, NPUOp.LOAD_TILE, NPUOp.EXEC_TILE,
                       NPUOp.STORE_TILE]

    def test_streamed_tensors_use_dram(self):
        shape = _shape()
        choice = TilingChoice(tm=64, tn=64, tk=64, innermost="m")
        for instr in generate_layer_program(shape, choice):
            if instr.op is NPUOp.LOAD_TILE:
                assert instr.source is Source.DRAM

    def test_pinned_weight_hits_cache_after_first_touch(self):
        shape = _shape()
        choice = TilingChoice(tm=64, tn=64, tk=64, innermost="k",
                              pinned=frozenset({"weight"}))
        seen = set()
        for instr in generate_layer_program(shape, choice):
            if instr.op is NPUOp.LOAD_TILE and instr.tensor == "weight":
                if instr.tile in seen:
                    assert instr.source is Source.CACHE
                else:
                    assert instr.source is Source.DRAM
                    seen.add(instr.tile)

    def test_lbm_input_always_cache(self):
        shape = _shape()
        choice = TilingChoice(tm=64, tn=64, tk=64, innermost="m",
                              lbm_input=True)
        for instr in generate_layer_program(shape, choice):
            if instr.op is NPUOp.LOAD_TILE and instr.tensor == "input":
                assert instr.source is Source.CACHE

    def test_partial_sums_spill_and_reload(self):
        # k not innermost with multiple k tiles: outputs must spill.
        shape = GEMMShape(m=64, n=64, k=128)
        choice = TilingChoice(tm=64, tn=64, tk=64, innermost="n")
        # force an order where the output tile is left and revisited
        shape2 = GEMMShape(m=128, n=64, k=128)
        choice2 = TilingChoice(tm=64, tn=64, tk=64, innermost="m")
        ops = [i.op for i in generate_layer_program(shape2, choice2)]
        assert NPUOp.SPILL_TILE in ops
        assert NPUOp.RELOAD_TILE in ops


class TestClosedFormCrossValidation:
    """The generator derives traffic from loop iteration; the analytic
    model uses closed-form refetch factors.  They must agree."""

    CASES = [
        ("m", frozenset()),
        ("n", frozenset()),
        ("k", frozenset()),
        ("k", frozenset({"weight"})),
        ("k", frozenset({"input"})),
        ("m", frozenset({"input", "output"})),
        ("n", frozenset({"weight", "output"})),
    ]

    @pytest.mark.parametrize("innermost,pinned", CASES)
    def test_divisible_tiling_matches_exactly(self, innermost, pinned):
        shape = GEMMShape(m=256, n=128, k=192)
        choice = TilingChoice(tm=64, tn=64, tk=64, innermost=innermost,
                              pinned=pinned)
        stats = program_stats(shape, choice)
        expected = lbm_extra_dram_elems(shape, choice)
        assert stats.dram_elems == expected

    def test_lbm_flags_match(self):
        shape = GEMMShape(m=128, n=128, k=64)
        choice = TilingChoice(tm=64, tn=64, tk=64, innermost="m",
                              lbm_input=True, lbm_output=True)
        stats = program_stats(shape, choice)
        assert stats.dram_elems == lbm_extra_dram_elems(shape, choice)

    @given(
        mt=st.integers(1, 4),
        nt=st.integers(1, 4),
        kt=st.integers(1, 4),
        innermost=st.sampled_from(["m", "n", "k"]),
    )
    @settings(max_examples=30, deadline=None)
    def test_random_divisible_tilings(self, mt, nt, kt, innermost):
        tile = 32
        shape = GEMMShape(m=mt * tile, n=nt * tile, k=kt * tile)
        choice = TilingChoice(tm=tile, tn=tile, tk=tile,
                              innermost=innermost)
        stats = program_stats(shape, choice)
        assert stats.dram_elems == lbm_extra_dram_elems(shape, choice)

    def test_indivisible_tiling_close(self):
        # Partial edge tiles: generator moves the true footprint, closed
        # form multiplies whole-tensor bytes; they agree within a tile.
        shape = GEMMShape(m=100, n=70, k=50)
        choice = TilingChoice(tm=32, tn=32, tk=32, innermost="m")
        stats = program_stats(shape, choice)
        expected = lbm_extra_dram_elems(shape, choice)
        assert stats.dram_elems == pytest.approx(expected, rel=0.1)


class TestGroupedGEMMs:
    def test_groups_multiply_traffic(self):
        single = GEMMShape(m=64, n=64, k=64)
        grouped = GEMMShape(m=64, n=64, k=64, groups=4)
        choice = TilingChoice(tm=64, tn=64, tk=64, innermost="m")
        assert program_stats(grouped, choice).dram_elems == \
            4 * program_stats(single, choice).dram_elems

    def test_groups_multiply_macs(self):
        grouped = GEMMShape(m=64, n=64, k=64, groups=3)
        choice = TilingChoice(tm=64, tn=64, tk=64, innermost="m")
        assert program_stats(grouped, choice).macs == 3 * 64 ** 3
