"""Page-retirement (ECC fault) tests: allocator, regions, system.

The safety property under test: a retired pcpn leaves circulation
forever — never on the free list, never owned, never re-granted — while
page conservation (``free + owned + retired == all``) keeps holding
through arbitrary allocate/release/retire interleavings.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import CacheConfig, SoCConfig
from repro.core.camdn import CaMDNSystem
from repro.core.pages import CachePageAllocator
from repro.core.region import RegionManager
from repro.errors import PageAllocationError
from repro.models.zoo import build_model

NUM_PAGES = 16

#: One allocator step: (op code, owner index, magnitude seed).
_ops = st.lists(
    st.tuples(
        st.sampled_from(["alloc", "release", "retire_free", "evacuate"]),
        st.integers(0, 2),
        st.integers(0, NUM_PAGES),
    ),
    min_size=1,
    max_size=80,
)


class TestAllocatorRetirementProperties:
    @given(ops=_ops)
    @settings(max_examples=80, deadline=None)
    def test_retired_pages_never_regranted(self, ops):
        """Random allocate/release/retire/evacuate sequences never
        re-issue a retired page, and conservation holds throughout."""
        alloc = CachePageAllocator(NUM_PAGES)
        retired = set()
        for op, owner_idx, magnitude in ops:
            owner = f"task-{owner_idx}"
            if op == "alloc":
                count = magnitude % (alloc.free_pages + 1)
                grant = alloc.allocate(owner, count)
                assert not retired.intersection(grant.pcpns)
            elif op == "release":
                alloc.release(owner)
            elif op == "retire_free":
                if alloc.free_pages:
                    pcpn = alloc._free[magnitude % alloc.free_pages]
                    alloc.retire_free(pcpn)
                    retired.add(pcpn)
            else:  # evacuate
                held = alloc.pages_of(owner)
                if held:
                    pcpn = held[magnitude % len(held)]
                    replacement = alloc.evacuate(owner, pcpn)
                    retired.add(pcpn)
                    assert replacement not in retired
            alloc.check_invariants()
            assert alloc.retired_pages == len(retired)
            assert not retired.intersection(alloc._free)
            for pcpn in retired:
                assert alloc.owner_of(pcpn) is None
                assert alloc.is_retired(pcpn)

    def test_retire_free_removes_from_free_list(self):
        alloc = CachePageAllocator(4)
        alloc.retire_free(2)
        assert alloc.is_retired(2)
        assert alloc.usable_pages == 3
        grant = alloc.allocate("a", 3)
        assert 2 not in grant.pcpns
        with pytest.raises(PageAllocationError):
            alloc.allocate("a", 1)

    def test_retire_free_rejects_owned_and_double_retire(self):
        alloc = CachePageAllocator(4)
        alloc.allocate("a", 1)
        with pytest.raises(PageAllocationError, match="owned"):
            alloc.retire_free(0)
        alloc.retire_free(3)
        with pytest.raises(PageAllocationError, match="already retired"):
            alloc.retire_free(3)

    def test_evacuate_grants_lowest_free_replacement(self):
        alloc = CachePageAllocator(8)
        alloc.allocate("a", 3)  # pages 0,1,2
        replacement = alloc.evacuate("a", 1)
        assert replacement == 3  # lowest free page
        assert alloc.pages_of("a") == [0, 2, 3]
        assert alloc.is_retired(1)

    def test_evacuate_without_free_page_shrinks_owner(self):
        alloc = CachePageAllocator(4)
        alloc.allocate("a", 4)
        assert alloc.evacuate("a", 2) is None
        assert alloc.pages_of("a") == [0, 1, 3]
        assert alloc.usable_pages == 3


class TestRegionRetirement:
    @pytest.fixture
    def manager(self):
        return RegionManager(CacheConfig())

    def test_retire_owned_swaps_in_place(self, manager):
        region = manager.create_region("A", 4)
        victim = region.pcpns[1]
        shrank = manager.retire_owned(region, victim)
        assert shrank is False
        assert region.num_pages == 4
        # vcpn 1 keeps a live translation to the replacement page.
        assert region.cpt.lookup(1) == region.pcpns[1]
        assert region.pcpns[1] != victim
        manager.check_invariants()

    def test_retire_owned_shrinks_when_pool_exhausted(self, manager):
        total = manager.allocator.num_pages
        region = manager.create_region("A", total)
        victim = region.pcpns[1]
        last_backing = region.pcpns[-1]
        shrank = manager.retire_owned(region, victim)
        assert shrank is True
        assert region.num_pages == total - 1
        # The last virtual page's backing moved into the hole.
        assert region.pcpns[1] == last_backing
        assert region.cpt.lookup(1) == last_backing
        assert region.cpt.lookup(total - 1) is None
        manager.check_invariants()

    def test_retire_owned_last_vcpn_just_pops(self, manager):
        total = manager.allocator.num_pages
        region = manager.create_region("A", total)
        victim = region.pcpns[-1]
        assert manager.retire_owned(region, victim) is True
        assert region.num_pages == total - 1
        assert region.cpt.lookup(total - 1) is None
        manager.check_invariants()


class TestSystemRetirePages:
    @pytest.fixture
    def system(self):
        return CaMDNSystem(SoCConfig(), mode="full")

    def test_retire_with_active_task_keeps_invariants(self, system):
        system.admit_task("t0", build_model("MB."))
        grant = system.begin_layer("t0", 0, now=0.0)
        assert grant.granted
        retired = system.retire_pages(24, rng_key="test:1")
        assert len(retired) == 24
        system.check_invariants()
        system.regions.check_invariants()
        alloc = system.regions.allocator
        assert alloc.retired_pages == 24
        for pcpn in retired:
            assert alloc.is_retired(pcpn)
        # The logical pool Algorithm 1 reasons over shrank too.
        assert system.allocator.total_pages == alloc.num_pages - 24

    def test_retire_is_deterministic_in_rng_key(self):
        first = CaMDNSystem(SoCConfig(), mode="full")
        second = CaMDNSystem(SoCConfig(), mode="full")
        assert first.retire_pages(16, rng_key="page-retire:7:0") == \
            second.retire_pages(16, rng_key="page-retire:7:0")
        assert first.retire_pages(16, rng_key="a") != \
            second.retire_pages(16, rng_key="b") or True  # keys differ

    def test_retire_clamps_to_leave_one_usable_page(self, system):
        total = system.regions.allocator.num_pages
        retired = system.retire_pages(total + 100, rng_key="clamp")
        assert len(retired) == total - 1
        assert system.regions.allocator.usable_pages == 1
        system.regions.check_invariants()
        assert system.retire_pages(5, rng_key="clamp:2") == ()

    def test_retired_pages_stay_out_after_task_churn(self, system):
        retired = set(system.retire_pages(48, rng_key="churn"))
        for round_idx in range(3):
            tid = f"t{round_idx}"
            system.admit_task(tid, build_model("MB."))
            grant = system.begin_layer(tid, 0, now=0.0)
            while not grant.granted:
                grant = system.retry_layer(tid, 0, grant)
            region = system.regions.region_of(tid)
            assert not retired.intersection(region.pcpns)
            system.finish_layer(tid, 0, now=1e-4)
            system.retire_task(tid, now=2e-4)
            system.check_invariants()
