"""CPT incremental-remap equivalence (satellite of the PR 3 refactor).

``RegionManager.resize_region`` updates CPT entries only for the delta
pages.  These tests prove that the incremental path is indistinguishable
from rebuilding the whole table with ``remap_all`` after every resize:
identical translations for every mapped byte, identical mapped vcpn
sets, and identical physical grant order.
"""

from hypothesis import given, settings, strategies as st

from repro.config import KiB, CacheConfig
from repro.core.cpt import CachePageTable
from repro.core.region import RegionManager
from repro.errors import PageAllocationError

CACHE = CacheConfig(
    total_bytes=2 * 1024 * 1024, num_slices=2, num_ways=8, npu_ways=6,
    page_bytes=32 * KiB,
)


def _rebuilt_cpt(region) -> CachePageTable:
    """A CPT rebuilt from scratch over the region's current pages."""
    cpt = CachePageTable(CACHE)
    cpt.remap_all(list(region.pcpns))
    return cpt


def _assert_tables_equal(incremental: CachePageTable,
                         rebuilt: CachePageTable, num_pages: int) -> None:
    assert incremental.mapped_vcpns() == rebuilt.mapped_vcpns()
    page_bytes = CACHE.page_bytes
    line_bytes = CACHE.line_bytes
    for vcpn in incremental.mapped_vcpns():
        assert incremental.lookup(vcpn) == rebuilt.lookup(vcpn)
        # Spot-check full translations across the page (every line).
        for offset in range(0, page_bytes, line_bytes * 64):
            vcaddr = vcpn * page_bytes + offset
            assert incremental.translate(vcaddr) == \
                rebuilt.translate(vcaddr)


class TestIncrementalRemapEquivalence:
    @given(
        targets=st.lists(st.integers(0, CACHE.num_pages), min_size=1,
                         max_size=24),
    )
    @settings(max_examples=60, deadline=None)
    def test_resize_sequences_match_full_rebuild(self, targets):
        manager = RegionManager(CacheConfig(
            total_bytes=CACHE.total_bytes, num_slices=CACHE.num_slices,
            num_ways=CACHE.num_ways, npu_ways=CACHE.npu_ways,
            page_bytes=CACHE.page_bytes,
        ))
        region = manager.create_region("A", 0)
        for target in targets:
            try:
                manager.resize_region("A", target)
            except PageAllocationError:
                continue
            _assert_tables_equal(
                region.cpt, _rebuilt_cpt(region), region.num_pages
            )
            manager.check_invariants()

    @given(
        sizes=st.lists(st.integers(0, 20), min_size=2, max_size=5),
        targets=st.lists(st.integers(0, 20), min_size=2, max_size=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_multi_tenant_resizes_keep_grant_order_deterministic(
        self, sizes, targets
    ):
        """Two managers fed the same op sequence grant the same physical
        pages in the same order (grant order is a pure function of the
        allocate/release history — the free list is kept sorted and
        grants take the lowest pages)."""
        managers = [
            RegionManager(CacheConfig(
                total_bytes=CACHE.total_bytes,
                num_slices=CACHE.num_slices, num_ways=CACHE.num_ways,
                npu_ways=CACHE.npu_ways, page_bytes=CACHE.page_bytes,
            ))
            for _ in range(2)
        ]
        for i, size in enumerate(sizes):
            for m in managers:
                try:
                    m.create_region(f"T{i}", min(size, 10))
                except PageAllocationError:
                    m.create_region(f"T{i}", 0)
        for j, target in enumerate(targets):
            task = f"T{j % len(sizes)}"
            results = []
            for m in managers:
                try:
                    m.resize_region(task, target)
                    results.append(list(m.region_of(task).pcpns))
                except PageAllocationError:
                    results.append(None)
            assert results[0] == results[1]

    def test_growth_appends_without_touching_existing_entries(self):
        manager = RegionManager(CacheConfig(
            total_bytes=CACHE.total_bytes, num_slices=CACHE.num_slices,
            num_ways=CACHE.num_ways, npu_ways=CACHE.npu_ways,
            page_bytes=CACHE.page_bytes,
        ))
        region = manager.create_region("A", 4)
        before = {v: region.cpt.lookup(v) for v in range(4)}
        manager.resize_region("A", 9)
        for vcpn, pcpn in before.items():
            assert region.cpt.lookup(vcpn) == pcpn
        _assert_tables_equal(region.cpt, _rebuilt_cpt(region), 9)

    def test_shrink_unmaps_only_the_tail(self):
        manager = RegionManager(CacheConfig(
            total_bytes=CACHE.total_bytes, num_slices=CACHE.num_slices,
            num_ways=CACHE.num_ways, npu_ways=CACHE.npu_ways,
            page_bytes=CACHE.page_bytes,
        ))
        region = manager.create_region("A", 8)
        kept = {v: region.cpt.lookup(v) for v in range(3)}
        manager.resize_region("A", 3)
        assert region.cpt.mapped_vcpns() == [0, 1, 2]
        for vcpn, pcpn in kept.items():
            assert region.cpt.lookup(vcpn) == pcpn
        assert region.cpt.lookup(3) is None
        _assert_tables_equal(region.cpt, _rebuilt_cpt(region), 3)


class TestReverseMapConsistency:
    """The pcpn -> owner reverse map (satellite: ``owner_of`` O(1)) stays
    consistent under interleaved grant/free traffic."""

    @given(
        ops=st.lists(
            st.tuples(st.integers(0, 2), st.integers(0, 24)),
            min_size=1, max_size=30,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_owner_of_matches_held_pages(self, ops):
        manager = RegionManager(CacheConfig(
            total_bytes=CACHE.total_bytes, num_slices=CACHE.num_slices,
            num_ways=CACHE.num_ways, npu_ways=CACHE.npu_ways,
            page_bytes=CACHE.page_bytes,
        ))
        allocator = manager.allocator
        live = set()
        for task_idx, target in ops:
            task = f"T{task_idx}"
            if task not in live:
                manager.create_region(task, 0)
                live.add(task)
            try:
                manager.resize_region(task, target)
            except PageAllocationError:
                pass
            owned = {
                pcpn: region.task_id
                for region in manager.regions()
                for pcpn in region.pcpns
            }
            for pcpn in range(CACHE.num_pages):
                assert allocator.owner_of(pcpn) == owned.get(pcpn)
            allocator.check_invariants()
