"""Tests for the Table III area model."""

import pytest

from repro.config import KiB, MiB, NPUConfig, SoCConfig
from repro.core.area import AreaModel, area_breakdown_table


@pytest.fixture(scope="module")
def model():
    return AreaModel(SoCConfig())


class TestPaperNumbers:
    """The Table II configuration must reproduce Table III closely."""

    def test_scratchpad_area(self, model):
        assert model.scratchpad_area() == pytest.approx(6302e3, rel=0.01)

    def test_pe_array_area(self, model):
        assert model.pe_array_area() == pytest.approx(1302e3, rel=0.01)

    def test_data_array_area(self, model):
        assert model.data_array_area() == pytest.approx(21878e3, rel=0.01)

    def test_tag_array_area(self, model):
        assert model.tag_array_area() == pytest.approx(2398e3, rel=0.01)

    def test_nec_area(self, model):
        assert model.nec_area() == pytest.approx(66e3, rel=0.01)

    def test_npu_total(self, model):
        # Paper: 7905k um^2 (our CPT is slightly smaller: 384 entries for
        # the 12/16 split instead of the full-cache 512).
        assert model.npu_total_area() == pytest.approx(7905e3, rel=0.02)

    def test_slice_total(self, model):
        assert model.slice_total_area() == pytest.approx(24676e3, rel=0.01)

    def test_cpt_overhead_fraction(self, model):
        # Paper: 0.9 % of NPU area.
        assert model.cpt_overhead_fraction() == pytest.approx(0.009,
                                                              abs=0.002)

    def test_nec_overhead_fraction(self, model):
        # Paper: 0.3 % of slice area.
        assert model.nec_overhead_fraction() == pytest.approx(0.003,
                                                              abs=0.001)

    def test_cpt_sram_budget(self, model):
        # Paper: at most 1.5 KiB; 384 pages x 3 B = 1.125 KiB here.
        assert model.cpt_sram_bytes() <= int(1.5 * KiB)


class TestScaling:
    def test_cpt_grows_with_cache(self):
        small = AreaModel(SoCConfig().with_cache_bytes(4 * MiB))
        big = AreaModel(SoCConfig().with_cache_bytes(64 * MiB))
        assert big.cpt_area() > small.cpt_area()

    def test_scratchpad_scales_linearly(self):
        half = AreaModel(
            SoCConfig(npu=NPUConfig(scratchpad_bytes=128 * KiB))
        )
        full = AreaModel(SoCConfig())
        ratio = full.scratchpad_area() / half.scratchpad_area()
        assert ratio == pytest.approx(2.0)

    def test_overheads_remain_small_across_configs(self):
        # The NEC is fixed logic, so its share rises as slices shrink
        # (~1 % at 4 MiB); the CPT grows with page count (~1.8 % at
        # 64 MiB).  Both stay far below the 5 % "lightweight" bar.
        for cache_mb in (4, 8, 16, 32, 64):
            model = AreaModel(SoCConfig().with_cache_bytes(cache_mb * MiB))
            assert model.cpt_overhead_fraction() < 0.02
            assert model.nec_overhead_fraction() < 0.015


class TestBreakdownTable:
    def test_structure(self):
        table = area_breakdown_table()
        assert set(table) == {"NPU", "Cache Slice"}
        assert len(table["NPU"]) == 5
        assert len(table["Cache Slice"]) == 5

    def test_percentages_sum_to_100(self):
        table = area_breakdown_table()
        for rows in table.values():
            component_pct = sum(pct for name, _, pct in rows[:-1])
            assert component_pct == pytest.approx(100.0, abs=0.1)

    def test_totals_are_last(self):
        table = area_breakdown_table()
        assert table["NPU"][-1][0] == "NPU total"
        assert table["Cache Slice"][-1][2] == pytest.approx(100.0)
