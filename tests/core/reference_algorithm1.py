"""Frozen pre-refactor reference implementation of Algorithm 1.

This is a verbatim copy of the PR 2 ``DynamicCacheAllocator`` — the
straightforward dict-walk / ``math.ceil``-loop implementation — kept as
the equivalence oracle for the incremental SoA allocator.  The property
tests in ``test_allocator_equivalence.py`` drive both implementations
through identical random traces and assert identical decisions and
predictor arrays.  (Imported without a package prefix: pytest puts this
directory on ``sys.path`` because ``tests/`` is not a package.)

Do not optimize or "fix" this module: its value is being the slow,
obviously-correct transcription of the paper's pseudocode.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.allocator import LOOKAHEAD_FRACTION
from repro.core.mct import MappingCandidate, ModelMappingFile
from repro.errors import SimulationError


@dataclass
class RefTaskState:
    task_id: str
    mapping_file: ModelMappingFile
    palloc: int = 0
    tnext: float = math.inf
    pnext: int = 0
    lbm_block: Optional[Tuple[int, int]] = None

    def has_enabled_lbm(self, layer_index: int) -> bool:
        return (
            self.lbm_block is not None
            and self.lbm_block[0] <= layer_index < self.lbm_block[1]
        )


@dataclass(frozen=True)
class RefDecision:
    candidate: MappingCandidate
    pages_needed: int
    timeout_s: float
    enables_lbm: bool = False


def _block_of(mf: ModelMappingFile,
              layer_index: int) -> Optional[Tuple[int, int]]:
    for start, end in mf.blocks:
        if start <= layer_index < end:
            return (start, end)
    return None


def _is_block_head(mf: ModelMappingFile, layer_index: int) -> bool:
    block = _block_of(mf, layer_index)
    return block is not None and block[0] == layer_index


def _block_est_latency_s(mf: ModelMappingFile, layer_index: int) -> float:
    block = _block_of(mf, layer_index)
    if block is None:
        return mf.mcts[layer_index].est_latency_s
    return sum(
        mf.mcts[i].est_latency_s for i in range(block[0], block[1])
    )


def _smaller_than(mct, candidate: MappingCandidate,
                  page_bytes: int) -> Optional[MappingCandidate]:
    target = candidate.pages_needed(page_bytes)
    smaller = [
        c for c in mct.lwm if c.pages_needed(page_bytes) < target
    ]
    if not smaller:
        return None
    return smaller[-1]


class ReferenceAllocator:
    """The pre-refactor dict-based Algorithm 1, kept bit-for-bit."""

    def __init__(self, page_bytes: int, total_pages: int) -> None:
        if page_bytes <= 0 or total_pages <= 0:
            raise SimulationError("page geometry must be positive")
        self.page_bytes = page_bytes
        self.total_pages = total_pages
        self._tasks: Dict[str, RefTaskState] = {}

    def register_task(self, task_id: str,
                      mapping_file: ModelMappingFile) -> RefTaskState:
        if task_id in self._tasks:
            raise SimulationError(f"{task_id} already registered")
        state = RefTaskState(task_id=task_id, mapping_file=mapping_file)
        self._tasks[task_id] = state
        return state

    def unregister_task(self, task_id: str) -> None:
        if task_id not in self._tasks:
            raise SimulationError(f"{task_id} is not registered")
        del self._tasks[task_id]

    def task(self, task_id: str) -> RefTaskState:
        state = self._tasks.get(task_id)
        if state is None:
            raise SimulationError(f"{task_id} is not registered")
        return state

    def idle_pages(self) -> int:
        return self.total_pages - sum(
            t.palloc for t in self._tasks.values()
        )

    def pred_avail_pages(self, t_ahead: float, tcur: str) -> int:
        p_ahead = self.idle_pages()
        for task_id, state in self._tasks.items():
            if task_id == tcur:
                continue
            if state.tnext < t_ahead:
                p_ahead += state.palloc - state.pnext
        return p_ahead

    def select(self, tcur: str, layer_index: int,
               now: float) -> RefDecision:
        state = self.task(tcur)
        mct = state.mapping_file.mct_for(layer_index)

        if state.has_enabled_lbm(layer_index) and mct.lbm is not None:
            return RefDecision(
                candidate=mct.lbm,
                pages_needed=mct.lbm.pages_needed(self.page_bytes),
                timeout_s=math.inf,
            )

        if _is_block_head(state.mapping_file, layer_index) and \
                mct.lbm is not None:
            block_est = _block_est_latency_s(
                state.mapping_file, layer_index
            )
            t_ahead = now + block_est * LOOKAHEAD_FRACTION
            p_ahead = self.pred_avail_pages(t_ahead, tcur) + state.palloc
            lbm_pages = mct.lbm.pages_needed(self.page_bytes)
            if lbm_pages < p_ahead:
                return RefDecision(
                    candidate=mct.lbm,
                    pages_needed=lbm_pages,
                    timeout_s=block_est * LOOKAHEAD_FRACTION,
                    enables_lbm=True,
                )

        t_ahead = now + mct.est_latency_s * LOOKAHEAD_FRACTION
        p_ahead = self.pred_avail_pages(t_ahead, tcur) + state.palloc
        best = mct.lwm[0]
        for candidate in mct.lwm:
            pages = candidate.pages_needed(self.page_bytes)
            if best.pages_needed(self.page_bytes) < pages <= p_ahead:
                best = candidate
        return RefDecision(
            candidate=best,
            pages_needed=best.pages_needed(self.page_bytes),
            timeout_s=mct.est_latency_s * LOOKAHEAD_FRACTION,
        )

    def downgrade(self, tcur: str, layer_index: int,
                  decision: RefDecision) -> Optional[RefDecision]:
        state = self.task(tcur)
        mct = state.mapping_file.mct_for(layer_index)
        if decision.candidate.kind == "LBM":
            return RefDecision(
                candidate=mct.lwm[-1],
                pages_needed=mct.lwm[-1].pages_needed(self.page_bytes),
                timeout_s=decision.timeout_s,
            )
        smaller = _smaller_than(mct, decision.candidate, self.page_bytes)
        if smaller is None:
            return None
        return RefDecision(
            candidate=smaller,
            pages_needed=smaller.pages_needed(self.page_bytes),
            timeout_s=decision.timeout_s,
        )

    def commit(self, tcur: str, decision: RefDecision,
               layer_index: int) -> None:
        state = self.task(tcur)
        state.palloc = decision.pages_needed
        if decision.enables_lbm:
            state.lbm_block = _block_of(state.mapping_file, layer_index)

    def end_layer(self, tcur: str, layer_index: int, now: float) -> None:
        state = self.task(tcur)
        mf = state.mapping_file
        next_index = layer_index + 1
        if next_index >= len(mf.mcts):
            state.tnext = now + mf.mcts[layer_index].est_latency_s
            state.pnext = 0
            if state.lbm_block and layer_index >= state.lbm_block[1] - 1:
                state.lbm_block = None
            return
        next_mct = mf.mct_for(next_index)
        state.tnext = now + next_mct.est_latency_s
        if state.has_enabled_lbm(next_index) and next_mct.lbm is not None:
            state.pnext = next_mct.lbm.pages_needed(self.page_bytes)
        else:
            fitting = [
                c.pages_needed(self.page_bytes)
                for c in next_mct.lwm
                if c.pages_needed(self.page_bytes) <= state.palloc
            ]
            state.pnext = max(fitting) if fitting else 0
        if state.lbm_block and layer_index >= state.lbm_block[1] - 1:
            state.lbm_block = None

    def finish_task(self, tcur: str, now: float) -> None:
        state = self.task(tcur)
        state.palloc = 0
        state.pnext = 0
        state.tnext = math.inf
        state.lbm_block = None
