"""Tests for way-partition registers (Section III-B1)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.way_mask import WayMask
from repro.errors import ConfigError


class TestWayMask:
    def test_figure4_example(self):
        # Figure 4: ways 0-1 CPU, ways 2-7 NPU on an 8-way slice.
        mask = WayMask(num_ways=8, npu_ways=6)
        assert mask.cpu_way_indices() == [0, 1]
        assert mask.npu_way_indices() == [2, 3, 4, 5, 6, 7]

    def test_table2_split(self):
        mask = WayMask(num_ways=16, npu_ways=12)
        assert mask.cpu_ways == 4
        assert mask.npu_ways == 12

    def test_mask_register_value(self):
        mask = WayMask(num_ways=8, npu_ways=6)
        assert mask.mask == 0b11111100

    def test_no_npu_ways(self):
        mask = WayMask(num_ways=8, npu_ways=0)
        assert mask.npu_way_indices() == []
        assert mask.cpu_ways == 8

    def test_all_npu_ways(self):
        mask = WayMask(num_ways=8, npu_ways=8)
        assert mask.cpu_way_indices() == []

    def test_repartition(self):
        mask = WayMask(num_ways=8, npu_ways=6)
        mask.repartition(2)
        assert mask.npu_ways == 2
        assert mask.cpu_way_indices() == [0, 1, 2, 3, 4, 5]

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigError):
            WayMask(num_ways=8, npu_ways=9)

    def test_rejects_bad_way_query(self):
        mask = WayMask(8, 4)
        with pytest.raises(ConfigError):
            mask.is_npu_way(8)

    @given(num_ways=st.integers(1, 32), data=st.data())
    def test_partition_is_exact(self, num_ways, data):
        npu_ways = data.draw(st.integers(0, num_ways))
        mask = WayMask(num_ways, npu_ways)
        npu = set(mask.npu_way_indices())
        cpu = set(mask.cpu_way_indices())
        assert npu | cpu == set(range(num_ways))
        assert npu & cpu == set()
        assert len(npu) == npu_ways
