"""Tests for the scheduling policies (baselines and CaMDN variants)."""

import pytest

from repro.config import SoCConfig
from repro.models.zoo import build_model
from repro.schedulers import make_scheduler
from repro.schedulers.aurora import AuRORAScheduler
from repro.schedulers.camdn_full import CaMDNFullScheduler
from repro.schedulers.camdn_hw import CaMDNHWOnlyScheduler
from repro.schedulers.moca import MoCAScheduler
from repro.schedulers.shared_baseline import SharedCacheBaseline
from repro.sim.task import TaskInstance


def _instance(key="MB.", serial=0, qos_s=float("inf")):
    return TaskInstance(
        instance_id=f"{key}@0#{serial}",
        stream_id=f"{key}@0",
        graph=build_model(key),
        arrival_time=0.0,
        qos_target_s=qos_s,
    )


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("baseline", SharedCacheBaseline),
            ("moca", MoCAScheduler),
            ("aurora", AuRORAScheduler),
            ("camdn-hw", CaMDNHWOnlyScheduler),
            ("camdn-full", CaMDNFullScheduler),
        ],
    )
    def test_make_scheduler(self, name, cls):
        assert isinstance(make_scheduler(name), cls)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_scheduler("tpu-v5")


class TestBaselineTrafficModel:
    @pytest.fixture
    def policy(self):
        policy = SharedCacheBaseline()
        policy.attach(SoCConfig())
        return policy

    def test_contention_grows_traffic(self, policy):
        inst = _instance()
        policy.on_task_start(inst, 0.0)
        work_solo, _ = policy.begin_layer(inst, 0.0)
        for i in range(1, 8):
            policy.on_task_start(_instance(serial=i), 0.0)
        work_shared, _ = policy.begin_layer(inst, 0.0)
        assert work_shared.dram_bytes > work_solo.dram_bytes
        assert work_shared.hit_bytes < work_solo.hit_bytes

    def test_never_waits(self, policy):
        inst = _instance()
        policy.on_task_start(inst, 0.0)
        work, timeout = policy.begin_layer(inst, 0.0)
        assert work is not None
        assert timeout == 0.0

    def test_dram_efficiency_degrades_with_tenants(self, policy):
        inst = _instance()
        assert policy.dram_efficiency(inst, 1) > \
            policy.dram_efficiency(inst, 16)

    def test_includes_refetch_traffic(self, policy):
        """Access volume must exceed the layer's compulsory footprint for
        refetch-prone layers."""
        graph = build_model("RS.")
        segments = policy._model_segments(graph)
        total_access = sum(
            seg.bytes_ for layer in segments for seg in layer
        )
        compulsory = sum(l.total_elems for l in graph.layers)
        assert total_access > compulsory


class TestMoCAAndAuRORA:
    def test_moca_shares_follow_demand(self):
        policy = MoCAScheduler()
        policy.attach(SoCConfig())
        heavy = _instance("GN.")
        light = _instance("MB.", serial=1)
        for inst in (heavy, light):
            policy.on_task_start(inst, 0.0)
            work, _ = policy.begin_layer(inst, 0.0)
            inst.begin_work(work)
        running = {i.instance_id: i for i in (heavy, light)}
        shares = policy.bandwidth_shares(running, 0.0)
        assert shares[heavy.instance_id] > shares[light.instance_id]

    def test_aurora_boosts_core_count_for_tight_targets(self):
        policy = AuRORAScheduler()
        policy.attach(SoCConfig())
        # GNMT at the QoS-H target (0.8 x 6.7 ms) sits within 70 % of its
        # isolated-latency estimate, so AuRORA fissions it to two cores.
        tight = _instance("GN.", qos_s=0.8 * 6.7e-3)
        assert policy.cores_for(tight, free_cores=4) == 2
        loose = _instance("PP.", qos_s=100e-3)
        assert policy.cores_for(loose, free_cores=4) == 1

    def test_aurora_single_core_when_busy(self):
        policy = AuRORAScheduler()
        policy.attach(SoCConfig())
        tight = _instance("GN.", qos_s=0.8 * 6.7e-3)
        assert policy.cores_for(tight, free_cores=1) == 1

    def test_aurora_efficiency_better_than_unmanaged(self):
        aurora = AuRORAScheduler()
        base = SharedCacheBaseline()
        aurora.attach(SoCConfig())
        base.attach(SoCConfig())
        inst = _instance()
        assert aurora.dram_efficiency(inst, 16) > \
            base.dram_efficiency(inst, 16)


class TestCaMDNPolicies:
    def _attach(self, policy):
        policy.attach(SoCConfig())
        return policy

    def test_full_layer_protocol(self):
        policy = self._attach(CaMDNFullScheduler())
        inst = _instance("MB.")
        policy.on_task_start(inst, 0.0)
        now = 0.0
        for layer_index in range(len(inst.graph.layers)):
            inst.layer_index = layer_index
            work, timeout = policy.begin_layer(inst, now)
            assert work is not None
            policy.on_layer_end(inst, now)
            now += 1e-4
        policy.on_task_end(inst, now)
        assert policy.system.active_tasks == 0

    def test_no_transparent_lookups(self):
        policy = self._attach(CaMDNFullScheduler())
        inst = _instance("MB.")
        policy.on_task_start(inst, 0.0)
        work, _ = policy.begin_layer(inst, 0.0)
        assert work.access_bytes == 0.0

    def test_multicast_keeps_traffic_flat(self):
        policy = self._attach(CaMDNFullScheduler())
        solo = _instance("RS.")
        policy.on_task_start(solo, 0.0)
        work1, _ = policy.begin_layer(solo, 0.0)
        policy.on_task_end(solo, 0.0)

        dual = _instance("RS.", serial=1)
        dual.cores = 2
        policy.on_task_start(dual, 0.0)
        work2, _ = policy.begin_layer(dual, 0.0)
        assert work2.dram_bytes <= 1.1 * work1.dram_bytes

    def test_hw_only_mode_flag(self):
        policy = self._attach(CaMDNHWOnlyScheduler())
        assert policy.system.mode == "hw_only"

    def test_qos_mode_uses_slack_shares(self):
        policy = self._attach(CaMDNFullScheduler(qos_mode=True))
        late = _instance("GN.", qos_s=1e-6)  # hopelessly behind
        ok = _instance("MB.", serial=1, qos_s=10.0)
        for inst in (late, ok):
            policy.on_task_start(inst, 0.0)
            work, _ = policy.begin_layer(inst, 0.0)
            inst.begin_work(work)
        running = {i.instance_id: i for i in (late, ok)}
        shares = policy.bandwidth_shares(running, now=0.01)
        assert shares[late.instance_id] > shares[ok.instance_id]

    def test_stats_track_lbm(self):
        policy = self._attach(CaMDNFullScheduler())
        inst = _instance("MB.")
        policy.on_task_start(inst, 0.0)
        for layer_index in range(10):
            inst.layer_index = layer_index
            policy.begin_layer(inst, 0.0)
            policy.on_layer_end(inst, 0.0)
        assert policy.stats()["lbm_layers"] > 0
