"""Tests for the conservation-law accounting on simulation results.

At rest (the engine drains its heap before returning) every offered
arrival must be accounted exactly once:

    offered == completed + cancelled + dropped

``run()`` asserts this on every simulation unless
``REPRO_CHECK_CONSERVATION=0``; these tests pin the law across the whole
builtin scenario registry under every policy, and exercise the check and
its env gate directly.
"""

import pytest

from repro.config import SoCConfig
from repro.errors import SimulationError
from repro.experiments.common import run_scenario
from repro.sim.engine import SimulationResult
from repro.sim.metrics import MetricsCollector
from repro.sim.scenario import scenario_registry

POLICIES = ("baseline", "moca", "aurora", "camdn-hw", "camdn-full")


class TestConservationAcrossRegistry:
    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("name", sorted(scenario_registry()))
    def test_builtin_scenarios_conserve_inferences(self, name, policy):
        spec = scenario_registry()[name][0].scaled(0.25)
        result = run_scenario(spec, SoCConfig(), policy)
        assert result.offered_inferences == (
            result.completed_inferences
            + result.cancelled_inferences
            + result.dropped_inferences
        )
        # run() already enforced the law (the env gate defaults on);
        # calling the check again must agree.
        result.check_conservation()
        assert result.completed_inferences >= \
            result.metrics.num_inferences
        summary = result.summary()
        assert summary["cancelled_inferences"] == \
            result.cancelled_inferences
        assert summary["dropped_inferences"] == result.dropped_inferences


class TestConservationCheck:
    def _result(self, **overrides):
        fields = dict(scheduler_name="test", sim_time_s=0.1,
                      metrics=MetricsCollector(),
                      offered_inferences=10, completed_inferences=7,
                      cancelled_inferences=2, dropped_inferences=1)
        fields.update(overrides)
        return SimulationResult(**fields)

    def test_balanced_books_pass(self):
        self._result().check_conservation()

    def test_lost_inference_raises(self):
        with pytest.raises(SimulationError, match="conservation"):
            self._result(completed_inferences=6).check_conservation()

    def test_duplicated_inference_raises(self):
        with pytest.raises(SimulationError, match="conservation"):
            self._result(dropped_inferences=2).check_conservation()

    def test_env_gate_disables_run_check(self, monkeypatch):
        """REPRO_CHECK_CONSERVATION=0 turns the always-on assertion off
        (the escape hatch for bisecting an accounting bug)."""
        calls = []
        monkeypatch.setenv("REPRO_CHECK_CONSERVATION", "0")
        monkeypatch.setattr(
            SimulationResult, "check_conservation",
            lambda self: calls.append(1),
        )
        run_scenario("mmpp-quad", SoCConfig(), "baseline")
        assert calls == []
        monkeypatch.setenv("REPRO_CHECK_CONSERVATION", "1")
        run_scenario("mmpp-quad", SoCConfig(), "baseline")
        assert calls == [1]
