"""Native fused-step equivalence and loader behaviour.

The batch loop's three step implementations — native C fused step,
pure-Python fused step (:meth:`RunningKernel.fused_step_demand` /
:meth:`RunningKernel.fused_step_slack`) and the classic split
``_recompute_rates`` + ``kernel.step`` pair — must be bit-identical
across every rate-kernel mode (demand-proportional, slack-weighted,
slack-throttled); the committed reference suite pins the default path
and these tests pin the cross-path agreement, including MoCA's mid-run
rate epoch transitions, QoS tenant churn and fuzzed fault schedules.
"""

import json
import math
import os
import random

import pytest
from hypothesis import HealthCheck, given, settings

from fuzz_faults import dump_falsifying_fault_case, fault_specs
from fuzz_scenarios import (
    count_mode_scenario_specs,
    dump_falsifying_spec,
    scenario_specs,
)
from repro.config import SoCConfig
from repro.schedulers import make_scheduler
from repro.sim import native
from repro.sim.engine import MultiTenantEngine
from repro.sim.kernel import RunningKernel
from repro.sim.scenario import ArrivalProcess, ScenarioSpec, StreamSpec
from repro.sim.workload import (
    ClosedLoopWorkload,
    ScenarioWorkload,
    WorkloadSpec,
)

POLICIES = ("baseline", "moca", "aurora", "camdn-hw", "camdn-full",
            "camdn-qos")

_fuzz_settings = settings(
    max_examples=int(os.environ.get("REPRO_FUZZ_EXAMPLES", "10")),
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow,
                           HealthCheck.data_too_large],
)

NATIVE = native.fused_step()

needs_native = pytest.mark.skipif(
    NATIVE is None,
    reason=f"native fused step unavailable: {native.native_status()}",
)


def _metrics_json(result) -> str:
    return json.dumps(result.metric_summary(), sort_keys=True)


def _run(policy_name, *, use_native=None, backend=None,
         keys=("RS.", "MB.", "EF.", "BE."), qos_scale=float("inf"),
         inferences=2):
    spec = WorkloadSpec(
        model_keys=list(keys),
        inferences_per_stream=inferences,
        warmup_inferences=0,
        qos_scale=qos_scale,
    )
    engine = MultiTenantEngine(
        SoCConfig(),
        make_scheduler(policy_name),
        ClosedLoopWorkload(spec),
        kernel_backend=backend,
        use_native=use_native,
    )
    return engine.run()


class TestLoader:
    def test_status_reports_outcome(self):
        status = native.native_status()
        assert status
        if NATIVE is not None:
            assert status.startswith("loaded")

    def test_env_kill_switch(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_NATIVE", "0")
        native.reset_for_tests()
        try:
            assert native.fused_step() is None
            assert "REPRO_NATIVE" in native.native_status()
        finally:
            monkeypatch.delenv("REPRO_NATIVE")
            native.reset_for_tests()
            native.fused_step()

    def test_engine_runs_without_native(self):
        result = _run("camdn-full", use_native=False)
        assert result.metrics.num_inferences == 8

    @needs_native
    def test_corrupt_cached_binary_rebuilds(self, tmp_path):
        """A truncated/garbage cached .so is invalidated and rebuilt
        once instead of degrading to the Python path.

        Runs in subprocesses: the recovery path is a *fresh* process
        finding corrupt bytes on disk — overwriting a shared object
        that is already dlopen'ed into this process would be undefined
        behaviour, not the scenario under test.
        """
        import subprocess
        import sys
        from pathlib import Path

        src = Path(native.__file__).parents[2]
        env = dict(os.environ)
        env["REPRO_NATIVE_CACHE"] = str(tmp_path)
        env["PYTHONPATH"] = str(src) + os.pathsep + \
            env.get("PYTHONPATH", "")
        code = (
            "from repro.sim import native; "
            "native.fused_step(); print(native.native_status())"
        )

        def status():
            proc = subprocess.run(
                [sys.executable, "-c", code],
                env=env, capture_output=True, text=True, timeout=300,
            )
            assert proc.returncode == 0, proc.stderr
            return proc.stdout.strip()

        assert status().startswith("loaded")
        (so_path,) = tmp_path.glob("*.so")
        so_path.write_bytes(b"this is not a shared object")
        assert status().startswith("loaded")
        # The cache entry was rebuilt into a loadable binary.
        assert so_path.read_bytes()[:4] != b"this"


@needs_native
class TestFusedStepBitIdentity:
    """The C step against its documented pure-Python twin."""

    def _kernel_with(self, rem_c, rem_d):
        kernel = RunningKernel(force_backend="list")
        # Install the fluid state directly: fused_step_demand only reads
        # the rem arrays (compute rate == freq by contract).
        kernel.rem_c = list(rem_c)
        kernel.rem_d = list(rem_d)
        kernel.insts = [None] * len(rem_c)
        return kernel

    @pytest.mark.parametrize("seed", range(5))
    def test_randomized_state_agrees(self, seed):
        rng = random.Random(seed)
        for _ in range(200):
            n = rng.choice((0, 1, 2, 3, 8, 24, 100))
            rem_c = [rng.uniform(0.0, 5e4) for _ in range(n)]
            rem_d = [rng.uniform(0.0, 1e5) for _ in range(n)]
            wait_dt = rng.choice(
                (math.inf, rng.uniform(0.0, 1e-4), 0.0)
            )
            freq, bw = 1e9, 102.4e9
            eff = rng.choice((0.92, 0.775))
            floor = 0.02
            c_rem_c, c_rem_d = list(rem_c), list(rem_d)
            res_c = NATIVE(c_rem_c, c_rem_d, [], [], wait_dt, 1,
                           freq, bw, eff, floor)
            kernel = self._kernel_with(rem_c, rem_d)
            res_py = kernel.fused_step_demand(wait_dt, freq, bw, eff,
                                              floor)
            if res_c is None:
                assert res_py is None
                continue
            dt_c, fin_c = res_c
            dt_py, fin_py = res_py
            assert repr(dt_c) == repr(dt_py)
            assert (fin_c or None) == (fin_py or None)
            assert [x.hex() for x in c_rem_c] == \
                [x.hex() for x in kernel.rem_c]
            assert [x.hex() for x in c_rem_d] == \
                [x.hex() for x in kernel.rem_d]

    def test_static_mode_matches_kernel_step(self):
        rng = random.Random(99)
        for _ in range(200):
            n = rng.choice((1, 2, 8, 30))
            rem_c = [rng.uniform(0.0, 5e4) for _ in range(n)]
            rem_d = [rng.uniform(0.0, 1e5) for _ in range(n)]
            rate_c = [1e9] * n
            rate_d = [max(rng.uniform(0.0, 2e10), 1e-6)
                      for _ in range(n)]
            wait_dt = rng.choice((math.inf, rng.uniform(0.0, 1e-4)))
            c_rem_c, c_rem_d = list(rem_c), list(rem_d)
            res_c = NATIVE(c_rem_c, c_rem_d, rate_c, rate_d, wait_dt,
                           0, 1e9, 102.4e9, 1.0, 0.0)
            kernel = RunningKernel(force_backend="list")
            kernel.rem_c = list(rem_c)
            kernel.rem_d = list(rem_d)
            kernel.rate_c = list(rate_c)
            kernel.rate_d = list(rate_d)
            kernel.insts = [None] * n
            dt_py, fin_py = kernel.step(wait_dt)
            dt_c, fin_c = res_c
            assert repr(dt_c) == repr(dt_py)
            assert (fin_c or []) == fin_py
            if not math.isinf(dt_c):
                assert [x.hex() for x in c_rem_c] == \
                    [x.hex() for x in kernel.rem_c]
                assert [x.hex() for x in c_rem_d] == \
                    [x.hex() for x in kernel.rem_d]

    def test_non_float_items_fall_back(self):
        assert NATIVE([1, 2.0], [2.0, 3.0], [], [], math.inf, 1,
                      1e9, 1e9, 0.9, 0.02) is None


@needs_native
class TestFusedSlackBitIdentity:
    """The C slack modes against :meth:`RunningKernel.fused_step_slack`.

    Modes 2 (slack-weighted, AuRORA/CaMDN-QoS) and 3 (slack-throttled,
    MoCA with finite deadlines) over randomized fluid state and slack
    inputs — mixed finite/infinite deadlines, arbitrary progress, the
    ±20 clamp edges — asserting bit-identical dt, finished sets and
    in-place remaining-work updates.
    """

    MODES = ((2, False), (3, True))

    def _kernel_with(self, rem_c, rem_d, arrival, qos, est, progress):
        kernel = RunningKernel(force_backend="list")
        kernel.rem_c = list(rem_c)
        kernel.rem_d = list(rem_d)
        kernel.sl_arrival = list(arrival)
        kernel.sl_qos = list(qos)
        kernel.sl_est = list(est)
        kernel.sl_progress = list(progress)
        kernel.insts = [None] * len(rem_c)
        return kernel

    @pytest.mark.parametrize("mode,throttled", MODES)
    @pytest.mark.parametrize("seed", range(5))
    def test_randomized_state_agrees(self, mode, throttled, seed):
        rng = random.Random(1000 * mode + seed)
        for _ in range(200):
            n = rng.choice((0, 1, 2, 3, 8, 24, 100))
            rem_c = [rng.uniform(0.0, 5e4) for _ in range(n)]
            rem_d = [rng.uniform(0.0, 1e5) for _ in range(n)]
            now = rng.uniform(0.0, 0.1)
            arrival = [rng.uniform(0.0, now) for _ in range(n)]
            qos = [rng.choice((math.inf,
                               rng.uniform(1e-5, 2e-2),
                               # Tiny targets push slack past the ±20
                               # clamp the weighted mode applies.
                               rng.uniform(1e-9, 1e-6)))
                   for _ in range(n)]
            est = [rng.uniform(1e-6, 5e-2) for _ in range(n)]
            progress = [rng.uniform(0.0, 1.0) for _ in range(n)]
            wait_dt = rng.choice(
                (math.inf, rng.uniform(0.0, 1e-4), 0.0)
            )
            freq, bw = 1e9, 102.4e9
            eff = rng.choice((0.92, 0.775))
            floor = rng.choice((0.02, 0.0))
            urgency = 3.0 if mode == 2 else 0.0
            c_rem_c, c_rem_d = list(rem_c), list(rem_d)
            res_c = NATIVE(c_rem_c, c_rem_d, [], [], wait_dt, mode,
                           freq, bw, eff, floor, list(arrival),
                           list(qos), list(est), list(progress), now,
                           urgency)
            kernel = self._kernel_with(rem_c, rem_d, arrival, qos, est,
                                       progress)
            res_py = kernel.fused_step_slack(wait_dt, freq, bw, eff,
                                             floor, urgency, now,
                                             throttled)
            if res_c is None:
                assert res_py is None
                continue
            dt_c, fin_c = res_c
            dt_py, fin_py = res_py
            assert repr(dt_c) == repr(dt_py)
            assert (fin_c or None) == (fin_py or None)
            assert [x.hex() for x in c_rem_c] == \
                [x.hex() for x in kernel.rem_c]
            assert [x.hex() for x in c_rem_d] == \
                [x.hex() for x in kernel.rem_d]

    def test_non_float_slack_items_fall_back(self):
        args = ([2.0], [3.0], [], [], math.inf, 2, 1e9, 1e9, 0.9, 0.02)
        good = ([0.0], [1.0], [0.01], [0.5], 0.0, 3.0)
        assert NATIVE(*args, *good) is not None
        for pos in range(4):
            bad = list(good)
            bad[pos] = [1]  # int, not float
            assert NATIVE(*args, *bad) is None

    def test_mismatched_slack_lengths_fall_back(self):
        assert NATIVE([2.0], [3.0], [], [], math.inf, 2,
                      1e9, 1e9, 0.9, 0.02,
                      [0.0, 0.0], [1.0], [0.01], [0.5], 0.0, 3.0) is None

    def test_slack_mode_requires_16_args(self):
        assert NATIVE([2.0], [3.0], [], [], math.inf, 2,
                      1e9, 1e9, 0.9, 0.02) is None


class TestEngineCrossPathIdentity:
    """Engine runs must agree across native / python-fused / split."""

    @pytest.mark.parametrize("policy", POLICIES)
    def test_native_vs_python_fused(self, policy):
        with_native = _run(policy, use_native=None)
        without = _run(policy, use_native=False)
        assert _metrics_json(with_native) == _metrics_json(without)
        assert with_native.events_processed == without.events_processed

    @pytest.mark.parametrize("policy", ("camdn-full", "moca"))
    def test_python_fused_vs_split(self, policy):
        # A pinned kernel backend disables the fused path entirely, so
        # this compares the python fused step to the classic
        # _recompute_rates + kernel.step pair.
        fused = _run(policy, use_native=False)
        split = _run(policy, backend="list")
        assert _metrics_json(fused) == _metrics_json(split)
        assert fused.events_processed == split.events_processed

    @pytest.mark.parametrize(
        "policy", ("moca", "camdn-full", "aurora", "camdn-qos"))
    def test_qos_workload_agrees(self, policy):
        # Finite deadlines: MoCA's slack throttle wakes up
        # (rate_kernel flips to ("slack_throttled", floor)), aurora /
        # camdn-qos run the slack-weighted fused kernel, and aurora
        # multi-core grants engage.
        with_native = _run(policy, use_native=None, qos_scale=1.0)
        without = _run(policy, use_native=False, qos_scale=1.0)
        assert _metrics_json(with_native) == _metrics_json(without)

    @pytest.mark.parametrize("policy", ("moca", "aurora", "camdn-qos"))
    def test_qos_python_fused_vs_split(self, policy):
        # The pure-Python slack twin (fused_step_slack) against the
        # classic split pair under finite deadlines: pins the twin's
        # IEEE-754 transcription independently of the C path.
        fused = _run(policy, use_native=False, qos_scale=1.0)
        split = _run(policy, backend="list", qos_scale=1.0)
        assert _metrics_json(fused) == _metrics_json(split)
        assert fused.events_processed == split.events_processed

    @pytest.mark.parametrize("policy", ("aurora", "camdn-qos"))
    def test_slack_tenant_join_leave(self, policy):
        # QoS tenants joining and leaving mid-run resize the kernel's
        # slack SoA arrays inside active fused batches; all three step
        # implementations must stay in lockstep across the churn.
        spec = ScenarioSpec(
            streams=(
                StreamSpec(model="RS.", qos_scale=1.0, inferences=3,
                           arrival=ArrivalProcess.closed_loop()),
                StreamSpec(model="MB.", qos_scale=1.2, inferences=2,
                           arrival=ArrivalProcess.closed_loop(),
                           join_s=0.004),
                StreamSpec(model="EF.", qos_scale=1.0, inferences=6,
                           arrival=ArrivalProcess.closed_loop(),
                           join_s=0.002, leave_s=0.012),
            ),
        )

        def run(use_native=None, backend=None):
            engine = MultiTenantEngine(
                SoCConfig(), make_scheduler(policy),
                ScenarioWorkload(spec),
                kernel_backend=backend, use_native=use_native,
            )
            return engine.run()

        with_native = run()
        without = run(use_native=False)
        split = run(backend="list")
        assert _metrics_json(with_native) == _metrics_json(without)
        assert _metrics_json(without) == _metrics_json(split)
        assert with_native.events_processed == split.events_processed

    def test_moca_mid_run_epoch_transition(self):
        # One deadline-carrying stream finishes early, flipping MoCA's
        # rule back to plain demand-proportional mid-run: the fused
        # batch must resume exactly where the split path would.
        spec = ScenarioSpec(
            streams=(
                StreamSpec(model="RS.", qos_scale=1.0, inferences=1,
                           arrival=ArrivalProcess.closed_loop()),
                StreamSpec(model="MB.", inferences=4,
                           arrival=ArrivalProcess.closed_loop()),
                StreamSpec(model="EF.", inferences=4,
                           arrival=ArrivalProcess.closed_loop()),
            ),
        )

        def run(use_native):
            scheduler = make_scheduler("moca")
            engine = MultiTenantEngine(
                SoCConfig(), scheduler, ScenarioWorkload(spec),
                use_native=use_native,
            )
            result = engine.run()
            # The rule changed twice: deadline task started, then ended.
            assert scheduler.rate_epoch == 2
            return result

        with_native = run(None)
        without = run(False)
        assert _metrics_json(with_native) == _metrics_json(without)
        assert with_native.events_processed == without.events_processed


class TestFuzzedCrossPathIdentity:
    """Cross-path agreement on fuzzed scenarios.

    The curated cases above pin known-tricky transitions; these drive
    the same three step implementations over arbitrary generated specs —
    tenant churn, every arrival kind, and open-loop backlogs that drain
    past the window.  Budget scales with ``REPRO_FUZZ_EXAMPLES``
    (strategies live in :mod:`fuzz_scenarios`).
    """

    def _run_spec(self, spec, policy, *, use_native=None, backend=None):
        engine = MultiTenantEngine(
            SoCConfig(),
            make_scheduler(policy),
            ScenarioWorkload(spec),
            kernel_backend=backend,
            use_native=use_native,
        )
        return engine.run()

    @_fuzz_settings
    @given(spec=scenario_specs())
    @pytest.mark.parametrize("policy", ("camdn-full", "moca",
                                        "camdn-qos"))
    def test_fuzzed_python_fused_vs_split(self, spec, policy):
        fused = self._run_spec(spec, policy, use_native=False)
        split = self._run_spec(spec, policy, backend="list")
        assert fused.events_processed == split.events_processed
        if fused.metrics.records:
            assert _metrics_json(fused) == _metrics_json(split), \
                dump_falsifying_spec(spec, policy, "fused-vs-split")
        else:
            assert not split.metrics.records

    @_fuzz_settings
    @given(spec=count_mode_scenario_specs())
    @pytest.mark.parametrize("policy", ("camdn-full", "aurora"))
    def test_fuzzed_backlog_drain_native_vs_split(self, spec, policy):
        # Count-mode quotas force open-loop backlogs to drain fully
        # across whichever step implementation is active.
        with_native = self._run_spec(spec, policy, use_native=None)
        split = self._run_spec(spec, policy, backend="list")
        assert with_native.offered_inferences == split.offered_inferences
        assert _metrics_json(with_native) == _metrics_json(split), \
            dump_falsifying_spec(spec, policy, "backlog-native-vs-split")


class TestFaultedSlackCrossPath:
    """Slack-kernel policies under fuzzed fault schedules.

    Fault actions (DRAM throttles, core outages, tenant stalls) cut
    fused batches at arbitrary instants and change the efficiency /
    capacity inputs between them; the slack-weighted native path must
    resume each batch exactly where the pure-Python twin would.
    Fuzzed specs mix finite and infinite deadlines, so the same run
    crosses trivial (slack == 1.0) and active slack regimes.
    """

    @_fuzz_settings
    @given(spec=scenario_specs(), faults=fault_specs())
    @pytest.mark.parametrize("policy", ("aurora", "camdn-qos"))
    def test_faulted_native_vs_python_fused(self, spec, faults, policy):
        def run(use_native):
            engine = MultiTenantEngine(
                SoCConfig(), make_scheduler(policy),
                ScenarioWorkload(spec), faults=faults,
                use_native=use_native,
            )
            return engine.run(max_events=2_000_000)

        with_native = run(None)
        without = run(False)
        assert with_native.events_processed == without.events_processed
        if with_native.metrics.records:
            assert _metrics_json(with_native) == _metrics_json(without), \
                dump_falsifying_fault_case(spec, faults, policy,
                                           "slack-native-vs-python")
        else:
            assert not without.metrics.records
