"""Hypothesis strategies generating arbitrary valid fault schedules.

The chaos fuzzer's search space: every fault kind (DRAM-bandwidth
degradation, NPU core outages, ECC page retirement, tenant stalls) at
arbitrary instants inside a fuzzed scenario's window, including
overlapping windows of the same kind and outages larger than the SoC
(the engine clamps).  Bounds keep one generated schedule cheap while
still reaching the interesting regimes: near-total core outages,
bandwidth floors, page-retirement bursts.

Shared by ``test_chaos_fuzz.py``; falsifying (scenario, fault) pairs
are dumped as JSON via :func:`dump_falsifying_fault_case` when
``REPRO_FUZZ_ARTIFACT_DIR`` is set (the nightly CI uploads them).
"""

import json
import os
from pathlib import Path

from hypothesis import strategies as st

from repro.sim.faults import (
    CORE_OFFLINE,
    DRAM_DEGRADE,
    PAGE_RETIRE,
    TENANT_STALL,
    FaultEvent,
    FaultSpec,
)

#: Fault instants land inside the fuzzed scenarios' 0.02–0.06 s windows
#: (plus a tail that may outlive the run — expiry-after-end is valid).
MAX_FAULT_T_S = 0.08

_instants = st.floats(0.0, MAX_FAULT_T_S)
_durations = st.floats(0.002, 0.05)


def fault_events() -> st.SearchStrategy:
    """Any valid fault event of any kind."""
    return st.one_of(
        st.builds(
            FaultEvent,
            kind=st.just(DRAM_DEGRADE),
            t_s=_instants,
            duration_s=_durations,
            bw_factor=st.floats(0.05, 1.0),
        ),
        st.builds(
            FaultEvent,
            kind=st.just(CORE_OFFLINE),
            t_s=_instants,
            duration_s=_durations,
            cores=st.integers(1, 16),
        ),
        st.builds(
            FaultEvent,
            kind=st.just(PAGE_RETIRE),
            t_s=_instants,
            pages=st.integers(1, 96),
        ),
        st.builds(
            FaultEvent,
            kind=st.just(TENANT_STALL),
            t_s=_instants,
            duration_s=_durations,
            stream_index=st.one_of(st.none(), st.integers(0, 3)),
        ),
    )


@st.composite
def fault_specs(draw) -> FaultSpec:
    """Any valid fault schedule: 1–6 events, any kind mix, any seed."""
    num_events = draw(st.integers(1, 6))
    events = tuple(draw(fault_events()) for _ in range(num_events))
    return FaultSpec(events=events, seed=draw(st.integers(0, 2**16)))


def dump_falsifying_fault_case(scenario, faults: FaultSpec, policy: str,
                               label: str, extra: dict = None) -> str:
    """Dump a falsifying (scenario, fault schedule) pair as JSON.

    Writes ``<label>-<policy>.json`` under ``REPRO_FUZZ_ARTIFACT_DIR``
    (no-op when unset); returns a short description for the assertion
    message either way.  ``extra`` merges additional reproduction keys
    into the payload (e.g. the snapshot event count of a failing
    snapshot-resume triple).
    """
    payload = {
        "policy": policy,
        "scenario": scenario.to_dict(),
        "faults": faults.to_dict(),
    }
    if extra:
        payload.update(extra)
    note = (
        f"policy={policy} faults={json.dumps(faults.to_dict())[:300]} "
        f"spec={json.dumps(scenario.to_dict())[:300]}"
    )
    artifact_dir = os.environ.get("REPRO_FUZZ_ARTIFACT_DIR")
    if not artifact_dir:
        return note
    path = Path(artifact_dir)
    path.mkdir(parents=True, exist_ok=True)
    out = path / f"{label}-{policy}.json"
    out.write_text(json.dumps(payload, indent=1) + "\n")
    return f"{note} (dumped to {out})"
