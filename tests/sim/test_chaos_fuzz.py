"""Chaos fuzzing: arbitrary fault schedules against arbitrary scenarios.

The graceful-degradation bar, stated as properties: under *any* valid
fault schedule — overlapping DRAM throttles, near-total core outages,
ECC retirement bursts, tenant stalls — every policy must

* finish (no hang: runs execute under a generous watchdog budget);
* satisfy the conservation law ``offered == completed + cancelled +
  dropped`` (preemptions count as cancelled, stalled arrivals are
  simply never offered);
* keep the allocator/region/CPT invariants at every fault boundary
  (page retirement, capacity change, tenant departure — probed on
  camdn-full);
* never re-grant a retired page (implied by the allocator sweep);
* produce byte-identical ``metric_summary()`` across the native fused
  step and its pure-Python twin.

Deliberately *not* asserted under faults: capture-replay identity
(fault events are observational in traces, not replayed) and count-mode
quota completion (a permanent stall can legitimately strand a quota).

``REPRO_FUZZ_EXAMPLES`` scales the per-property budget; falsifying
(scenario, fault) pairs are dumped when ``REPRO_FUZZ_ARTIFACT_DIR`` is
set.
"""

import json
import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from fuzz_faults import dump_falsifying_fault_case, fault_specs
from fuzz_scenarios import scenario_specs
from repro.config import SoCConfig
from repro.experiments.common import run_scenario
from repro.schedulers import make_scheduler
from repro.schedulers.camdn_full import CaMDNFullScheduler
from repro.sim.engine import MultiTenantEngine
from repro.sim.workload import ScenarioWorkload

POLICIES = ("baseline", "moca", "aurora", "camdn-hw", "camdn-full")

FUZZ_EXAMPLES = int(os.environ.get("REPRO_FUZZ_EXAMPLES", "25"))

_settings = settings(
    max_examples=FUZZ_EXAMPLES,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow,
                           HealthCheck.data_too_large],
)

#: Watchdog budget for fuzzed runs: far above any legitimate fuzzed
#: scenario, so a fault-induced livelock fails fast instead of hanging
#: the suite.
MAX_FUZZ_EVENTS = 2_000_000


class FaultBoundaryProbe(CaMDNFullScheduler):
    """camdn-full with a full-system invariant sweep at every fault
    boundary and tenant departure."""

    def __init__(self):
        super().__init__()
        self.checks = 0

    def _sweep(self):
        self.system.check_invariants()
        self.system.regions.check_invariants()
        self.checks += 1

    def on_pages_retired(self, count, rng_key, now):
        retired = super().on_pages_retired(count, rng_key, now)
        self._sweep()
        # Retired pages are out of circulation immediately.
        alloc = self.system.regions.allocator
        for pcpn in retired:
            assert alloc.is_retired(pcpn)
            assert alloc.owner_of(pcpn) is None
        return retired

    def on_capacity_change(self, num_cores, now):
        super().on_capacity_change(num_cores, now)
        self._sweep()

    def on_tenant_retire(self, stream_id, now):
        super().on_tenant_retire(stream_id, now)
        self._sweep()


def _scheduler_for(policy):
    if policy == "camdn-full":
        return FaultBoundaryProbe()
    return make_scheduler(policy)


def _check_run(spec, faults, policy, label):
    """Run one fuzzed scenario under one fuzzed fault schedule and
    assert the degradation laws."""
    scheduler = _scheduler_for(policy)
    try:
        engine = MultiTenantEngine(
            SoCConfig(), scheduler, ScenarioWorkload(spec), faults=faults,
        )
        result = engine.run(max_events=MAX_FUZZ_EVENTS)
        assert result.offered_inferences == (
            result.completed_inferences + result.cancelled_inferences
            + result.dropped_inferences
        ), "conservation law violated under faults"
        for rec in result.metrics.records:
            assert rec.start_time >= rec.arrival_time - 1e-12, (
                f"{rec.instance_id} started before its arrival"
            )
            assert rec.finish_time >= rec.start_time
        if isinstance(scheduler, FaultBoundaryProbe):
            scheduler._sweep()  # final state is clean too
    except AssertionError as exc:
        raise AssertionError(
            f"{exc}\nfalsifying "
            f"{dump_falsifying_fault_case(spec, faults, policy, label)}"
        ) from exc
    return result


class TestChaosConservation:
    @_settings
    @given(spec=scenario_specs(), faults=fault_specs())
    @pytest.mark.parametrize("policy", POLICIES)
    def test_every_policy_degrades_gracefully(self, spec, faults,
                                              policy):
        _check_run(spec, faults, policy, "chaos-conservation")


class TestChaosNativeIdentity:
    """The native fused step against pure Python under fuzzed faults."""

    def _run(self, spec, faults, policy, use_native):
        engine = MultiTenantEngine(
            SoCConfig(), _scheduler_for(policy), ScenarioWorkload(spec),
            faults=faults, use_native=use_native,
        )
        return engine.run(max_events=MAX_FUZZ_EVENTS)

    @_settings
    @given(spec=scenario_specs(), faults=fault_specs())
    @pytest.mark.parametrize("policy", ("camdn-full", "baseline"))
    def test_native_vs_python_byte_identity_under_faults(
        self, spec, faults, policy
    ):
        try:
            with_native = self._run(spec, faults, policy, None)
            without = self._run(spec, faults, policy, False)
            assert with_native.events_processed == \
                without.events_processed
            assert with_native.offered_inferences == \
                without.offered_inferences
            if with_native.metrics.records:
                a = json.dumps(with_native.metric_summary(),
                               sort_keys=True)
                b = json.dumps(without.metric_summary(), sort_keys=True)
                assert a == b, \
                    "native/python summaries diverged under faults"
            else:
                assert not without.metrics.records
        except AssertionError as exc:
            raise AssertionError(
                f"{exc}\nfalsifying "
                f"{dump_falsifying_fault_case(spec, faults, policy, 'chaos-native-identity')}"
            ) from exc


class TestChaosSnapshotResume:
    """Snapshot-at-random-boundary under fuzzed faults: a snapshot can
    land mid-throttle, mid-outage or mid-stall, and resuming it must
    still reproduce the uninterrupted faulted run byte-identically.
    Falsifying (scenario, faults, snapshot-event) triples are dumped
    for CI artifact upload."""

    @_settings
    @given(spec=scenario_specs(), faults=fault_specs(),
           cut=st.floats(0.0, 1.0))
    @pytest.mark.parametrize("policy", ("camdn-full", "baseline"))
    def test_faulted_snapshot_resume_byte_identity(self, spec, faults,
                                                   cut, policy):
        from repro.sim.snapshot import EngineSnapshot

        clean = run_scenario(spec, SoCConfig(), policy, faults=faults,
                             max_events=MAX_FUZZ_EVENTS)
        at = int(clean.events_processed * cut)
        snapped = run_scenario(spec, SoCConfig(), policy, faults=faults,
                               max_events=MAX_FUZZ_EVENTS,
                               snapshot_at_events=at)
        snap = snapped.last_snapshot
        if snap is None:
            # Threshold fell past the last batch boundary — no moment
            # to capture.  Vacuous.
            return
        try:
            resumed = EngineSnapshot.from_json(snap.to_json()) \
                .resume().resume_run(max_events=MAX_FUZZ_EVENTS)
            assert resumed.events_processed == clean.events_processed
            assert resumed.offered_inferences == \
                clean.offered_inferences
            if clean.metrics.records:
                a = json.dumps(resumed.metric_summary(), sort_keys=True)
                b = json.dumps(clean.metric_summary(), sort_keys=True)
                assert a == b, \
                    "faulted snapshot resume diverged from clean run"
            else:
                assert not resumed.metrics.records
        except AssertionError as exc:
            raise AssertionError(
                f"{exc}\nfalsifying "
                f"{dump_falsifying_fault_case(spec, faults, policy, 'chaos-snapshot-resume', extra={'snapshot_at_events': at})}"
            ) from exc


class TestChaosRoundTrip:
    """Fuzzed fault specs survive exact serialization round-trips."""

    @_settings
    @given(faults=fault_specs())
    def test_fuzzed_spec_round_trips_exactly(self, faults):
        from repro.sim.faults import FaultSpec

        data = faults.to_dict()
        again = FaultSpec.from_dict(json.loads(json.dumps(data)))
        assert again == faults
        assert again.to_dict() == data


class TestChaosFaultFreeIdentity:
    """A fuzzed scenario with an *empty* schedule is byte-identical to
    the same scenario with no fault plumbing at all."""

    @_settings
    @given(spec=scenario_specs())
    def test_empty_schedule_is_free(self, spec):
        from repro.sim.faults import FaultSpec

        clean = run_scenario(spec, SoCConfig(), "camdn-full")
        empty = run_scenario(spec, SoCConfig(), "camdn-full",
                             faults=FaultSpec())
        assert clean.events_processed == empty.events_processed
        if clean.metrics.records:
            a = json.dumps(clean.metric_summary(), sort_keys=True)
            b = json.dumps(empty.metric_summary(), sort_keys=True)
            assert a == b, "empty FaultSpec perturbed a fault-free run"
        else:
            assert not empty.metrics.records
