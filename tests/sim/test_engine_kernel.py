"""Kernel-loop equivalence, backends, fast-forward and clamp tests.

The structure-of-arrays kernel loop must be byte-identical to the legacy
per-instance scan loop (kept for one release behind ``legacy_loop=True``)
on every policy, and the numpy / pure-Python kernel backends must agree
bit-for-bit with each other.
"""

import json
import math

import pytest

from repro.config import SoCConfig
from repro.schedulers import make_scheduler
from repro.schedulers.base import SchedulerPolicy
from repro.sim.engine import MultiTenantEngine
from repro.sim.kernel import RunningKernel
from repro.sim.task import LayerWork
from repro.sim.workload import ClosedLoopWorkload, WorkloadSpec

POLICIES = ["baseline", "moca", "aurora", "camdn-hw", "camdn-full"]

#: Mixed workload exercising waits (camdn), multi-core grants (aurora
#: under deadlines) and both dynamic- and static-rate policies.
KEYS = ("RS.", "MB.", "EF.", "BE.")


def _run(policy_name, *, legacy=False, backend=None, keys=KEYS,
         qos_scale=float("inf"), inferences=2):
    spec = WorkloadSpec(
        model_keys=list(keys),
        inferences_per_stream=inferences,
        warmup_inferences=0,
        qos_scale=qos_scale,
    )
    engine = MultiTenantEngine(
        SoCConfig(),
        make_scheduler(policy_name),
        ClosedLoopWorkload(spec),
        legacy_loop=legacy,
        kernel_backend=backend,
    )
    return engine.run()


def _metrics_json(result) -> str:
    return json.dumps(result.metric_summary(), sort_keys=True)


class TestKernelLegacyEquivalence:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_summaries_byte_identical(self, policy):
        kernel = _run(policy)
        legacy = _run(policy, legacy=True)
        assert _metrics_json(kernel) == _metrics_json(legacy)

    @pytest.mark.parametrize("policy", POLICIES)
    def test_summaries_byte_identical_under_deadlines(self, policy):
        kernel = _run(policy, qos_scale=1.0)
        legacy = _run(policy, legacy=True, qos_scale=1.0)
        assert _metrics_json(kernel) == _metrics_json(legacy)

    def test_event_counts_match(self):
        kernel = _run("camdn-full")
        legacy = _run("camdn-full", legacy=True)
        assert kernel.events_processed == legacy.events_processed

    def test_env_var_selects_legacy(self, monkeypatch):
        monkeypatch.setenv("REPRO_LEGACY_ENGINE", "1")
        spec = WorkloadSpec(model_keys=["MB."],
                            inferences_per_stream=1,
                            warmup_inferences=0)
        engine = MultiTenantEngine(
            SoCConfig(), make_scheduler("baseline"),
            ClosedLoopWorkload(spec),
        )
        assert engine.legacy_loop


class TestKernelBackends:
    @pytest.mark.parametrize("policy", ["baseline", "moca", "camdn-full"])
    def test_list_and_numpy_backends_identical(self, policy):
        pytest.importorskip("numpy")
        listy = _run(policy, backend="list")
        numpyy = _run(policy, backend="numpy")
        assert _metrics_json(listy) == _metrics_json(numpyy)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            RunningKernel(force_backend="fortran")

    def test_membership_and_step(self):
        """Unit-level kernel check against the scalar reference math."""
        from repro.sim.task import TaskInstance
        from repro.models.zoo import build_model

        kernel = RunningKernel(force_backend="list")
        graph = build_model("MB.")
        insts = []
        for i in range(3):
            inst = TaskInstance(instance_id=f"t{i}", stream_id=f"t{i}",
                                graph=graph, arrival_time=0.0)
            inst.begin_work(LayerWork(compute_cycles=1000.0 * (i + 1),
                                      dram_bytes=500.0))
            kernel.add(inst)
            insts.append(inst)
        kernel.set_rates([1e9] * 3, [1e9] * 3)
        dt, finished = kernel.step(math.inf)
        # Soonest completion: max(1000/1e9, 500/1e9) = 1 us.
        assert dt == pytest.approx(1e-6)
        assert finished == [0]
        kernel.sync_all()
        assert insts[0].rem_compute_cycles == 0.0
        assert insts[2].rem_compute_cycles == pytest.approx(2000.0)
        kernel.remove(insts[0])
        assert [i.instance_id for i in kernel.insts] == ["t1", "t2"]
        assert kernel.pos == {"t1": 0, "t2": 1}


class FixedShareScheduler(SchedulerPolicy):
    """Static-rate policy granting a (possibly tiny) bandwidth share."""

    name = "fixed-share"
    dynamic_rates = False

    def __init__(self, share: float, dram: float = 1000.0):
        super().__init__()
        self.share = share
        self.dram = dram

    def begin_layer(self, instance, now):
        return LayerWork(compute_cycles=10.0, dram_bytes=self.dram), 0.0

    def bandwidth_shares(self, running, now):
        return {iid: self.share for iid in running}


class TestRateClampConsistency:
    """Regression for the dt/advance clamp mismatch (ISSUE 2 satellite).

    The legacy loop clamped the DRAM rate to >= 1e-6 only in the min-dt
    search while advancing at the raw rate, so a near-zero share produced
    a finite dt with no matching progress — the run crawled toward the
    event cap.  The kernel clamps once, at rate installation, so dt and
    progress always agree.
    """

    def test_near_zero_share_completes_consistently(self):
        spec = WorkloadSpec(model_keys=["MB."], inferences_per_stream=1,
                            warmup_inferences=0)
        engine = MultiTenantEngine(
            SoCConfig(),
            FixedShareScheduler(share=1e-30, dram=1e-3),
            ClosedLoopWorkload(spec),
        )
        result = engine.run()
        # One event per layer (plus bounded residual events): progress
        # matches the computed dt instead of stalling.
        assert result.metrics.num_inferences == 1
        assert result.events_processed <= 3 * 64
        # The clamped rate (1e-6 B/s) governs the simulated time.
        assert result.sim_time_s == pytest.approx(64 * 1e-3 / 1e-6,
                                                  rel=0.01)

    def test_normal_shares_unaffected_by_clamp(self):
        """The clamp floor is unreachable for real policies: rates are
        identical with and without it (legacy vs kernel equivalence on
        the shipped policies already proves this byte-for-byte)."""
        result = _run("baseline", keys=("MB.",), inferences=1)
        legacy = _run("baseline", legacy=True, keys=("MB.",),
                      inferences=1)
        assert _metrics_json(result) == _metrics_json(legacy)


class TestRuntimeObservability:
    def test_wall_time_and_events_in_summary(self):
        result = _run("baseline", keys=("MB.",), inferences=1)
        summary = result.summary()
        assert summary["events_processed"] == result.events_processed > 0
        assert summary["wall_time_s"] > 0
        assert result.events_per_s > 0

    def test_metric_summary_excludes_runtime_keys(self):
        result = _run("baseline", keys=("MB.",), inferences=1)
        metric = result.metric_summary()
        assert "wall_time_s" not in metric
        assert "events_processed" not in metric
        # summary() is metric_summary() plus the runtime keys.
        full = result.summary()
        assert {k: v for k, v in full.items()
                if k not in ("wall_time_s", "events_processed")} == metric


class TestFastForward:
    def test_static_policy_uses_fast_forward(self):
        """A static-rate policy with no waiters must produce the same
        events and metrics whether or not the fast-forward loop is
        taken; the legacy comparison covers semantics, this covers the
        fast-forward bookkeeping (dispatch of successor inferences)."""
        result = _run("baseline", keys=("MB.", "MB."), inferences=3)
        legacy = _run("baseline", legacy=True, keys=("MB.", "MB."),
                      inferences=3)
        assert result.metrics.num_inferences == 6
        assert _metrics_json(result) == _metrics_json(legacy)
        assert result.events_processed == legacy.events_processed
