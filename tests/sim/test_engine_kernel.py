"""Kernel-loop reference equivalence, backends, fast-forward and clamp
tests.

The structure-of-arrays kernel loop is pinned against the committed
20-scenario reference summaries (``tests/data/
metric_summary_reference.json``, captured on the pre-refactor engine);
the numpy / pure-Python kernel backends must additionally agree
bit-for-bit with each other.  The legacy per-instance scan loop that
served as the in-process oracle for one release has been removed — the
frozen reference JSON is the oracle now.
"""

import json
import math
from pathlib import Path

import pytest

from repro import simulate
from repro.config import SoCConfig
from repro.schedulers import make_scheduler
from repro.schedulers.base import SchedulerPolicy
from repro.sim.engine import MultiTenantEngine
from repro.sim.kernel import RunningKernel
from repro.sim.task import LayerWork
from repro.sim.workload import ClosedLoopWorkload, WorkloadSpec

POLICIES = ["baseline", "moca", "aurora", "camdn-hw", "camdn-full"]

#: Mixed workload exercising waits (camdn), multi-core grants (aurora
#: under deadlines) and both dynamic- and static-rate policies.
KEYS = ("RS.", "MB.", "EF.", "BE.")

REFERENCE_PATH = (
    Path(__file__).parent.parent / "data" / "metric_summary_reference.json"
)


def _run(policy_name, *, backend=None, keys=KEYS,
         qos_scale=float("inf"), inferences=2):
    spec = WorkloadSpec(
        model_keys=list(keys),
        inferences_per_stream=inferences,
        warmup_inferences=0,
        qos_scale=qos_scale,
    )
    engine = MultiTenantEngine(
        SoCConfig(),
        make_scheduler(policy_name),
        ClosedLoopWorkload(spec),
        kernel_backend=backend,
    )
    return engine.run()


def _metrics_json(result) -> str:
    return json.dumps(result.metric_summary(), sort_keys=True)


class TestReferenceEquivalence:
    """Spot checks against the frozen pre-refactor reference (the full
    20-scenario x 5-policy sweep runs in the slow tier, see
    ``test_reference_summaries.py``)."""

    @pytest.mark.parametrize("policy", POLICIES)
    def test_pair_scenario_matches_reference(self, policy):
        reference = json.loads(REFERENCE_PATH.read_text())
        fresh = simulate(policy, ["RS.", "MB."], inferences_per_stream=2)
        assert _metrics_json(fresh) == json.dumps(
            reference["pair-rs-mb"][policy], sort_keys=True
        )

    def test_steady_state_matches_reference(self):
        reference = json.loads(REFERENCE_PATH.read_text())
        fresh = simulate("camdn-full", ["RS.", "MB.", "EF.", "VT."],
                         duration_s=0.03)
        assert _metrics_json(fresh) == json.dumps(
            reference["steady-quad"]["camdn-full"], sort_keys=True
        )


class TestKernelBackends:
    @pytest.mark.parametrize("policy", ["baseline", "moca", "camdn-full"])
    def test_list_and_numpy_backends_identical(self, policy):
        pytest.importorskip("numpy")
        listy = _run(policy, backend="list")
        numpyy = _run(policy, backend="numpy")
        assert _metrics_json(listy) == _metrics_json(numpyy)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            RunningKernel(force_backend="fortran")

    def test_membership_and_step(self):
        """Unit-level kernel check against the scalar reference math."""
        from repro.sim.task import TaskInstance
        from repro.models.zoo import build_model

        kernel = RunningKernel(force_backend="list")
        graph = build_model("MB.")
        insts = []
        for i in range(3):
            inst = TaskInstance(instance_id=f"t{i}", stream_id=f"t{i}",
                                graph=graph, arrival_time=0.0)
            inst.begin_work(LayerWork(compute_cycles=1000.0 * (i + 1),
                                      dram_bytes=500.0))
            kernel.add(inst)
            insts.append(inst)
        kernel.set_rates([1e9] * 3, [1e9] * 3)
        dt, finished = kernel.step(math.inf)
        # Soonest completion: max(1000/1e9, 500/1e9) = 1 us.
        assert dt == pytest.approx(1e-6)
        assert finished == [0]
        kernel.sync_all()
        assert insts[0].rem_compute_cycles == 0.0
        assert insts[2].rem_compute_cycles == pytest.approx(2000.0)
        kernel.remove(insts[0])
        assert [i.instance_id for i in kernel.insts] == ["t1", "t2"]
        assert kernel.pos == {"t1": 0, "t2": 1}


class FixedShareScheduler(SchedulerPolicy):
    """Static-rate policy granting a (possibly tiny) bandwidth share."""

    name = "fixed-share"
    dynamic_rates = False

    def __init__(self, share: float, dram: float = 1000.0):
        super().__init__()
        self.share = share
        self.dram = dram

    def begin_layer(self, instance, now):
        return LayerWork(compute_cycles=10.0, dram_bytes=self.dram), 0.0

    def bandwidth_shares(self, running, now):
        return {iid: self.share for iid in running}


class TestRateClampConsistency:
    """Regression for the dt/advance clamp mismatch (ISSUE 2 satellite).

    The pre-kernel loop clamped the DRAM rate to >= 1e-6 only in the
    min-dt search while advancing at the raw rate, so a near-zero share
    produced a finite dt with no matching progress — the run crawled
    toward the event cap.  The kernel clamps once, at rate installation,
    so dt and progress always agree.
    """

    def test_near_zero_share_completes_consistently(self):
        spec = WorkloadSpec(model_keys=["MB."], inferences_per_stream=1,
                            warmup_inferences=0)
        engine = MultiTenantEngine(
            SoCConfig(),
            FixedShareScheduler(share=1e-30, dram=1e-3),
            ClosedLoopWorkload(spec),
        )
        result = engine.run()
        # One event per layer (plus bounded residual events): progress
        # matches the computed dt instead of stalling.
        assert result.metrics.num_inferences == 1
        assert result.events_processed <= 3 * 64
        # The clamped rate (1e-6 B/s) governs the simulated time.
        assert result.sim_time_s == pytest.approx(64 * 1e-3 / 1e-6,
                                                  rel=0.01)

    def test_normal_shares_unaffected_by_clamp(self):
        """The clamp floor is unreachable for real policies: the kernel
        backends agree bit-for-bit, and the frozen reference pins the
        absolute values."""
        result = _run("baseline", keys=("MB.",), inferences=1)
        assert result.metrics.num_inferences == 1


class TestRuntimeObservability:
    def test_wall_time_and_events_in_summary(self):
        result = _run("baseline", keys=("MB.",), inferences=1)
        summary = result.summary()
        assert summary["events_processed"] == result.events_processed > 0
        assert summary["wall_time_s"] > 0
        assert result.events_per_s > 0

    def test_metric_summary_excludes_runtime_keys(self):
        result = _run("baseline", keys=("MB.",), inferences=1)
        metric = result.metric_summary()
        runtime_keys = ("wall_time_s", "events_processed",
                        "avg_queue_delay_ms", "offered_load_ratio",
                        "cancelled_inferences", "dropped_inferences")
        for key in runtime_keys:
            assert key not in metric
        # summary() is metric_summary() plus the runtime/scenario keys.
        full = result.summary()
        assert {k: v for k, v in full.items()
                if k not in runtime_keys} == metric

    def test_closed_loop_offered_load_is_balanced(self):
        result = _run("baseline", keys=("MB.", "MB."), inferences=2)
        assert result.offered_inferences == 4
        assert result.cancelled_inferences == 0
        assert result.offered_load_ratio == pytest.approx(1.0)


class TestFastForward:
    def test_static_policy_uses_fast_forward(self):
        """A static-rate policy with no waiters must produce the same
        metrics whether or not the fast-forward loop is taken; the
        reference suite covers absolute values, this covers the
        fast-forward bookkeeping (dispatch of successor inferences) by
        cross-checking the two kernel backends, which enter the
        fast-forward with different batch widths."""
        pytest.importorskip("numpy")
        result = _run("baseline", keys=("MB.", "MB."), inferences=3)
        forced_numpy = _run("baseline", backend="numpy",
                            keys=("MB.", "MB."), inferences=3)
        assert result.metrics.num_inferences == 6
        assert _metrics_json(result) == _metrics_json(forced_numpy)
        assert result.events_processed == forced_numpy.events_processed