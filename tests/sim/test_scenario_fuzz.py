"""Scenario fuzzing: conservation laws and cross-path identity on
arbitrary valid scenarios.

The committed reference suite pins byte-identity on a fixed 20-scenario
set; these properties extend the correctness bar to the whole spec
space.  Every generated scenario — any arrival mix, churn pattern and
measurement mode from :mod:`fuzz_scenarios` — must satisfy, under every
policy:

* the conservation law ``offered == completed + cancelled + dropped``
  (the engine drains before returning, so nothing stays in flight);
* allocator/region/CPT invariants at every tenant departure
  (``CaMDNSystem.check_invariants`` via a probed camdn-full scheduler);
* non-negative queueing delays on every measured inference;
* native-vs-pure-Python trace identity (the C fused step against its
  documented twin, byte-compared through ``metric_summary()``).

``REPRO_FUZZ_EXAMPLES`` scales the per-property example budget (CI fast
tier keeps it small; the nightly job raises it).  Falsifying specs are
dumped as JSON artifacts when ``REPRO_FUZZ_ARTIFACT_DIR`` is set.
"""

import json
import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from fuzz_scenarios import (
    count_mode_scenario_specs,
    dump_falsifying_spec,
    scenario_specs,
)
from repro.config import SoCConfig
from repro.experiments.common import run_scenario
from repro.schedulers import make_scheduler
from repro.schedulers.camdn_full import CaMDNFullScheduler
from repro.sim.engine import MultiTenantEngine
from repro.sim.workload import ScenarioWorkload

POLICIES = ("baseline", "moca", "aurora", "camdn-hw", "camdn-full")

#: Per-property example budget; the CI fast tier and the nightly fuzz
#: job scale it through the environment.
FUZZ_EXAMPLES = int(os.environ.get("REPRO_FUZZ_EXAMPLES", "25"))

_settings = settings(
    max_examples=FUZZ_EXAMPLES,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow,
                           HealthCheck.data_too_large],
)


class DepartureInvariantProbe(CaMDNFullScheduler):
    """camdn-full with a full-system invariant sweep at every tenant
    departure (page accounting, region exclusivity, CPT cross-view)."""

    def __init__(self):
        super().__init__()
        self.checks = 0

    def on_tenant_retire(self, stream_id, now):
        super().on_tenant_retire(stream_id, now)
        self.system.check_invariants()
        self.checks += 1


def _scheduler_for(policy):
    if policy == "camdn-full":
        return DepartureInvariantProbe()
    return make_scheduler(policy)


def _check_run(spec, policy, label):
    """Run one fuzzed scenario and assert the engine-level laws."""
    scheduler = _scheduler_for(policy)
    try:
        result = run_scenario(spec, SoCConfig(), scheduler)
        # Conservation: every offered arrival is accounted exactly once
        # (also asserted inside run() — this keeps the law visible here
        # even if the env gate is off).
        assert result.offered_inferences == (
            result.completed_inferences + result.cancelled_inferences
            + result.dropped_inferences
        ), "conservation law violated"
        assert result.completed_inferences >= \
            result.metrics.num_inferences
        # Queueing delays are non-negative: no instance starts before
        # its arrival was offered.
        for rec in result.metrics.records:
            assert rec.start_time >= rec.arrival_time - 1e-12, (
                f"{rec.instance_id} started before its arrival"
            )
            assert rec.finish_time >= rec.start_time
        if isinstance(scheduler, DepartureInvariantProbe):
            assert scheduler.checks >= len(spec.streams)
            scheduler.system.check_invariants()
    except AssertionError as exc:
        raise AssertionError(
            f"{exc}\nfalsifying {dump_falsifying_spec(spec, policy, label)}"
        ) from exc
    return result


class TestFuzzedConservation:
    @_settings
    @given(spec=scenario_specs())
    @pytest.mark.parametrize("policy", POLICIES)
    def test_window_mode_conservation_and_invariants(self, spec, policy):
        _check_run(spec, policy, "window-conservation")

    @_settings
    @given(spec=count_mode_scenario_specs())
    @pytest.mark.parametrize("policy", ("baseline", "camdn-full"))
    def test_count_mode_conservation_and_invariants(self, spec, policy):
        result = _check_run(spec, policy, "count-conservation")
        # Count mode always completes every measured quota.
        expected = sum(s.inferences for s in spec.streams)
        assert result.metrics.num_inferences == expected


class TestFuzzedNativeIdentity:
    """The native fused step against pure Python on arbitrary specs."""

    def _run(self, spec, policy, use_native):
        engine = MultiTenantEngine(
            SoCConfig(), _scheduler_for(policy), ScenarioWorkload(spec),
            use_native=use_native,
        )
        return engine.run()

    @_settings
    @given(spec=scenario_specs())
    @pytest.mark.parametrize("policy", ("camdn-full", "moca", "baseline"))
    def test_native_vs_python_byte_identity(self, spec, policy):
        try:
            with_native = self._run(spec, policy, None)
            without = self._run(spec, policy, False)
            assert with_native.events_processed == \
                without.events_processed
            assert with_native.offered_inferences == \
                without.offered_inferences
            if with_native.metrics.records:
                a = json.dumps(with_native.metric_summary(),
                               sort_keys=True)
                b = json.dumps(without.metric_summary(), sort_keys=True)
                assert a == b, "native/python metric summaries diverged"
            else:
                assert not without.metrics.records
        except AssertionError as exc:
            raise AssertionError(
                f"{exc}\nfalsifying "
                f"{dump_falsifying_spec(spec, policy, 'native-identity')}"
            ) from exc


class TestFuzzedSnapshotResume:
    """A snapshot taken at a random batch boundary of a fuzzed run
    resumes to a byte-identical ``metric_summary()``."""

    @_settings
    @given(spec=scenario_specs(), cut=st.floats(0.0, 1.0))
    @pytest.mark.parametrize("policy", ("camdn-full", "baseline"))
    def test_snapshot_resume_byte_identity(self, spec, cut, policy):
        from repro.sim.snapshot import EngineSnapshot

        clean = run_scenario(spec, SoCConfig(), policy)
        at = int(clean.events_processed * cut)
        snapped = run_scenario(spec, SoCConfig(), policy,
                               snapshot_at_events=at)
        snap = snapped.last_snapshot
        if snap is None:
            # The threshold fell inside the final batch, past the last
            # boundary — there was no moment to capture.  Vacuous.
            return
        try:
            resumed = EngineSnapshot.from_json(snap.to_json()) \
                .resume().resume_run()
            assert resumed.events_processed == clean.events_processed
            assert resumed.offered_inferences == \
                clean.offered_inferences
            if clean.metrics.records:
                a = json.dumps(resumed.metric_summary(), sort_keys=True)
                b = json.dumps(clean.metric_summary(), sort_keys=True)
                assert a == b, \
                    "resumed run diverged from uninterrupted run"
                assert json.dumps(snapped.metric_summary(),
                                  sort_keys=True) == b, \
                    "snapshot capture perturbed the observed run"
            else:
                assert not resumed.metrics.records
                assert not snapped.metrics.records
        except AssertionError as exc:
            raise AssertionError(
                f"{exc}\nfalsifying "
                f"{dump_falsifying_spec(spec, policy, 'snapshot-resume', extra={'snapshot_at_events': at})}"
            ) from exc


class TestFuzzedCaptureReplay:
    """Trace capture of a fuzzed run replays byte-identically."""

    @_settings
    @given(spec=scenario_specs())
    @pytest.mark.parametrize("policy", ("camdn-full", "aurora"))
    def test_capture_replay_byte_identity(self, spec, policy):
        try:
            source = run_scenario(spec, SoCConfig(), policy,
                                  capture_trace=True)
            trace = source.event_trace
            replayed = run_scenario(
                trace.replay_scenario(), SoCConfig(), policy
            )
            assert source.events_processed == replayed.events_processed
            assert source.offered_inferences == \
                replayed.offered_inferences
            if source.metrics.records:
                a = json.dumps(source.metric_summary(), sort_keys=True)
                b = json.dumps(replayed.metric_summary(), sort_keys=True)
                assert a == b, "replay diverged from its source run"
            else:
                assert not replayed.metrics.records
            # The trace's own books balance too.
            assert trace.count("arrival") == source.offered_inferences
            assert trace.count("completion") == \
                source.completed_inferences
            assert trace.count("cancel") == source.cancelled_inferences
            assert trace.count("drop") == source.dropped_inferences
        except AssertionError as exc:
            raise AssertionError(
                f"{exc}\nfalsifying "
                f"{dump_falsifying_spec(spec, policy, 'capture-replay')}"
            ) from exc
