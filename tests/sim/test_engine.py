"""Tests for the fluid multi-tenant engine."""

import pytest

from repro.config import SoCConfig
from repro.schedulers import make_scheduler
from repro.schedulers.base import SchedulerPolicy
from repro.sim.engine import MultiTenantEngine
from repro.sim.task import LayerWork
from repro.sim.workload import ClosedLoopWorkload, WorkloadSpec


class FixedWorkScheduler(SchedulerPolicy):
    """Deterministic test policy: every layer costs fixed work."""

    name = "fixed"

    def __init__(self, cycles=1000.0, dram=1000.0):
        super().__init__()
        self.cycles = cycles
        self.dram = dram

    def begin_layer(self, instance, now):
        return LayerWork(compute_cycles=self.cycles,
                         dram_bytes=self.dram), 0.0


def _run(scheduler, model_keys=("MB.",), inferences=1, cores=None,
         qos_scale=float("inf")):
    soc = SoCConfig()
    if cores is not None:
        soc = SoCConfig(num_npu_cores=cores)
    spec = WorkloadSpec(
        model_keys=list(model_keys),
        inferences_per_stream=inferences,
        warmup_inferences=0,
        qos_scale=qos_scale,
    )
    workload = ClosedLoopWorkload(spec)
    return MultiTenantEngine(soc, scheduler, workload).run()


class TestDeterministicTiming:
    def test_single_stream_latency_exact(self):
        # MB has 64 layers; compute 1000 cycles @ 1 GHz = 1 us dominates
        # memory 1000 B at full BW (~10 ns).
        result = _run(FixedWorkScheduler(cycles=1000, dram=1000))
        latency = result.metrics.avg_latency_s()
        assert latency == pytest.approx(64 * 1e-6, rel=1e-3)

    def test_memory_bound_latency_exact(self):
        # 1.024 MB per layer at 102.4 GB/s full share = 10 us per layer.
        result = _run(FixedWorkScheduler(cycles=10, dram=1.024e6))
        latency = result.metrics.avg_latency_s()
        assert latency == pytest.approx(64 * 1e-5, rel=1e-3)

    def test_two_streams_share_bandwidth(self):
        solo = _run(FixedWorkScheduler(cycles=10, dram=1.024e6))
        duo = _run(FixedWorkScheduler(cycles=10, dram=1.024e6),
                   model_keys=("MB.", "MB."))
        ratio = (duo.metrics.avg_latency_s() /
                 solo.metrics.avg_latency_s())
        assert ratio == pytest.approx(2.0, rel=0.05)

    def test_queueing_beyond_core_count(self):
        # 2 streams on 1 core: one inference waits a full service time, so
        # the mean latency is exactly 1.5x the solo service time.
        solo = _run(FixedWorkScheduler(cycles=1000, dram=10), cores=1)
        queued = _run(FixedWorkScheduler(cycles=1000, dram=10),
                      model_keys=("MB.", "MB."), cores=1)
        assert queued.metrics.avg_latency_s() == pytest.approx(
            1.5 * solo.metrics.avg_latency_s(), rel=0.01
        )

    def test_dram_accounting(self):
        result = _run(FixedWorkScheduler(cycles=10, dram=500))
        assert result.metrics.avg_dram_bytes_per_inference() == \
            pytest.approx(64 * 500)


class TestRealPolicies:
    @pytest.mark.parametrize(
        "policy", ["baseline", "moca", "aurora", "camdn-hw", "camdn-full"]
    )
    def test_every_policy_completes(self, policy):
        result = _run(make_scheduler(policy), model_keys=("MB.", "EF."),
                      inferences=1)
        assert result.metrics.num_inferences == 2
        assert result.sim_time_s > 0

    def test_camdn_traffic_below_baseline_under_contention(self):
        keys = ("RS.", "MB.", "EF.", "VT.") * 2
        base = _run(make_scheduler("baseline"), model_keys=keys)
        camdn = _run(make_scheduler("camdn-full"), model_keys=keys)
        assert camdn.metrics.macro_avg_dram_bytes() < \
            base.metrics.macro_avg_dram_bytes()

    def test_engine_records_all_inferences(self):
        result = _run(make_scheduler("camdn-full"),
                      model_keys=("MB.",), inferences=3)
        assert result.metrics.num_inferences == 3

    def test_scheduler_stats_exposed(self):
        result = _run(make_scheduler("camdn-full"), model_keys=("MB.",))
        assert "lbm_layers" in result.scheduler_stats


class TestSummaryMetrics:
    def test_summary_exposes_tail_and_qos_fields(self):
        result = _run(FixedWorkScheduler(cycles=1000, dram=10),
                      model_keys=("MB.", "RS."), inferences=2)
        summary = result.summary()
        assert "p99_latency_ms" in summary
        assert "qos_violations" in summary
        assert summary["p99_latency_ms"] > 0

    def test_p99_is_max_latency_for_small_samples(self):
        # Nearest-rank p99 over n <= 100 records selects the maximum.
        result = _run(FixedWorkScheduler(cycles=1000, dram=10),
                      model_keys=("MB.", "MB.", "MB."), inferences=3)
        latencies = [r.latency_s for r in result.metrics.records]
        assert result.metrics.p99_latency_s() == pytest.approx(
            max(latencies)
        )

    def test_no_deadlines_means_no_violations(self):
        result = _run(FixedWorkScheduler(cycles=1000, dram=10),
                      model_keys=("MB.",), inferences=2)
        assert result.summary()["qos_violations"] == 0

    def test_impossible_deadlines_all_violate(self):
        result = _run(FixedWorkScheduler(cycles=1000, dram=10),
                      model_keys=("MB.", "MB."), inferences=2,
                      qos_scale=1e-9)
        summary = result.summary()
        assert summary["qos_violations"] == summary["inferences"] == 4
