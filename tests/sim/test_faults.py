"""Fault-injection subsystem: spec round-trips, engine semantics per
fault kind, the empty-spec byte-identity bar, and the watchdog."""

from __future__ import annotations

import json

import pytest

from repro.config import SoCConfig
from repro.errors import SimulationError, WorkloadError
from repro.experiments.common import run_scenario
from repro.schedulers import make_scheduler
from repro.schedulers.camdn_full import CaMDNFullScheduler
from repro.sim.engine import MultiTenantEngine
from repro.sim.faults import (
    CORE_OFFLINE,
    DRAM_DEGRADE,
    EXPIRY,
    ONSET,
    PAGE_RETIRE,
    TENANT_STALL,
    FaultEvent,
    FaultRuntime,
    FaultSpec,
    fault_schedule_names,
    fault_schedule_registry,
    get_fault_schedule,
    register_fault_schedule,
)
from repro.sim.scenario import get_scenario
from repro.sim.workload import ScenarioWorkload

POLICIES = ("baseline", "moca", "aurora", "camdn-hw", "camdn-full")


def _conserved(result) -> bool:
    return result.offered_inferences == (
        result.completed_inferences + result.cancelled_inferences
        + result.dropped_inferences
    )


class TestFaultEventValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(WorkloadError, match="unknown fault kind"):
            FaultEvent(kind="meteor-strike", t_s=0.1)

    def test_negative_onset_rejected(self):
        with pytest.raises(WorkloadError, match="t_s"):
            FaultEvent(kind=PAGE_RETIRE, t_s=-0.1, pages=4)

    def test_dram_degrade_needs_factor_in_unit_interval(self):
        with pytest.raises(WorkloadError, match="bw_factor"):
            FaultEvent(kind=DRAM_DEGRADE, t_s=0.1, duration_s=0.1)
        with pytest.raises(WorkloadError, match="bw_factor"):
            FaultEvent(kind=DRAM_DEGRADE, t_s=0.1, duration_s=0.1,
                       bw_factor=0.0)
        with pytest.raises(WorkloadError, match="bw_factor"):
            FaultEvent(kind=DRAM_DEGRADE, t_s=0.1, duration_s=0.1,
                       bw_factor=1.5)

    def test_core_offline_requires_duration(self):
        # A permanent outage could strand queued work forever.
        with pytest.raises(WorkloadError, match="duration_s"):
            FaultEvent(kind=CORE_OFFLINE, t_s=0.1, cores=2)

    def test_page_retire_is_permanent(self):
        with pytest.raises(WorkloadError, match="permanent"):
            FaultEvent(kind=PAGE_RETIRE, t_s=0.1, pages=4,
                       duration_s=0.1)

    def test_tenant_stall_requires_duration(self):
        with pytest.raises(WorkloadError, match="duration_s"):
            FaultEvent(kind=TENANT_STALL, t_s=0.1)

    def test_unknown_field_rejected(self):
        with pytest.raises(WorkloadError, match="unknown fault-event"):
            FaultEvent.from_dict(
                {"kind": PAGE_RETIRE, "t_s": 0.1, "pages": 4,
                 "severity": "high"}
            )


class TestFaultSpecRoundTrip:
    def test_exact_round_trip(self):
        spec = FaultSpec(
            events=(
                FaultEvent(kind=DRAM_DEGRADE, t_s=0.1,
                           duration_s=0.07, bw_factor=1.0 / 3.0),
                FaultEvent(kind=PAGE_RETIRE, t_s=0.05, pages=17),
                FaultEvent(kind=TENANT_STALL, t_s=0.2,
                           duration_s=0.01, stream_index=3),
            ),
            seed=17,
        )
        rebuilt = FaultSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))
        )
        assert rebuilt == spec
        assert rebuilt.to_dict() == spec.to_dict()

    def test_registry_schedules_round_trip(self):
        for name in fault_schedule_names():
            spec = get_fault_schedule(name)
            assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_unsupported_version_rejected(self):
        data = FaultSpec().to_dict()
        data["fault_schema_version"] = 99
        with pytest.raises(WorkloadError, match="unsupported fault"):
            FaultSpec.from_dict(data)

    def test_unknown_spec_field_rejected(self):
        data = FaultSpec().to_dict()
        data["intensity"] = 1.0
        with pytest.raises(WorkloadError, match="unknown fault-spec"):
            FaultSpec.from_dict(data)

    def test_scaled_stretches_timeline(self):
        spec = FaultSpec(events=(
            FaultEvent(kind=CORE_OFFLINE, t_s=0.1, duration_s=0.2,
                       cores=2),
            FaultEvent(kind=PAGE_RETIRE, t_s=0.3, pages=4),
        ))
        half = spec.scaled(0.5)
        assert half.events[0].t_s == pytest.approx(0.05)
        assert half.events[0].duration_s == pytest.approx(0.1)
        assert half.events[1].t_s == pytest.approx(0.15)
        assert half.events[1].duration_s is None
        assert spec.scaled(1.0) is spec

    def test_registry_lookup_error(self):
        with pytest.raises(WorkloadError, match="unknown fault schedule"):
            get_fault_schedule("no-such-schedule")

    def test_register_and_snapshot(self):
        spec = register_fault_schedule(
            "test-tmp-schedule", FaultSpec(), "test entry"
        )
        try:
            assert get_fault_schedule("test-tmp-schedule") is spec
            assert "test-tmp-schedule" in fault_schedule_registry()
        finally:
            from repro.sim import faults

            faults._REGISTRY.pop("test-tmp-schedule", None)


class TestFaultRuntime:
    def test_actions_ordered_and_popped(self):
        spec = FaultSpec(events=(
            FaultEvent(kind=TENANT_STALL, t_s=0.2, duration_s=0.1),
            FaultEvent(kind=PAGE_RETIRE, t_s=0.1, pages=1),
        ))
        runtime = FaultRuntime(spec)
        assert runtime.next_s() == pytest.approx(0.1)
        assert runtime.pop_due(0.05) == []
        due = runtime.pop_due(0.1)
        assert [(seq, phase) for seq, phase, _ in due] == [(1, ONSET)]
        assert runtime.next_s() == pytest.approx(0.2)
        due = runtime.pop_due(0.35)
        assert [(seq, phase) for seq, phase, _ in due] == [
            (0, ONSET), (0, EXPIRY)
        ]
        assert runtime.exhausted
        assert runtime.next_s() == float("inf")


class TestEmptySpecByteIdentity:
    """An empty (or absent) FaultSpec must be invisible in the metrics:
    the fault plumbing may not perturb a single float."""

    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("scenario", ("steady-quad", "churn-eight"))
    def test_empty_spec_metric_summary_identical(self, policy, scenario):
        spec = get_scenario(scenario).scaled(0.15)
        clean = run_scenario(spec, policy=policy)
        empty = run_scenario(spec, policy=policy, faults=FaultSpec())
        named = run_scenario(spec, policy=policy, faults="none")
        a = json.dumps(clean.metric_summary(), sort_keys=True)
        b = json.dumps(empty.metric_summary(), sort_keys=True)
        c = json.dumps(named.metric_summary(), sort_keys=True)
        assert a == b == c
        assert clean.events_processed == empty.events_processed


class _InvariantProbe(CaMDNFullScheduler):
    """camdn-full checking full-system invariants at every fault-adjacent
    hook (page retirement, capacity change, tenant retire)."""

    def __init__(self):
        super().__init__()
        self.checks = 0

    def _sweep(self):
        self.system.check_invariants()
        self.checks += 1

    def on_pages_retired(self, count, rng_key, now):
        retired = super().on_pages_retired(count, rng_key, now)
        self._sweep()
        return retired

    def on_capacity_change(self, num_cores, now):
        super().on_capacity_change(num_cores, now)
        self._sweep()

    def on_tenant_retire(self, stream_id, now):
        super().on_tenant_retire(stream_id, now)
        self._sweep()


class TestFaultSemantics:
    def test_tenant_stall_offers_fewer_arrivals(self):
        spec = get_scenario("steady-quad").scaled(0.5)
        stall = FaultSpec(events=(
            FaultEvent(kind=TENANT_STALL, t_s=0.05, duration_s=0.08),
        ))
        clean = run_scenario(spec, policy="baseline")
        stalled = run_scenario(spec, policy="baseline", faults=stall)
        assert stalled.offered_inferences < clean.offered_inferences
        assert _conserved(stalled)

    def test_core_offline_preempts_and_recovers(self):
        spec = get_scenario("steady-quad").scaled(0.5)
        soc = SoCConfig()
        outage = FaultSpec(events=(
            FaultEvent(kind=CORE_OFFLINE, t_s=0.05, duration_s=0.05,
                       cores=soc.num_npu_cores - 1),
        ))
        probe = _InvariantProbe()
        result = run_scenario(spec, soc, probe, faults=outage)
        # 4 streams, 1 core left: 3 in-flight inferences preempted.
        assert result.cancelled_inferences == 3
        assert _conserved(result)
        assert probe.checks >= 2  # offline + online capacity changes
        probe.system.check_invariants()
        # The outage ends mid-run: tenants keep completing afterwards.
        clean = run_scenario(spec, soc, policy="camdn-full")
        assert result.completed_inferences < \
            clean.completed_inferences
        assert result.completed_inferences > 0

    def test_dram_degrade_slows_and_recovers(self):
        spec = get_scenario("steady-quad").scaled(0.5)
        throttle = FaultSpec(events=(
            FaultEvent(kind=DRAM_DEGRADE, t_s=0.04, duration_s=0.1,
                       bw_factor=0.25),
        ))
        clean = run_scenario(spec, policy="baseline")
        hot = run_scenario(spec, policy="baseline", faults=throttle)
        assert hot.completed_inferences < clean.completed_inferences
        assert _conserved(hot)

    def test_page_retire_counts_surface_in_stats(self):
        spec = get_scenario("steady-quad").scaled(0.5)
        storm = FaultSpec(events=(
            FaultEvent(kind=PAGE_RETIRE, t_s=0.03, pages=16),
            FaultEvent(kind=PAGE_RETIRE, t_s=0.06, pages=8),
        ))
        probe = _InvariantProbe()
        result = run_scenario(spec, SoCConfig(), probe, faults=storm)
        assert result.scheduler_stats["pages_retired"] == 24.0
        allocator = probe.system.regions.allocator
        assert allocator.retired_pages == 24
        assert _conserved(result)

    def test_fault_events_recorded_in_trace(self):
        spec = get_scenario("steady-quad").scaled(0.25)
        result = run_scenario(
            spec, policy="baseline", faults="thermal-throttle",
            capture_trace=True,
        )
        faults = result.event_trace.events_of("fault")
        # Two windows -> two onsets + two expiries, in time order.
        assert [e.instance for e in faults] == [
            "onset", "expiry", "onset", "expiry"
        ]
        assert all(e.stream.startswith("dram-degrade@") for e in faults)


class TestWatchdog:
    def _engine(self, **kwargs):
        spec = get_scenario("steady-quad").scaled(0.25)
        return MultiTenantEngine(
            SoCConfig(), make_scheduler("baseline"),
            ScenarioWorkload(spec), **kwargs,
        )

    def test_max_events_raises_with_snapshot(self):
        engine = self._engine()
        with pytest.raises(SimulationError, match="event cap") as info:
            engine.run(max_events=50)
        snapshot = info.value.snapshot
        assert snapshot["events_processed"] <= 50
        assert snapshot["now"] >= 0.0
        assert "active_ids" in snapshot

    def test_max_wall_raises(self):
        engine = self._engine()
        with pytest.raises(SimulationError, match="wall-clock"):
            engine.run(max_wall_s=0.0)

    def test_env_event_cap(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_EVENTS", "50")
        engine = self._engine()
        with pytest.raises(SimulationError, match="event cap"):
            engine.run()

    def test_generous_budget_is_invisible(self):
        free = self._engine().run()
        budgeted = self._engine().run(max_events=10_000_000,
                                      max_wall_s=600.0)
        assert free.metric_summary() == budgeted.metric_summary()
