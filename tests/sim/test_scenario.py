"""Tests for the declarative scenario model (specs, registry, lowering,
serialization and arrival-time generation)."""

import json
import math

import pytest

from repro.core.serialize import (
    scenario_spec_from_dict,
    scenario_spec_to_dict,
)
from repro.errors import WorkloadError
from repro.sim.scenario import (
    ArrivalProcess,
    ScenarioSpec,
    StreamSpec,
    get_scenario,
    register_scenario,
    scenario_names,
    scenario_registry,
)
from repro.sim.workload import WorkloadSpec


class TestArrivalProcess:
    def test_closed_loop_default(self):
        arrival = ArrivalProcess()
        assert not arrival.is_open_loop
        assert list(arrival.arrival_times(0, 0.0, 1.0)) == []

    def test_periodic_times(self):
        arrival = ArrivalProcess.periodic(period_s=0.25, phase_s=0.1)
        times = list(arrival.arrival_times(0, 1.0, 2.0))
        assert times == pytest.approx([1.1, 1.35, 1.6, 1.85])

    def test_poisson_is_deterministic_per_seed_and_stream(self):
        arrival = ArrivalProcess.poisson(rate_hz=100.0, seed=7)
        a = list(arrival.arrival_times(0, 0.0, 0.5))
        b = list(arrival.arrival_times(0, 0.0, 0.5))
        other_stream = list(arrival.arrival_times(1, 0.0, 0.5))
        assert a == b
        assert a != other_stream
        assert all(0.0 <= t < 0.5 for t in a)

    def test_poisson_rate_is_roughly_honored(self):
        arrival = ArrivalProcess.poisson(rate_hz=1000.0, seed=3)
        times = list(arrival.arrival_times(0, 0.0, 2.0))
        assert len(times) == pytest.approx(2000, rel=0.1)

    def test_bursty_respects_off_windows(self):
        arrival = ArrivalProcess.bursty(period_s=0.1, on_s=0.5, off_s=0.5)
        times = list(arrival.arrival_times(0, 0.0, 2.0))
        assert times
        for t in times:
            assert (t % 1.0) < 0.5 + 1e-9

    def test_bursty_boundary_alignment_terminates(self):
        """Fuzzer-found regression: when the off-window skip lands
        within an ulp of the cycle boundary, the float increment used
        to round to zero and the generator spun forever."""
        arrival = ArrivalProcess.bursty(
            period_s=0.015625, on_s=0.015625,
            off_s=0.012319255088835187,
        )
        times = list(arrival.arrival_times(0, 0.0, 1.0))
        assert len(times) == 36
        assert times == sorted(times)
        assert all(0.0 <= t < 1.0 for t in times)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            ArrivalProcess(kind="fractal")
        with pytest.raises(WorkloadError):
            ArrivalProcess.periodic(period_s=0.0)
        with pytest.raises(WorkloadError):
            ArrivalProcess.poisson(rate_hz=-1.0)
        with pytest.raises(WorkloadError):
            ArrivalProcess.bursty(period_s=0.1, on_s=0.0, off_s=0.1)


class TestMMPPArrivals:
    def test_deterministic_per_seed_and_stream(self):
        arrival = ArrivalProcess.mmpp(
            rates_hz=(50.0, 500.0), sojourn_s=(0.05, 0.02), seed=11
        )
        a = list(arrival.arrival_times(0, 0.0, 0.5))
        b = list(arrival.arrival_times(0, 0.0, 0.5))
        assert a == b
        assert a != list(arrival.arrival_times(1, 0.0, 0.5))
        assert all(0.0 <= t < 0.5 for t in a)
        assert a == sorted(a)

    def test_burstier_than_mean_rate_poisson(self):
        """Modulation shows up as higher inter-arrival variance than a
        Poisson process at the same mean rate."""
        arrival = ArrivalProcess.mmpp(
            rates_hz=(10.0, 1000.0), sojourn_s=(0.1, 0.1), seed=5
        )
        times = list(arrival.arrival_times(0, 0.0, 4.0))
        gaps = [b - a for a, b in zip(times, times[1:])]
        mean = sum(gaps) / len(gaps)
        var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
        # Exponential gaps have var == mean^2; modulation inflates it.
        assert var > 1.5 * mean * mean

    def test_zero_rate_state_produces_gaps(self):
        arrival = ArrivalProcess.mmpp(
            rates_hz=(0.0, 800.0), sojourn_s=(0.05, 0.05), seed=3
        )
        times = list(arrival.arrival_times(0, 0.0, 1.0))
        assert times  # the hot state still fires

    def test_validation(self):
        with pytest.raises(WorkloadError):
            ArrivalProcess.mmpp(rates_hz=(), sojourn_s=())
        with pytest.raises(WorkloadError):
            ArrivalProcess.mmpp(rates_hz=(1.0, 2.0), sojourn_s=(0.1,))
        with pytest.raises(WorkloadError):
            ArrivalProcess.mmpp(rates_hz=(-1.0, 2.0),
                                sojourn_s=(0.1, 0.1))
        with pytest.raises(WorkloadError):
            ArrivalProcess.mmpp(rates_hz=(1.0, 2.0),
                                sojourn_s=(0.0, 0.1))


class TestDiurnalArrivals:
    def test_deterministic_per_seed_and_stream(self):
        arrival = ArrivalProcess.diurnal(
            rate_hz=200.0, period_s=0.2, amplitude=0.8, seed=9
        )
        a = list(arrival.arrival_times(0, 0.0, 0.5))
        assert a == list(arrival.arrival_times(0, 0.0, 0.5))
        assert a != list(arrival.arrival_times(1, 0.0, 0.5))
        assert a == sorted(a)

    def test_rate_concentrates_at_peaks(self):
        """With full modulation, arrivals cluster in the sinusoid's
        high-rate half-period."""
        arrival = ArrivalProcess.diurnal(
            rate_hz=400.0, period_s=1.0, amplitude=1.0, seed=2
        )
        times = list(arrival.arrival_times(0, 0.0, 1.0))
        # Peak half-period is [0, 0.5) (sin positive), trough [0.5, 1).
        peak = sum(1 for t in times if t < 0.5)
        assert peak > 0.75 * len(times)

    def test_flash_crowd_boosts_windows(self):
        boosted = ArrivalProcess.diurnal(
            rate_hz=100.0, period_s=10.0, amplitude=0.0,
            flash_every_s=0.5, flash_width_s=0.1, flash_boost=8.0,
            seed=4,
        )
        times = list(boosted.arrival_times(0, 0.0, 5.0))
        in_flash = sum(1 for t in times if (t % 0.5) < 0.1)
        # Flash windows cover 20 % of time but a boosted share of load.
        assert in_flash > 0.45 * len(times)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            ArrivalProcess.diurnal(rate_hz=0.0, period_s=1.0)
        with pytest.raises(WorkloadError):
            ArrivalProcess.diurnal(rate_hz=1.0, period_s=0.0)
        with pytest.raises(WorkloadError):
            ArrivalProcess.diurnal(rate_hz=1.0, period_s=1.0,
                                   amplitude=1.5)
        with pytest.raises(WorkloadError):
            ArrivalProcess.diurnal(rate_hz=1.0, period_s=1.0,
                                   flash_every_s=0.1)  # width missing
        with pytest.raises(WorkloadError):
            ArrivalProcess.diurnal(rate_hz=1.0, period_s=1.0,
                                   flash_every_s=0.1, flash_width_s=0.2,
                                   flash_boost=0.5)


class TestReplayArrivals:
    def test_replays_exact_times_within_window(self):
        arrival = ArrivalProcess.replay((0.1, 0.2, 0.7))
        assert arrival.is_open_loop
        assert list(arrival.arrival_times(0, 0.0, 0.5)) == [0.1, 0.2]
        assert list(arrival.arrival_times(3, 0.0, 1.0)) == \
            [0.1, 0.2, 0.7]  # stream index is irrelevant on replay

    def test_closed_loop_replay(self):
        arrival = ArrivalProcess.replay(None)
        assert not arrival.is_open_loop
        assert list(arrival.arrival_times(0, 0.0, 1.0)) == []

    def test_empty_replay_is_open_loop(self):
        arrival = ArrivalProcess.replay(())
        assert arrival.is_open_loop
        assert list(arrival.arrival_times(0, 0.0, 1.0)) == []

    def test_validation(self):
        with pytest.raises(WorkloadError):
            ArrivalProcess.replay((0.2, 0.1))  # not sorted
        with pytest.raises(WorkloadError):
            ArrivalProcess.replay((-0.1,))


class TestSpecs:
    def test_stream_validation(self):
        with pytest.raises(WorkloadError):
            StreamSpec(model="")
        with pytest.raises(WorkloadError):
            StreamSpec(model="MB.", join_s=-1.0)
        with pytest.raises(WorkloadError):
            StreamSpec(model="MB.", join_s=0.2, leave_s=0.1)
        with pytest.raises(WorkloadError):
            StreamSpec(model="MB.", inferences=0)

    def test_scenario_validation(self):
        with pytest.raises(WorkloadError):
            ScenarioSpec(streams=())
        with pytest.raises(WorkloadError):
            ScenarioSpec(
                streams=(StreamSpec(model="MB."),),  # no quota
            )
        with pytest.raises(WorkloadError):
            ScenarioSpec(
                streams=(StreamSpec(model="MB.", inferences=1),),
                duration_s=0.1,
                warmup_s=0.2,
            )
        with pytest.raises(WorkloadError):
            # Joining after the window ends is meaningless.
            ScenarioSpec(
                streams=(StreamSpec(model="MB.", join_s=1.0),),
                duration_s=0.5,
            )

    def test_quota(self):
        stream = StreamSpec(model="MB.", inferences=3,
                            warmup_inferences=2)
        assert stream.quota == 5
        assert StreamSpec(model="MB.").quota is None

    def test_has_dynamics(self):
        static = ScenarioSpec.closed_loop(["MB."], duration_s=0.1)
        assert not static.has_dynamics
        churn = ScenarioSpec(
            streams=(
                StreamSpec(model="MB."),
                StreamSpec(model="RS.", join_s=0.05),
            ),
            duration_s=0.1,
        )
        assert churn.has_dynamics

    def test_scaled(self):
        spec = ScenarioSpec(
            streams=(
                StreamSpec(model="MB.", join_s=0.1, leave_s=0.3),
            ),
            duration_s=0.4,
            warmup_s=0.08,
        )
        half = spec.scaled(0.5)
        assert half.duration_s == pytest.approx(0.2)
        assert half.warmup_s == pytest.approx(0.04)
        assert half.streams[0].join_s == pytest.approx(0.05)
        assert half.streams[0].leave_s == pytest.approx(0.15)
        assert spec.scaled(1.0) is spec


class TestWorkloadSpecLowering:
    def test_count_mode_fields(self):
        spec = WorkloadSpec(model_keys=["RS.", "MB."],
                            inferences_per_stream=4,
                            warmup_inferences=2, qos_scale=0.8)
        scenario = spec.to_scenario()
        assert scenario.duration_s is None
        assert scenario.model_keys == ("RS.", "MB.")
        for stream in scenario.streams:
            assert stream.inferences == 4
            assert stream.warmup_inferences == 2
            assert stream.qos_scale == 0.8
            assert not stream.arrival.is_open_loop
            assert stream.join_s == 0.0 and stream.leave_s is None

    def test_steady_state_drops_quota(self):
        spec = WorkloadSpec(model_keys=["RS."], duration_s=0.2,
                            warmup_s=0.05)
        scenario = spec.to_scenario()
        assert scenario.duration_s == 0.2
        assert scenario.warmup_s == 0.05
        assert scenario.streams[0].inferences is None


class TestSerialization:
    def _roundtrip(self, spec: ScenarioSpec) -> ScenarioSpec:
        payload = json.loads(json.dumps(scenario_spec_to_dict(spec)))
        return scenario_spec_from_dict(payload)

    def test_exact_roundtrip_with_dynamics(self):
        spec = ScenarioSpec(
            streams=(
                StreamSpec(model="RS.", qos_scale=math.inf),
                StreamSpec(
                    model="MB.",
                    arrival=ArrivalProcess.poisson(rate_hz=123.456,
                                                   seed=99),
                    qos_scale=0.8,
                    join_s=0.0125,
                    leave_s=0.34375,
                ),
                StreamSpec(
                    model="BE.",
                    arrival=ArrivalProcess.bursty(
                        period_s=1e-3, on_s=0.02, off_s=0.03,
                        phase_s=1e-4,
                    ),
                ),
            ),
            duration_s=0.4,
            warmup_s=0.08,
        )
        assert self._roundtrip(spec) == spec

    def test_roundtrip_count_mode(self):
        spec = WorkloadSpec(model_keys=["RS.", "MB."]).to_scenario()
        assert self._roundtrip(spec) == spec

    def test_registry_specs_roundtrip(self):
        for name in scenario_names():
            spec = get_scenario(name)
            assert self._roundtrip(spec) == spec

    def test_schema_version_enforced(self):
        payload = scenario_spec_to_dict(
            WorkloadSpec(model_keys=["RS."]).to_scenario()
        )
        payload["scenario_schema_version"] = 99
        with pytest.raises(WorkloadError):
            scenario_spec_from_dict(payload)

    def test_roundtrip_new_arrival_kinds(self):
        spec = ScenarioSpec(
            streams=(
                StreamSpec(model="RS.",
                           arrival=ArrivalProcess.mmpp(
                               rates_hz=(30.0, 240.0),
                               sojourn_s=(0.06, 0.02), seed=17)),
                StreamSpec(model="MB.",
                           arrival=ArrivalProcess.diurnal(
                               rate_hz=70.0, period_s=0.2,
                               amplitude=0.6, flash_every_s=0.13,
                               flash_width_s=0.02, flash_boost=3.0)),
                StreamSpec(model="EF.",
                           arrival=ArrivalProcess.replay(
                               (0.0125, 0.34375, 0.5))),
                StreamSpec(model="BE.",
                           arrival=ArrivalProcess.replay(None)),
            ),
            duration_s=0.4,
        )
        assert self._roundtrip(spec) == spec

    def test_unknown_arrival_kind_rejected(self):
        """A typo'd or future arrival kind must fail loudly with a
        WorkloadError, not a KeyError (regression: from_dict used to
        index a dispatch table directly)."""
        payload = scenario_spec_to_dict(
            WorkloadSpec(model_keys=["RS."]).to_scenario()
        )
        payload["streams"][0]["arrival"]["kind"] = "fractal"
        with pytest.raises(WorkloadError, match="unknown arrival kind"):
            scenario_spec_from_dict(payload)

    def test_unknown_arrival_field_rejected(self):
        payload = scenario_spec_to_dict(
            WorkloadSpec(model_keys=["RS."]).to_scenario()
        )
        payload["streams"][0]["arrival"]["jitter_s"] = 0.1
        with pytest.raises(WorkloadError):
            scenario_spec_from_dict(payload)

    def test_missing_arrival_rejected(self):
        payload = scenario_spec_to_dict(
            WorkloadSpec(model_keys=["RS."]).to_scenario()
        )
        del payload["streams"][0]["arrival"]
        with pytest.raises(WorkloadError):
            scenario_spec_from_dict(payload)


class TestRegistry:
    def test_builtin_scenarios_present(self):
        names = scenario_names()
        for expected in ("steady-quad", "poisson-eight", "churn-eight",
                         "churn-heavy", "periodic-eight", "bursty-quad"):
            assert expected in names

    def test_unknown_name_raises(self):
        with pytest.raises(WorkloadError):
            get_scenario("does-not-exist")

    def test_register_and_describe(self):
        spec = ScenarioSpec.closed_loop(["MB."], duration_s=0.1)
        register_scenario("test-tmp-scenario", spec, "temporary")
        try:
            assert get_scenario("test-tmp-scenario") is spec
            assert scenario_registry()["test-tmp-scenario"][1] == \
                "temporary"
        finally:
            del __import__(
                "repro.sim.scenario", fromlist=["_REGISTRY"]
            )._REGISTRY["test-tmp-scenario"]
