"""Tests for closed-loop workload generation."""

import pytest

from repro.errors import WorkloadError
from repro.sim.workload import (
    ClosedLoopWorkload,
    WorkloadSpec,
    random_model_mix,
)


class TestWorkloadSpec:
    def test_rejects_empty(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec(model_keys=[])

    def test_rejects_bad_duration(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec(model_keys=["RS."], duration_s=-1.0)

    def test_rejects_warmup_after_end(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec(model_keys=["RS."], duration_s=1.0, warmup_s=1.5)

    def test_total_inferences(self):
        spec = WorkloadSpec(model_keys=["RS.", "MB."],
                            inferences_per_stream=3, warmup_inferences=1)
        assert spec.total_inferences == 8


class TestRandomModelMix:
    def test_first_eight_distinct(self):
        keys = random_model_mix(8)
        assert len(set(keys)) == 8

    def test_deterministic_by_seed(self):
        assert random_model_mix(32, seed=7) == random_model_mix(32, seed=7)

    def test_different_seeds_differ(self):
        assert random_model_mix(32, seed=1) != random_model_mix(32, seed=2)

    def test_small_counts(self):
        assert random_model_mix(1) == ["RS."]

    def test_rejects_zero(self):
        with pytest.raises(WorkloadError):
            random_model_mix(0)


class TestClosedLoopCountMode:
    def test_initial_instances_one_per_stream(self):
        spec = WorkloadSpec(model_keys=["RS.", "MB."])
        workload = ClosedLoopWorkload(spec)
        initial = workload.initial_instances()
        assert len(initial) == 2
        assert {i.stream_id for i in initial} == set(workload.streams)

    def test_quota_enforced(self):
        spec = WorkloadSpec(model_keys=["RS."], inferences_per_stream=2,
                            warmup_inferences=1)
        workload = ClosedLoopWorkload(spec)
        workload.initial_instances()
        spawned = 0
        while workload.next_instance(workload.streams[0], 0.0):
            spawned += 1
        assert spawned == 2  # 3 total minus the initial one

    def test_warmup_flag(self):
        spec = WorkloadSpec(model_keys=["RS."], warmup_inferences=1)
        workload = ClosedLoopWorkload(spec)
        first = workload.initial_instances()[0]
        second = workload.next_instance(first.stream_id, 1.0)
        assert workload.is_warmup(first)
        assert not workload.is_warmup(second)

    def test_qos_scale_applied(self):
        spec = WorkloadSpec(model_keys=["MB."], qos_scale=0.8)
        inst = ClosedLoopWorkload(spec).initial_instances()[0]
        assert inst.qos_target_s == pytest.approx(2.8e-3 * 0.8)


class TestClosedLoopSteadyState:
    def test_dispatch_stops_after_window(self):
        spec = WorkloadSpec(model_keys=["RS."], duration_s=1.0)
        workload = ClosedLoopWorkload(spec)
        workload.initial_instances()
        assert workload.next_instance(workload.streams[0], 0.5) is not None
        assert workload.next_instance(workload.streams[0], 1.5) is None

    def test_window_measurement_by_arrival(self):
        spec = WorkloadSpec(model_keys=["RS."], duration_s=1.0,
                            warmup_s=0.2)
        workload = ClosedLoopWorkload(spec)
        inst = workload.initial_instances()[0]
        inst.finish_time = 0.5
        assert workload.is_warmup(inst)  # arrived at 0 < warmup
        later = workload.next_instance(inst.stream_id, 0.3)
        later.finish_time = 0.9
        assert not workload.is_warmup(later)
        slow = workload.next_instance(inst.stream_id, 0.95)
        slow.finish_time = 1.4
        # Arrived inside the window: measured even though it finishes
        # after the window ends (no survivorship bias against slow models).
        assert not workload.is_warmup(slow)
