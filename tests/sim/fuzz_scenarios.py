"""Hypothesis strategies generating arbitrary valid scenario specs.

The scenario fuzzer's search space: every arrival-process kind
(closed-loop, periodic, poisson, bursty, mmpp, diurnal), both
measurement modes (steady-state window and count quota), tenant churn
(mid-run joins and preemptive leaves) and per-stream QoS classes —
bounded so one generated scenario simulates in tens of milliseconds.

Shared by ``test_scenario_fuzz.py`` (conservation / invariant /
native-identity properties) and ``test_native_step.py`` (fuzzed
cross-path cases).  Falsifying specs are dumped as JSON via
:func:`dump_falsifying_spec` when ``REPRO_FUZZ_ARTIFACT_DIR`` is set
(the nightly CI uploads them as artifacts).
"""

import json
import math
import os
from pathlib import Path

from hypothesis import strategies as st

from repro.sim.scenario import ArrivalProcess, ScenarioSpec, StreamSpec

#: Model pool: small enough that the prepared-workload cache stays warm
#: across examples, varied enough to mix vision and NLP layer shapes.
MODEL_POOL = ("RS.", "MB.", "EF.", "BE.")

#: Window bounds keeping one generated run cheap (~tens of ms simulated).
MIN_DURATION_S = 0.02
MAX_DURATION_S = 0.06

_rates = st.floats(50.0, 400.0)
_seeds = st.integers(0, 2**16)


@st.composite
def _mmpp_processes(draw) -> ArrivalProcess:
    """A valid MMPP process (one sojourn time per state)."""
    num_states = draw(st.integers(2, 4))
    rates = [draw(_rates) for _ in range(num_states)]
    sojourns = [draw(st.floats(0.005, 0.04)) for _ in range(num_states)]
    return ArrivalProcess.mmpp(rates, sojourns, seed=draw(_seeds))


def arrival_processes() -> st.SearchStrategy:
    """Any valid arrival process (every kind except replay, which only
    arises from captured traces)."""
    return st.one_of(
        st.just(ArrivalProcess.closed_loop()),
        st.builds(
            ArrivalProcess.periodic,
            period_s=st.floats(0.004, 0.02),
            phase_s=st.floats(0.0, 0.01),
        ),
        st.builds(ArrivalProcess.poisson, rate_hz=_rates, seed=_seeds),
        st.builds(
            ArrivalProcess.bursty,
            period_s=st.floats(0.004, 0.02),
            on_s=st.floats(0.005, 0.03),
            off_s=st.floats(0.0, 0.03),
            phase_s=st.floats(0.0, 0.01),
        ),
        _mmpp_processes(),
        st.builds(
            ArrivalProcess.diurnal,
            rate_hz=_rates,
            period_s=st.floats(0.02, 0.1),
            amplitude=st.floats(0.0, 1.0),
            phase_s=st.floats(0.0, 0.02),
            seed=_seeds,
        ),
        st.builds(
            ArrivalProcess.diurnal,
            rate_hz=_rates,
            period_s=st.floats(0.02, 0.1),
            amplitude=st.floats(0.0, 1.0),
            flash_every_s=st.floats(0.01, 0.04),
            flash_width_s=st.floats(0.002, 0.01),
            flash_boost=st.floats(1.0, 4.0),
            seed=_seeds,
        ),
    )


@st.composite
def stream_specs(draw, duration_s: float) -> StreamSpec:
    """One valid tenant inside a ``duration_s`` window (possibly
    churning: joining mid-run and/or leaving before the end)."""
    model = draw(st.sampled_from(MODEL_POOL))
    arrival = draw(arrival_processes())
    join_s = draw(st.one_of(
        st.just(0.0),
        st.floats(0.0, duration_s * 0.6),
    ))
    leave_s = draw(st.one_of(
        st.none(),
        st.floats(join_s + 0.005, duration_s + 0.02),
    ))
    qos_scale = draw(st.sampled_from((math.inf, 1.0, 1.2)))
    return StreamSpec(
        model=model,
        arrival=arrival,
        qos_scale=qos_scale,
        join_s=join_s,
        leave_s=leave_s,
    )


@st.composite
def scenario_specs(draw) -> ScenarioSpec:
    """Any valid steady-state scenario: 1–4 tenants, any arrival mix,
    optional churn, bounded measurement window."""
    duration_s = draw(st.floats(MIN_DURATION_S, MAX_DURATION_S))
    num_streams = draw(st.integers(1, 4))
    streams = tuple(
        draw(stream_specs(duration_s)) for _ in range(num_streams)
    )
    warmup_s = draw(st.one_of(
        st.just(0.0), st.floats(0.0, duration_s * 0.4)
    ))
    return ScenarioSpec(
        streams=streams, duration_s=duration_s, warmup_s=warmup_s
    )


@st.composite
def count_mode_scenario_specs(draw) -> ScenarioSpec:
    """Count-mode variant: every stream carries an inference quota, so
    open-loop backlogs drain to a fixed total (exercises the
    quota-truncation paths the window mode never hits)."""
    num_streams = draw(st.integers(1, 3))
    streams = []
    for _ in range(num_streams):
        streams.append(StreamSpec(
            model=draw(st.sampled_from(MODEL_POOL)),
            arrival=draw(arrival_processes()),
            inferences=draw(st.integers(1, 3)),
            warmup_inferences=draw(st.integers(0, 1)),
        ))
    return ScenarioSpec(streams=tuple(streams))


def dump_falsifying_spec(spec: ScenarioSpec, policy: str,
                         label: str, extra: dict = None) -> str:
    """Dump a falsifying scenario as JSON for CI artifact upload.

    Writes ``<label>-<policy>.json`` under ``REPRO_FUZZ_ARTIFACT_DIR``
    (no-op when the variable is unset); returns a short description for
    the assertion message either way.  ``extra`` merges additional
    reproduction keys into the payload (e.g. the snapshot event count
    of a failing snapshot-resume case).
    """
    payload = {"policy": policy, "scenario": spec.to_dict()}
    if extra:
        payload.update(extra)
    artifact_dir = os.environ.get("REPRO_FUZZ_ARTIFACT_DIR")
    note = f"policy={policy} spec={json.dumps(spec.to_dict())[:400]}"
    if not artifact_dir:
        return note
    path = Path(artifact_dir)
    path.mkdir(parents=True, exist_ok=True)
    out = path / f"{label}-{policy}.json"
    out.write_text(json.dumps(payload, indent=1) + "\n")
    return f"{note} (dumped to {out})"
