"""Determinism regression tests for the simulation fast path.

Two identical ``simulate()`` calls must produce byte-identical summaries,
whether the prepared-workload cache is cold or warm — the fast path may
never change results, only skip re-derivation.
"""

import json

import pytest

from repro import (
    clear_prepared_caches,
    prepared_cache_info,
    simulate,
)

SCENARIO = ("RS.", "MB.", "BE.")


def _summary_json(policy, **kwargs) -> str:
    # metric_summary() is the byte-identity surface: summary() adds the
    # wall-clock observability keys, which legitimately differ per run.
    result = simulate(policy, SCENARIO, **kwargs)
    return json.dumps(result.metric_summary(), sort_keys=True)


class TestDeterminism:
    @pytest.mark.parametrize(
        "policy", ["baseline", "moca", "aurora", "camdn-hw", "camdn-full"]
    )
    def test_repeated_runs_byte_identical(self, policy):
        first = _summary_json(policy, inferences_per_stream=2)
        second = _summary_json(policy, inferences_per_stream=2)
        assert first == second

    def test_steady_state_runs_byte_identical(self):
        first = _summary_json("camdn-full", duration_s=0.05)
        second = _summary_json("camdn-full", duration_s=0.05)
        assert first == second

    def test_cold_and_warm_prepared_cache_byte_identical(self):
        clear_prepared_caches()
        cold = _summary_json("camdn-full", inferences_per_stream=2)
        info = prepared_cache_info()
        assert info["workloads"].misses >= 1
        warm = _summary_json("camdn-full", inferences_per_stream=2)
        assert cold == warm


class TestPreparedCacheReuse:
    def test_repeated_simulate_hits_prepared_cache(self):
        """The second identical simulate() must be served from the
        prepared-workload cache: workload hits grow, model misses don't."""
        clear_prepared_caches()
        simulate("aurora", SCENARIO, inferences_per_stream=1)
        before = prepared_cache_info()
        assert before["workloads"].misses == 1
        assert before["models"].misses == len(SCENARIO)
        simulate("aurora", SCENARIO, inferences_per_stream=1)
        after = prepared_cache_info()
        assert after["workloads"].hits == before["workloads"].hits + 1
        assert after["models"].misses == before["models"].misses

    def test_models_shared_across_policies(self):
        """A new policy over known models reuses every prepared model."""
        clear_prepared_caches()
        simulate("aurora", SCENARIO, inferences_per_stream=1)
        misses_before = prepared_cache_info()["models"].misses
        simulate("camdn-full", SCENARIO, inferences_per_stream=1)
        info = prepared_cache_info()
        assert info["models"].misses == misses_before
        assert info["workloads"].size == 2
