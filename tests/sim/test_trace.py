"""Tests for execution tracing."""

import pytest

from repro.config import SoCConfig
from repro.schedulers import make_scheduler
from repro.sim.engine import MultiTenantEngine
from repro.sim.trace import SpanKind, TraceRecorder, TraceSpan
from repro.sim.workload import ClosedLoopWorkload, WorkloadSpec


class TestTraceRecorder:
    def test_begin_end_span(self):
        trace = TraceRecorder()
        trace.begin("a", SpanKind.LAYER, 0, 1.0)
        trace.end("a", 2.0, dram_bytes=100)
        assert len(trace.spans) == 1
        span = trace.spans[0]
        assert span.duration_s == pytest.approx(1.0)
        assert span.dram_bytes == 100

    def test_begin_closes_previous(self):
        trace = TraceRecorder()
        trace.begin("a", SpanKind.WAIT_PAGES, 0, 0.0)
        trace.begin("a", SpanKind.LAYER, 0, 0.5)
        trace.end("a", 1.0)
        kinds = [s.kind for s in trace.spans]
        assert kinds == [SpanKind.WAIT_PAGES, SpanKind.LAYER]

    def test_end_without_open_is_noop(self):
        trace = TraceRecorder()
        trace.end("ghost", 1.0)
        assert trace.spans == []

    def test_backwards_span_rejected(self):
        trace = TraceRecorder()
        trace.begin("a", SpanKind.LAYER, 0, 5.0)
        with pytest.raises(ValueError):
            trace.end("a", 1.0)

    def test_wait_time_accounting(self):
        trace = TraceRecorder()
        trace.spans.append(
            TraceSpan("a", SpanKind.WAIT_PAGES, 0, 0.0, 0.3)
        )
        trace.spans.append(TraceSpan("a", SpanKind.LAYER, 0, 0.3, 1.0))
        assert trace.wait_time_s("a") == pytest.approx(0.3)
        assert trace.busy_time_s("a") == pytest.approx(0.7)

    def test_timeline_text(self):
        trace = TraceRecorder()
        trace.spans.append(TraceSpan("a", SpanKind.LAYER, 0, 0.0, 1.0))
        text = trace.timeline_text(width=20)
        assert "a" in text and "#" in text

    def test_empty_timeline(self):
        assert "(empty trace)" in TraceRecorder().timeline_text()


class TestEngineIntegration:
    def test_engine_emits_layer_spans(self):
        trace = TraceRecorder()
        spec = WorkloadSpec(model_keys=["MB."], inferences_per_stream=1,
                            warmup_inferences=0)
        engine = MultiTenantEngine(
            SoCConfig(), make_scheduler("camdn-full"),
            ClosedLoopWorkload(spec), trace=trace,
        )
        result = engine.run()
        layer_spans = [s for s in trace.spans
                       if s.kind is SpanKind.LAYER]
        assert len(layer_spans) == 64  # MobileNet-v2 layer count

    def test_span_times_cover_latency(self):
        trace = TraceRecorder()
        spec = WorkloadSpec(model_keys=["MB."], inferences_per_stream=1,
                            warmup_inferences=0)
        engine = MultiTenantEngine(
            SoCConfig(), make_scheduler("baseline"),
            ClosedLoopWorkload(spec), trace=trace,
        )
        result = engine.run()
        busy = trace.busy_time_s(trace.spans[0].instance_id)
        latency = result.metrics.records[0].latency_s
        assert busy == pytest.approx(latency, rel=1e-6)

    def test_traced_dram_matches_metrics(self):
        trace = TraceRecorder()
        spec = WorkloadSpec(model_keys=["EF."], inferences_per_stream=1,
                            warmup_inferences=0)
        engine = MultiTenantEngine(
            SoCConfig(), make_scheduler("camdn-full"),
            ClosedLoopWorkload(spec), trace=trace,
        )
        result = engine.run()
        traced = sum(s.dram_bytes for s in trace.spans)
        assert traced == pytest.approx(
            result.metrics.records[0].dram_bytes, rel=1e-9
        )
