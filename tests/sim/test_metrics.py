"""Tests for metrics collection and QoS metrics."""

import pytest

from repro.errors import SimulationError
from repro.models.zoo import build_model
from repro.sim.metrics import MetricsCollector
from repro.sim.qos import fairness, sla_rate, system_throughput
from repro.sim.task import TaskInstance


def _finished(stream: str, serial: int, latency: float, dram: float = 1e6,
              qos_s: float = 1.0, model: str = "MB.") -> TaskInstance:
    inst = TaskInstance(
        instance_id=f"{stream}#{serial}",
        stream_id=stream,
        graph=build_model(model),
        arrival_time=0.0,
        qos_target_s=qos_s,
    )
    inst.start_time = 0.0
    inst.finish_time = latency
    inst.dram_bytes_total = dram
    return inst


class TestCollector:
    def test_record_requires_finish(self):
        collector = MetricsCollector()
        inst = TaskInstance(
            instance_id="x#0", stream_id="x", graph=build_model("MB."),
            arrival_time=0.0,
        )
        with pytest.raises(SimulationError):
            collector.record(inst)

    def test_micro_averages(self):
        collector = MetricsCollector()
        collector.record(_finished("MB.@0", 0, latency=0.002))
        collector.record(_finished("MB.@0", 1, latency=0.004))
        assert collector.avg_latency_s() == pytest.approx(0.003)

    def test_macro_average_weights_models_equally(self):
        collector = MetricsCollector()
        # 10 fast MB inferences and 1 slow RS inference.
        for i in range(10):
            collector.record(_finished("MB.@0", i, latency=0.001))
        collector.record(
            _finished("RS.@1", 0, latency=0.101, model="RS.")
        )
        micro = collector.avg_latency_s()
        macro = collector.macro_avg_latency_s()
        assert macro == pytest.approx((0.001 + 0.101) / 2)
        assert macro > micro

    def test_by_model_sla(self):
        collector = MetricsCollector()
        collector.record(_finished("MB.@0", 0, latency=0.5, qos_s=1.0))
        collector.record(_finished("MB.@0", 1, latency=2.0, qos_s=1.0))
        summary = collector.by_model()["MB."]
        assert summary.sla_rate == pytest.approx(0.5)

    def test_empty_collector_raises(self):
        with pytest.raises(SimulationError):
            MetricsCollector().avg_latency_s()

    def test_hit_rate_zero_without_accesses(self):
        collector = MetricsCollector()
        collector.record(_finished("MB.@0", 0, latency=0.001))
        assert collector.overall_hit_rate() == 0.0


class TestQoSMetrics:
    def _collector(self):
        collector = MetricsCollector()
        collector.record(_finished("MB.@0", 0, latency=0.002, qos_s=0.003))
        collector.record(
            _finished("RS.@1", 0, latency=0.010, qos_s=0.005, model="RS.")
        )
        return collector

    def test_sla_rate(self):
        assert sla_rate(self._collector()) == pytest.approx(0.5)

    def test_stp_weighted_speedup(self):
        isolated = {"MB.": 0.002, "RS.": 0.005}
        stp = system_throughput(self._collector(), isolated)
        assert stp == pytest.approx(0.002 / 0.002 + 0.005 / 0.010)

    def test_fairness_min_over_max(self):
        isolated = {"MB.": 0.002, "RS.": 0.005}
        fair = fairness(self._collector(), isolated)
        assert fair == pytest.approx(0.5 / 1.0)

    def test_perfect_fairness_is_one(self):
        collector = MetricsCollector()
        collector.record(_finished("MB.@0", 0, latency=0.004))
        collector.record(_finished("MB.@1", 0, latency=0.004))
        assert fairness(collector, {"MB.": 0.002}) == pytest.approx(1.0)

    def test_missing_isolated_latency_raises(self):
        with pytest.raises(SimulationError):
            system_throughput(self._collector(), {"MB.": 0.002})
