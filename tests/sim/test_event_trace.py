"""Tests for the versioned event-trace capture/replay format."""

import json

import pytest

from repro.config import SoCConfig
from repro.errors import WorkloadError
from repro.experiments.common import run_scenario
from repro.sim.scenario import (
    ArrivalProcess,
    ScenarioSpec,
    StreamSpec,
    scenario_registry,
)
from repro.sim.trace import (
    ARRIVAL,
    COMPLETION,
    TRACE_SCHEMA_VERSION,
    EventTrace,
    EventTraceRecorder,
    TraceEvent,
)

POLICIES = ("baseline", "moca", "aurora", "camdn-hw", "camdn-full")

_SPEC = ScenarioSpec(
    streams=(
        StreamSpec(model="MB.",
                   arrival=ArrivalProcess.poisson(rate_hz=150.0)),
        StreamSpec(model="EF.",
                   arrival=ArrivalProcess.periodic(period_s=0.01),
                   join_s=0.01, leave_s=0.04),
    ),
    duration_s=0.05,
)


def _capture(spec, policy):
    return run_scenario(spec, SoCConfig(), policy, capture_trace=True)


class TestTraceEvent:
    def test_roundtrip(self):
        event = TraceEvent(kind=ARRIVAL, t=0.125, stream="MB.@0",
                           instance="MB.@0#3")
        assert TraceEvent.from_dict(event.to_dict()) == event

    def test_unknown_kind_rejected(self):
        with pytest.raises(WorkloadError, match="unknown trace-event"):
            TraceEvent(kind="teleport", t=0.0, stream="MB.@0")

    def test_unknown_field_rejected(self):
        data = TraceEvent(kind=ARRIVAL, t=0.0, stream="MB.@0").to_dict()
        data["severity"] = "high"
        with pytest.raises(WorkloadError, match="unknown trace-event"):
            TraceEvent.from_dict(data)


class TestEventTraceFormat:
    def test_dict_roundtrip_is_exact(self):
        trace = _capture(_SPEC, "camdn-full").event_trace
        data = trace.to_dict()
        assert data["trace_schema_version"] == TRACE_SCHEMA_VERSION
        restored = EventTrace.from_dict(data)
        assert restored == trace
        assert restored.to_dict() == data

    def test_content_hash_detects_tampering(self):
        trace = _capture(_SPEC, "baseline").event_trace
        data = trace.to_dict()
        data["events"][0]["t"] += 1e-9
        with pytest.raises(WorkloadError, match="content hash"):
            EventTrace.from_dict(data)

    def test_version_mismatch_rejected(self):
        data = _capture(_SPEC, "baseline").event_trace.to_dict()
        data["trace_schema_version"] = 99
        with pytest.raises(WorkloadError, match="trace schema"):
            EventTrace.from_dict(data)

    def test_save_load_roundtrip(self, tmp_path):
        trace = _capture(_SPEC, "camdn-hw").event_trace
        path = trace.save(tmp_path / "run.trace.json")
        loaded = EventTrace.load(path)
        assert loaded == trace
        assert loaded.content_hash == trace.content_hash

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.trace.json"
        path.write_text("{not json")
        with pytest.raises(WorkloadError):
            EventTrace.load(path)

    def test_recorder_finish_freezes_events(self):
        recorder = EventTraceRecorder()
        recorder.record(ARRIVAL, 0.0, "MB.@0")
        recorder.record(COMPLETION, 0.01, "MB.@0", "MB.@0#0")
        trace = recorder.finish(_SPEC, "baseline")
        assert trace.count(ARRIVAL) == 1
        assert trace.count(COMPLETION) == 1
        assert trace.events_of(COMPLETION)[0].instance == "MB.@0#0"

    def test_capture_is_pure_observation(self):
        """Recording must not perturb the simulation."""
        captured = _capture(_SPEC, "camdn-full")
        plain = run_scenario(_SPEC, SoCConfig(), "camdn-full")
        assert json.dumps(captured.metric_summary(), sort_keys=True) == \
            json.dumps(plain.metric_summary(), sort_keys=True)


class TestCaptureReplayRegistry:
    """Acceptance bar: any builtin-registry run replays byte-identically
    under every policy."""

    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("name", sorted(scenario_registry()))
    def test_replay_reproduces_metric_summary(self, name, policy):
        spec = scenario_registry()[name][0].scaled(0.25)
        source = _capture(spec, policy)
        trace = source.event_trace
        replay_spec = trace.replay_scenario()
        # The replay spec swaps every open-loop arrival for the recorded
        # instants; closed-loop streams keep their completion coupling.
        for orig, rep in zip(spec.streams, replay_spec.streams):
            if orig.arrival.is_open_loop:
                assert rep.arrival.kind == "replay"
            assert rep.arrival.is_open_loop == orig.arrival.is_open_loop
        replayed = run_scenario(replay_spec, SoCConfig(), policy)
        assert json.dumps(replayed.metric_summary(), sort_keys=True) == \
            json.dumps(source.metric_summary(), sort_keys=True)
        # The trace's event counts mirror the result's accounting.
        assert trace.count("arrival") == source.offered_inferences
        assert trace.count("completion") == source.completed_inferences
        assert trace.count("cancel") == source.cancelled_inferences
        assert trace.count("drop") == source.dropped_inferences
