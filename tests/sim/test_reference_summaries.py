"""Frozen metric-summary reference for the allocator refactor.

``tests/data/metric_summary_reference.json`` holds the byte-exact
``metric_summary()`` of every policy on a 20-scenario reference set,
captured on the pre-refactor allocator (PR 2 HEAD).  Any change to the
CaMDN allocation stack (Algorithm 1, MCT geometry, page/region/CPT
bookkeeping) must keep these summaries byte-identical: the incremental
data structures are pure speedups, never behavioral changes.

Regenerate (only when a PR *intentionally* changes simulation results —
this must be called out in the PR description)::

    PYTHONPATH=src python tests/sim/test_reference_summaries.py

The scenario set covers 2/4/8-tenant mixes over all eight Table I
models, duplicate-model co-location, and both count- and duration-mode
measurement windows, so every Algorithm 1 path (LBM enable, prediction
bound, downgrade-on-timeout, hw-only static split) is exercised.
"""

import json
from pathlib import Path

import pytest

from repro import simulate

REFERENCE_PATH = (
    Path(__file__).parent.parent / "data" / "metric_summary_reference.json"
)

POLICIES = ("baseline", "moca", "aurora", "camdn-hw", "camdn-full")

#: The 20 reference scenarios: (name, model mix, simulate() kwargs).
SCENARIOS = (
    ("pair-rs-mb", ("RS.", "MB."), {"inferences_per_stream": 2}),
    ("pair-ef-vt", ("EF.", "VT."), {"inferences_per_stream": 2}),
    ("pair-be-gn", ("BE.", "GN."), {"inferences_per_stream": 2}),
    ("pair-wv-pp", ("WV.", "PP."), {"inferences_per_stream": 2}),
    ("pair-rs-be", ("RS.", "BE."), {"inferences_per_stream": 2}),
    ("pair-mb-gn", ("MB.", "GN."), {"inferences_per_stream": 2}),
    ("pair-ef-pp", ("EF.", "PP."), {"inferences_per_stream": 2}),
    ("pair-vt-wv", ("VT.", "WV."), {"inferences_per_stream": 2}),
    ("quad-vision", ("RS.", "MB.", "EF.", "VT."),
     {"inferences_per_stream": 2}),
    ("quad-nlp", ("BE.", "GN.", "WV.", "PP."),
     {"inferences_per_stream": 2}),
    ("quad-mixed-a", ("RS.", "EF.", "BE.", "WV."),
     {"inferences_per_stream": 2}),
    ("quad-mixed-b", ("MB.", "VT.", "GN.", "PP."),
     {"inferences_per_stream": 2}),
    ("quad-dup-rs-mb", ("RS.", "RS.", "MB.", "MB."),
     {"inferences_per_stream": 2}),
    ("quad-dup-be-vt", ("BE.", "BE.", "VT.", "VT."),
     {"inferences_per_stream": 2}),
    ("eight-all", ("RS.", "MB.", "EF.", "VT.", "BE.", "GN.", "WV.", "PP."),
     {"inferences_per_stream": 2}),
    ("eight-all-rev", ("PP.", "WV.", "GN.", "BE.", "VT.", "EF.", "MB.",
                       "RS."), {"inferences_per_stream": 2}),
    ("eight-dup-pairs", ("RS.", "MB.") * 4, {"inferences_per_stream": 2}),
    ("eight-dup-quads", ("BE.", "GN.", "WV.", "PP.") * 2,
     {"inferences_per_stream": 2}),
    ("steady-quad", ("RS.", "MB.", "EF.", "VT."), {"duration_s": 0.03}),
    ("steady-eight", ("RS.", "MB.", "EF.", "VT.", "BE.", "GN.", "WV.",
                      "PP."), {"duration_s": 0.02}),
)


def _summary(policy: str, models, kwargs) -> dict:
    return simulate(policy, list(models), **kwargs).metric_summary()


def _capture() -> dict:
    return {
        name: {
            policy: _summary(policy, models, kwargs)
            for policy in POLICIES
        }
        for name, models, kwargs in SCENARIOS
    }


@pytest.mark.slow
@pytest.mark.parametrize("scenario", [s[0] for s in SCENARIOS])
@pytest.mark.parametrize("policy", POLICIES)
def test_metric_summary_matches_reference(scenario, policy):
    reference = json.loads(REFERENCE_PATH.read_text())
    name, models, kwargs = next(
        s for s in SCENARIOS if s[0] == scenario
    )
    fresh = json.dumps(_summary(policy, models, kwargs), sort_keys=True)
    frozen = json.dumps(reference[name][policy], sort_keys=True)
    assert fresh == frozen, (
        f"{policy} on {name}: metric_summary() diverged from the "
        f"pre-refactor reference"
    )


if __name__ == "__main__":
    REFERENCE_PATH.parent.mkdir(parents=True, exist_ok=True)
    REFERENCE_PATH.write_text(
        json.dumps(_capture(), indent=1, sort_keys=True) + "\n"
    )
    print(f"wrote {REFERENCE_PATH}")
