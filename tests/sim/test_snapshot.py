"""Engine checkpoint/restore: byte-identical resume.

The tentpole property: an :class:`~repro.sim.snapshot.EngineSnapshot`
captured at any batch boundary, serialized through its JSON envelope,
reloaded and resumed to completion produces a ``metric_summary()``
byte-identical to the uninterrupted run — for every builtin scenario,
all five policies, with and without fault schedules.  The envelope
itself is versioned and content-hashed: unknown schema versions,
corrupt payloads and malformed persistent ids are rejected with
:class:`~repro.errors.SnapshotError` before any state is trusted.

The grid runs the builtin scenarios at ``scale=0.25``: byte-identity is
scale-independent (the full-scale grid holds too, it is just slower),
and the scaled windows keep the exhaustive sweep inside the suite's
time budget.
"""

import io
import json
import pickle

import pytest

from repro.config import SoCConfig
from repro.errors import SnapshotError
from repro.experiments.common import run_scenario
from repro.sim.engine import MultiTenantEngine
from repro.sim.faults import get_fault_schedule
from repro.sim.scenario import (
    ArrivalProcess,
    ScenarioSpec,
    StreamSpec,
    get_scenario,
    scenario_names,
)
from repro.sim.snapshot import (
    SNAPSHOT_SCHEMA_VERSION,
    EngineSnapshot,
    _dumps,
    _loads,
)

POLICIES = ("baseline", "moca", "aurora", "camdn-hw", "camdn-full")

GRID_SCALE = 0.25


def _summary(result) -> str:
    return json.dumps(result.metric_summary(), sort_keys=True)


def _round_trip(spec, policy, faults=None):
    """Run clean; re-run snapshotting at the midpoint; serialize the
    snapshot through its JSON envelope; resume; compare summaries."""
    soc = SoCConfig()
    clean = run_scenario(spec, soc, policy, faults=faults)
    half = clean.events_processed // 2
    snapped = run_scenario(spec, soc, policy, faults=faults,
                           snapshot_at_events=half)
    assert _summary(snapped) == _summary(clean), \
        "snapshot capture perturbed the run it observed"
    snap = snapped.last_snapshot
    assert snap is not None, "snapshot hook never fired"
    assert snap.events_processed >= half
    assert snap.policy == policy
    reloaded = EngineSnapshot.from_json(snap.to_json())
    assert reloaded.payload == snap.payload
    engine = reloaded.resume()
    resumed = engine.resume_run()
    assert _summary(resumed) == _summary(clean), (
        f"resume diverged from the uninterrupted run "
        f"(policy={policy}, snapshot at event {snap.events_processed})"
    )
    assert resumed.events_processed == clean.events_processed
    assert resumed.sim_time_s == clean.sim_time_s
    return clean


@pytest.mark.slow
class TestSnapshotRoundTripGrid:
    """Every builtin scenario x every policy resumes byte-identically."""

    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("scenario", scenario_names())
    def test_builtin_scenario_resumes_identically(self, scenario,
                                                  policy):
        _round_trip(get_scenario(scenario).scaled(GRID_SCALE), policy)


@pytest.mark.slow
class TestSnapshotUnderFaults:
    """Snapshots taken mid-fault-schedule (active throttle windows,
    offline cores, pending retirement cursors) resume byte-identically
    too."""

    @pytest.mark.parametrize("policy", ("baseline", "camdn-full"))
    @pytest.mark.parametrize("fault", ("core-flap", "thermal-throttle"))
    @pytest.mark.parametrize("scenario", ("steady-quad", "churn-eight"))
    def test_faulted_run_resumes_identically(self, scenario, fault,
                                             policy):
        _round_trip(
            get_scenario(scenario).scaled(GRID_SCALE), policy,
            faults=get_fault_schedule(fault).scaled(GRID_SCALE),
        )


def _qos_spec(churn: bool = False) -> ScenarioSpec:
    """Finite-deadline tenants so the slack-kernel policies run the
    fused slack path (mode 2/3) when the snapshot hook fires."""
    streams = [
        StreamSpec(model="RS.", qos_scale=1.0, inferences=3,
                   arrival=ArrivalProcess.closed_loop()),
        StreamSpec(model="MB.", qos_scale=1.2, inferences=3,
                   arrival=ArrivalProcess.closed_loop()),
        StreamSpec(model="EF.", qos_scale=1.0, inferences=4,
                   arrival=ArrivalProcess.closed_loop()),
    ]
    if churn:
        streams.append(
            StreamSpec(model="VT.", qos_scale=1.0, inferences=4,
                       arrival=ArrivalProcess.closed_loop(),
                       join_s=0.003, leave_s=0.02)
        )
    return ScenarioSpec(streams=tuple(streams))


class TestSnapshotSlackKernels:
    """Snapshots taken mid-fused-slack-batch resume byte-identically.

    AuRORA and CaMDN-QoS always run the slack-weighted fused kernel;
    MoCA with finite deadlines runs the slack-throttled one.  The
    midpoint snapshot lands while the kernel's slack SoA arrays
    (arrival / qos target / est-isolated-latency / progress) are live,
    so this pins their capture + restore — including across tenant
    churn, which resizes the arrays on both sides of the snapshot.
    """

    @pytest.mark.parametrize("policy", ("aurora", "camdn-qos", "moca"))
    def test_qos_run_resumes_identically(self, policy):
        _round_trip(_qos_spec(), policy)

    @pytest.mark.parametrize("policy", ("aurora", "camdn-qos", "moca"))
    def test_qos_churn_run_resumes_identically(self, policy):
        _round_trip(_qos_spec(churn=True), policy)

    @pytest.mark.parametrize("policy", ("aurora", "camdn-qos"))
    def test_resume_without_native_stays_identical(self, policy):
        """A slack-mode snapshot resumed onto the pure-Python twin
        (native disabled) completes byte-identically to the clean
        native run."""
        spec = _qos_spec()
        clean = run_scenario(spec, policy=policy)
        snapped = run_scenario(
            spec, policy=policy,
            snapshot_at_events=clean.events_processed // 2,
        )
        engine = snapped.last_snapshot.resume(use_native=False)
        assert _summary(engine.resume_run()) == _summary(clean)


class TestEngineSnapshotAPI:
    """The engine-level convenience hooks mirror the snapshot module."""

    def test_engine_resume_classmethod(self):
        spec = get_scenario("steady-quad").scaled(GRID_SCALE)
        clean = run_scenario(spec, policy="camdn-full")
        snapped = run_scenario(
            spec, policy="camdn-full",
            snapshot_at_events=clean.events_processed // 2,
        )
        engine = MultiTenantEngine.resume(snapped.last_snapshot)
        assert _summary(engine.resume_run()) == _summary(clean)

    def test_resume_forces_python_kernel_identically(self):
        """Backend selection at resume time never changes results (the
        backends are bit-identical by contract)."""
        spec = get_scenario("steady-quad").scaled(GRID_SCALE)
        clean = run_scenario(spec, policy="baseline")
        snapped = run_scenario(
            spec, policy="baseline",
            snapshot_at_events=clean.events_processed // 2,
        )
        engine = snapped.last_snapshot.resume(use_native=False,
                                              kernel_backend="list")
        assert _summary(engine.resume_run()) == _summary(clean)


class TestSnapshotEnvelope:
    def _snapshot(self):
        spec = get_scenario("steady-quad").scaled(GRID_SCALE)
        result = run_scenario(spec, policy="baseline",
                              snapshot_at_events=1)
        return result.last_snapshot

    def test_envelope_fields(self):
        snap = self._snapshot()
        data = json.loads(snap.to_json())
        assert data["snapshot_schema_version"] == SNAPSHOT_SCHEMA_VERSION
        assert data["policy"] == "baseline"
        assert data["events_processed"] == snap.events_processed
        assert data["sim_time_s"] == snap.sim_time_s

    def test_save_load_file_round_trip(self, tmp_path):
        snap = self._snapshot()
        path = tmp_path / "nested" / "snap.json"
        assert snap.save(path) == path
        again = EngineSnapshot.load(path)
        assert again.payload == snap.payload
        assert again.policy == snap.policy
        assert again.events_processed == snap.events_processed
        # No stray temp files left behind by the atomic write.
        assert list(path.parent.iterdir()) == [path]

    def test_unknown_schema_version_rejected(self):
        data = json.loads(self._snapshot().to_json())
        data["snapshot_schema_version"] = SNAPSHOT_SCHEMA_VERSION + 1
        with pytest.raises(SnapshotError, match="schema"):
            EngineSnapshot.from_json(json.dumps(data))

    def test_version_checked_before_payload(self):
        """A future-version envelope is rejected on its version alone —
        the (possibly reshaped) payload is never inspected."""
        data = json.loads(self._snapshot().to_json())
        data["snapshot_schema_version"] = SNAPSHOT_SCHEMA_VERSION + 1
        data["payload"] = "!!! not even base64 !!!"
        with pytest.raises(SnapshotError, match="schema"):
            EngineSnapshot.from_json(json.dumps(data))

    def test_corrupt_payload_hash_rejected(self):
        snap = self._snapshot()
        data = json.loads(snap.to_json())
        tampered = bytearray(snap.payload)
        tampered[len(tampered) // 2] ^= 0xFF
        import base64

        data["payload"] = base64.b64encode(bytes(tampered)).decode()
        with pytest.raises(SnapshotError, match="hash mismatch"):
            EngineSnapshot.from_json(json.dumps(data))

    def test_non_json_rejected(self):
        with pytest.raises(SnapshotError, match="not valid JSON"):
            EngineSnapshot.from_json("definitely not json{")

    def test_non_object_rejected(self):
        with pytest.raises(SnapshotError):
            EngineSnapshot.from_json("[1, 2, 3]")

    def test_missing_payload_rejected(self):
        data = json.loads(self._snapshot().to_json())
        del data["payload"]
        with pytest.raises(SnapshotError, match="unreadable"):
            EngineSnapshot.from_json(json.dumps(data))

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(SnapshotError, match="cannot read"):
            EngineSnapshot.load(tmp_path / "no-such-snapshot.json")

    def test_garbage_payload_rejected_on_resume(self):
        snap = EngineSnapshot(policy="baseline",
                              payload=_dumps({"junk": 1}))
        with pytest.raises(SnapshotError, match="deserialize"):
            snap.resume()


class _AlienPickler(pickle.Pickler):
    """Emits persistent ids the snapshot unpickler must reject."""

    def __init__(self, file, pid):
        super().__init__(file, protocol=4)
        self._pid = pid

    def persistent_id(self, obj):
        if obj == "marker":
            return self._pid
        return None


def _alien_payload(pid) -> bytes:
    buf = io.BytesIO()
    _AlienPickler(buf, pid).dump(["marker"])
    return buf.getvalue()


class TestPersistentIdValidation:
    def test_unknown_pid_kind_rejected(self):
        with pytest.raises(SnapshotError, match="unknown persistent id"):
            _loads(_alien_payload(("alien", "x")))

    def test_malformed_pid_rejected(self):
        with pytest.raises(SnapshotError, match="malformed"):
            _loads(_alien_payload(("model", "RS.", "extra")))

    def test_interned_graphs_resolve_to_zoo_identity(self):
        from repro.models.zoo import build_model

        graph = build_model("RS.")
        (again,) = _loads(_dumps([graph]))
        assert again is graph


class TestRollingCheckpoints:
    def test_checkpoint_every_s_requires_dir(self):
        """PR 10 moved this guard to RunConfig construction: a cadence
        with nowhere to write is a WorkloadError before any simulation
        (the legacy-keyword path goes through the same validation; see
        tests/experiments/test_run_config.py)."""
        from repro.errors import WorkloadError
        from repro.runconfig import RunConfig

        spec = get_scenario("steady-quad").scaled(GRID_SCALE)
        with pytest.raises(WorkloadError, match="checkpoint_dir"):
            run_scenario(spec, policy="baseline",
                         config=RunConfig(checkpoint_every_s=1.0))

    def test_rolling_checkpoint_written_and_resumable(self, tmp_path):
        """``checkpoint_every_s=0`` forces a checkpoint at every batch
        boundary; the rolling file is a valid snapshot whose resumed
        completion matches the uninterrupted run byte-identically."""
        spec = get_scenario("steady-quad").scaled(GRID_SCALE)
        clean = run_scenario(spec, policy="camdn-full")
        checked = run_scenario(spec, policy="camdn-full",
                               checkpoint_every_s=0.0,
                               checkpoint_dir=str(tmp_path))
        assert _summary(checked) == _summary(clean), \
            "rolling checkpoints perturbed the run"
        path = tmp_path / "checkpoint.json"
        assert path.exists()
        # Only the committed checkpoint is visible — no temp files.
        assert list(tmp_path.iterdir()) == [path]
        engine = EngineSnapshot.load(path).resume()
        assert _summary(engine.resume_run()) == _summary(clean)
