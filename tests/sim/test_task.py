"""Tests for task instances and fluid layer progress."""

import math

import pytest

from repro.errors import SimulationError
from repro.models.zoo import build_model
from repro.sim.task import InstanceState, LayerWork, TaskInstance


def _instance(qos_ms=math.inf):
    return TaskInstance(
        instance_id="MB.@0#0",
        stream_id="MB.@0",
        graph=build_model("MB."),
        arrival_time=0.0,
        qos_target_s=qos_ms * 1e-3 if qos_ms != math.inf else math.inf,
    )


class TestLayerWork:
    def test_rejects_negative(self):
        with pytest.raises(SimulationError):
            LayerWork(compute_cycles=-1, dram_bytes=0)


class TestFluidProgress:
    def test_begin_work(self):
        inst = _instance()
        inst.begin_work(LayerWork(compute_cycles=1000, dram_bytes=2000))
        assert inst.state is InstanceState.RUNNING
        assert inst.rem_compute_cycles == 1000

    def test_advance_drains_both_streams(self):
        inst = _instance()
        inst.begin_work(LayerWork(compute_cycles=1000, dram_bytes=2000))
        inst.advance(dt=0.5, compute_rate=1000, dram_rate=1000)
        assert inst.rem_compute_cycles == pytest.approx(500)
        assert inst.rem_dram_bytes == pytest.approx(1500)

    def test_advance_clamps_at_zero(self):
        inst = _instance()
        inst.begin_work(LayerWork(compute_cycles=10, dram_bytes=10))
        inst.advance(dt=100.0, compute_rate=1e9, dram_rate=1e9)
        assert inst.rem_compute_cycles == 0.0
        assert inst.layer_finished()

    def test_time_to_finish_is_max_of_streams(self):
        inst = _instance()
        inst.begin_work(LayerWork(compute_cycles=1000, dram_bytes=4000))
        t = inst.time_to_finish_layer(compute_rate=1000, dram_rate=1000)
        assert t == pytest.approx(4.0)

    def test_non_running_does_not_advance(self):
        inst = _instance()
        inst.begin_work(LayerWork(compute_cycles=100, dram_bytes=0))
        inst.state = InstanceState.WAITING_PAGES
        inst.advance(1.0, 1e9, 1e9)
        assert inst.rem_compute_cycles == 100

    def test_account_layer_accumulates(self):
        inst = _instance()
        inst.begin_work(
            LayerWork(compute_cycles=1, dram_bytes=100, hit_bytes=20,
                      access_bytes=120)
        )
        inst.account_layer()
        assert inst.dram_bytes_total == 100
        assert inst.hit_bytes_total == 20
        assert inst.layers_executed == 1

    def test_account_without_work_raises(self):
        with pytest.raises(SimulationError):
            _instance().account_layer()


class TestLatencyAndDeadline:
    def test_latency_requires_finish(self):
        with pytest.raises(SimulationError):
            _ = _instance().latency

    def test_latency_from_arrival(self):
        inst = _instance()
        inst.finish_time = 0.005
        assert inst.latency == pytest.approx(0.005)

    def test_deadline_check(self):
        inst = _instance(qos_ms=2.8)
        inst.finish_time = 0.002
        assert inst.met_deadline()
        inst.finish_time = 0.004
        assert not inst.met_deadline()
