"""Engine-level dynamic tenancy tests: open-loop queueing, mid-run
join/leave, page reclamation under churn, and allocator invariants
across randomized churn traces."""


import pytest
from hypothesis import given, settings, strategies as st

from repro.config import SoCConfig
from repro.experiments.common import run_scenario
from repro.schedulers.base import SchedulerPolicy
from repro.schedulers.camdn_full import CaMDNFullScheduler
from repro.sim.scenario import (
    ArrivalProcess,
    ScenarioSpec,
    StreamSpec,
)
from repro.sim.task import LayerWork

POLICIES = ["baseline", "moca", "aurora", "camdn-hw", "camdn-full"]


class FixedWork(SchedulerPolicy):
    """Deterministic closed-form policy for timing assertions."""

    name = "fixed"
    dynamic_rates = False

    def __init__(self, cycles=1000.0, dram=10.0):
        super().__init__()
        self.cycles = cycles
        self.dram = dram

    def begin_layer(self, instance, now):
        return LayerWork(compute_cycles=self.cycles,
                         dram_bytes=self.dram), 0.0


class TestOpenLoopArrivals:
    def test_periodic_count_mode_runs_quota(self):
        spec = ScenarioSpec(
            streams=(
                StreamSpec(
                    model="MB.",
                    arrival=ArrivalProcess.periodic(period_s=1e-3),
                    inferences=5,
                ),
            ),
        )
        result = run_scenario(spec, policy=FixedWork())
        assert result.metrics.num_inferences == 5
        assert result.offered_inferences == 5
        # Arrivals at 1,2,...,5 ms; service is ~64 us, so no queueing.
        assert result.summary()["avg_queue_delay_ms"] == \
            pytest.approx(0.0, abs=1e-9)

    def test_overloaded_stream_queues(self):
        # Service time: 64 layers x 1 ms/layer = 64 ms per inference;
        # arrivals every 10 ms -> the backlog grows and queue delay
        # dominates latency.
        spec = ScenarioSpec(
            streams=(
                StreamSpec(
                    model="MB.",
                    arrival=ArrivalProcess.periodic(period_s=0.01),
                    inferences=4,
                ),
            ),
        )
        result = run_scenario(
            spec, policy=FixedWork(cycles=1e6, dram=10.0)
        )
        summary = result.summary()
        assert result.metrics.num_inferences == 4
        assert summary["avg_queue_delay_ms"] > 10.0
        assert summary["offered_load_ratio"] > 1.0
        # Later arrivals wait longer (FIFO behind one in-flight).
        delays = sorted(
            (r.start_time - r.arrival_time, r.instance_id)
            for r in result.metrics.records
        )
        assert delays[0][1].endswith("#0")
        assert delays[-1][1].endswith("#3")

    def test_arrivals_measured_by_window(self):
        # Arrivals stop at the window end; everything offered inside the
        # window is measured even if it finishes after it.
        spec = ScenarioSpec(
            streams=(
                StreamSpec(
                    model="MB.",
                    arrival=ArrivalProcess.periodic(period_s=0.02),
                ),
            ),
            duration_s=0.1,
            warmup_s=0.0,
        )
        result = run_scenario(spec, policy=FixedWork())
        # Arrivals at 0.02..0.08 (phase 0 fires at t=0 too): 5 offered.
        assert result.offered_inferences == 5
        assert result.metrics.num_inferences == 5

    def test_poisson_seed_changes_schedule(self):
        def run(seed):
            spec = ScenarioSpec(
                streams=(
                    StreamSpec(
                        model="MB.",
                        arrival=ArrivalProcess.poisson(rate_hz=200.0,
                                                       seed=seed),
                    ),
                ),
                duration_s=0.05,
            )
            result = run_scenario(spec, policy=FixedWork())
            return [r.arrival_time for r in result.metrics.records]

        assert run(1) == run(1)
        assert run(1) != run(2)


class RetireProbe(CaMDNFullScheduler):
    """CaMDN(Full) instrumented for churn observability.

    Tracks the physical pages (pcpns) a cancelled departure releases and
    watches surviving tenants' regions for those exact pages being
    re-granted by Algorithm 1.
    """

    def __init__(self):
        super().__init__()
        self.retire_events = []     # (now, stream_id, free_pages)
        self.freed_pcpns = set()    # pages released by departures
        self.regrants = []          # (now, stream_id, pcpns re-used)
        self._churn_streams = set()

    def on_task_end(self, instance, now):
        from repro.sim.task import InstanceState

        if instance.state is InstanceState.CANCELLED:
            region = self.system.regions.region_of(instance.instance_id)
            if region is not None:
                self.freed_pcpns.update(region.pcpns)
                self._churn_streams.add(instance.stream_id)
        super().on_task_end(instance, now)

    def on_tenant_retire(self, stream_id, now):
        super().on_tenant_retire(stream_id, now)
        self.retire_events.append(
            (now, stream_id, self.system.regions.free_pages)
        )

    def advance_layer(self, instance, now):
        out = super().advance_layer(instance, now)
        if self.freed_pcpns and \
                instance.stream_id not in self._churn_streams:
            region = self.system.regions.region_of(instance.instance_id)
            if region is not None:
                reused = self.freed_pcpns.intersection(region.pcpns)
                if reused:
                    self.regrants.append(
                        (now, instance.stream_id, reused)
                    )
        return out


class TestChurn:
    def _churn_spec(self):
        # Two residents, four simultaneous churners: while the churners
        # are active the cache is heavily shared; their departure at
        # 60 ms frees pages the residents' next allocations absorb.
        residents = (StreamSpec(model="RS."), StreamSpec(model="MB."))
        churners = tuple(
            StreamSpec(model=key, leave_s=0.06)
            for key in ("BE.", "GN.", "WV.", "PP.")
        )
        return ScenarioSpec(
            streams=residents + churners, duration_s=0.2, warmup_s=0.0
        )

    def test_departure_reclaims_and_regrants_pages(self):
        """Acceptance: a mid-run departure's pages are reclaimed and
        re-granted to a surviving tenant under camdn-full.

        A 4 MiB cache keeps the survivors page-constrained while the
        churners are resident, so Algorithm 1 provably re-grants the
        departures' physical pages (tracked by pcpn identity) to the
        survivors' regions once they free up.
        """
        from repro.config import MiB

        probe = RetireProbe()
        result = run_scenario(
            self._churn_spec(),
            SoCConfig().with_cache_bytes(4 * MiB),
            probe,
        )
        # Mid-run departures happened (before the run drained)...
        mid_run = [e for e in probe.retire_events
                   if e[0] < result.sim_time_s]
        assert len(mid_run) >= 4
        # ... aborting in-flight inferences and reclaiming their
        # physical pages...
        assert result.cancelled_inferences >= 1
        assert probe.freed_pcpns
        # ... which Algorithm 1 re-grants to surviving tenants' regions.
        departure_time = mid_run[0][0]
        assert probe.regrants, "no freed page re-granted to a survivor"
        survivors = {stream for _, stream, _ in probe.regrants}
        assert survivors & {"RS.@0", "MB.@1"}
        assert all(t >= departure_time for t, _, _ in probe.regrants)
        # All pages return to the pool once everything drains.
        assert probe.retire_events[-1][2] == \
            probe.system.regions.allocator.num_pages

    @pytest.mark.parametrize("policy", POLICIES)
    def test_all_policies_survive_churn(self, policy):
        result = run_scenario(self._churn_spec(), policy=policy)
        assert result.metrics.num_inferences > 0
        stats = result.scheduler_stats
        assert stats["tenant_admits"] == 6
        assert stats["tenant_retires"] == 6

    def test_cancelled_instances_not_recorded(self):
        spec = self._churn_spec()
        result = run_scenario(spec, policy="camdn-full")
        cancelled = result.cancelled_inferences
        assert cancelled >= 1
        churn_ids = {"BE.@2", "GN.@3", "WV.@4", "PP.@5"}
        churn_records = [r for r in result.metrics.records
                         if r.stream_id in churn_ids]
        # Every recorded churner inference finished before its tenant
        # left (aborted ones never reach the metrics).
        assert all(r.arrival_time < 0.06 for r in churn_records)
        assert result.offered_inferences == \
            len(result.metrics.records) + cancelled

    def test_queued_withdrawal_counts_as_cancelled(self):
        """A tenant that leaves while its inference still waits for a
        core withdraws it silently from the queue — but the offered /
        completed / cancelled accounting must still balance."""
        spec = ScenarioSpec(
            streams=(
                StreamSpec(model="MB."),
                # Joins while the single core is busy, leaves before it
                # could ever be dispatched.
                StreamSpec(model="RS.", join_s=1e-5, leave_s=2e-5),
            ),
            duration_s=0.1,
            warmup_s=0.0,
        )
        result = run_scenario(
            spec,
            SoCConfig(num_npu_cores=1),
            FixedWork(cycles=1e6, dram=10.0),
        )
        assert result.cancelled_inferences == 1
        assert all(r.stream_id == "MB.@0"
                   for r in result.metrics.records)
        assert result.offered_inferences == \
            len(result.metrics.records) + result.cancelled_inferences

    def test_initial_instances_then_run_still_simulates(self):
        """Peeking at initial_instances() before engine.run() (the
        pre-scenario inspection pattern) must not drain the t=0 batch
        away from the engine."""
        from repro.schedulers import make_scheduler
        from repro.sim.engine import MultiTenantEngine
        from repro.sim.workload import ClosedLoopWorkload, WorkloadSpec

        spec = WorkloadSpec(model_keys=["MB.", "RS."],
                            inferences_per_stream=1,
                            warmup_inferences=0)
        workload = ClosedLoopWorkload(spec)
        peeked = workload.initial_instances()
        assert len(peeked) == 2
        result = MultiTenantEngine(
            SoCConfig(), make_scheduler("baseline"), workload
        ).run()
        assert result.metrics.num_inferences == 2
        assert result.sim_time_s > 0

    def test_late_join_streams_start_at_join_time(self):
        spec = ScenarioSpec(
            streams=(
                StreamSpec(model="MB."),
                StreamSpec(model="RS.", join_s=0.05),
            ),
            duration_s=0.15,
            warmup_s=0.0,
        )
        result = run_scenario(spec, policy="camdn-full")
        late = [r for r in result.metrics.records
                if r.stream_id == "RS.@1"]
        assert late
        assert min(r.arrival_time for r in late) == pytest.approx(0.05)


class InvariantProbe(CaMDNFullScheduler):
    """Checks the full CaMDN system invariants at every tenant retire."""

    def __init__(self):
        super().__init__()
        self.checks = 0

    def on_tenant_retire(self, stream_id, now):
        super().on_tenant_retire(stream_id, now)
        self.system.check_invariants()
        self.checks += 1


_KEYS = ("RS.", "MB.", "EF.", "BE.")

_churn_trace = st.lists(
    st.tuples(
        st.integers(0, 3),                        # model pick
        st.floats(0.0, 0.04),                     # join offset
        st.floats(0.005, 0.08),                   # leave delta
    ),
    min_size=1,
    max_size=4,
)


class TestChurnInvariants:
    @settings(max_examples=8, deadline=None)
    @given(trace=_churn_trace)
    def test_allocator_invariants_after_every_departure(self, trace):
        """Hypothesis churn traces: after every mid-run departure the
        allocator's page accounting, the regions and their cross-view
        stay consistent."""
        streams = [StreamSpec(model="RS."), StreamSpec(model="MB.")]
        for model_i, join, leave_delta in trace:
            streams.append(
                StreamSpec(
                    model=_KEYS[model_i],
                    join_s=join,
                    leave_s=join + leave_delta,
                )
            )
        spec = ScenarioSpec(
            streams=tuple(streams), duration_s=0.1, warmup_s=0.0
        )
        probe = InvariantProbe()
        result = run_scenario(spec, SoCConfig(), probe)
        assert probe.checks == len(streams)
        assert result.metrics.num_inferences > 0
        probe.system.check_invariants()


class TestTenantHooks:
    class Recorder(SchedulerPolicy):
        name = "recorder"
        dynamic_rates = False

        def __init__(self):
            super().__init__()
            self.events = []

        def begin_layer(self, instance, now):
            return LayerWork(compute_cycles=1000.0, dram_bytes=10.0), 0.0

        def on_tenant_admit(self, stream_id, graph, now):
            self.events.append(("admit", stream_id, now))

        def on_tenant_retire(self, stream_id, now):
            self.events.append(("retire", stream_id, now))

    def test_hooks_balanced_and_ordered(self):
        recorder = self.Recorder()
        spec = ScenarioSpec(
            streams=(
                StreamSpec(model="MB.", inferences=2),
                StreamSpec(model="RS.", inferences=1),
            ),
        )
        run_scenario(spec, policy=recorder)
        admits = [e for e in recorder.events if e[0] == "admit"]
        retires = [e for e in recorder.events if e[0] == "retire"]
        assert [e[1] for e in admits] == ["MB.@0", "RS.@1"]
        assert sorted(e[1] for e in retires) == ["MB.@0", "RS.@1"]
        # Each stream admits before it retires.
        for stream in ("MB.@0", "RS.@1"):
            admit_i = recorder.events.index(("admit", stream, 0.0))
            retire_i = next(
                i for i, e in enumerate(recorder.events)
                if e[0] == "retire" and e[1] == stream
            )
            assert admit_i < retire_i

    def test_mid_run_join_admits_before_first_dispatch(self):
        recorder = self.Recorder()
        spec = ScenarioSpec(
            streams=(
                StreamSpec(model="MB.", inferences=3),
                StreamSpec(model="RS.", inferences=1, join_s=5e-5),
            ),
        )
        result = run_scenario(spec, policy=recorder)
        (admit,) = [e for e in recorder.events
                    if e[0] == "admit" and e[1] == "RS.@1"]
        assert admit[2] == pytest.approx(5e-5)
        first = min(r.arrival_time for r in result.metrics.records
                    if r.stream_id == "RS.@1")
        assert first == pytest.approx(5e-5)
