"""Tests for the package-level public API."""

import pytest

import repro
from repro import SoCConfig, simulate
from repro.errors import ReproError


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_error_hierarchy(self):
        from repro.errors import (
            CacheAddressError,
            ConfigError,
            CPTError,
            MappingError,
            ModelGraphError,
            PageAllocationError,
            SimulationError,
            WorkloadError,
        )

        for exc in (ConfigError, MappingError, CacheAddressError,
                    PageAllocationError, CPTError, SimulationError,
                    WorkloadError, ModelGraphError):
            assert issubclass(exc, ReproError)


class TestStableFacade:
    """PR 10: ``repro.run`` / ``repro.run_fleet`` / ``RunConfig`` — the
    one import surface examples and downstream users rely on."""

    def test_run_by_scenario_name(self):
        from repro import RunConfig, run

        result = run("steady-quad", policy="baseline",
                     config=RunConfig(max_wall_s=600.0))
        assert result.metrics.num_inferences > 0

    def test_run_defaults(self):
        from repro import run

        result = run("steady-quad")
        assert result.metrics.num_inferences > 0

    def test_run_scale_shortens_the_scenario(self):
        """``scale=`` mirrors the runner's ``--scale`` and matches
        scaling the spec by hand, byte for byte."""
        from repro import get_scenario, run
        from repro.experiments.common import run_scenario

        scaled = run("steady-quad", scale=0.1, policy="camdn-qos")
        by_hand = run_scenario(get_scenario("steady-quad").scaled(0.1),
                               policy="camdn-qos")
        assert scaled.metric_summary() == by_hand.metric_summary()

    def test_fleet_types_importable_from_root(self):
        from repro import (
            DeviceClass,
            FleetAccumulator,
            FleetResult,
            FleetSpec,
            QuantileDigest,
            ScenarioDraw,
        )

        spec = FleetSpec(devices=2, scale=0.25)
        assert spec.num_cells == 2
        assert FleetResult is not None
        assert DeviceClass and ScenarioDraw
        assert FleetAccumulator and QuantileDigest

    def test_run_fleet_facade(self):
        from repro import FleetSpec, ScenarioDraw, run_fleet

        spec = FleetSpec(
            devices=2, policy="baseline",
            scenario_draws=(ScenarioDraw(scenario="steady-quad"),),
            scale=0.1,
        )
        result = run_fleet(spec, max_workers=1, use_cache=False)
        assert result.fleet_summary()["devices"] == 2

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError):
            repro.no_such_name


class TestSimulateHelper:
    def test_count_mode(self):
        result = simulate("camdn-full", ["MB."], inferences_per_stream=2)
        assert result.metrics.num_inferences == 2

    def test_steady_state_mode(self):
        result = simulate("baseline", ["MB.", "EF."], duration_s=0.02,
                          warmup_s=0.005)
        assert result.metrics.num_inferences > 0

    def test_custom_soc(self):
        from repro import MiB

        soc = SoCConfig().with_cache_bytes(4 * MiB)
        result = simulate("baseline", ["MB."], inferences_per_stream=1,
                          soc=soc)
        assert result.metrics.num_inferences == 1

    def test_policy_kwargs_forwarded(self):
        result = simulate("camdn-full", ["MB."], inferences_per_stream=1,
                          qos_mode=True)
        # The QoS integration reports its own row name — proof the
        # kwarg reached the scheduler.
        assert result.scheduler_name == "camdn-qos"

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            simulate("magic", ["MB."])

    def test_qos_scale_sets_deadlines(self):
        result = simulate("camdn-full", ["MB."], inferences_per_stream=1,
                          qos_scale=1.0)
        record = result.metrics.records[0]
        assert record.qos_target_s == pytest.approx(2.8e-3)


class TestRunnerCLI:
    def test_table3_via_cli(self, capsys):
        from repro.experiments.runner import main

        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out

    def test_fig3_via_cli(self, capsys):
        from repro.experiments.runner import main

        assert main(["fig3"]) == 0
        assert "reuse" in capsys.readouterr().out

    def test_profile_reaches_allocator_frames(self, tmp_path, capsys):
        """``--profile`` on a ``--scenario`` run profiles through
        ``run_scenario`` in-process: the pstats dump must contain the
        engine event loop and the CaMDN completion-chain / allocator
        frames — not just the sweep parent."""
        import pstats

        from repro.experiments.runner import main

        prof = tmp_path / "prof.pstats"
        trace = tmp_path / "run.trace.json"
        assert main(["--scenario", "steady-quad", "--scale", "0.25",
                     "--policy", "camdn-full",
                     "--capture-trace", str(trace),
                     "--profile", str(prof)]) == 0
        assert prof.exists()
        files = {
            frame[0] for frame in pstats.Stats(str(prof)).stats
        }
        assert any(f.endswith("allocator.py") for f in files), \
            "allocator frames missing from the profile"
        assert any(f.endswith("engine.py") for f in files)
        assert "profile written to" in capsys.readouterr().out
