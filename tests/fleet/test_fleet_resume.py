"""Fleet crash safety: sidecar integrity, SIGKILL resume, compaction.

A journaled fleet must survive anything a campaign survives — a hard
SIGKILL mid-population included — and resume to the byte-identical
population summary.  The sidecar carrying the fleet spec is content-
hashed, so a tampered or foreign journal is refused instead of
silently aggregated wrong.  Resume must also stay O(cells) however
bloated the journal gets (a long crash-resume-crash history appends
hundreds of redundant records).
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.config import SoCConfig
from repro.errors import WorkloadError
from repro.experiments.sweep import CampaignJournal
from repro.fleet import FleetSpec, ScenarioDraw
from repro.fleet.runner import (
    fleet_sidecar_path,
    read_fleet_sidecar,
    resume_fleet,
    run_fleet,
    write_fleet_sidecar,
)

pytestmark = pytest.mark.experiment

_REPO = Path(__file__).resolve().parents[2]


def tiny_fleet(devices=4) -> FleetSpec:
    return FleetSpec(
        devices=devices,
        policy="baseline",
        scenario_draws=(ScenarioDraw(scenario="steady-quad"),),
        scale=0.1,
        seed=3,
    )


def summary_bytes(result) -> str:
    return json.dumps(result.fleet_summary(), sort_keys=True)


class TestSidecar:
    def test_round_trip(self, tmp_path):
        journal = tmp_path / "f.journal"
        spec = tiny_fleet()
        write_fleet_sidecar(journal, spec)
        assert read_fleet_sidecar(journal) == spec

    def test_missing_sidecar_rejected(self, tmp_path):
        with pytest.raises(WorkloadError, match="sidecar"):
            read_fleet_sidecar(tmp_path / "f.journal")

    def test_tampered_sidecar_rejected(self, tmp_path):
        journal = tmp_path / "f.journal"
        sidecar = write_fleet_sidecar(journal, tiny_fleet())
        payload = json.loads(sidecar.read_text())
        payload["fleet"]["seed"] += 1  # edit without re-hashing
        sidecar.write_text(json.dumps(payload))
        with pytest.raises(WorkloadError, match="hash"):
            read_fleet_sidecar(journal)

    def test_corrupt_sidecar_rejected(self, tmp_path):
        journal = tmp_path / "f.journal"
        fleet_sidecar_path(journal).write_text("not json")
        with pytest.raises(WorkloadError, match="sidecar"):
            read_fleet_sidecar(journal)


class TestResume:
    def test_journaled_fleet_resumes_byte_identically(self, tmp_path):
        spec = tiny_fleet()
        journal = tmp_path / "f.journal"
        first = run_fleet(spec, journal_path=journal, max_workers=1,
                          use_cache=False)
        resumed = resume_fleet(journal, max_workers=1, use_cache=False)
        assert summary_bytes(resumed) == summary_bytes(first)

    def test_journaled_matches_ephemeral(self, tmp_path):
        spec = tiny_fleet()
        ephemeral = run_fleet(spec, max_workers=1, use_cache=False)
        journaled = run_fleet(spec, journal_path=tmp_path / "f.journal",
                              max_workers=1, use_cache=False)
        assert summary_bytes(journaled) == summary_bytes(ephemeral)


class TestJournalCompaction:
    """Resume cost is bounded by the *grid*, not the journal history."""

    def test_redundant_done_records_load_each_result_once(
        self, tmp_path, monkeypatch
    ):
        """A journal bloated by hundreds of redundant done records (a
        long crash/resume history) still deserializes every committed
        result exactly once — replay is O(cells), not O(journal)."""
        spec = tiny_fleet(devices=2)
        journal_path = tmp_path / "f.journal"
        run_fleet(spec, journal_path=journal_path, max_workers=1,
                  use_cache=False)
        journal = CampaignJournal(journal_path)
        with open(journal_path, "a", encoding="utf-8") as fh:
            for _ in range(400):
                for index in range(spec.num_cells):
                    fh.write(json.dumps(
                        {"kind": "done", "index": index}
                    ) + "\n")

        loads = []
        real_load = CampaignJournal.load_result
        monkeypatch.setattr(
            CampaignJournal, "load_result",
            lambda self, index: loads.append(index)
            or real_load(self, index),
        )
        _cells, _soc, done, _failed, _started = journal.read()
        assert sorted(done) == list(range(spec.num_cells))
        assert sorted(loads) == list(range(spec.num_cells))

    def test_bloated_journal_resumes_quickly(self, tmp_path):
        """Wall-clock regression guard: resuming through ~800 redundant
        records costs no more than the underlying 2-cell fleet."""
        spec = tiny_fleet(devices=2)
        journal_path = tmp_path / "f.journal"
        run_fleet(spec, journal_path=journal_path, max_workers=1,
                  use_cache=False)
        with open(journal_path, "a", encoding="utf-8") as fh:
            for _ in range(400):
                for index in range(spec.num_cells):
                    fh.write(json.dumps(
                        {"kind": "done", "index": index}
                    ) + "\n")
        start = time.perf_counter()
        resumed = resume_fleet(journal_path, max_workers=1,
                               use_cache=False)
        elapsed = time.perf_counter() - start
        assert resumed.completed_devices == spec.num_cells
        assert elapsed < 10.0  # generous: replay, not re-simulation


@pytest.mark.slow
class TestFleetSigkillResume:
    """End to end through the CLI: SIGKILL a live journaled fleet once
    at least one device committed, ``--resume`` it, and get the
    uninterrupted fleet's population line back byte-for-byte."""

    DEVICES = 6

    def _env(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(_REPO / "src")
        env["REPRO_SWEEP_CACHE_DIR"] = ""  # cells must really simulate
        return env

    def _runner(self, *args):
        return [sys.executable, "-m", "repro.experiments.runner", *args]

    def _fleet_line(self, stdout: str) -> str:
        (line,) = [ln for ln in stdout.splitlines()
                   if ln.startswith('{"fleet"')]
        return line

    def _done_count(self, journal: Path) -> int:
        if not journal.exists():
            return 0
        return sum(
            1 for line in journal.read_text(errors="replace")
            .splitlines() if '"kind": "done"' in line
        )

    def _spec_file(self, tmp_path: Path) -> Path:
        from repro.core.serialize import fleet_spec_to_dict

        spec_file = tmp_path / "fleet.json"
        spec_file.write_text(json.dumps(fleet_spec_to_dict(
            tiny_fleet(devices=self.DEVICES)
        )))
        return spec_file

    def test_sigkilled_fleet_resumes_byte_identically(self, tmp_path):
        env = self._env()
        spec_file = self._spec_file(tmp_path)

        # Uninterrupted reference fleet.
        ref = subprocess.run(
            self._runner("--fleet", str(spec_file),
                         "--campaign", str(tmp_path / "ref.journal"),
                         "--jobs", "1", "--no-cache"),
            env=env, capture_output=True, text=True, timeout=600,
        )
        assert ref.returncode == 0, ref.stderr
        ref_line = self._fleet_line(ref.stdout)

        # Live fleet, SIGKILLed once at least one device committed.
        journal = tmp_path / "crash.journal"
        proc = subprocess.Popen(
            self._runner("--fleet", str(spec_file),
                         "--campaign", str(journal),
                         "--jobs", "1", "--no-cache"),
            env=env, stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 300
            while self._done_count(journal) < 1 \
                    and proc.poll() is None:
                assert time.monotonic() < deadline, \
                    "fleet never committed a device cell"
                time.sleep(0.02)
            proc.send_signal(signal.SIGKILL)
        finally:
            proc.wait(timeout=60)

        # Resume: sidecar auto-detected, population byte-identical.
        res = subprocess.run(
            self._runner("--resume", str(journal), "--jobs", "1",
                         "--no-cache"),
            env=env, capture_output=True, text=True, timeout=600,
        )
        assert res.returncode == 0, res.stderr
        assert self._fleet_line(res.stdout) == ref_line

        # Every device committed exactly once in the merged journal.
        _c, _s, done, failed, _started = CampaignJournal(journal).read()
        assert sorted(done) == list(range(self.DEVICES))
        assert failed == {}


class TestResumeValidation:
    def test_resume_refuses_mismatched_sidecar(self, tmp_path):
        """A sidecar whose spec expands to a different grid than the
        journal records is a hard error, not a silent misaggregation."""
        spec = tiny_fleet(devices=2)
        journal = tmp_path / "f.journal"
        run_fleet(spec, journal_path=journal, max_workers=1,
                  use_cache=False)
        write_fleet_sidecar(journal, tiny_fleet(devices=3))
        with pytest.raises(WorkloadError, match="disagree"):
            resume_fleet(journal, max_workers=1, use_cache=False)

    def test_soc_passthrough(self, tmp_path):
        """A non-default base SoC flows into journaled cells and back
        out of resume."""
        spec = tiny_fleet(devices=2)
        soc = SoCConfig().with_cache_bytes(4 * (1 << 20))
        journal = tmp_path / "f.journal"
        first = run_fleet(spec, soc=soc, journal_path=journal,
                          max_workers=1, use_cache=False)
        resumed = resume_fleet(journal, max_workers=1, use_cache=False)
        assert summary_bytes(resumed) == summary_bytes(first)
