"""Fleet specs: deterministic expansion, arrival transforms, round-trip.

A :class:`FleetSpec` must expand to the *same* campaign cells on any
host, any process, any ``PYTHONHASHSEED`` — the whole fleet determinism
story rests on it.  These tests pin the expansion contract, the
arrival-scaling and reseeding transforms, validation, and the exact
serialization round-trip (spec dict + content hash).
"""

import json

import pytest

from repro.core.serialize import (
    fleet_spec_content_hash,
    fleet_spec_from_dict,
    fleet_spec_to_dict,
)
from repro.errors import WorkloadError
from repro.fleet.spec import (
    DeviceClass,
    FleetSpec,
    ScenarioDraw,
    _derive_seed,
    reseed_arrivals,
    scale_arrivals,
)
from repro.sim.scenario import get_scenario

MiB = 1 << 20


def hetero_fleet(devices=8, mc_runs=2) -> FleetSpec:
    return FleetSpec(
        devices=devices,
        policy="camdn-full",
        device_classes=(
            DeviceClass(name="table2", weight=3.0),
            DeviceClass(name="budget", weight=1.0,
                        cache_bytes=2 * MiB),
        ),
        scenario_draws=(
            ScenarioDraw(scenario="steady-quad", weight=2.0),
            ScenarioDraw(scenario="poisson-eight", weight=1.0,
                         arrival_scale=0.5),
        ),
        mc_runs=mc_runs,
        scale=0.25,
        seed=7,
    )


class TestExpansion:
    def test_num_cells(self):
        assert hetero_fleet(devices=8, mc_runs=2).num_cells == 16

    def test_expansion_is_deterministic(self):
        spec = hetero_fleet()
        assert spec.expand() == spec.expand()

    def test_expansion_covers_both_classes_and_draws(self):
        cells = hetero_fleet(devices=32, mc_runs=1).expand()
        cache_overrides = {c.cache_bytes for c in cells}
        assert cache_overrides == {None, 2 * MiB}
        stream_counts = {len(c.resolve_scenario().streams)
                         for c in cells}
        assert stream_counts == {4, 8}  # steady-quad / poisson-eight

    def test_replicas_get_distinct_cell_seeds(self):
        cells = hetero_fleet(devices=4, mc_runs=3).expand()
        seeds = [c.seed for c in cells]
        assert len(set(seeds)) == len(seeds)

    def test_seed_changes_the_draws(self):
        base = hetero_fleet(devices=16, mc_runs=1)
        other = FleetSpec(**{**_spec_kwargs(base), "seed": 8})
        assert base.expand() != other.expand()

    def test_unknown_scenario_rejected_at_expand(self):
        spec = FleetSpec(
            devices=1,
            scenario_draws=(ScenarioDraw(scenario="no-such"),),
        )
        with pytest.raises(WorkloadError):
            spec.expand()

    def test_fault_draw_resolves_schedule(self):
        spec = FleetSpec(
            devices=2,
            scenario_draws=(
                ScenarioDraw(scenario="steady-quad",
                             faults="core-flap"),
            ),
            scale=0.25,
        )
        cells = spec.expand()
        assert all(c.resolve_faults() is not None for c in cells)


def _spec_kwargs(spec: FleetSpec) -> dict:
    return dict(
        devices=spec.devices, policy=spec.policy,
        device_classes=spec.device_classes,
        scenario_draws=spec.scenario_draws, mc_runs=spec.mc_runs,
        seed=spec.seed, scale=spec.scale, qos_mode=spec.qos_mode,
    )


class TestArrivalTransforms:
    def test_scale_multiplies_rates_and_divides_periods(self):
        spec = get_scenario("poisson-eight")
        doubled = scale_arrivals(spec, 2.0)
        for before, after in zip(spec.streams, doubled.streams):
            assert after.arrival.rate_hz == before.arrival.rate_hz * 2.0

    def test_scale_one_is_identity(self):
        spec = get_scenario("poisson-eight")
        assert scale_arrivals(spec, 1.0) is spec

    def test_closed_loop_passes_through(self):
        spec = get_scenario("steady-quad")
        assert scale_arrivals(spec, 3.0).streams == spec.streams

    def test_bad_factor_rejected(self):
        spec = get_scenario("steady-quad")
        for factor in (0.0, -1.0, float("inf"), float("nan")):
            with pytest.raises(WorkloadError):
                scale_arrivals(spec, factor)

    def test_reseed_gives_each_device_its_own_traffic(self):
        spec = get_scenario("poisson-eight")
        a = reseed_arrivals(spec, 7, device=0, mc_run=0)
        b = reseed_arrivals(spec, 7, device=1, mc_run=0)
        c = reseed_arrivals(spec, 7, device=0, mc_run=1)
        seeds = lambda s: [st.arrival.seed for st in s.streams]  # noqa: E731
        assert seeds(a) != seeds(b)
        assert seeds(a) != seeds(c)
        # ... and is reproducible.
        assert seeds(a) == seeds(
            reseed_arrivals(spec, 7, device=0, mc_run=0)
        )

    def test_reseed_noop_on_closed_loop(self):
        spec = get_scenario("steady-quad")
        assert reseed_arrivals(spec, 7, device=0, mc_run=0) is spec

    def test_derived_seeds_are_stable(self):
        """SHA-256 derivation: the same tag tuple gives the same seed in
        any process — pin one value as a cross-host sentinel."""
        assert _derive_seed("x", 1) == _derive_seed("x", 1)
        assert _derive_seed("x", 1) != _derive_seed("x", 2)
        assert 0 <= _derive_seed("fleet-cell", 7, 0, 0) < 2 ** 63


class TestValidation:
    def test_devices_positive(self):
        with pytest.raises(WorkloadError, match="device"):
            FleetSpec(devices=0)

    def test_mc_runs_positive(self):
        with pytest.raises(WorkloadError, match="mc_runs"):
            FleetSpec(devices=1, mc_runs=0)

    def test_scale_bounds(self):
        with pytest.raises(WorkloadError, match="scale"):
            FleetSpec(devices=1, scale=0.0)

    def test_empty_mixes_rejected(self):
        with pytest.raises(WorkloadError, match="class"):
            FleetSpec(devices=1, device_classes=())
        with pytest.raises(WorkloadError, match="draw"):
            FleetSpec(devices=1, scenario_draws=())

    def test_device_class_validation(self):
        with pytest.raises(WorkloadError, match="weight"):
            DeviceClass(name="x", weight=0.0)
        with pytest.raises(WorkloadError, match="cache_bytes"):
            DeviceClass(name="x", cache_bytes=0)
        with pytest.raises(WorkloadError, match="name"):
            DeviceClass(name="")

    def test_scenario_draw_validation(self):
        with pytest.raises(WorkloadError, match="weight"):
            ScenarioDraw(scenario="steady-quad", weight=-1.0)
        with pytest.raises(WorkloadError, match="arrival_scale"):
            ScenarioDraw(scenario="steady-quad", arrival_scale=0.0)


class TestSerialization:
    def test_round_trip_exact(self):
        spec = hetero_fleet()
        again = fleet_spec_from_dict(
            json.loads(json.dumps(fleet_spec_to_dict(spec)))
        )
        assert again == spec
        assert again.expand() == spec.expand()

    def test_content_hash_tracks_spec_identity(self):
        spec = hetero_fleet()
        assert fleet_spec_content_hash(spec) == \
            fleet_spec_content_hash(hetero_fleet())
        other = FleetSpec(**{**_spec_kwargs(spec), "seed": 8})
        assert fleet_spec_content_hash(spec) != \
            fleet_spec_content_hash(other)

    def test_unknown_schema_rejected(self):
        payload = fleet_spec_to_dict(hetero_fleet())
        payload["fleet_schema_version"] += 1
        with pytest.raises(WorkloadError, match="schema"):
            fleet_spec_from_dict(payload)
