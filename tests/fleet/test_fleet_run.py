"""Fleet execution: population percentiles, parallel determinism, CLI.

The fleet promise, stated as tests: a fleet's population summary is a
pure function of its spec — identical under any worker count and shard
size, equal to a brute-force single-process reference that never
touches the digest machinery, and reachable through the ``--fleet``
CLI with the same bytes.
"""

import json
import math

import pytest

from repro.config import SoCConfig
from repro.errors import WorkloadError
from repro.experiments import sweep
from repro.fleet import (
    DeviceClass,
    FleetAccumulator,
    FleetSpec,
    ScenarioDraw,
)
from repro.fleet.aggregate import FLEET_AXES, aggregate_summaries
from repro.fleet.runner import run_fleet

pytestmark = pytest.mark.experiment


def small_fleet(devices=6, mc_runs=1, policy="camdn-full") -> FleetSpec:
    return FleetSpec(
        devices=devices,
        policy=policy,
        device_classes=(
            DeviceClass(name="table2", weight=2.0),
            DeviceClass(name="budget", weight=1.0,
                        cache_bytes=2 * (1 << 20)),
        ),
        scenario_draws=(
            ScenarioDraw(scenario="steady-quad", weight=2.0),
            ScenarioDraw(scenario="poisson-eight", weight=1.0,
                         arrival_scale=0.5),
        ),
        mc_runs=mc_runs,
        scale=0.1,
        seed=11,
    )


def summary_bytes(result) -> str:
    return json.dumps(result.fleet_summary(), sort_keys=True)


def brute_force_summaries(spec: FleetSpec):
    """Single-process reference: every cell simulated directly through
    the sweep's cell runner — no pool, no shards, no digests."""
    soc = SoCConfig()
    return [
        sweep._run_cell((cell, soc, None)).summary()
        for cell in spec.expand()
    ]


def nearest_rank(values, q):
    ordered = sorted(values)
    return ordered[max(1, math.ceil(q * len(ordered))) - 1]


class TestFleetDeterminism:
    def test_serial_and_parallel_fleets_agree_byte_identically(self):
        spec = small_fleet()
        serial = run_fleet(spec, max_workers=1, use_cache=False)
        parallel = run_fleet(spec, max_workers=2, use_cache=False,
                             shard_size=2)
        assert summary_bytes(serial) == summary_bytes(parallel)
        assert serial.completed_devices == spec.num_cells
        assert serial.failures == []

    def test_shard_size_never_changes_the_answer(self):
        spec = small_fleet(devices=5)
        unsharded = run_fleet(spec, max_workers=2, use_cache=False,
                              shard_size=None)
        sharded = run_fleet(spec, max_workers=2, use_cache=False,
                            shard_size=3)
        assert summary_bytes(unsharded) == summary_bytes(sharded)

    def test_percentiles_match_brute_force_reference(self):
        """The digested population stats equal nearest-rank percentiles
        computed from raw per-device summaries (exact: a small fleet
        never exceeds the bin budget)."""
        spec = small_fleet(devices=8)
        fleet = run_fleet(spec, max_workers=1, use_cache=False)
        summaries = brute_force_summaries(spec)
        got = fleet.fleet_summary()
        assert got["devices"] == len(summaries)
        assert got["inferences"] == sum(
            int(s["inferences"]) for s in summaries
        )
        for axis, key in FLEET_AXES:
            values = [float(s[key]) for s in summaries]
            assert got[axis]["p50"] == nearest_rank(values, 0.5)
            assert got[axis]["p95"] == nearest_rank(values, 0.95)
            assert got[axis]["p99"] == nearest_rank(values, 0.99)
            assert got[axis]["mean"] == pytest.approx(
                sum(values) / len(values)
            )

    def test_mc_replicas_widen_the_population(self):
        spec = small_fleet(devices=3, mc_runs=2)
        fleet = run_fleet(spec, max_workers=1, use_cache=False)
        assert fleet.completed_devices == 6


@pytest.mark.slow
class TestLargeFleet:
    def test_200_device_fleet_parallel_matches_serial(self):
        """The acceptance fleet: 200 devices, byte-identical population
        summary under ``--jobs 1`` and a parallel sharded run."""
        spec = FleetSpec(
            devices=200,
            policy="camdn-full",
            scenario_draws=(ScenarioDraw(scenario="steady-quad"),),
            scale=0.1,
            seed=2025,
        )
        serial = run_fleet(spec, max_workers=1, use_cache=False)
        parallel = run_fleet(spec, max_workers=4, use_cache=False,
                             shard_size=16)
        assert summary_bytes(serial) == summary_bytes(parallel)
        assert serial.completed_devices == 200


class TestAccumulator:
    def _summaries(self, n=10):
        return [
            {
                "inferences": 10 + i,
                "qos_violations": i % 3,
                "avg_latency_ms": 5.0 + i,
                "p99_latency_ms": 9.0 + i,
                "hit_rate": 0.5 + i / 100.0,
                "avg_queue_delay_ms": 0.1 * i,
            }
            for i in range(n)
        ]

    def test_merge_equals_sequential_fold(self):
        summaries = self._summaries(12)
        sequential = aggregate_summaries(summaries)
        merged = FleetAccumulator()
        for lo in range(0, 12, 4):
            merged.merge(aggregate_summaries(summaries[lo:lo + 4]))
        assert json.dumps(merged.fleet_summary(), sort_keys=True) == \
            json.dumps(sequential.fleet_summary(), sort_keys=True)

    def test_round_trip(self):
        acc = aggregate_summaries(self._summaries())
        again = FleetAccumulator.from_dict(
            json.loads(json.dumps(acc.to_dict()))
        )
        assert again.fleet_summary() == acc.fleet_summary()

    def test_fold_rejects_foreign_dicts(self):
        with pytest.raises(WorkloadError, match="missing keys"):
            FleetAccumulator().fold({"latency": 1.0})

    def test_empty_accumulator_summary(self):
        summary = FleetAccumulator().fleet_summary()
        assert summary["devices"] == 0
        assert summary["qos_violation_rate"] == 0.0
        assert summary["latency_ms"] is None

    def test_unknown_axis_rejected(self):
        with pytest.raises(WorkloadError, match="unknown fleet axis"):
            FleetAccumulator().digest("no-such-axis")

    def test_violation_rate(self):
        acc = aggregate_summaries(self._summaries(3))
        assert acc.qos_violation_rate() == pytest.approx(
            (0 + 1 + 2) / (10 + 11 + 12)
        )


class TestFleetCLI:
    def test_fleet_flag_runs_and_prints_population_json(
        self, tmp_path, capsys, monkeypatch
    ):
        from repro.core.serialize import fleet_spec_to_dict
        from repro.experiments.runner import main

        monkeypatch.setenv("REPRO_SWEEP_CACHE_DIR", "")
        spec_file = tmp_path / "fleet.json"
        spec_file.write_text(json.dumps(
            fleet_spec_to_dict(small_fleet(devices=3))
        ))
        assert main(["--fleet", str(spec_file), "--jobs", "1",
                     "--no-cache"]) == 0
        out = capsys.readouterr().out
        (line,) = [ln for ln in out.splitlines()
                   if ln.startswith('{"fleet"')]
        population = json.loads(line)["fleet"]
        assert population["devices"] == 3
        assert set(dict(FLEET_AXES)) <= set(population)

    def test_fleet_with_resume_is_rejected(self, tmp_path, capsys):
        from repro.experiments.runner import main

        spec_file = tmp_path / "fleet.json"
        spec_file.write_text("{}")
        with pytest.raises(SystemExit):
            main(["--fleet", str(spec_file),
                  "--resume", str(tmp_path / "j")])
        assert "--resume" in capsys.readouterr().err
