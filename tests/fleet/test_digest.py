"""Quantile digest: exactness, deterministic compression, merging.

The digest is the fleet's memory bound: population percentiles over
thousands of devices from O(bins) state.  The bar, stated as tests —
exact nearest-rank quantiles while the distinct-value budget holds,
mass-preserving deterministic compression past it, order-canonical
merges, and an exact serialization round-trip.
"""

import json
import math
import random

import pytest

from repro.errors import WorkloadError
from repro.fleet.digest import DEFAULT_MAX_BINS, QuantileDigest


def nearest_rank(values, q):
    """Brute-force nearest-rank quantile over raw samples."""
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


class TestExactness:
    """Under the bin budget the digest is a lossless histogram."""

    @pytest.mark.parametrize("q", [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0])
    def test_matches_brute_force_nearest_rank(self, q):
        rng = random.Random(7)
        values = [rng.uniform(0.1, 50.0) for _ in range(200)]
        digest = QuantileDigest(max_bins=512)
        digest.extend(values)
        assert digest.quantile(q) == nearest_rank(values, q)

    def test_duplicates_weight_ranks(self):
        digest = QuantileDigest()
        digest.add(1.0, count=98)
        digest.add(5.0)
        digest.add(9.0)
        assert digest.count == 100
        assert digest.quantile(0.5) == 1.0
        assert digest.quantile(0.99) == 5.0
        assert digest.quantile(1.0) == 9.0

    def test_mean_exact(self):
        values = [1.0, 2.0, 3.0, 10.0]
        digest = QuantileDigest()
        digest.extend(values)
        assert digest.mean() == sum(values) / len(values)

    def test_quantiles_labels(self):
        digest = QuantileDigest()
        digest.extend([1.0, 2.0, 3.0])
        out = digest.quantiles((0.5, 0.95, 0.99))
        assert sorted(out) == ["p50", "p95", "p99"]


class TestCompression:
    def test_bins_stay_bounded(self):
        digest = QuantileDigest(max_bins=16)
        rng = random.Random(11)
        for _ in range(10_000):
            digest.add(rng.uniform(0.0, 100.0))
        assert len(digest._bins) <= 16
        assert digest.count == 10_000

    def test_compression_preserves_mass_and_mean(self):
        values = [float(i) for i in range(1000)]
        digest = QuantileDigest(max_bins=8)
        digest.extend(values)
        assert digest.count == 1000
        assert digest.mean() == pytest.approx(sum(values) / 1000)

    def test_quantile_error_bounded_after_compression(self):
        """With 256 bins over 10k uniform samples the percentile error
        stays small (the docstring's well-under-1% claim)."""
        rng = random.Random(3)
        values = [rng.uniform(0.0, 1.0) for _ in range(10_000)]
        digest = QuantileDigest(max_bins=DEFAULT_MAX_BINS)
        digest.extend(values)
        for q in (0.5, 0.95, 0.99):
            exact = nearest_rank(values, q)
            assert digest.quantile(q) == pytest.approx(exact, abs=0.01)

    def test_identical_content_compresses_identically(self):
        """The greedy rule depends only on the bin multiset: two
        digests fed the same sequence end in identical state."""
        rng = random.Random(5)
        values = [rng.uniform(0.0, 10.0) for _ in range(2000)]
        a = QuantileDigest(max_bins=32)
        b = QuantileDigest(max_bins=32)
        a.extend(values)
        b.extend(values)
        assert a.to_dict() == b.to_dict()


class TestMerge:
    def test_merge_equals_sequential_fold_under_budget(self):
        """Sharded folding in canonical order is indistinguishable from
        one sequential fold — the property fleet resume leans on."""
        rng = random.Random(13)
        shards = [[rng.uniform(0.0, 30.0) for _ in range(50)]
                  for _ in range(4)]
        sequential = QuantileDigest(max_bins=512)
        for shard in shards:
            sequential.extend(shard)
        merged = QuantileDigest(max_bins=512)
        for shard in shards:
            partial = QuantileDigest(max_bins=512)
            partial.extend(shard)
            merged.merge(partial)
        assert merged.to_dict() == sequential.to_dict()

    def test_merge_into_empty(self):
        src = QuantileDigest()
        src.extend([1.0, 2.0])
        dst = QuantileDigest()
        dst.merge(src)
        assert dst.to_dict() == src.to_dict()
        assert src.count == 2  # source untouched


class TestValidation:
    def test_min_bins(self):
        with pytest.raises(WorkloadError, match="max_bins"):
            QuantileDigest(max_bins=1)

    def test_rejects_nan(self):
        with pytest.raises(WorkloadError, match="NaN"):
            QuantileDigest().add(float("nan"))

    def test_rejects_nonpositive_count(self):
        with pytest.raises(WorkloadError, match="positive"):
            QuantileDigest().add(1.0, count=0)

    def test_empty_queries_raise(self):
        digest = QuantileDigest()
        assert digest.is_empty
        with pytest.raises(WorkloadError, match="empty"):
            digest.quantile(0.5)
        with pytest.raises(WorkloadError, match="empty"):
            digest.mean()

    def test_quantile_range_checked(self):
        digest = QuantileDigest()
        digest.add(1.0)
        with pytest.raises(WorkloadError, match="\\[0, 1\\]"):
            digest.quantile(1.5)


class TestSerialization:
    def test_round_trip_exact(self):
        rng = random.Random(17)
        digest = QuantileDigest(max_bins=32)
        digest.extend(rng.uniform(0.0, 9.0) for _ in range(500))
        again = QuantileDigest.from_dict(
            json.loads(json.dumps(digest.to_dict()))
        )
        assert again.to_dict() == digest.to_dict()
        assert again.quantile(0.95) == digest.quantile(0.95)

    def test_unknown_schema_rejected(self):
        payload = QuantileDigest().to_dict()
        payload["digest_schema_version"] += 1
        with pytest.raises(WorkloadError, match="schema"):
            QuantileDigest.from_dict(payload)
