"""The consolidated per-run configuration of the public API.

:func:`repro.experiments.common.run_scenario` grew one keyword at a
time — QoS integration, trace capture, fault injection, watchdog
budgets, rolling checkpoints, snapshot hooks, kernel-backend pinning —
until every new axis widened a 12-keyword signature at every call
site.  :class:`RunConfig` consolidates all of them into one frozen,
reusable value object::

    from repro import RunConfig, run

    config = RunConfig(faults="degraded-soc", max_wall_s=120.0)
    result = run("poisson-eight", policy="camdn-full", config=config)

The old keywords keep working through a thin shim in ``run_scenario``
that lowers them into a :class:`RunConfig` and emits a
:class:`DeprecationWarning`; both forms produce byte-identical
``metric_summary()`` dictionaries.

This module is a leaf (it imports only the error hierarchy), so the
package root, the experiment layer and the fleet subsystem can all
share the class without import cycles.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Optional

from .errors import WorkloadError

#: The ``run_scenario`` keyword names subsumed by :class:`RunConfig`
#: (the legacy shim recognises exactly these).
RUN_CONFIG_KEYS = frozenset((
    "qos_mode", "trace", "kernel_backend", "capture_trace", "faults",
    "max_events", "max_wall_s", "checkpoint_every_s", "checkpoint_dir",
    "snapshot_at_events",
))


@dataclass(frozen=True)
class RunConfig:
    """Everything about *how* one scenario runs (not *what* runs).

    The scenario, SoC and policy stay positional on
    :func:`~repro.experiments.common.run_scenario`; every orthogonal
    run-control axis lives here.  The object is frozen, so one config
    can be shared across a grid of runs (the fleet layer does exactly
    that).

    Attributes:
        qos_mode: enable the AuRORA-style QoS integration on CaMDN
            policies (ignored on other policy names, matching the
            Figure 9 setup; rejected when the policy is an instance).
        faults: optional :class:`~repro.sim.faults.FaultSpec` (or the
            name of a registered fault schedule) injecting hardware and
            tenant faults into the run.  ``None`` or an empty spec is
            byte-identical to a fault-free run.
        capture_trace: record every scenario/engine event and attach
            the finished :class:`~repro.sim.trace.EventTrace` to the
            result (``result.event_trace``); pure observation, so
            metrics are unchanged.
        trace: optional live :class:`~repro.sim.trace.TraceRecorder`
            (execution-timeline capture; excluded from equality so
            configs differing only in an attached recorder compare
            equal).
        kernel_backend: force the engine kernel backend (``"numpy"`` /
            ``"list"``); also disables the native fused stepper, which
            is how tests pin the step arithmetic to one implementation.
        max_events: engine watchdog event budget (see
            :meth:`~repro.sim.engine.MultiTenantEngine.run`).
        max_wall_s: engine watchdog wall-clock budget in seconds; the
            campaign runner's per-cell ``deadline_s`` rides this.
        checkpoint_every_s: write a rolling on-disk engine checkpoint
            at this wall-clock cadence.  Requires ``checkpoint_dir`` —
            a cadence with nowhere to write is rejected with
            :class:`~repro.errors.WorkloadError` at construction, not
            silently dropped.
        checkpoint_dir: directory for the rolling checkpoint.
        snapshot_at_events: capture one in-memory engine snapshot at
            the first batch boundary past this event count, attached
            to ``result.last_snapshot`` (test hook).
    """

    qos_mode: bool = False
    faults: Any = None
    capture_trace: bool = False
    trace: Optional[Any] = field(default=None, compare=False,
                                 repr=False)
    kernel_backend: Optional[str] = None
    max_events: Optional[int] = None
    max_wall_s: Optional[float] = None
    checkpoint_every_s: Optional[float] = None
    checkpoint_dir: Optional[str] = None
    snapshot_at_events: Optional[int] = None

    def __post_init__(self) -> None:
        if self.checkpoint_every_s is not None:
            if self.checkpoint_every_s < 0:
                # 0.0 is valid: checkpoint at every batch boundary.
                raise WorkloadError(
                    "checkpoint_every_s cannot be negative"
                )
            if self.checkpoint_dir is None:
                raise WorkloadError(
                    "checkpoint_every_s requires checkpoint_dir: a "
                    "checkpoint cadence with nowhere to write would "
                    "be silently ignored"
                )
        if self.max_events is not None and self.max_events <= 0:
            raise WorkloadError("max_events must be positive")
        if self.max_wall_s is not None and self.max_wall_s < 0:
            raise WorkloadError("max_wall_s cannot be negative")

    def replace(self, **changes: Any) -> "RunConfig":
        """A copy with the given fields replaced (re-validated)."""
        return dataclasses.replace(self, **changes)
