"""SoC configuration dataclasses (paper Table II).

The default values reproduce Table II of the paper:

=====================  =========
Parameter              Value
=====================  =========
PE array (per core)    32x32
Scratchpad (per core)  256 KiB
NPU cores              16
Shared cache capacity  16 MiB
NPU ways / total ways  12 / 16
Cache slices           8
DRAM total bandwidth   102.4 GB/s
DRAM channels          4
Frequency              1 GHz
=====================  =========

All sizes are bytes, bandwidth is bytes/second, frequency is Hz and time is
seconds unless a name says otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import ConfigError

KiB = 1024
MiB = 1024 * KiB

#: Cache line size used throughout the SoC (bytes).
CACHE_LINE_BYTES = 64

#: CaMDN cache page size (Section III-B3: 32 KiB pages for a 16 MiB cache).
CACHE_PAGE_BYTES = 32 * KiB


@dataclass(frozen=True)
class NPUConfig:
    """Configuration of a single NPU core.

    Attributes:
        pe_rows / pe_cols: dimensions of the weight-stationary systolic
            array (Table II: 32x32).
        scratchpad_bytes: private scratchpad capacity (Table II: 256 KiB).
        frequency_hz: core clock (Table II: 1 GHz).
        dwconv_efficiency: fraction of peak MACs sustained on depth-wise
            convolutions.  Depth-wise layers cannot fill the reduction
            dimension of a systolic array, so their effective throughput is a
            small fraction of peak; 0.25 models mapping R*S*unrolled channels
            onto the array.
    """

    pe_rows: int = 32
    pe_cols: int = 32
    scratchpad_bytes: int = 256 * KiB
    frequency_hz: float = 1e9
    dwconv_efficiency: float = 0.25

    def __post_init__(self) -> None:
        if self.pe_rows <= 0 or self.pe_cols <= 0:
            raise ConfigError("PE array dimensions must be positive")
        if self.scratchpad_bytes <= 0:
            raise ConfigError("scratchpad capacity must be positive")
        if self.frequency_hz <= 0:
            raise ConfigError("frequency must be positive")
        if not 0.0 < self.dwconv_efficiency <= 1.0:
            raise ConfigError("dwconv_efficiency must be in (0, 1]")

    @property
    def macs_per_cycle(self) -> int:
        """Peak multiply-accumulates per cycle of the PE array."""
        return self.pe_rows * self.pe_cols


@dataclass(frozen=True)
class CacheConfig:
    """Configuration of the sliced shared cache.

    Attributes:
        total_bytes: total shared cache capacity (Table II: 16 MiB).
        num_slices: number of address-interleaved slices (Table II: 8).
        num_ways: set associativity of each slice (Table II: 16).
        npu_ways: ways assigned to the NPU subspace by the way mask
            (Table II: 12 of 16).
        line_bytes: cache line size.
        page_bytes: CaMDN page size for the NPU subspace.
    """

    total_bytes: int = 16 * MiB
    num_slices: int = 8
    num_ways: int = 16
    npu_ways: int = 12
    line_bytes: int = CACHE_LINE_BYTES
    page_bytes: int = CACHE_PAGE_BYTES

    def __post_init__(self) -> None:
        if self.total_bytes <= 0:
            raise ConfigError("cache capacity must be positive")
        if self.num_slices <= 0:
            raise ConfigError("cache must have at least one slice")
        if self.total_bytes % self.num_slices != 0:
            raise ConfigError("cache capacity must divide evenly into slices")
        if not 0 <= self.npu_ways <= self.num_ways:
            raise ConfigError(
                "NPU ways must be between 0 and the total way count"
            )
        if self.line_bytes <= 0 or self.line_bytes & (self.line_bytes - 1):
            raise ConfigError("line size must be a positive power of two")
        if self.page_bytes % self.line_bytes != 0:
            raise ConfigError("page size must be a multiple of the line size")
        if self.npu_subspace_bytes % self.page_bytes != 0:
            raise ConfigError(
                "NPU subspace must divide evenly into cache pages"
            )

    @property
    def slice_bytes(self) -> int:
        """Capacity of one cache slice."""
        return self.total_bytes // self.num_slices

    @property
    def sets_per_slice(self) -> int:
        """Number of sets in one slice."""
        return self.slice_bytes // (self.num_ways * self.line_bytes)

    @property
    def npu_subspace_bytes(self) -> int:
        """Capacity of the way-partitioned NPU subspace across all slices."""
        return self.total_bytes * self.npu_ways // self.num_ways

    @property
    def cpu_subspace_bytes(self) -> int:
        """Capacity left to general-purpose (CPU) traffic."""
        return self.total_bytes - self.npu_subspace_bytes

    @property
    def num_pages(self) -> int:
        """Total CaMDN pages available in the NPU subspace."""
        return self.npu_subspace_bytes // self.page_bytes


@dataclass(frozen=True)
class DRAMConfig:
    """Configuration of the DRAM subsystem.

    Attributes:
        total_bandwidth_bytes_per_s: aggregate bandwidth
            (Table II: 102.4 GB/s).
        num_channels: independent channels (Table II: 4).
        access_latency_s: idle-system access latency added to the first
            access of a layer; second-order for the fluid model.
    """

    total_bandwidth_bytes_per_s: float = 102.4e9
    num_channels: int = 4
    access_latency_s: float = 60e-9

    def __post_init__(self) -> None:
        if self.total_bandwidth_bytes_per_s <= 0:
            raise ConfigError("DRAM bandwidth must be positive")
        if self.num_channels <= 0:
            raise ConfigError("DRAM must have at least one channel")
        if self.access_latency_s < 0:
            raise ConfigError("DRAM latency cannot be negative")

    @property
    def channel_bandwidth_bytes_per_s(self) -> float:
        """Bandwidth of a single channel."""
        return self.total_bandwidth_bytes_per_s / self.num_channels


@dataclass(frozen=True)
class SoCConfig:
    """Full NPU-integrated SoC configuration (paper Table II).

    Attributes:
        npu: per-core NPU configuration.
        num_npu_cores: number of NPU cores on the SoC (Table II: 16).
        cache: shared cache configuration.
        dram: DRAM configuration.
        dtype_bytes: bytes per tensor element (int8 inference by default).
    """

    npu: NPUConfig = field(default_factory=NPUConfig)
    num_npu_cores: int = 16
    cache: CacheConfig = field(default_factory=CacheConfig)
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    dtype_bytes: int = 1

    def __post_init__(self) -> None:
        if self.num_npu_cores <= 0:
            raise ConfigError("SoC must have at least one NPU core")
        if self.dtype_bytes <= 0:
            raise ConfigError("dtype_bytes must be positive")

    def with_cache_bytes(self, total_bytes: int) -> "SoCConfig":
        """Return a copy with a different shared cache capacity.

        The NPU/total way split and slice count are preserved, matching the
        paper's scaling experiment, which varies only total capacity.
        """
        cache = CacheConfig(
            total_bytes=total_bytes,
            num_slices=self.cache.num_slices,
            num_ways=self.cache.num_ways,
            npu_ways=self.cache.npu_ways,
            line_bytes=self.cache.line_bytes,
            page_bytes=self.cache.page_bytes,
        )
        return SoCConfig(
            npu=self.npu,
            num_npu_cores=self.num_npu_cores,
            cache=cache,
            dram=self.dram,
            dtype_bytes=self.dtype_bytes,
        )

    @property
    def peak_macs_per_s(self) -> float:
        """Aggregate peak MAC throughput of all NPU cores."""
        return (
            self.npu.macs_per_cycle
            * self.npu.frequency_hz
            * self.num_npu_cores
        )


def default_soc() -> SoCConfig:
    """Return the paper's Table II SoC configuration."""
    return SoCConfig()
