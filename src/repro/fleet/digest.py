"""Mergeable, deterministic quantile digest for fleet aggregation.

Fleet runs fold thousands of per-device summaries into population
percentiles (p50/p95/p99 latency, hit-rate and queue-delay
distributions).  Keeping every sample would make the aggregator O(fleet
size); :class:`QuantileDigest` keeps a bounded number of weighted bins
instead, so memory stays O(bins) however many shards merge in.

Unlike a t-digest, whose merged state depends on merge order, this
digest is **deterministic**: bins are an exact ``value -> count`` map
until the distinct-value budget is exceeded, and compression greedily
merges the closest adjacent pair (ties broken toward the smaller value)
into its weighted mean.  Folding shard summaries in canonical cell
order therefore yields byte-identical fleet percentiles under any
``--jobs`` setting — and *exact* nearest-rank percentiles whenever the
population has no more distinct values than the budget (the regression
tests lean on that).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence, Tuple

from ..errors import WorkloadError

#: Serialization schema of digest state; bump on shape changes.
DIGEST_SCHEMA_VERSION = 1

#: Default distinct-value budget.  256 bins keep worst-case quantile
#: error well under 1% while an entire fleet accumulator (a handful of
#: digests) stays a few KiB.
DEFAULT_MAX_BINS = 256


class QuantileDigest:
    """Bounded-memory distribution sketch with deterministic merges.

    The state is a sorted list of ``(value, count)`` bins.  While the
    number of distinct values stays within ``max_bins`` the digest is a
    lossless histogram and every quantile is exact; past the budget,
    adjacent bins closest in value collapse into their weighted mean
    (deterministic greedy rule), trading bounded accuracy for bounded
    memory.
    """

    __slots__ = ("max_bins", "_bins")

    def __init__(self, max_bins: int = DEFAULT_MAX_BINS) -> None:
        if max_bins < 2:
            raise WorkloadError("digest needs max_bins >= 2")
        self.max_bins = max_bins
        self._bins: Dict[float, int] = {}

    # -- construction --------------------------------------------------

    def add(self, value: float, count: int = 1) -> None:
        """Fold ``count`` observations of ``value`` into the sketch."""
        if count <= 0:
            raise WorkloadError("digest counts must be positive")
        value = float(value)
        if math.isnan(value):
            raise WorkloadError("digest values cannot be NaN")
        self._bins[value] = self._bins.get(value, 0) + count
        if len(self._bins) > self.max_bins:
            self._compress()

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    def merge(self, other: "QuantileDigest") -> None:
        """Fold another digest in (deterministic given fold order)."""
        for value, count in sorted(other._bins.items()):
            self._bins[value] = self._bins.get(value, 0) + count
        if len(self._bins) > self.max_bins:
            self._compress()

    def _compress(self) -> None:
        """Collapse closest adjacent bins until within budget.

        The pair with the smallest value gap merges first (ties: the
        smaller value wins), replaced by its count-weighted mean.  The
        rule depends only on the bin multiset, so any two digests with
        identical contents compress identically.
        """
        bins: List[Tuple[float, int]] = sorted(self._bins.items())
        while len(bins) > self.max_bins:
            best = min(
                range(len(bins) - 1),
                key=lambda i: (bins[i + 1][0] - bins[i][0], bins[i][0]),
            )
            (va, ca), (vb, cb) = bins[best], bins[best + 1]
            merged = ((va * ca) + (vb * cb)) / (ca + cb)
            bins[best:best + 2] = [(merged, ca + cb)]
        self._bins = dict(bins)

    # -- queries -------------------------------------------------------

    @property
    def count(self) -> int:
        """Total observations folded in."""
        return sum(self._bins.values())

    @property
    def is_empty(self) -> bool:
        return not self._bins

    def mean(self) -> float:
        """Count-weighted mean (exact: compression preserves mass)."""
        total = self.count
        if total == 0:
            raise WorkloadError("mean of an empty digest")
        return sum(v * c for v, c in sorted(self._bins.items())) / total

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile ``q`` in [0, 1].

        Exact while the digest has never compressed; otherwise the bin
        representative nearest the requested rank.
        """
        if not 0.0 <= q <= 1.0:
            raise WorkloadError("quantile q must be in [0, 1]")
        if not self._bins:
            raise WorkloadError("quantile of an empty digest")
        ordered = sorted(self._bins.items())
        total = sum(c for _, c in ordered)
        rank = max(1, math.ceil(q * total))
        cumulative = 0
        for value, count in ordered:
            cumulative += count
            if cumulative >= rank:
                return value
        return ordered[-1][0]

    def quantiles(self, qs: Sequence[float] = (0.5, 0.95, 0.99)
                  ) -> Dict[str, float]:
        """``{"p50": ..., "p95": ...}`` for the requested ranks."""
        out: Dict[str, float] = {}
        for q in qs:
            pct = q * 100.0
            label = f"p{int(pct)}" if pct.is_integer() else f"p{pct:g}"
            out[label] = self.quantile(q)
        return out

    # -- serialization -------------------------------------------------

    def to_dict(self) -> dict:
        """Canonical JSON-ready state (exact float round-trip)."""
        return {
            "digest_schema_version": DIGEST_SCHEMA_VERSION,
            "max_bins": self.max_bins,
            "bins": [[v, c] for v, c in sorted(self._bins.items())],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "QuantileDigest":
        version = data.get("digest_schema_version")
        if version != DIGEST_SCHEMA_VERSION:
            raise WorkloadError(
                f"unsupported digest schema {version!r} "
                f"(expected {DIGEST_SCHEMA_VERSION})"
            )
        digest = cls(max_bins=data["max_bins"])
        for value, count in data["bins"]:
            digest.add(float(value), int(count))
        return digest
