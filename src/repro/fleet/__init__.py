"""Fleet-scale simulation: device populations over the single-SoC core.

The ROADMAP north star is population scale — "what does the p99 user
experience look like across millions of devices" — while one engine
simulates one SoC.  This package closes the gap in three layers:

* :mod:`repro.fleet.spec` — :class:`FleetSpec`: a seeded, declarative
  device population (hardware mix, workload distribution, Monte Carlo
  axis) that expands deterministically into campaign cells.
* :mod:`repro.fleet.digest` / :mod:`repro.fleet.aggregate` — the
  mergeable :class:`QuantileDigest` and :class:`FleetAccumulator`
  folding per-device summaries into population percentiles in O(bins)
  memory.
* :mod:`repro.fleet.runner` — :func:`run_fleet` / :func:`resume_fleet`
  over the journaled, crash-safe campaign machinery, plus the sharded
  ephemeral path.

Spec and aggregation types import eagerly (they are leaves); the runner
loads lazily because it pulls the experiments layer, which imports the
package root.
"""

from __future__ import annotations

from .aggregate import (
    FLEET_AXES,
    FleetAccumulator,
    aggregate_summaries,
)
from .digest import DEFAULT_MAX_BINS, QuantileDigest
from .spec import (
    FLEET_SCHEMA_VERSION,
    DeviceClass,
    FleetSpec,
    ScenarioDraw,
    reseed_arrivals,
    scale_arrivals,
)

__all__ = [
    "FLEET_AXES",
    "FLEET_SCHEMA_VERSION",
    "DEFAULT_MAX_BINS",
    "DeviceClass",
    "FleetAccumulator",
    "FleetResult",
    "FleetSpec",
    "QuantileDigest",
    "ScenarioDraw",
    "aggregate_summaries",
    "read_fleet_sidecar",
    "reseed_arrivals",
    "resume_fleet",
    "run_fleet",
    "scale_arrivals",
    "write_fleet_sidecar",
]

#: Runner names resolved lazily (the runner module imports the
#: experiments layer, which imports the package root for __version__).
_RUNNER_NAMES = frozenset((
    "FleetResult", "run_fleet", "resume_fleet",
    "read_fleet_sidecar", "write_fleet_sidecar",
))


def __getattr__(name: str):
    if name in _RUNNER_NAMES:
        from . import runner

        return getattr(runner, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )
