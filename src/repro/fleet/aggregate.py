"""Streaming fleet aggregation: shard summaries into population stats.

The fleet runner never holds a fleet's worth of raw inference records.
Each device-run reduces to its deterministic summary dict (the
engine's :meth:`~repro.sim.engine.SimulationResult.summary` minus the
wall-clock keys), and :class:`FleetAccumulator` folds those into a
handful of :class:`~repro.fleet.digest.QuantileDigest` sketches plus
exact counters — memory O(digest bins), independent of fleet size.

Accumulators merge, so shard-level partial accumulators fold into the
fleet total; folding in canonical cell order makes the resulting
percentiles byte-identical under any ``--jobs`` setting.
"""

from __future__ import annotations

from typing import Dict, Iterable

from ..errors import WorkloadError
from .digest import DEFAULT_MAX_BINS, QuantileDigest

#: Serialization schema of fleet summaries; bump on shape changes.
FLEET_SUMMARY_SCHEMA_VERSION = 1

#: Population axes: fleet metric name -> per-device summary key.  Each
#: axis gets one digest over the per-device values.
FLEET_AXES = (
    ("latency_ms", "avg_latency_ms"),
    ("p99_latency_ms", "p99_latency_ms"),
    ("hit_rate", "hit_rate"),
    ("queue_delay_ms", "avg_queue_delay_ms"),
)

#: Percentile ranks every fleet axis reports.
FLEET_QUANTILES = (0.5, 0.95, 0.99)


class FleetAccumulator:
    """Mergeable reduction of per-device summaries to population stats.

    Fold per-device summary dicts with :meth:`fold` (or whole shard
    accumulators with :meth:`merge`), then read the population view
    from :meth:`fleet_summary`.  All state is deterministic given the
    fold order; the fleet runner always folds in cell order.
    """

    __slots__ = ("max_bins", "devices", "inferences", "qos_violations",
                 "_digests")

    def __init__(self, max_bins: int = DEFAULT_MAX_BINS) -> None:
        self.max_bins = max_bins
        self.devices = 0
        self.inferences = 0
        self.qos_violations = 0
        self._digests: Dict[str, QuantileDigest] = {
            axis: QuantileDigest(max_bins=max_bins)
            for axis, _ in FLEET_AXES
        }

    # -- folding -------------------------------------------------------

    def fold(self, summary: Dict[str, float]) -> None:
        """Fold one device-run summary (``result.summary()`` dict).

        Only the deterministic simulated-outcome keys participate;
        wall-clock keys are ignored so the fleet view stays a pure
        function of the simulation.
        """
        missing = [key for _, key in FLEET_AXES if key not in summary]
        if "inferences" not in summary:
            missing.append("inferences")
        if missing:
            raise WorkloadError(
                f"device summary is missing keys {sorted(missing)}; "
                f"fold expects engine summary() dicts"
            )
        self.devices += 1
        self.inferences += int(summary["inferences"])
        self.qos_violations += int(summary.get("qos_violations", 0))
        for axis, key in FLEET_AXES:
            self._digests[axis].add(float(summary[key]))

    def fold_results(self, results: Iterable) -> int:
        """Fold an iterable of :class:`SimulationResult` (skipping
        ``None`` placeholders of failed cells); returns folds done."""
        folded = 0
        for result in results:
            if result is None:
                continue
            self.fold(result.summary())
            folded += 1
        return folded

    def merge(self, other: "FleetAccumulator") -> None:
        """Fold another accumulator in (shard-level reduction)."""
        self.devices += other.devices
        self.inferences += other.inferences
        self.qos_violations += other.qos_violations
        for axis, _ in FLEET_AXES:
            self._digests[axis].merge(other._digests[axis])

    # -- queries -------------------------------------------------------

    def digest(self, axis: str) -> QuantileDigest:
        """The population digest of one axis (``"latency_ms"``, ...)."""
        try:
            return self._digests[axis]
        except KeyError:
            raise WorkloadError(
                f"unknown fleet axis {axis!r}; known: "
                f"{sorted(self._digests)}"
            ) from None

    def qos_violation_rate(self) -> float:
        """Fleet-wide violated share of all measured inferences."""
        if self.inferences == 0:
            return 0.0
        return self.qos_violations / self.inferences

    def fleet_summary(self) -> dict:
        """The population statistics dict (the fleet byte-identity
        surface: two fleet runs agree iff these dicts are identical
        under ``json.dumps``)."""
        summary = {
            "fleet_summary_schema_version":
                FLEET_SUMMARY_SCHEMA_VERSION,
            "devices": self.devices,
            "inferences": self.inferences,
            "qos_violations": self.qos_violations,
            "qos_violation_rate": self.qos_violation_rate(),
        }
        for axis, _ in FLEET_AXES:
            digest = self._digests[axis]
            if digest.is_empty:
                summary[axis] = None
                continue
            stats = {"mean": digest.mean()}
            stats.update(digest.quantiles(FLEET_QUANTILES))
            summary[axis] = stats
        return summary

    # -- serialization -------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "fleet_summary_schema_version":
                FLEET_SUMMARY_SCHEMA_VERSION,
            "max_bins": self.max_bins,
            "devices": self.devices,
            "inferences": self.inferences,
            "qos_violations": self.qos_violations,
            "digests": {
                axis: self._digests[axis].to_dict()
                for axis, _ in FLEET_AXES
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FleetAccumulator":
        version = data.get("fleet_summary_schema_version")
        if version != FLEET_SUMMARY_SCHEMA_VERSION:
            raise WorkloadError(
                f"unsupported fleet accumulator schema {version!r} "
                f"(expected {FLEET_SUMMARY_SCHEMA_VERSION})"
            )
        acc = cls(max_bins=data["max_bins"])
        acc.devices = int(data["devices"])
        acc.inferences = int(data["inferences"])
        acc.qos_violations = int(data["qos_violations"])
        for axis, _ in FLEET_AXES:
            acc._digests[axis] = QuantileDigest.from_dict(
                data["digests"][axis]
            )
        return acc


def aggregate_summaries(summaries: Iterable[Dict[str, float]],
                        max_bins: int = DEFAULT_MAX_BINS
                        ) -> FleetAccumulator:
    """One-shot reduction of an iterable of device summaries."""
    acc = FleetAccumulator(max_bins=max_bins)
    for summary in summaries:
        acc.fold(summary)
    return acc
