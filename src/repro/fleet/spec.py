"""Declarative fleet populations: who the devices are and what they run.

A :class:`FleetSpec` describes a *population* of simulated devices — a
weighted mix of hardware classes (:class:`DeviceClass`), a weighted
distribution of workload draws (:class:`ScenarioDraw`: registered
scenario x arrival intensity x fault schedule), and a Monte Carlo
replication axis — and expands it **deterministically** into the
campaign cells the sweep/campaign machinery already knows how to run,
journal and resume.

Determinism contract: expansion is a pure function of the spec.  Every
per-device draw comes from ``random.Random(f"fleet-device:{seed}:{d}")``
(string seeding — stable across processes and ``PYTHONHASHSEED``), and
per-device/replica arrival randomness is reseeded through SHA-256-derived
integers, so the same spec expands to the same cells on any host under
any ``--jobs`` setting.
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from ..errors import WorkloadError
from ..sim.scenario import (
    DIURNAL,
    MMPP,
    POISSON,
    ScenarioSpec,
    get_scenario,
)

#: Serialization schema of fleet specs; bump on field changes.
FLEET_SCHEMA_VERSION = 1

#: Arrival kinds whose randomness is reseeded per device/replica (the
#: deterministic kinds — periodic, bursty, closed-loop, replay — carry
#: no seed to vary).
_SEEDED_KINDS = frozenset((POISSON, MMPP, DIURNAL))


def _derive_seed(*parts) -> int:
    """A stable 63-bit seed from a tag tuple (SHA-256 based, so it is
    identical across processes, platforms and ``PYTHONHASHSEED``)."""
    tag = ":".join(str(p) for p in parts)
    digest = hashlib.sha256(tag.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


@dataclass(frozen=True)
class DeviceClass:
    """One hardware class in the fleet mix.

    Attributes:
        name: human-readable class label (``"table2"``, ``"budget"``).
        weight: relative share of the population (> 0).
        cache_bytes: shared-cache capacity override for this class
            (``None`` keeps the fleet's base SoC — paper Table II by
            default).
    """

    name: str
    weight: float = 1.0
    cache_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkloadError("device class needs a name")
        if not self.weight > 0 or not math.isfinite(self.weight):
            raise WorkloadError(
                f"device class {self.name!r}: weight must be a positive "
                f"finite number"
            )
        if self.cache_bytes is not None and self.cache_bytes <= 0:
            raise WorkloadError(
                f"device class {self.name!r}: cache_bytes must be "
                f"positive when set"
            )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "weight": self.weight,
            "cache_bytes": self.cache_bytes,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DeviceClass":
        return cls(**data)


@dataclass(frozen=True)
class ScenarioDraw:
    """One workload shape in the fleet's scenario distribution.

    Attributes:
        scenario: registered scenario name (see
            :func:`~repro.sim.scenario.scenario_names`); kept as a name
            so fleet specs serialize small and stay readable.
        weight: relative share of devices drawing this shape (> 0).
        arrival_scale: offered-load multiplier applied to the scenario's
            open-loop arrival processes (rates multiply, periods
            divide); 1.0 leaves the scenario untouched.  The
            capacity-planning sweep walks this axis.
        faults: optional registered fault-schedule name injected into
            devices drawing this shape.
    """

    scenario: str
    weight: float = 1.0
    arrival_scale: float = 1.0
    faults: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.scenario:
            raise WorkloadError("scenario draw needs a scenario name")
        if not self.weight > 0 or not math.isfinite(self.weight):
            raise WorkloadError(
                f"scenario draw {self.scenario!r}: weight must be a "
                f"positive finite number"
            )
        if not self.arrival_scale > 0 or \
                not math.isfinite(self.arrival_scale):
            raise WorkloadError(
                f"scenario draw {self.scenario!r}: arrival_scale must "
                f"be a positive finite number"
            )

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "weight": self.weight,
            "arrival_scale": self.arrival_scale,
            "faults": self.faults,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioDraw":
        return cls(**data)


def scale_arrivals(spec: ScenarioSpec, factor: float) -> ScenarioSpec:
    """The scenario at ``factor`` times its offered load.

    Open-loop rates multiply by ``factor`` and periods divide by it;
    closed-loop and replay streams are completion-coupled (their load is
    an output, not an input) and pass through unchanged, as do tenancy
    windows and quotas.
    """
    if not factor > 0 or not math.isfinite(factor):
        raise WorkloadError("arrival_scale must be a positive finite "
                            "number")
    if factor == 1.0:
        return spec
    streams = []
    for stream in spec.streams:
        arrival = stream.arrival
        changes = {}
        if arrival.rate_hz is not None:
            changes["rate_hz"] = arrival.rate_hz * factor
        if arrival.rates_hz is not None:
            changes["rates_hz"] = tuple(
                r * factor for r in arrival.rates_hz
            )
        if arrival.period_s is not None:
            changes["period_s"] = arrival.period_s / factor
        if changes:
            stream = replace(stream, arrival=replace(arrival, **changes))
        streams.append(stream)
    return replace(spec, streams=tuple(streams))


def reseed_arrivals(spec: ScenarioSpec, fleet_seed: int, device: int,
                    mc_run: int) -> ScenarioSpec:
    """The scenario with per-device/replica arrival randomness.

    Seeded arrival kinds (poisson / mmpp / diurnal) get a fresh
    SHA-256-derived seed per ``(fleet seed, device, replica, stream)``,
    so every device — and every Monte Carlo replica of it — sees its own
    reproducible traffic realization.  Deterministic kinds pass through
    unchanged, keeping the transform a no-op on closed-loop scenarios.
    """
    streams = []
    changed = False
    for i, stream in enumerate(spec.streams):
        if stream.arrival.kind in _SEEDED_KINDS:
            seed = _derive_seed(
                "fleet-arrival", fleet_seed, device, mc_run, i
            )
            stream = replace(
                stream, arrival=replace(stream.arrival, seed=seed)
            )
            changed = True
        streams.append(stream)
    if not changed:
        return spec
    return replace(spec, streams=tuple(streams))


def _weighted_choice(rng: random.Random, items: Sequence,
                     weights: Sequence[float]):
    """Deterministic weighted draw (cumulative walk over one uniform)."""
    total = sum(weights)
    point = rng.random() * total
    cumulative = 0.0
    for item, weight in zip(items, weights):
        cumulative += weight
        if point < cumulative:
            return item
    return items[-1]


@dataclass(frozen=True)
class FleetSpec:
    """A seeded device population, expandable into campaign cells.

    Attributes:
        devices: population size (one simulated SoC each).
        policy: scheduler every device runs (fleet studies compare
            policies by running one fleet per policy).
        device_classes: weighted hardware mix (defaults to one paper
            Table II class).
        scenario_draws: weighted workload distribution (defaults to the
            steady closed-loop quad).
        mc_runs: Monte Carlo replicas per device; each replica reseeds
            the device's stochastic arrivals, widening the population
            sample without adding devices.
        seed: root seed of every per-device draw.
        scale: measurement-window scale forwarded to each cell (see
            :class:`~repro.experiments.common.ExperimentScale`).
        qos_mode: enable the AuRORA-style QoS integration on CaMDN
            policies, fleet-wide.
    """

    devices: int
    policy: str = "camdn-full"
    device_classes: Tuple[DeviceClass, ...] = (
        DeviceClass(name="table2"),
    )
    scenario_draws: Tuple[ScenarioDraw, ...] = (
        ScenarioDraw(scenario="steady-quad"),
    )
    mc_runs: int = 1
    seed: int = 2025
    scale: float = 1.0
    qos_mode: bool = False

    def __post_init__(self) -> None:
        if self.devices <= 0:
            raise WorkloadError("fleet needs at least one device")
        if self.mc_runs <= 0:
            raise WorkloadError("mc_runs must be positive")
        if not 0 < self.scale <= 4.0:
            raise WorkloadError("fleet scale must be in (0, 4]")
        object.__setattr__(
            self, "device_classes", tuple(self.device_classes)
        )
        object.__setattr__(
            self, "scenario_draws", tuple(self.scenario_draws)
        )
        if not self.device_classes:
            raise WorkloadError("fleet needs at least one device class")
        if not self.scenario_draws:
            raise WorkloadError("fleet needs at least one scenario draw")

    @property
    def num_cells(self) -> int:
        """Cells the spec expands to (``devices * mc_runs``)."""
        return self.devices * self.mc_runs

    def expand(self) -> List:
        """The fleet as campaign cells, in canonical device order.

        Device ``d`` draws its hardware class and workload shape from
        ``random.Random(f"fleet-device:{seed}:{d}")``; each Monte Carlo
        replica ``r`` then reseeds the drawn scenario's stochastic
        arrivals.  Cells come back ordered ``(device, replica)``, which
        is the canonical fold order every aggregation uses — percentiles
        are identical under any worker count because the *order* never
        depends on who computed what.

        Returns:
            One :class:`~repro.experiments.sweep.SweepCell` per
            ``(device, replica)`` pair.

        Raises:
            WorkloadError: a draw references an unregistered scenario
                or fault schedule.
        """
        # Deferred import: experiments.sweep pulls the package root for
        # __version__, and the root exposes fleet types eagerly.
        from ..experiments.sweep import SweepCell
        from ..sim.faults import get_fault_schedule

        class_weights = [c.weight for c in self.device_classes]
        draw_weights = [d.weight for d in self.scenario_draws]
        cells = []
        for device in range(self.devices):
            rng = random.Random(f"fleet-device:{self.seed}:{device}")
            device_class = _weighted_choice(
                rng, self.device_classes, class_weights
            )
            draw = _weighted_choice(
                rng, self.scenario_draws, draw_weights
            )
            scenario = scale_arrivals(
                get_scenario(draw.scenario), draw.arrival_scale
            )
            faults = (
                get_fault_schedule(draw.faults)
                if draw.faults is not None else None
            )
            for mc_run in range(self.mc_runs):
                cells.append(SweepCell.from_scenario(
                    self.policy,
                    reseed_arrivals(scenario, self.seed, device,
                                    mc_run),
                    qos_mode=self.qos_mode,
                    scale=self.scale,
                    cache_bytes=device_class.cache_bytes,
                    seed=_derive_seed("fleet-cell", self.seed, device,
                                      mc_run),
                    faults=faults,
                ))
        return cells

    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """Canonical JSON-ready form (exact round-trip, keys the
        fleet sidecar and content hash)."""
        return {
            "fleet_schema_version": FLEET_SCHEMA_VERSION,
            "devices": self.devices,
            "policy": self.policy,
            "device_classes": [c.to_dict() for c in self.device_classes],
            "scenario_draws": [d.to_dict() for d in self.scenario_draws],
            "mc_runs": self.mc_runs,
            "seed": self.seed,
            "scale": self.scale,
            "qos_mode": self.qos_mode,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FleetSpec":
        version = data.get("fleet_schema_version")
        if version != FLEET_SCHEMA_VERSION:
            raise WorkloadError(
                f"unsupported fleet schema {version!r} "
                f"(expected {FLEET_SCHEMA_VERSION})"
            )
        return cls(
            devices=data["devices"],
            policy=data["policy"],
            device_classes=tuple(
                DeviceClass.from_dict(c)
                for c in data["device_classes"]
            ),
            scenario_draws=tuple(
                ScenarioDraw.from_dict(d)
                for d in data["scenario_draws"]
            ),
            mc_runs=data["mc_runs"],
            seed=data["seed"],
            scale=data["scale"],
            qos_mode=data["qos_mode"],
        )
