"""Fleet execution: expand, simulate, aggregate — resumable end to end.

:func:`run_fleet` expands a :class:`~repro.fleet.spec.FleetSpec` into
campaign cells and runs them through the existing sweep machinery:

* **Ephemeral fleets** (``journal_path=None``) go through
  :func:`~repro.experiments.sweep.run_sweep` with shard batching, so
  thousands of tiny device cells amortize worker dispatch.
* **Journaled fleets** go through the crash-safe campaign runner
  (:func:`~repro.experiments.sweep.run_campaign`); a ``.fleet.json``
  sidecar written next to the journal records the spec (plus its
  content hash), so :func:`resume_fleet` — or ``--resume`` on the CLI —
  picks a SIGKILLed fleet back up and produces the byte-identical
  population summary.

Aggregation always folds per-device summaries in canonical cell order
(the order :meth:`FleetSpec.expand` emits), which is what makes fleet
percentiles identical under any ``--jobs`` setting.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional

from ..config import SoCConfig
from ..core.serialize import (
    atomic_write_text,
    fleet_spec_to_dict,
    fleet_spec_from_dict,
    fleet_spec_content_hash,
)
from ..errors import WorkloadError
from ..experiments.sweep import (
    last_sweep_failures,
    resume_campaign,
    run_campaign,
    run_sweep,
)
from .aggregate import FleetAccumulator
from .digest import DEFAULT_MAX_BINS
from .spec import FleetSpec

#: Default cells per worker dispatch for ephemeral fleet sweeps.
DEFAULT_SHARD_SIZE = 8


def fleet_sidecar_path(journal_path) -> Path:
    """The fleet-spec sidecar next to a campaign journal."""
    path = Path(journal_path)
    return path.with_name(path.stem + ".fleet.json")


def write_fleet_sidecar(journal_path, spec: FleetSpec) -> Path:
    """Durably record the fleet spec next to its journal (atomic)."""
    sidecar = fleet_sidecar_path(journal_path)
    payload = {
        "fleet": fleet_spec_to_dict(spec),
        "content_hash": fleet_spec_content_hash(spec),
    }
    atomic_write_text(sidecar, json.dumps(payload, sort_keys=True))
    return sidecar


def read_fleet_sidecar(journal_path) -> FleetSpec:
    """Reload the fleet spec recorded next to a journal.

    Raises:
        WorkloadError: the sidecar is missing, unreadable, corrupt, or
            its recorded content hash no longer matches the spec.
    """
    sidecar = fleet_sidecar_path(journal_path)
    try:
        payload = json.loads(sidecar.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise WorkloadError(
            f"no fleet sidecar at {sidecar}; was this journal started "
            f"by run_fleet?"
        ) from None
    except (OSError, ValueError) as exc:
        raise WorkloadError(
            f"cannot read fleet sidecar {sidecar}: {exc}"
        ) from exc
    spec = fleet_spec_from_dict(payload["fleet"])
    recorded = payload.get("content_hash")
    actual = fleet_spec_content_hash(spec)
    if recorded != actual:
        raise WorkloadError(
            f"fleet sidecar {sidecar} content hash mismatch "
            f"({recorded!r} != {actual!r}); the sidecar was edited or "
            f"corrupted"
        )
    return spec


@dataclass
class FleetResult:
    """One fleet run: the population view plus per-cell detail.

    Attributes:
        spec: the fleet that ran.
        results: per-cell results in canonical ``(device, replica)``
            order (``None`` placeholders mark cells that failed all
            retries).
        accumulator: the streaming aggregation over all completed cells.
        failures: per-cell failure records from the underlying sweep
            (empty on a clean fleet).
    """

    spec: FleetSpec
    results: List
    accumulator: FleetAccumulator
    failures: List[dict] = field(default_factory=list)

    @property
    def completed_devices(self) -> int:
        return self.accumulator.devices

    def fleet_summary(self) -> dict:
        """Population statistics (see
        :meth:`FleetAccumulator.fleet_summary`)."""
        return self.accumulator.fleet_summary()


def _aggregate(spec: FleetSpec, results: List,
               max_bins: int) -> FleetResult:
    accumulator = FleetAccumulator(max_bins=max_bins)
    accumulator.fold_results(results)
    return FleetResult(
        spec=spec,
        results=results,
        accumulator=accumulator,
        failures=last_sweep_failures(),
    )


def run_fleet(
    spec: FleetSpec,
    soc: Optional[SoCConfig] = None,
    journal_path=None,
    max_workers: Optional[int] = None,
    use_cache: bool = True,
    deadline_s: Optional[float] = None,
    shard_size: Optional[int] = DEFAULT_SHARD_SIZE,
    max_bins: int = DEFAULT_MAX_BINS,
) -> FleetResult:
    """Simulate a device population and aggregate it.

    Args:
        spec: the fleet to simulate.
        soc: base hardware configuration every device starts from
            (defaults to paper Table II); per-device-class
            ``cache_bytes`` overrides apply on top.
        journal_path: when given, run under the crash-safe campaign
            journal (plus a ``.fleet.json`` spec sidecar) so the fleet
            is resumable with :func:`resume_fleet`; ``None`` runs an
            ephemeral sharded sweep.
        max_workers: process count (``None`` = one per core, capped by
            cell count; ``1`` forces serial in-process execution).
        use_cache: consult/populate the persistent cell cache.
        deadline_s: per-cell wall-clock watchdog (journaled fleets).
        shard_size: cells per worker dispatch on the ephemeral path.
        max_bins: accuracy/memory budget of the population digests.

    Returns:
        The :class:`FleetResult`; its :meth:`~FleetResult.fleet_summary`
        is identical for any ``max_workers`` and across resume cycles.
    """
    cells = spec.expand()
    if journal_path is not None:
        write_fleet_sidecar(journal_path, spec)
        results = run_campaign(
            cells, journal_path, soc=soc, max_workers=max_workers,
            use_cache=use_cache, deadline_s=deadline_s,
        )
    else:
        results = run_sweep(
            cells, soc=soc, max_workers=max_workers,
            use_cache=use_cache, shard_size=shard_size,
        )
    return _aggregate(spec, results, max_bins)


def resume_fleet(
    journal_path,
    max_workers: Optional[int] = None,
    use_cache: bool = True,
    deadline_s: Optional[float] = None,
    max_bins: int = DEFAULT_MAX_BINS,
) -> FleetResult:
    """Resume a crashed (or interrupted) journaled fleet.

    Completed device cells reload from their committed results;
    in-flight ones re-run.  Cells are deterministic, so the resumed
    fleet's population summary is byte-identical to an uninterrupted
    run.

    Raises:
        WorkloadError: the journal or its fleet sidecar is unreadable.
    """
    spec = read_fleet_sidecar(journal_path)
    results = resume_campaign(
        journal_path, max_workers=max_workers, use_cache=use_cache,
        deadline_s=deadline_s,
    )
    expected = spec.num_cells
    if len(results) != expected:
        raise WorkloadError(
            f"fleet journal {journal_path} holds {len(results)} cells "
            f"but the sidecar spec expands to {expected}; journal and "
            f"sidecar disagree"
        )
    return _aggregate(spec, results, max_bins)
