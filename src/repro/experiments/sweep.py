"""Parallel experiment sweep runner with a persistent result cache.

Experiment harnesses and benchmarks run grids of independent simulation
cells — one per ``(policy, scenario, QoS level, SoC variant)`` point,
where the scenario is either a classic closed-loop model mix or an
explicit declarative :class:`~repro.sim.scenario.ScenarioSpec` (dynamic
tenancy, open-loop arrivals).  Cells share no mutable state (each builds
its own scheduler, workload and engine), so they parallelize perfectly
across processes.

:func:`run_sweep` executes a list of :class:`SweepCell` descriptions and
returns one :class:`~repro.sim.engine.SimulationResult` per cell, in cell
order regardless of completion order, so results are deterministic under
any worker count.

Two cache layers remove redundant work:

* **Persistent result cache** — every cell is keyed by a stable content
  hash of its :class:`SweepCell` fields, the full
  :class:`~repro.config.SoCConfig`, and the package version (via
  :mod:`repro.core.serialize`).  Results are stored as JSON under
  ``$REPRO_SWEEP_CACHE_DIR`` (default
  ``$XDG_CACHE_HOME/camdn-repro/sweeps``); a re-run of a figure harness,
  benchmark or slow test with identical cells skips the simulation
  entirely and deserializes byte-identical results.  Disable with
  ``use_cache=False`` (the runner's ``--no-cache``) or by setting
  ``REPRO_SWEEP_CACHE_DIR`` to an empty string.  The engine is
  deterministic, so a cache hit and a fresh run are interchangeable;
  the version salt invalidates entries across releases.
* **Worker warm-up** — the parent ships its loop-nest solve memo
  (:meth:`~repro.core.mapper.solver.SubspaceSolver.export_solve_memo`)
  to every pool worker through the executor initializer, so workers skip
  the cold-start mapping re-solve for shapes the parent already solved.

On single-core hosts (or ``max_workers=1``) the sweep runs serially
in-process, which reuses the warm prepared-workload and solver caches
directly.
"""

from __future__ import annotations

import json
import logging
import math
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .. import __version__
from ..config import SoCConfig
from ..core.mapper.solver import SubspaceSolver
from ..core.serialize import (
    atomic_write_text,
    fault_spec_to_dict,
    resolve_cache_dir,
    scenario_spec_to_dict,
    simulation_result_from_dict,
    simulation_result_to_dict,
    soc_config_to_dict,
    source_content_salt,
    stable_content_hash,
)
from ..errors import WorkloadError
from ..sim.engine import SimulationResult
from ..sim.faults import FaultSpec
from ..sim.scenario import ScenarioSpec
from ..sim.workload import WorkloadSpec, random_model_mix
from .common import ExperimentScale, run_scenario

_LOG = logging.getLogger(__name__)

#: Environment override for the persistent cell cache location; an empty
#: value disables the cache entirely.
CACHE_DIR_ENV = "REPRO_SWEEP_CACHE_DIR"

#: Cache-key schema of sweep cells.  v2: the key hashes the cell's fully
#: resolved :class:`~repro.sim.scenario.ScenarioSpec`, so entries written
#: before the scenario subsystem (or under a different lowering) can
#: never be served for a scenario cell.  v3: the key hashes the cell's
#: fault schedule, so faulted and fault-free runs of the same scenario
#: can never share an entry.
SWEEP_SCHEMA_VERSION = 3


@dataclass(frozen=True)
class SweepCell:
    """One independent simulation cell of an experiment grid.

    A cell is either the classic closed-loop shape (``model_keys`` plus
    the steady-state window knobs) or an explicit declarative scenario
    (``scenario``); both resolve to one
    :class:`~repro.sim.scenario.ScenarioSpec` via
    :meth:`resolve_scenario`, which is what actually runs — and what the
    persistent cache key hashes.

    Attributes:
        policy: scheduler name (``"baseline"``, ``"moca"``, ``"aurora"``,
            ``"camdn-hw"``, ``"camdn-full"``).
        model_keys: one Table I abbreviation per co-located stream
            (closed-loop cells; empty when ``scenario`` is given).
        qos_scale: latency-target multiplier (``inf`` disables deadlines).
        qos_mode: enable the AuRORA-style QoS integration on CaMDN.
        scale: measurement-window scale (see :class:`ExperimentScale`;
            scenario cells scale through
            :meth:`~repro.sim.scenario.ScenarioSpec.scaled`).
        cache_bytes: overrides the sweep SoC's shared-cache capacity for
            this cell (``None`` keeps the sweep default).
        seed: seed used when the cell is built from a random model mix
            (recorded so the cell is self-describing and reproducible).
        scenario: explicit scenario for this cell (dynamic tenancy,
            open-loop arrivals); mutually exclusive with ``model_keys``.
        faults: optional :class:`~repro.sim.faults.FaultSpec` injected
            into this cell's run (fault instants scale with ``scale``,
            like the scenario window).
    """

    policy: str
    model_keys: Tuple[str, ...] = ()
    qos_scale: float = math.inf
    qos_mode: bool = False
    scale: float = 1.0
    cache_bytes: Optional[int] = None
    seed: int = field(default=2025)
    scenario: Optional[ScenarioSpec] = None
    faults: Optional[FaultSpec] = None

    def __post_init__(self) -> None:
        if self.scenario is None and not self.model_keys:
            raise WorkloadError(
                "sweep cell needs model_keys or a scenario"
            )
        if self.scenario is not None and self.model_keys:
            raise WorkloadError(
                "sweep cell takes model_keys or a scenario, not both"
            )
        if self.scenario is not None and not math.isinf(self.qos_scale):
            raise WorkloadError(
                "scenario cells carry QoS per stream (StreamSpec."
                "qos_scale); the cell-level qos_scale only applies to "
                "model_keys cells"
            )

    @classmethod
    def random_mix(cls, policy: str, num_streams: int,
                   seed: int = 2025, **kwargs) -> "SweepCell":
        """Build a cell over a seeded random model mix (deterministic in
        ``(num_streams, seed)``)."""
        return cls(
            policy=policy,
            model_keys=tuple(random_model_mix(num_streams, seed=seed)),
            seed=seed,
            **kwargs,
        )

    @classmethod
    def from_scenario(cls, policy: str, scenario: ScenarioSpec,
                      **kwargs) -> "SweepCell":
        """Build a cell over an explicit declarative scenario."""
        return cls(policy=policy, scenario=scenario, **kwargs)

    def resolve_scenario(self) -> ScenarioSpec:
        """The fully resolved scenario this cell simulates."""
        if self.scenario is not None:
            return self.scenario.scaled(self.scale)
        scale = ExperimentScale(scale=self.scale)
        return WorkloadSpec(
            model_keys=list(self.model_keys),
            duration_s=scale.duration_s,
            warmup_s=scale.warmup_s,
            qos_scale=self.qos_scale,
        ).to_scenario()

    def resolve_faults(self) -> Optional[FaultSpec]:
        """The cell's fault schedule at the cell's scale (or ``None``)."""
        if self.faults is None:
            return None
        return self.faults.scaled(self.scale)

    def to_dict(self) -> dict:
        """Canonical JSON-ready form (part of the cache key).

        The scenario itself is not embedded here: :func:`cell_cache_key`
        hashes the cell's *resolved* scenario alongside this dict, which
        already captures the arrival dynamics exactly once.
        """
        return {
            "policy": self.policy,
            "model_keys": list(self.model_keys),
            "qos_scale": self.qos_scale,
            "qos_mode": self.qos_mode,
            "scale": self.scale,
            "cache_bytes": self.cache_bytes,
            "seed": self.seed,
            "faults": (
                fault_spec_to_dict(self.faults)
                if self.faults is not None else None
            ),
        }


# ----------------------------------------------------------------------
# Persistent cell cache
# ----------------------------------------------------------------------

def default_cache_dir() -> Optional[Path]:
    """Resolved cache directory, or ``None`` when disabled via env."""
    return resolve_cache_dir(CACHE_DIR_ENV, "sweeps")


def cell_cache_key(cell: SweepCell, soc: SoCConfig) -> str:
    """Stable content hash identifying one cell on one SoC.

    Salted with the package version *and* a digest of the package's own
    source files, so any code edit — versioned or not — invalidates
    every cached result instead of silently replaying stale simulations.
    The key also hashes the cell's fully resolved scenario (arrival
    processes, tenancy timeline, per-stream QoS), so two cells that
    differ only in arrival dynamics can never share an entry, and
    pre-scenario cache entries (schema v1) are unreachable.
    """
    return stable_content_hash({
        "sweep_schema_version": SWEEP_SCHEMA_VERSION,
        "repro_version": __version__,
        "source_salt": source_content_salt(),
        "cell": cell.to_dict(),
        "scenario": scenario_spec_to_dict(cell.resolve_scenario()),
        "soc": soc_config_to_dict(soc),
    })


def clear_sweep_cache(cache_dir: Optional[Path] = None) -> int:
    """Delete all cached cell results; returns the number removed."""
    cache_dir = cache_dir or default_cache_dir()
    if cache_dir is None or not cache_dir.is_dir():
        return 0
    removed = 0
    for entry in cache_dir.glob("*.json"):
        try:
            entry.unlink()
            removed += 1
        except OSError:
            continue
    return removed


def _load_cached(path: Path) -> Optional[SimulationResult]:
    """A cached result, or ``None`` on any miss/corruption.

    A missing entry is the normal cold-cache case.  An entry that exists
    but cannot be parsed (truncated write, disk corruption, stale bytes
    from a crashed process) is logged, unlinked and treated as a miss —
    the cell re-simulates and the entry is rebuilt transparently.
    """
    try:
        raw = path.read_bytes()
    except FileNotFoundError:
        return None
    except OSError as exc:
        _LOG.warning("sweep cache entry %s unreadable (%s); ignoring",
                     path.name, exc)
        return None
    try:
        # Decoding inside the corruption guard: arbitrary on-disk bytes
        # (a torn write is not guaranteed to stay valid UTF-8).
        return simulation_result_from_dict(
            json.loads(raw.decode("utf-8"))
        )
    except Exception as exc:
        _LOG.warning(
            "sweep cache entry %s corrupt (%s); invalidating and "
            "re-simulating", path.name, exc,
        )
        try:
            path.unlink()
        except OSError:
            pass
        return None


def _store_cached(path: Path, result: SimulationResult) -> None:
    """Best-effort atomic write of one cell result."""
    atomic_write_text(path, json.dumps(simulation_result_to_dict(result)))


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------

#: Statistics of the most recent run_sweep call in this process (the
#: runner surfaces these as its events/sec observability line).
_LAST_STATS: Dict[str, float] = {}

#: Per-cell failure records of the most recent run_sweep call: cells
#: whose simulation raised twice (initial attempt plus the serial
#: retry).  Each entry: ``{"index", "policy", "error"}``.
_LAST_FAILURES: List[Dict[str, object]] = []

#: Pause before retrying a failed cell serially in the parent, giving
#: transient conditions (a dying worker, memory pressure) time to clear.
RETRY_BACKOFF_S = 0.05


def last_sweep_stats() -> Dict[str, float]:
    """``{cells, cached_cells, events, sim_wall_s, events_per_s,
    failed_cells}`` of the latest :func:`run_sweep` call (empty before
    the first sweep)."""
    return dict(_LAST_STATS)


def last_sweep_failures() -> List[Dict[str, object]]:
    """Cells of the latest sweep that failed both their initial run and
    the serial retry (empty on a fully successful sweep)."""
    return [dict(f) for f in _LAST_FAILURES]


def reset_sweep_stats() -> None:
    """Clear the latest-sweep statistics (callers that need to attribute
    stats to one harness invocation reset before it runs)."""
    _LAST_STATS.clear()
    _LAST_FAILURES.clear()


def _run_cell(args: tuple) -> SimulationResult:
    """Execute one cell (top-level so it pickles for worker processes).

    The cell's scenario is resolved from the spec alone (seeded arrival
    randomness included), so a cell simulates identically in-process or
    on any pool worker.
    """
    cell, soc = args
    if cell.cache_bytes is not None:
        soc = soc.with_cache_bytes(cell.cache_bytes)
    return run_scenario(
        cell.resolve_scenario(), soc, cell.policy,
        qos_mode=cell.qos_mode, faults=cell.resolve_faults(),
    )


def _warm_worker(solve_memo) -> None:
    """Pool-worker initializer: install the parent's solve memo."""
    SubspaceSolver.install_solve_memo(solve_memo)


def _attempt_cell(item: tuple
                  ) -> Tuple[Optional[SimulationResult], Optional[str]]:
    """Run one cell in-process, capturing any exception as a string."""
    try:
        return _run_cell(item), None
    except Exception as exc:
        return None, f"{type(exc).__name__}: {exc}"


def run_sweep(
    cells: Sequence[SweepCell],
    soc: Optional[SoCConfig] = None,
    max_workers: Optional[int] = None,
    use_cache: bool = True,
    cache_dir: Optional[Path] = None,
) -> List[Optional[SimulationResult]]:
    """Run every cell and return results in cell order.

    Args:
        cells: the grid points to simulate.
        soc: base hardware configuration (defaults to paper Table II);
            per-cell ``cache_bytes`` overrides apply on top.
        max_workers: process count.  ``None`` picks
            ``min(len(cells), cpu_count)``; values <= 1 (or a single cell,
            or a single-core host) run serially in-process.
        use_cache: consult/populate the persistent cell cache.
        cache_dir: cache location override (default: see
            :func:`default_cache_dir` / ``REPRO_SWEEP_CACHE_DIR``).

    Each cell is simulated by a deterministic closed-loop engine run, so
    the results are identical whichever worker executes them — or whether
    they come from the cache at all.

    The sweep is fault tolerant: a cell whose simulation raises — or
    whose pool worker dies — does not abort the sweep.  The failure is
    captured, the cell is retried once serially in the parent after a
    short backoff, and a cell that fails twice is reported through
    :func:`last_sweep_failures` (and the ``failed_cells`` stat) with a
    ``None`` placeholder at its position in the returned list.  Fully
    successful sweeps (the normal case) contain no ``None`` entries.
    """
    soc = soc or SoCConfig()
    cells = list(cells)
    results: List[Optional[SimulationResult]] = [None] * len(cells)

    cache_path: Optional[Path] = None
    keys: List[Optional[str]] = [None] * len(cells)
    if use_cache:
        cache_path = cache_dir or default_cache_dir()
    if cache_path is not None:
        for i, cell in enumerate(cells):
            keys[i] = cell_cache_key(cell, soc)
            results[i] = _load_cached(cache_path / f"{keys[i]}.json")

    misses = [i for i, r in enumerate(results) if r is None]
    _LAST_FAILURES.clear()
    if misses:
        work = [(cells[i], soc) for i in misses]
        if max_workers is None:
            max_workers = min(len(work), os.cpu_count() or 1)
        fresh: List[Optional[SimulationResult]]
        errors: List[Optional[str]]
        if max_workers <= 1 or len(work) <= 1:
            fresh, errors = [], []
            for item in work:
                result, error = _attempt_cell(item)
                fresh.append(result)
                errors.append(error)
        else:
            with ProcessPoolExecutor(
                max_workers=max_workers,
                initializer=_warm_worker,
                initargs=(SubspaceSolver.export_solve_memo(),),
            ) as pool:
                # Per-cell futures (not pool.map) so one raising cell —
                # or a worker death breaking the pool — surfaces as that
                # cell's failure instead of aborting the whole sweep.
                futures = [pool.submit(_run_cell, item) for item in work]
                fresh, errors = [], []
                for future in futures:
                    try:
                        fresh.append(future.result())
                        errors.append(None)
                    except Exception as exc:
                        fresh.append(None)
                        errors.append(f"{type(exc).__name__}: {exc}")
        # One serial retry in the parent: transient failures (a worker
        # OOM-killed, a flaky filesystem) recover; deterministic ones
        # fail again and are reported instead of raised.
        for j, i in enumerate(misses):
            if fresh[j] is not None:
                continue
            _LOG.warning(
                "sweep cell %d (%s) failed: %s; retrying serially",
                i, cells[i].policy, errors[j],
            )
            time.sleep(RETRY_BACKOFF_S)
            result, error = _attempt_cell(work[j])
            if result is not None:
                fresh[j] = result
                continue
            _LOG.warning("sweep cell %d (%s) failed twice: %s",
                         i, cells[i].policy, error)
            _LAST_FAILURES.append({
                "index": i,
                "policy": cells[i].policy,
                "error": error,
            })
        for i, result in zip(misses, fresh):
            if result is None:
                continue
            results[i] = result
            if cache_path is not None:
                _store_cached(cache_path / f"{keys[i]}.json", result)

    final = [r for r in results if r is not None]
    done = [results[i] for i in misses if results[i] is not None]
    fresh_wall = sum(r.wall_time_s for r in done)
    fresh_events = sum(r.events_processed for r in done)
    _LAST_STATS.clear()
    _LAST_STATS.update({
        "cells": len(final),
        "cached_cells": len(cells) - len(misses),
        "events": sum(r.events_processed for r in final),
        "sim_wall_s": fresh_wall,
        "events_per_s":
            fresh_events / fresh_wall if fresh_wall > 0 else 0.0,
        "failed_cells": float(len(_LAST_FAILURES)),
    })
    return results
