"""Parallel experiment sweep runner.

Experiment harnesses and benchmarks run grids of independent simulation
cells — one per ``(policy, model mix, QoS level, SoC variant)`` point.
Cells share no mutable state (each builds its own scheduler, workload and
engine), so they parallelize perfectly across processes.

:func:`run_sweep` executes a list of :class:`SweepCell` descriptions and
returns one :class:`~repro.sim.engine.SimulationResult` per cell, in cell
order regardless of completion order, so results are deterministic under
any worker count.  On single-core hosts (or ``max_workers=1``) the sweep
runs serially in-process, which also reuses the warm prepared-workload and
solver caches; worker processes re-derive them on first use (the caches
are process-wide, and the memoized mapping layer makes that warm-up a few
seconds once per worker, amortized across that worker's cells).
"""

from __future__ import annotations

import math
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..config import SoCConfig
from ..errors import WorkloadError
from ..sim.engine import SimulationResult
from ..sim.workload import random_model_mix
from .common import ExperimentScale, run_policy


@dataclass(frozen=True)
class SweepCell:
    """One independent simulation cell of an experiment grid.

    Attributes:
        policy: scheduler name (``"baseline"``, ``"moca"``, ``"aurora"``,
            ``"camdn-hw"``, ``"camdn-full"``).
        model_keys: one Table I abbreviation per co-located stream.
        qos_scale: latency-target multiplier (``inf`` disables deadlines).
        qos_mode: enable the AuRORA-style QoS integration on CaMDN.
        scale: measurement-window scale (see :class:`ExperimentScale`).
        cache_bytes: overrides the sweep SoC's shared-cache capacity for
            this cell (``None`` keeps the sweep default).
        seed: seed used when the cell is built from a random model mix
            (recorded so the cell is self-describing and reproducible).
    """

    policy: str
    model_keys: Tuple[str, ...]
    qos_scale: float = math.inf
    qos_mode: bool = False
    scale: float = 1.0
    cache_bytes: Optional[int] = None
    seed: int = field(default=2025)

    def __post_init__(self) -> None:
        if not self.model_keys:
            raise WorkloadError("sweep cell needs at least one stream")

    @classmethod
    def random_mix(cls, policy: str, num_streams: int,
                   seed: int = 2025, **kwargs) -> "SweepCell":
        """Build a cell over a seeded random model mix (deterministic in
        ``(num_streams, seed)``)."""
        return cls(
            policy=policy,
            model_keys=tuple(random_model_mix(num_streams, seed=seed)),
            seed=seed,
            **kwargs,
        )


def _run_cell(args: tuple) -> SimulationResult:
    """Execute one cell (top-level so it pickles for worker processes)."""
    cell, soc = args
    if cell.cache_bytes is not None:
        soc = soc.with_cache_bytes(cell.cache_bytes)
    return run_policy(
        soc,
        cell.policy,
        cell.model_keys,
        ExperimentScale(scale=cell.scale),
        qos_scale=cell.qos_scale,
        qos_mode=cell.qos_mode,
    )


def run_sweep(
    cells: Sequence[SweepCell],
    soc: Optional[SoCConfig] = None,
    max_workers: Optional[int] = None,
) -> List[SimulationResult]:
    """Run every cell and return results in cell order.

    Args:
        cells: the grid points to simulate.
        soc: base hardware configuration (defaults to paper Table II);
            per-cell ``cache_bytes`` overrides apply on top.
        max_workers: process count.  ``None`` picks
            ``min(len(cells), cpu_count)``; values <= 1 (or a single cell,
            or a single-core host) run serially in-process.

    Each cell is simulated by a deterministic closed-loop engine run, so
    the results are identical whichever worker executes them.
    """
    soc = soc or SoCConfig()
    work = [(cell, soc) for cell in cells]
    if max_workers is None:
        max_workers = min(len(work), os.cpu_count() or 1)
    if max_workers <= 1 or len(work) <= 1:
        return [_run_cell(item) for item in work]
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        return list(pool.map(_run_cell, work))
