"""Parallel experiment sweep runner with a persistent result cache.

Experiment harnesses and benchmarks run grids of independent simulation
cells — one per ``(policy, scenario, QoS level, SoC variant)`` point,
where the scenario is either a classic closed-loop model mix or an
explicit declarative :class:`~repro.sim.scenario.ScenarioSpec` (dynamic
tenancy, open-loop arrivals).  Cells share no mutable state (each builds
its own scheduler, workload and engine), so they parallelize perfectly
across processes.

:func:`run_sweep` executes a list of :class:`SweepCell` descriptions and
returns one :class:`~repro.sim.engine.SimulationResult` per cell, in cell
order regardless of completion order, so results are deterministic under
any worker count.

Two cache layers remove redundant work:

* **Persistent result cache** — every cell is keyed by a stable content
  hash of its :class:`SweepCell` fields, the full
  :class:`~repro.config.SoCConfig`, and the package version (via
  :mod:`repro.core.serialize`).  Results are stored as JSON under
  ``$REPRO_SWEEP_CACHE_DIR`` (default
  ``$XDG_CACHE_HOME/camdn-repro/sweeps``); a re-run of a figure harness,
  benchmark or slow test with identical cells skips the simulation
  entirely and deserializes byte-identical results.  Disable with
  ``use_cache=False`` (the runner's ``--no-cache``) or by setting
  ``REPRO_SWEEP_CACHE_DIR`` to an empty string.  The engine is
  deterministic, so a cache hit and a fresh run are interchangeable;
  the version salt invalidates entries across releases.
* **Worker warm-up** — the parent ships its loop-nest solve memo
  (:meth:`~repro.core.mapper.solver.SubspaceSolver.export_solve_memo`)
  to every pool worker through the executor initializer, so workers skip
  the cold-start mapping re-solve for shapes the parent already solved.

On single-core hosts (or ``max_workers=1``) the sweep runs serially
in-process, which reuses the warm prepared-workload and solver caches
directly.
"""

from __future__ import annotations

import json
import logging
import math
import os
import random
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .. import __version__
from ..config import SoCConfig
from ..core.mapper.solver import SubspaceSolver
from ..core.serialize import (
    _write_text_durable,
    atomic_write_text,
    fault_spec_from_dict,
    fault_spec_to_dict,
    resolve_cache_dir,
    scenario_spec_from_dict,
    scenario_spec_to_dict,
    simulation_result_from_dict,
    simulation_result_to_dict,
    soc_config_from_dict,
    soc_config_to_dict,
    source_content_salt,
    stable_content_hash,
)
from ..errors import WorkloadError
from ..runconfig import RunConfig
from ..sim.engine import SimulationResult
from ..sim.faults import FaultSpec
from ..sim.scenario import ScenarioSpec
from ..sim.workload import WorkloadSpec, random_model_mix
from .common import ExperimentScale, run_scenario

_LOG = logging.getLogger(__name__)

#: Environment override for the persistent cell cache location; an empty
#: value disables the cache entirely.
CACHE_DIR_ENV = "REPRO_SWEEP_CACHE_DIR"

#: Cache-key schema of sweep cells.  v2: the key hashes the cell's fully
#: resolved :class:`~repro.sim.scenario.ScenarioSpec`, so entries written
#: before the scenario subsystem (or under a different lowering) can
#: never be served for a scenario cell.  v3: the key hashes the cell's
#: fault schedule, so faulted and fault-free runs of the same scenario
#: can never share an entry.
SWEEP_SCHEMA_VERSION = 3


@dataclass(frozen=True)
class SweepCell:
    """One independent simulation cell of an experiment grid.

    A cell is either the classic closed-loop shape (``model_keys`` plus
    the steady-state window knobs) or an explicit declarative scenario
    (``scenario``); both resolve to one
    :class:`~repro.sim.scenario.ScenarioSpec` via
    :meth:`resolve_scenario`, which is what actually runs — and what the
    persistent cache key hashes.

    Attributes:
        policy: scheduler name (``"baseline"``, ``"moca"``, ``"aurora"``,
            ``"camdn-hw"``, ``"camdn-full"``).
        model_keys: one Table I abbreviation per co-located stream
            (closed-loop cells; empty when ``scenario`` is given).
        qos_scale: latency-target multiplier (``inf`` disables deadlines).
        qos_mode: enable the AuRORA-style QoS integration on CaMDN.
        scale: measurement-window scale (see :class:`ExperimentScale`;
            scenario cells scale through
            :meth:`~repro.sim.scenario.ScenarioSpec.scaled`).
        cache_bytes: overrides the sweep SoC's shared-cache capacity for
            this cell (``None`` keeps the sweep default).
        seed: seed used when the cell is built from a random model mix
            (recorded so the cell is self-describing and reproducible).
        scenario: explicit scenario for this cell (dynamic tenancy,
            open-loop arrivals); mutually exclusive with ``model_keys``.
        faults: optional :class:`~repro.sim.faults.FaultSpec` injected
            into this cell's run (fault instants scale with ``scale``,
            like the scenario window).
    """

    policy: str
    model_keys: Tuple[str, ...] = ()
    qos_scale: float = math.inf
    qos_mode: bool = False
    scale: float = 1.0
    cache_bytes: Optional[int] = None
    seed: int = field(default=2025)
    scenario: Optional[ScenarioSpec] = None
    faults: Optional[FaultSpec] = None

    def __post_init__(self) -> None:
        if self.scenario is None and not self.model_keys:
            raise WorkloadError(
                "sweep cell needs model_keys or a scenario"
            )
        if self.scenario is not None and self.model_keys:
            raise WorkloadError(
                "sweep cell takes model_keys or a scenario, not both"
            )
        if self.scenario is not None and not math.isinf(self.qos_scale):
            raise WorkloadError(
                "scenario cells carry QoS per stream (StreamSpec."
                "qos_scale); the cell-level qos_scale only applies to "
                "model_keys cells"
            )

    @classmethod
    def random_mix(cls, policy: str, num_streams: int,
                   seed: int = 2025, **kwargs) -> "SweepCell":
        """Build a cell over a seeded random model mix (deterministic in
        ``(num_streams, seed)``)."""
        return cls(
            policy=policy,
            model_keys=tuple(random_model_mix(num_streams, seed=seed)),
            seed=seed,
            **kwargs,
        )

    @classmethod
    def from_scenario(cls, policy: str, scenario: ScenarioSpec,
                      **kwargs) -> "SweepCell":
        """Build a cell over an explicit declarative scenario."""
        return cls(policy=policy, scenario=scenario, **kwargs)

    def resolve_scenario(self) -> ScenarioSpec:
        """The fully resolved scenario this cell simulates."""
        if self.scenario is not None:
            return self.scenario.scaled(self.scale)
        scale = ExperimentScale(scale=self.scale)
        return WorkloadSpec(
            model_keys=list(self.model_keys),
            duration_s=scale.duration_s,
            warmup_s=scale.warmup_s,
            qos_scale=self.qos_scale,
        ).to_scenario()

    def resolve_faults(self) -> Optional[FaultSpec]:
        """The cell's fault schedule at the cell's scale (or ``None``)."""
        if self.faults is None:
            return None
        return self.faults.scaled(self.scale)

    def to_dict(self) -> dict:
        """Canonical JSON-ready form (part of the cache key).

        The scenario itself is not embedded here: :func:`cell_cache_key`
        hashes the cell's *resolved* scenario alongside this dict, which
        already captures the arrival dynamics exactly once.
        """
        return {
            "policy": self.policy,
            "model_keys": list(self.model_keys),
            "qos_scale": self.qos_scale,
            "qos_mode": self.qos_mode,
            "scale": self.scale,
            "cache_bytes": self.cache_bytes,
            "seed": self.seed,
            "faults": (
                fault_spec_to_dict(self.faults)
                if self.faults is not None else None
            ),
        }


# ----------------------------------------------------------------------
# Persistent cell cache
# ----------------------------------------------------------------------

def default_cache_dir() -> Optional[Path]:
    """Resolved cache directory, or ``None`` when disabled via env."""
    return resolve_cache_dir(CACHE_DIR_ENV, "sweeps")


def cell_cache_key(cell: SweepCell, soc: SoCConfig) -> str:
    """Stable content hash identifying one cell on one SoC.

    Salted with the package version *and* a digest of the package's own
    source files, so any code edit — versioned or not — invalidates
    every cached result instead of silently replaying stale simulations.
    The key also hashes the cell's fully resolved scenario (arrival
    processes, tenancy timeline, per-stream QoS), so two cells that
    differ only in arrival dynamics can never share an entry, and
    pre-scenario cache entries (schema v1) are unreachable.
    """
    return stable_content_hash({
        "sweep_schema_version": SWEEP_SCHEMA_VERSION,
        "repro_version": __version__,
        "source_salt": source_content_salt(),
        "cell": cell.to_dict(),
        "scenario": scenario_spec_to_dict(cell.resolve_scenario()),
        "soc": soc_config_to_dict(soc),
    })


def clear_sweep_cache(cache_dir: Optional[Path] = None) -> int:
    """Delete all cached cell results; returns the number removed."""
    cache_dir = cache_dir or default_cache_dir()
    if cache_dir is None or not cache_dir.is_dir():
        return 0
    removed = 0
    for entry in cache_dir.glob("*.json"):
        try:
            entry.unlink()
            removed += 1
        except OSError:
            continue
    return removed


def _load_cached(path: Path) -> Optional[SimulationResult]:
    """A cached result, or ``None`` on any miss/corruption.

    A missing entry is the normal cold-cache case.  An entry that exists
    but cannot be parsed (truncated write, disk corruption, stale bytes
    from a crashed process) is logged, unlinked and treated as a miss —
    the cell re-simulates and the entry is rebuilt transparently.
    """
    try:
        raw = path.read_bytes()
    except FileNotFoundError:
        return None
    except OSError as exc:
        _LOG.warning("sweep cache entry %s unreadable (%s); ignoring",
                     path.name, exc)
        return None
    try:
        # Decoding inside the corruption guard: arbitrary on-disk bytes
        # (a torn write is not guaranteed to stay valid UTF-8).
        return simulation_result_from_dict(
            json.loads(raw.decode("utf-8"))
        )
    except Exception as exc:
        _LOG.warning(
            "sweep cache entry %s corrupt (%s); invalidating and "
            "re-simulating", path.name, exc,
        )
        try:
            path.unlink()
        except OSError:
            pass
        return None


def _store_cached(path: Path, result: SimulationResult) -> None:
    """Best-effort atomic write of one cell result."""
    atomic_write_text(path, json.dumps(simulation_result_to_dict(result)))


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------

#: Statistics of the most recent run_sweep call in this process (the
#: runner surfaces these as its events/sec observability line).
_LAST_STATS: Dict[str, float] = {}

#: Per-cell failure records of the most recent run_sweep call: cells
#: whose simulation raised twice (initial attempt plus the serial
#: retry).  Each entry: ``{"index", "policy", "error"}``.
_LAST_FAILURES: List[Dict[str, object]] = []

#: Pause before retrying a failed cell serially in the parent, giving
#: transient conditions (a dying worker, memory pressure) time to clear.
RETRY_BACKOFF_S = 0.05


def last_sweep_stats() -> Dict[str, float]:
    """``{cells, cached_cells, events, sim_wall_s, events_per_s,
    failed_cells}`` of the latest :func:`run_sweep` call (empty before
    the first sweep)."""
    return dict(_LAST_STATS)


def last_sweep_failures() -> List[Dict[str, object]]:
    """Cells of the latest sweep that failed both their initial run and
    the serial retry (empty on a fully successful sweep)."""
    return [dict(f) for f in _LAST_FAILURES]


def reset_sweep_stats() -> None:
    """Clear the latest-sweep statistics (callers that need to attribute
    stats to one harness invocation reset before it runs)."""
    _LAST_STATS.clear()
    _LAST_FAILURES.clear()


def _run_cell(args: tuple) -> SimulationResult:
    """Execute one cell (top-level so it pickles for worker processes).

    The cell's scenario is resolved from the spec alone (seeded arrival
    randomness included), so a cell simulates identically in-process or
    on any pool worker.  ``deadline_s`` arms the engine's wall-clock
    watchdog: a cell that hangs is killed by a diagnostic
    :class:`~repro.errors.SimulationError` instead of stalling the
    sweep (the campaign runner retries it with backoff).
    """
    cell, soc, deadline_s = args
    if cell.cache_bytes is not None:
        soc = soc.with_cache_bytes(cell.cache_bytes)
    return run_scenario(
        cell.resolve_scenario(), soc, cell.policy,
        config=RunConfig(
            qos_mode=cell.qos_mode, faults=cell.resolve_faults(),
            max_wall_s=deadline_s,
        ),
    )


def _run_cell_shard(args: tuple) -> List[SimulationResult]:
    """Execute a batch of cells in one worker dispatch.

    Fleet grids run thousands of small cells; shipping them one future
    at a time drowns the simulation in pickling and IPC overhead.  A
    shard amortizes the round trip while every cell still simulates
    through :func:`_run_cell`, so results are byte-identical to
    unsharded execution.
    """
    shard, soc, deadline_s = args
    return [_run_cell((cell, soc, deadline_s)) for cell in shard]


def _warm_worker(solve_memo) -> None:
    """Pool-worker initializer: install the parent's solve memo."""
    SubspaceSolver.install_solve_memo(solve_memo)


def _attempt_cell(item: tuple
                  ) -> Tuple[Optional[SimulationResult], Optional[str]]:
    """Run one cell in-process, capturing any exception as a string."""
    try:
        return _run_cell(item), None
    except Exception as exc:
        return None, f"{type(exc).__name__}: {exc}"


def run_sweep(
    cells: Sequence[SweepCell],
    soc: Optional[SoCConfig] = None,
    max_workers: Optional[int] = None,
    use_cache: bool = True,
    cache_dir: Optional[Path] = None,
    shard_size: Optional[int] = None,
) -> List[Optional[SimulationResult]]:
    """Run every cell and return results in cell order.

    Args:
        cells: the grid points to simulate.
        soc: base hardware configuration (defaults to paper Table II);
            per-cell ``cache_bytes`` overrides apply on top.
        max_workers: process count.  ``None`` picks
            ``min(len(cells), cpu_count)``; values <= 1 (or a single cell,
            or a single-core host) run serially in-process.
        use_cache: consult/populate the persistent cell cache.
        cache_dir: cache location override (default: see
            :func:`default_cache_dir` / ``REPRO_SWEEP_CACHE_DIR``).
        shard_size: batch this many cells per worker dispatch (fleet
            grids of thousands of tiny cells amortize pickling/IPC this
            way).  ``None`` or 1 keeps per-cell dispatch.  Results are
            byte-identical either way; a failing shard falls back to
            per-cell execution so one bad cell cannot take down its
            shard-mates.

    Each cell is simulated by a deterministic closed-loop engine run, so
    the results are identical whichever worker executes them — or whether
    they come from the cache at all.

    The sweep is fault tolerant: a cell whose simulation raises — or
    whose pool worker dies — does not abort the sweep.  The failure is
    captured, the cell is retried once serially in the parent after a
    short backoff, and a cell that fails twice is reported through
    :func:`last_sweep_failures` (and the ``failed_cells`` stat) with a
    ``None`` placeholder at its position in the returned list.  Fully
    successful sweeps (the normal case) contain no ``None`` entries.
    """
    soc = soc or SoCConfig()
    cells = list(cells)
    results: List[Optional[SimulationResult]] = [None] * len(cells)

    cache_path: Optional[Path] = None
    keys: List[Optional[str]] = [None] * len(cells)
    if use_cache:
        cache_path = cache_dir or default_cache_dir()
    if cache_path is not None:
        for i, cell in enumerate(cells):
            keys[i] = cell_cache_key(cell, soc)
            results[i] = _load_cached(cache_path / f"{keys[i]}.json")

    misses = [i for i, r in enumerate(results) if r is None]
    _LAST_FAILURES.clear()
    if misses:
        work = [(cells[i], soc, None) for i in misses]
        if max_workers is None:
            max_workers = min(len(work), os.cpu_count() or 1)
        fresh: List[Optional[SimulationResult]]
        errors: List[Optional[str]]
        if max_workers <= 1 or len(work) <= 1:
            fresh, errors = [], []
            for item in work:
                result, error = _attempt_cell(item)
                fresh.append(result)
                errors.append(error)
        else:
            with ProcessPoolExecutor(
                max_workers=max_workers,
                initializer=_warm_worker,
                initargs=(SubspaceSolver.export_solve_memo(),),
            ) as pool:
                if shard_size is not None and shard_size > 1:
                    # Batched dispatch: one future per shard.  A shard
                    # that raises (one bad cell, a dying worker) marks
                    # all its cells failed here; the per-cell serial
                    # retry below then isolates the real culprit.
                    shards = [work[k:k + shard_size]
                              for k in range(0, len(work), shard_size)]
                    futures = [
                        pool.submit(
                            _run_cell_shard,
                            ([c for c, _, _ in shard], soc, None),
                        )
                        for shard in shards
                    ]
                    fresh, errors = [], []
                    for shard, future in zip(shards, futures):
                        try:
                            batch = future.result()
                            fresh.extend(batch)
                            errors.extend([None] * len(batch))
                        except Exception as exc:
                            fresh.extend([None] * len(shard))
                            errors.extend(
                                [f"{type(exc).__name__}: {exc}"]
                                * len(shard)
                            )
                else:
                    # Per-cell futures (not pool.map) so one raising
                    # cell — or a worker death breaking the pool —
                    # surfaces as that cell's failure instead of
                    # aborting the whole sweep.
                    futures = [pool.submit(_run_cell, item)
                               for item in work]
                    fresh, errors = [], []
                    for future in futures:
                        try:
                            fresh.append(future.result())
                            errors.append(None)
                        except Exception as exc:
                            fresh.append(None)
                            errors.append(f"{type(exc).__name__}: {exc}")
        # One serial retry in the parent: transient failures (a worker
        # OOM-killed, a flaky filesystem) recover; deterministic ones
        # fail again and are reported instead of raised.
        for j, i in enumerate(misses):
            if fresh[j] is not None:
                continue
            _LOG.warning(
                "sweep cell %d (%s) failed: %s; retrying serially",
                i, cells[i].policy, errors[j],
            )
            time.sleep(RETRY_BACKOFF_S)
            result, error = _attempt_cell(work[j])
            if result is not None:
                fresh[j] = result
                continue
            _LOG.warning("sweep cell %d (%s) failed twice: %s",
                         i, cells[i].policy, error)
            _LAST_FAILURES.append({
                "index": i,
                "policy": cells[i].policy,
                "error": error,
            })
        for i, result in zip(misses, fresh):
            if result is None:
                continue
            results[i] = result
            if cache_path is not None:
                _store_cached(cache_path / f"{keys[i]}.json", result)

    final = [r for r in results if r is not None]
    done = [results[i] for i in misses if results[i] is not None]
    fresh_wall = sum(r.wall_time_s for r in done)
    fresh_events = sum(r.events_processed for r in done)
    _LAST_STATS.clear()
    _LAST_STATS.update({
        "cells": len(final),
        "cached_cells": len(cells) - len(misses),
        "events": sum(r.events_processed for r in final),
        "sim_wall_s": fresh_wall,
        "events_per_s":
            fresh_events / fresh_wall if fresh_wall > 0 else 0.0,
        "failed_cells": float(len(_LAST_FAILURES)),
    })
    return results


# ----------------------------------------------------------------------
# Crash-safe campaign runner (write-ahead journal + resume)
# ----------------------------------------------------------------------

#: Journal format version; bump on any record-shape change.
CAMPAIGN_SCHEMA_VERSION = 1

#: Cap on serial retry attempts per cell after its first failure.
DEFAULT_CELL_RETRIES = 1


def _retry_backoff_s(index: int, attempt: int) -> float:
    """Jittered, deterministic backoff before retrying one cell.

    Seeded by (cell, attempt) so concurrent campaigns de-synchronize
    their retries without making any run irreproducible.
    """
    rng = random.Random(f"retry:{index}:{attempt}")
    return RETRY_BACKOFF_S * attempt * rng.uniform(0.5, 1.5)


def _cell_to_journal(cell: SweepCell) -> dict:
    data = cell.to_dict()
    data["scenario"] = (
        scenario_spec_to_dict(cell.scenario)
        if cell.scenario is not None else None
    )
    return data


def _cell_from_journal(data: dict) -> SweepCell:
    scenario = data.get("scenario")
    faults = data.get("faults")
    return SweepCell(
        policy=data["policy"],
        model_keys=tuple(data["model_keys"]),
        qos_scale=data["qos_scale"],
        qos_mode=data["qos_mode"],
        scale=data["scale"],
        cache_bytes=data["cache_bytes"],
        seed=data["seed"],
        scenario=(
            scenario_spec_from_dict(scenario)
            if scenario is not None else None
        ),
        faults=(
            fault_spec_from_dict(faults) if faults is not None else None
        ),
    )


class CampaignJournal:
    """Append-only, fsync'd write-ahead journal of one sweep campaign.

    The journal is a JSONL file.  The first record is the header — the
    full cell grid and SoC, so a resume needs nothing but the journal.
    Every later record is one of:

    * ``start`` — appended (and fsync'd) *before* a cell attempt runs;
    * ``done`` — appended *after* the cell's result file is durably
      committed to the ``<stem>.cells/`` sidecar directory (write
      temp + fsync + atomic rename), so a ``done`` record always points
      at a complete result;
    * ``failed`` — the cell exhausted its retries.

    Crash consistency: records are append-only and individually fsync'd,
    so a SIGKILL at any instant leaves a valid record prefix plus at
    most one torn final line, which :meth:`read` tolerates.  A cell with
    a ``start`` but no ``done`` was in flight at the crash and is simply
    re-run on resume — cells are deterministic, so the merged grid is
    byte-identical to an uninterrupted campaign.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)

    @property
    def result_dir(self) -> Path:
        """Sidecar directory holding per-cell committed results."""
        return self.path.with_name(self.path.stem + ".cells")

    def _append(self, record: dict) -> None:
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    @classmethod
    def create(cls, path, cells: Sequence[SweepCell],
               soc: SoCConfig) -> "CampaignJournal":
        """Start a new journal (refusing to clobber an existing one)."""
        journal = cls(path)
        journal.path.parent.mkdir(parents=True, exist_ok=True)
        if journal.path.exists():
            raise WorkloadError(
                f"campaign journal {journal.path} already exists; "
                f"resume it (--resume) or remove it first"
            )
        journal._append({
            "kind": "header",
            "campaign_schema_version": CAMPAIGN_SCHEMA_VERSION,
            "repro_version": __version__,
            "soc": soc_config_to_dict(soc),
            "cells": [_cell_to_journal(cell) for cell in cells],
        })
        return journal

    def record_start(self, index: int, attempt: int) -> None:
        self._append({"kind": "start", "index": index,
                      "attempt": attempt})

    def record_done(self, index: int, result: SimulationResult) -> None:
        # Write-ahead ordering: the result is durable on disk before the
        # journal record that marks the cell complete.
        self.result_dir.mkdir(parents=True, exist_ok=True)
        path = self.result_dir / f"{index}.json"
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            _write_text_durable(
                tmp,
                json.dumps(simulation_result_to_dict(result),
                           sort_keys=True),
            )
            os.replace(tmp, path)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        self._append({"kind": "done", "index": index})

    def record_failed(self, index: int, error: str) -> None:
        self._append({"kind": "failed", "index": index, "error": error})

    def load_result(self, index: int) -> Optional[SimulationResult]:
        """The committed result of one cell, or ``None``."""
        return _load_cached(self.result_dir / f"{index}.json")

    def read(self) -> tuple:
        """Parse the journal: ``(cells, soc, done, failed, started)``.

        ``done`` maps cell index to its reloaded result; ``failed`` maps
        index to the last error string; ``started`` is every index with
        at least one attempt on record.  A torn final line (crash
        mid-append) ends the readable prefix and is ignored.

        Raises:
            WorkloadError: the file is unreadable, not a campaign
                journal, or an unsupported schema version.
        """
        try:
            raw = self.path.read_text(encoding="utf-8",
                                      errors="replace")
        except OSError as exc:
            raise WorkloadError(
                f"cannot read campaign journal {self.path}: {exc}"
            ) from exc
        records = []
        for line in raw.splitlines():
            if not line.strip():
                continue
            try:
                records.append(json.loads(line))
            except ValueError:
                # Append-only file: everything before the torn tail is
                # intact; the interrupted attempt simply re-runs.
                break
        if not records or not isinstance(records[0], dict) \
                or records[0].get("kind") != "header":
            raise WorkloadError(
                f"{self.path} is not a campaign journal"
            )
        header = records[0]
        version = header.get("campaign_schema_version")
        if version != CAMPAIGN_SCHEMA_VERSION:
            raise WorkloadError(
                f"unsupported campaign journal schema {version!r} "
                f"(expected {CAMPAIGN_SCHEMA_VERSION})"
            )
        cells = [_cell_from_journal(d) for d in header["cells"]]
        soc = soc_config_from_dict(header["soc"])
        done: Dict[int, SimulationResult] = {}
        failed: Dict[int, str] = {}
        started = set()
        for rec in records[1:]:
            kind = rec.get("kind")
            index = rec.get("index")
            if not isinstance(index, int) or not 0 <= index < len(cells):
                continue
            if kind == "start":
                started.add(index)
                failed.pop(index, None)
            elif kind == "done":
                # Dedupe: repeated resume cycles append a fresh ``done``
                # per cell each time (cache hits re-journal).  Loading
                # the result file once per *cell*, not once per record,
                # keeps replay O(cells) however long the journal grows.
                if index not in done:
                    result = self.load_result(index)
                    if result is not None:
                        done[index] = result
            elif kind == "failed":
                failed[index] = str(rec.get("error", ""))
        return cells, soc, done, failed, started


def run_campaign(
    cells: Sequence[SweepCell],
    journal_path,
    soc: Optional[SoCConfig] = None,
    max_workers: Optional[int] = None,
    use_cache: bool = True,
    deadline_s: Optional[float] = None,
    retries: int = DEFAULT_CELL_RETRIES,
) -> List[Optional[SimulationResult]]:
    """Run a cell grid under a crash-safe write-ahead journal.

    Semantically :func:`run_sweep` plus durability: every cell start and
    completion is journaled (see :class:`CampaignJournal`), each result
    is committed atomically as it lands, and a campaign killed at any
    instant resumes from the journal with :func:`resume_campaign`,
    skipping completed cells and re-running in-flight ones — producing a
    result grid byte-identical to an uninterrupted campaign.

    Args:
        cells: the grid points to simulate.
        journal_path: where to write the journal (must not exist yet);
            results commit to the ``<stem>.cells/`` sidecar directory.
        soc: base hardware configuration (defaults to paper Table II).
        max_workers: process count (as :func:`run_sweep`).
        use_cache: consult/populate the persistent cell cache; hits are
            journaled like computed results.
        deadline_s: per-cell wall-clock watchdog — a cell exceeding it
            is killed (diagnostic engine error) and retried with
            jittered backoff like any other failure.
        retries: serial retry attempts per failed cell.
    """
    soc = soc or SoCConfig()
    cells = list(cells)
    journal = CampaignJournal.create(journal_path, cells, soc)
    return _drive_campaign(journal, cells, soc, {}, max_workers,
                           use_cache, deadline_s, retries)


def resume_campaign(
    journal_path,
    max_workers: Optional[int] = None,
    use_cache: bool = True,
    deadline_s: Optional[float] = None,
    retries: int = DEFAULT_CELL_RETRIES,
) -> List[Optional[SimulationResult]]:
    """Resume a crashed (or previously failed) campaign from its journal.

    Completed cells are served from their committed result files;
    in-flight and failed cells re-run.  Cells are deterministic, so the
    merged grid is byte-identical to an uninterrupted campaign.

    Raises:
        WorkloadError: ``journal_path`` is not a readable campaign
            journal.
    """
    journal = CampaignJournal(journal_path)
    cells, soc, done, _failed, _started = journal.read()
    return _drive_campaign(journal, cells, soc, done, max_workers,
                           use_cache, deadline_s, retries)


def _drive_campaign(
    journal: CampaignJournal,
    cells: List[SweepCell],
    soc: SoCConfig,
    done: Dict[int, SimulationResult],
    max_workers: Optional[int],
    use_cache: bool,
    deadline_s: Optional[float],
    retries: int,
) -> List[Optional[SimulationResult]]:
    results: List[Optional[SimulationResult]] = [
        done.get(i) for i in range(len(cells))
    ]
    recovered = sum(1 for r in results if r is not None)

    cache_path = default_cache_dir() if use_cache else None
    keys: List[Optional[str]] = [None] * len(cells)
    if cache_path is not None:
        for i, cell in enumerate(cells):
            if results[i] is not None:
                continue
            keys[i] = cell_cache_key(cell, soc)
            cached = _load_cached(cache_path / f"{keys[i]}.json")
            if cached is not None:
                journal.record_start(i, 0)
                journal.record_done(i, cached)
                results[i] = cached

    pending = [i for i, r in enumerate(results) if r is None]
    _LAST_FAILURES.clear()
    if pending:
        work = {i: (cells[i], soc, deadline_s) for i in pending}

        def settle(i: int, result, error) -> None:
            # Commit (or retry) one cell the moment its attempt ends —
            # a crash loses at most the cells literally in flight.
            for attempt in range(1, retries + 1):
                if result is not None:
                    break
                _LOG.warning(
                    "campaign cell %d (%s) failed: %s; retry %d/%d",
                    i, cells[i].policy, error, attempt, retries,
                )
                time.sleep(_retry_backoff_s(i, attempt))
                journal.record_start(i, attempt)
                result, error = _attempt_cell(work[i])
            if result is not None:
                journal.record_done(i, result)
                results[i] = result
                if cache_path is not None and keys[i] is not None:
                    _store_cached(cache_path / f"{keys[i]}.json",
                                  result)
            else:
                journal.record_failed(i, error)
                _LAST_FAILURES.append({
                    "index": i,
                    "policy": cells[i].policy,
                    "error": error,
                })

        workers = max_workers
        if workers is None:
            workers = min(len(pending), os.cpu_count() or 1)
        if workers <= 1 or len(pending) <= 1:
            for i in pending:
                journal.record_start(i, 0)
                result, error = _attempt_cell(work[i])
                settle(i, result, error)
        else:
            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_warm_worker,
                initargs=(SubspaceSolver.export_solve_memo(),),
            ) as pool:
                futures = {}
                for i in pending:
                    # The start record hits the disk before the attempt
                    # is submitted: a crash during the cell leaves it
                    # visibly in flight, so resume re-runs it.
                    journal.record_start(i, 0)
                    futures[pool.submit(_run_cell, work[i])] = i
                for future in as_completed(futures):
                    i = futures[future]
                    try:
                        result, error = future.result(), None
                    except Exception as exc:
                        result, error = (
                            None, f"{type(exc).__name__}: {exc}"
                        )
                    settle(i, result, error)
        # Completion order is nondeterministic under a pool; report
        # failures in cell order.
        _LAST_FAILURES.sort(key=lambda f: f["index"])

    final = [r for r in results if r is not None]
    fresh = [results[i] for i in pending if results[i] is not None]
    fresh_wall = sum(r.wall_time_s for r in fresh)
    fresh_events = sum(r.events_processed for r in fresh)
    _LAST_STATS.clear()
    _LAST_STATS.update({
        "cells": len(final),
        "cached_cells": len(cells) - len(pending) - recovered,
        "recovered_cells": float(recovered),
        "events": sum(r.events_processed for r in final),
        "sim_wall_s": fresh_wall,
        "events_per_s":
            fresh_events / fresh_wall if fresh_wall > 0 else 0.0,
        "failed_cells": float(len(_LAST_FAILURES)),
    })
    return results
