"""Figure 3: reuse counts and reuse distances of benchmark DNNs.

The paper reports that on average 68.0 % of data has reuse count 1 (no
future reuse) and that 61.8 % of intermediate data has reuse distance above
1 MB (47.9 % above 2 MB) — the two properties a transparent cache handles
badly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..models.reuse import (
    REUSE_COUNT_BUCKETS,
    REUSE_DISTANCE_BUCKETS,
    average_fractions,
    profile_model,
)
from ..models.zoo import BENCHMARK_MODELS, build_model


@dataclass(frozen=True)
class Fig3Row:
    """Reuse statistics of one model (or the "Avg." bar)."""

    model: str
    count_fractions: Dict[str, float]
    distance_fractions: Dict[str, float]


def run_fig3(model_keys: Sequence[str] = BENCHMARK_MODELS,
             dtype_bytes: int = 1) -> List[Fig3Row]:
    """Profile every benchmark model plus the average bar."""
    rows: List[Fig3Row] = []
    profiles = []
    for key in model_keys:
        profile = profile_model(build_model(key), dtype_bytes)
        profiles.append(profile)
        rows.append(
            Fig3Row(
                model=key,
                count_fractions=profile.count_fractions(),
                distance_fractions=profile.distance_fractions(),
            )
        )
    count_avg, dist_avg = average_fractions(profiles)
    rows.append(
        Fig3Row(
            model="Avg.",
            count_fractions=count_avg,
            distance_fractions=dist_avg,
        )
    )
    return rows


def format_fig3(rows: Sequence[Fig3Row]) -> str:
    """Render both Figure 3 panels as stacked-percentage tables."""
    lines = ["Figure 3 — reuse counts / reuse distances (fraction of bytes)"]
    lines.append("")
    lines.append("  (a) reuse counts")
    header = "  model " + "".join(
        f"{label:>10}" for label, _, _ in REUSE_COUNT_BUCKETS
    )
    lines.append(header)
    for row in rows:
        cells = "".join(
            f"{row.count_fractions[label]:>10.1%}"
            for label, _, _ in REUSE_COUNT_BUCKETS
        )
        lines.append(f"  {row.model:<6}" + cells)
    lines.append("")
    lines.append("  (b) reuse distances of intermediate data")
    header = "  model " + "".join(
        f"{label:>12}" for label, _, _ in REUSE_DISTANCE_BUCKETS
    )
    lines.append(header)
    for row in rows:
        cells = "".join(
            f"{row.distance_fractions[label]:>12.1%}"
            for label, _, _ in REUSE_DISTANCE_BUCKETS
        )
        lines.append(f"  {row.model:<6}" + cells)
    return "\n".join(lines)
