"""Ablation studies for CaMDN's design choices.

The paper motivates several design decisions without dedicated figures;
these harnesses quantify them:

* **Way partition** (Section III-B1: "different proportions of partitioning
  can be adapted") — sweep the NPU/CPU way split and measure CaMDN's
  multi-tenant latency: more NPU ways mean more pages and more LBM, at the
  cost of CPU subspace capacity.
* **Usage-level granularity** (Section III-C: the CU list) — coarser
  candidate grids shrink mapping files but rob Algorithm 1 of fitting
  choices.
* **LBM occupancy budget** (Section III-C2: blocks exist "to prevent a
  model from occupying too much cache space for too long") — larger budgets
  make longer blocks (more intermediate traffic saved) but hog pages.
* **Multicast** (Section III-B2) — with multi-core tenants, disabling
  request combining replicates weight traffic per core.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..config import CacheConfig, SoCConfig
from ..models.zoo import BENCHMARK_MODELS, build_model
from ..schedulers.camdn_full import CaMDNFullScheduler
from ..sim.workload import WorkloadSpec
from .common import ExperimentScale, run_scenario

#: 16-tenant workload used by all ablations.
_WORKLOAD = tuple(BENCHMARK_MODELS) * 2


@dataclass(frozen=True)
class AblationRow:
    """One configuration point of an ablation sweep."""

    knob: str
    value: str
    avg_latency_ms: float
    avg_dram_mb: float
    lbm_layers: int


def _run_camdn(soc: SoCConfig, scale: ExperimentScale,
               scheduler: CaMDNFullScheduler | None = None,
               model_keys: Sequence[str] = _WORKLOAD) -> Tuple[float, float,
                                                               int]:
    spec = WorkloadSpec(
        model_keys=list(model_keys),
        duration_s=scale.duration_s,
        warmup_s=scale.warmup_s,
    ).to_scenario()
    result = run_scenario(spec, soc, scheduler or CaMDNFullScheduler())
    return (
        result.metrics.macro_avg_latency_s() * 1e3,
        result.metrics.macro_avg_dram_bytes() / 1e6,
        int(result.scheduler_stats.get("lbm_layers", 0)),
    )


def run_way_partition_ablation(
    npu_way_options: Sequence[int] = (4, 8, 12, 16),
    scale: float = 0.5,
) -> List[AblationRow]:
    """Sweep the way mask's NPU share (Table II default: 12 of 16)."""
    rows: List[AblationRow] = []
    experiment_scale = ExperimentScale(scale=scale)
    for npu_ways in npu_way_options:
        base = SoCConfig()
        soc = SoCConfig(
            npu=base.npu,
            num_npu_cores=base.num_npu_cores,
            cache=CacheConfig(npu_ways=npu_ways),
            dram=base.dram,
            dtype_bytes=base.dtype_bytes,
        )
        latency, dram, lbm = _run_camdn(soc, experiment_scale)
        rows.append(
            AblationRow(
                knob="npu_ways",
                value=f"{npu_ways}/16",
                avg_latency_ms=latency,
                avg_dram_mb=dram,
                lbm_layers=lbm,
            )
        )
    return rows


def run_usage_level_ablation(
    granularities: Sequence[int] = (1, 2, 4),
    scale: float = 0.5,
) -> List[AblationRow]:
    """Coarsen the CU list by keeping every ``g``-th level."""
    rows: List[AblationRow] = []
    experiment_scale = ExperimentScale(scale=scale)
    soc = SoCConfig()
    from ..core.mapper.layer_mapper import usage_levels_for

    full_levels = usage_levels_for(soc)
    for granularity in granularities:
        levels = (0,) + tuple(full_levels[1:][::granularity])
        scheduler = CaMDNFullScheduler(usage_levels=levels)
        latency, dram, lbm = _run_camdn(
            soc, experiment_scale, scheduler=scheduler
        )
        rows.append(
            AblationRow(
                knob="usage_levels",
                value=f"every {granularity} ({len(levels)} levels)",
                avg_latency_ms=latency,
                avg_dram_mb=dram,
                lbm_layers=lbm,
            )
        )
    return rows


def run_lbm_budget_ablation(
    fractions: Sequence[float] = (0.05, 0.25, 0.5),
    scale: float = 0.5,
) -> List[AblationRow]:
    """Sweep the LBM occupancy budget (fraction of the NPU subspace)."""
    rows: List[AblationRow] = []
    experiment_scale = ExperimentScale(scale=scale)
    soc = SoCConfig()
    for fraction in fractions:
        scheduler = CaMDNFullScheduler(lbm_occupancy_fraction=fraction)
        latency, dram, lbm = _run_camdn(
            soc, experiment_scale, scheduler=scheduler
        )
        rows.append(
            AblationRow(
                knob="lbm_budget",
                value=f"{fraction:.0%} of NPU subspace",
                avg_latency_ms=latency,
                avg_dram_mb=dram,
                lbm_layers=lbm,
            )
        )
    return rows


def multicast_traffic_savings(num_cores: int = 2) -> dict:
    """Static ablation: per-model weight-traffic multiplier with and
    without multicast when a model spans ``num_cores`` NPUs.

    Returns per-model replicated vs combined DRAM bytes for one inference's
    weight stream (the NEC's multicast eliminates the per-core copies).
    """
    from ..schedulers.camdn_common import MULTICAST_TRAFFIC_OVERHEAD
    from ..schedulers.shared_baseline import CORE_TRAFFIC_REPLICATION

    savings = {}
    for key in BENCHMARK_MODELS:
        graph = build_model(key)
        weights = graph.total_weight_elems
        replicated = weights * (
            1.0 + CORE_TRAFFIC_REPLICATION * (num_cores - 1)
        )
        combined = weights * (
            1.0 + MULTICAST_TRAFFIC_OVERHEAD * (num_cores - 1)
        )
        savings[key] = {
            "replicated_mb": replicated / 1e6,
            "multicast_mb": combined / 1e6,
            "saved_fraction": 1.0 - combined / replicated,
        }
    return savings


def format_ablation(rows: Sequence[AblationRow], title: str) -> str:
    lines = [
        f"Ablation — {title}",
        f"  {'value':<28}{'latency ms':>12}{'DRAM MB':>10}"
        f"{'LBM layers':>12}",
    ]
    for row in rows:
        lines.append(
            f"  {row.value:<28}{row.avg_latency_ms:>12.2f}"
            f"{row.avg_dram_mb:>10.1f}{row.lbm_layers:>12}"
        )
    return "\n".join(lines)
