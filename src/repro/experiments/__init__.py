"""Experiment harnesses: one module per paper table/figure.

Each module exposes a ``run_*`` function returning structured rows plus a
``format_*`` helper that prints them the way the paper reports them.  The
:mod:`~repro.experiments.runner` CLI regenerates any experiment::

    python -m repro.experiments.runner fig2
    python -m repro.experiments.runner all --scale 0.5
"""

from .common import ExperimentScale, isolated_latencies
from .sweep import SweepCell, run_sweep
from .fig2_motivation import Fig2Row, format_fig2, run_fig2
from .fig3_reuse import Fig3Row, format_fig3, run_fig3
from .fig7_speedup import Fig7Row, format_fig7, run_fig7
from .fig8_scaling import Fig8Row, format_fig8, run_fig8
from .fig9_qos import Fig9Row, format_fig9, run_fig9
from .table3_area import format_table3, run_table3

__all__ = [
    "ExperimentScale",
    "isolated_latencies",
    "SweepCell",
    "run_sweep",
    "Fig2Row",
    "run_fig2",
    "format_fig2",
    "Fig3Row",
    "run_fig3",
    "format_fig3",
    "Fig7Row",
    "run_fig7",
    "format_fig7",
    "Fig8Row",
    "run_fig8",
    "format_fig8",
    "Fig9Row",
    "run_fig9",
    "format_fig9",
    "run_table3",
    "format_table3",
]
