"""Fault-injection resilience experiment (beyond the paper's figures).

The paper evaluates fault-free hardware; this harness measures how
gracefully each policy degrades when the SoC does not cooperate.  A
single steady four-tenant scenario (QoS-M deadlines) runs across all
five policies at increasing *fault intensity*: each intensity level maps
to one deterministic :class:`~repro.sim.faults.FaultSpec` composing a
DRAM-bandwidth degradation window, an ECC page-retirement storm, a
multi-core outage, and (at high intensity) a tenant stall — the same
fault kinds the chaos-fuzz tier drives randomly, here on a fixed grid so
policies are comparable point by point.

Intensity 0.0 is the fault-free control (an empty ``FaultSpec``, which
is byte-identical to no fault injection at all); 1.0 leaves one NPU core
online through the outage window, retires a quarter of the cache's
pages, and halves effective DRAM bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from ..sim.faults import (
    CORE_OFFLINE,
    DRAM_DEGRADE,
    PAGE_RETIRE,
    TENANT_STALL,
    FaultEvent,
    FaultSpec,
)
from ..sim.scenario import ScenarioSpec, get_scenario
from .sweep import SweepCell, run_sweep

#: Policies compared, in presentation order.
RESILIENCE_POLICIES: Tuple[str, ...] = (
    "baseline", "moca", "aurora", "camdn-hw", "camdn-full"
)

#: Registry scenario driving the comparison.
RESILIENCE_SCENARIO_NAME = "steady-quad"

#: Fault-intensity grid (0.0 = fault-free control).
INTENSITY_LEVELS: Tuple[float, ...] = (0.0, 0.25, 0.5, 1.0)


@dataclass(frozen=True)
class ResilienceRow:
    """One (policy, fault intensity) cell."""

    policy: str
    intensity: float
    inferences: int
    avg_latency_ms: float
    p99_latency_ms: float
    qos_violations: int
    cancelled_inferences: int
    pages_retired: int
    throughput_ratio: float  # completed vs the policy's fault-free run


def fault_schedule_for(intensity: float) -> FaultSpec:
    """The deterministic fault schedule at one intensity level.

    Fault instants sit inside the scenario's 0.4 s measurement window;
    magnitudes scale linearly with ``intensity``.
    """
    if intensity <= 0.0:
        return FaultSpec()
    events = [
        FaultEvent(kind=DRAM_DEGRADE, t_s=0.10, duration_s=0.12,
                   bw_factor=1.0 - 0.5 * intensity),
        FaultEvent(kind=PAGE_RETIRE, t_s=0.12,
                   pages=max(1, int(round(128 * intensity)))),
        FaultEvent(kind=CORE_OFFLINE, t_s=0.14, duration_s=0.08,
                   cores=max(1, int(round(15 * intensity)))),
    ]
    if intensity >= 0.75:
        events.append(
            FaultEvent(kind=TENANT_STALL, t_s=0.24, duration_s=0.06,
                       stream_index=0)
        )
    return FaultSpec(events=tuple(events))


def resilience_scenario(scale: float = 1.0) -> ScenarioSpec:
    """The steady scenario at the requested window scale, with QoS-M
    deadlines on every stream."""
    spec = get_scenario(RESILIENCE_SCENARIO_NAME).scaled(scale)
    return ScenarioSpec(
        streams=tuple(replace(s, qos_scale=1.0) for s in spec.streams),
        duration_s=spec.duration_s,
        warmup_s=spec.warmup_s,
    )


def run_resilience(
    scale: float = 1.0,
    policies: Sequence[str] = RESILIENCE_POLICIES,
    intensities: Sequence[float] = INTENSITY_LEVELS,
    jobs: Optional[int] = None,
    use_cache: bool = True,
) -> List[ResilienceRow]:
    """Run the (policy x intensity) grid; rows in grid order.

    The fault specs are built at scale 1.0 and handed to the sweep cells
    unscaled — :meth:`SweepCell.resolve_faults` scales fault instants
    alongside the scenario window, keeping every fault inside the
    (possibly shrunken) measurement window.
    """
    spec = resilience_scenario(1.0)
    cells = [
        SweepCell.from_scenario(
            policy, spec, qos_mode=True, scale=scale,
            faults=fault_schedule_for(intensity),
        )
        for intensity in intensities
        for policy in policies
    ]
    results = run_sweep(cells, max_workers=jobs, use_cache=use_cache)
    rows: List[ResilienceRow] = []
    baseline_completed = {}
    grid = [
        (intensity, policy)
        for intensity in intensities
        for policy in policies
    ]
    for (intensity, policy), result in zip(grid, results):
        if result is None:  # cell failed twice (see run_sweep)
            continue
        summary = result.summary()
        completed = result.completed_inferences
        if intensity == 0.0:
            baseline_completed[policy] = completed
        control = baseline_completed.get(policy, completed)
        rows.append(
            ResilienceRow(
                policy=policy,
                intensity=intensity,
                inferences=int(summary["inferences"]),
                avg_latency_ms=summary["avg_latency_ms"],
                p99_latency_ms=summary["p99_latency_ms"],
                qos_violations=int(summary["qos_violations"]),
                cancelled_inferences=int(
                    summary["cancelled_inferences"]
                ),
                pages_retired=int(
                    result.scheduler_stats.get("pages_retired", 0)
                ),
                throughput_ratio=(
                    completed / control if control else 0.0
                ),
            )
        )
    return rows


def format_resilience(rows: Sequence[ResilienceRow]) -> str:
    lines = [
        "Resilience — QoS degradation vs fault intensity "
        "(DRAM + cores + ECC pages + tenant stall, QoS-M deadlines)",
        f"  {'intensity':<10}{'policy':<12}{'inf':>5}{'avg ms':>8}"
        f"{'p99 ms':>8}{'QoS viol':>9}{'cancel':>7}{'pages':>6}"
        f"{'tput':>6}",
    ]
    last_intensity = None
    for row in rows:
        label = (
            f"{row.intensity:.2f}" if row.intensity != last_intensity
            else ""
        )
        last_intensity = row.intensity
        lines.append(
            f"  {label:<10}{row.policy:<12}{row.inferences:>5}"
            f"{row.avg_latency_ms:>8.2f}{row.p99_latency_ms:>8.2f}"
            f"{row.qos_violations:>9}{row.cancelled_inferences:>7}"
            f"{row.pages_retired:>6}{row.throughput_ratio:>6.2f}"
        )
    by_cell = {(r.policy, r.intensity): r for r in rows}
    full = by_cell.get(("camdn-full", 1.0))
    base = by_cell.get(("baseline", 1.0))
    if full and base:
        lines.append(
            f"  at intensity 1.0: camdn-full keeps "
            f"{full.throughput_ratio:.0%} of fault-free throughput "
            f"(baseline {base.throughput_ratio:.0%}), "
            f"{full.pages_retired} pages retired in service"
        )
    return "\n".join(lines)
