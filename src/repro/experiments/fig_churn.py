"""Dynamic-tenancy churn experiment (beyond the paper's figures).

The paper evaluates fixed tenant sets; this harness exercises the regime
its adaptive allocator is actually motivated by — tenants joining and
leaving without coordination.  The ``churn-eight`` registry scenario runs
four resident closed-loop tenants plus four churning tenants with
staggered ``join_s``/``leave_s`` lifecycles across all five policies,
measuring how each policy's latency, deadline compliance and cache
behaviour respond to mid-run departures (whose pages CaMDN reclaims and
re-grants to survivors) and admissions (which shrink everyone's share).

Deadlines use the paper's QoS-M level (``qos_scale=1.0``) so churn-driven
violations are visible.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from ..sim.scenario import ScenarioSpec, get_scenario
from .sweep import SweepCell, run_sweep

#: Policies compared, in presentation order.
CHURN_POLICIES: Tuple[str, ...] = (
    "baseline", "moca", "aurora", "camdn-hw", "camdn-full"
)

#: Registry scenario driving the comparison.
CHURN_SCENARIO_NAME = "churn-eight"


@dataclass(frozen=True)
class ChurnRow:
    """One policy's behaviour under the churn scenario."""

    policy: str
    inferences: int
    avg_latency_ms: float
    p99_latency_ms: float
    qos_violations: int
    avg_queue_delay_ms: float
    offered_load_ratio: float
    cancelled_inferences: int
    tenant_admits: int
    tenant_retires: int


def churn_scenario(scale: float = 1.0) -> ScenarioSpec:
    """The churn scenario at the requested window scale, with QoS-M
    deadlines on every stream."""
    spec = get_scenario(CHURN_SCENARIO_NAME).scaled(scale)
    return ScenarioSpec(
        streams=tuple(replace(s, qos_scale=1.0) for s in spec.streams),
        duration_s=spec.duration_s,
        warmup_s=spec.warmup_s,
    )


def run_churn(scale: float = 1.0,
              policies: Sequence[str] = CHURN_POLICIES,
              jobs: Optional[int] = None,
              use_cache: bool = True) -> List[ChurnRow]:
    """Run the churn scenario across policies (one sweep cell each)."""
    spec = churn_scenario(scale)
    cells = [
        SweepCell.from_scenario(policy, spec, qos_mode=True)
        for policy in policies
    ]
    results = run_sweep(cells, max_workers=jobs, use_cache=use_cache)
    rows: List[ChurnRow] = []
    for policy, result in zip(policies, results):
        summary = result.summary()
        rows.append(
            ChurnRow(
                policy=policy,
                inferences=int(summary["inferences"]),
                avg_latency_ms=summary["avg_latency_ms"],
                p99_latency_ms=summary["p99_latency_ms"],
                qos_violations=int(summary["qos_violations"]),
                avg_queue_delay_ms=summary["avg_queue_delay_ms"],
                offered_load_ratio=summary["offered_load_ratio"],
                cancelled_inferences=int(
                    summary["cancelled_inferences"]
                ),
                tenant_admits=int(
                    result.scheduler_stats.get("tenant_admits", 0)
                ),
                tenant_retires=int(
                    result.scheduler_stats.get("tenant_retires", 0)
                ),
            )
        )
    return rows


def format_churn(rows: Sequence[ChurnRow]) -> str:
    lines = [
        "Churn — dynamic tenancy (4 resident + 4 churning tenants, "
        "QoS-M deadlines)",
        f"  {'policy':<12}{'inf':>5}{'avg ms':>8}{'p99 ms':>8}"
        f"{'QoS viol':>9}{'queue ms':>9}{'load':>6}{'cancel':>7}"
        f"{'adm/ret':>8}",
    ]
    for row in rows:
        lines.append(
            f"  {row.policy:<12}{row.inferences:>5}"
            f"{row.avg_latency_ms:>8.2f}{row.p99_latency_ms:>8.2f}"
            f"{row.qos_violations:>9}{row.avg_queue_delay_ms:>9.3f}"
            f"{row.offered_load_ratio:>6.2f}"
            f"{row.cancelled_inferences:>7}"
            f"{row.tenant_admits:>4}/{row.tenant_retires:<3}"
        )
    if rows:
        by_policy = {r.policy: r for r in rows}
        full = by_policy.get("camdn-full")
        base = by_policy.get("baseline")
        if full and base and full.avg_latency_ms > 0:
            lines.append(
                f"  camdn-full vs baseline under churn: "
                f"{base.avg_latency_ms / full.avg_latency_ms:.2f}x avg "
                f"latency, {base.qos_violations} -> "
                f"{full.qos_violations} QoS violations"
            )
    return "\n".join(lines)
