"""CPU co-run study (the paper's stated future work).

The conclusion names "scheduling methods that take both multi-tenant DNNs
and general-purpose programs into consideration" as future work.  This
harness provides the substrate for that study: synthetic CPU programs run
against the *functional* sliced cache's general-purpose subspace (the ways
the way mask leaves to the CPU), while the way split simultaneously sets
how many pages the NPU subspace offers CaMDN.

Sweeping the way partition therefore exposes the co-design tradeoff:

* more NPU ways -> more CaMDN pages -> lower DNN latency,
* fewer CPU ways -> smaller general-purpose subspace -> lower CPU hit
  rate for cache-friendly CPU programs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence

from ..cache.sliced_cache import SlicedSharedCache
from ..config import CacheConfig, SoCConfig
from ..memory.dram import MainMemory
from ..models.zoo import BENCHMARK_MODELS
from ..schedulers.camdn_full import CaMDNFullScheduler
from ..sim.engine import MultiTenantEngine
from ..sim.workload import ClosedLoopWorkload, WorkloadSpec
from .common import ExperimentScale


@dataclass(frozen=True)
class CPUProgram:
    """A synthetic CPU tenant: a working set walked with some locality.

    Attributes:
        name: program label.
        working_set_bytes: resident set the program cycles through.
        locality: probability that an access re-touches a recent line
            rather than striding onward (higher = cache-friendlier).
    """

    name: str
    working_set_bytes: int
    locality: float

    def __post_init__(self) -> None:
        if self.working_set_bytes <= 0:
            raise ValueError("working set must be positive")
        if not 0.0 <= self.locality <= 1.0:
            raise ValueError("locality must be in [0, 1]")


#: A small mix of cache-friendly and streaming CPU programs.
DEFAULT_CPU_MIX = (
    CPUProgram("pointer-chase", working_set_bytes=512 * 1024,
               locality=0.9),
    CPUProgram("stream-copy", working_set_bytes=16 * 1024 * 1024,
               locality=0.05),
    CPUProgram("kernel-build", working_set_bytes=2 * 1024 * 1024,
               locality=0.6),
)


def run_cpu_program(
    cache: SlicedSharedCache,
    program: CPUProgram,
    num_accesses: int,
    seed: int = 7,
    base_address: int = 0,
) -> float:
    """Drive one CPU program through the general-purpose subspace.

    Returns the program's hit rate over ``num_accesses`` accesses.
    """
    rng = random.Random(seed)
    line = cache.config.line_bytes
    lines_in_set = max(program.working_set_bytes // line, 1)
    recent: List[int] = []
    hits = 0
    cursor = 0
    for _ in range(num_accesses):
        if recent and rng.random() < program.locality:
            addr = rng.choice(recent)
        else:
            cursor = (cursor + 1) % lines_in_set
            addr = base_address + cursor * line
        if cache.cpu_access(addr, write=rng.random() < 0.3):
            hits += 1
        recent.append(addr)
        if len(recent) > 64:
            recent.pop(0)
    return hits / num_accesses


@dataclass(frozen=True)
class CoRunRow:
    """One way-partition point of the co-run study."""

    npu_ways: int
    cpu_ways: int
    dnn_latency_ms: float
    cpu_hit_rates: dict


def run_cpu_corun_study(
    npu_way_options: Sequence[int] = (8, 12, 14),
    cpu_programs: Sequence[CPUProgram] = DEFAULT_CPU_MIX,
    accesses_per_program: int = 20_000,
    scale: float = 0.3,
) -> List[CoRunRow]:
    """Sweep the way split; measure both sides of the tradeoff.

    The DNN side runs the 16-tenant CaMDN(Full) workload on the fluid
    simulator; the CPU side replays the synthetic programs against the
    functional cache with the same way mask.
    """
    rows: List[CoRunRow] = []
    experiment_scale = ExperimentScale(scale=scale)
    for npu_ways in npu_way_options:
        base = SoCConfig()
        soc = SoCConfig(
            npu=base.npu,
            num_npu_cores=base.num_npu_cores,
            cache=CacheConfig(npu_ways=npu_ways),
            dram=base.dram,
            dtype_bytes=base.dtype_bytes,
        )
        spec = WorkloadSpec(
            model_keys=list(BENCHMARK_MODELS) * 2,
            duration_s=experiment_scale.duration_s,
            warmup_s=experiment_scale.warmup_s,
        )
        result = MultiTenantEngine(
            soc, CaMDNFullScheduler(), ClosedLoopWorkload(spec)
        ).run()

        cache = SlicedSharedCache(soc.cache, MainMemory())
        hit_rates = {}
        for i, program in enumerate(cpu_programs):
            hit_rates[program.name] = run_cpu_program(
                cache, program, accesses_per_program,
                base_address=i * (1 << 30),
            )
        rows.append(
            CoRunRow(
                npu_ways=npu_ways,
                cpu_ways=soc.cache.num_ways - npu_ways,
                dnn_latency_ms=result.metrics.macro_avg_latency_s() * 1e3,
                cpu_hit_rates=hit_rates,
            )
        )
    return rows


def format_corun(rows: Sequence[CoRunRow]) -> str:
    if not rows:
        return "(no co-run rows)"
    programs = list(rows[0].cpu_hit_rates)
    header = f"  {'ways (NPU/CPU)':<16}{'DNN ms':>8}" + "".join(
        f"{name:>16}" for name in programs
    )
    lines = ["CPU co-run study — way-partition tradeoff", header]
    for row in rows:
        cells = "".join(
            f"{row.cpu_hit_rates[name]:>16.1%}" for name in programs
        )
        lines.append(
            f"  {f'{row.npu_ways}/{row.cpu_ways}':<16}"
            f"{row.dnn_latency_ms:>8.2f}" + cells
        )
    return "\n".join(lines)
