"""Fleet capacity planning: at what offered load does QoS collapse?

The ROADMAP north star is population scale — CaMDN's value shows up in
the *tail* of a device fleet, not in one SoC's average.  This harness
walks a (fleet size x arrival-rate) grid of seeded Poisson fleets under
QoS-M deadlines and reports population percentiles per point, then
locates the knee: the lowest arrival scale whose fleet-wide
QoS-violation rate crosses the collapse threshold.  That is the
capacity-planning question an operator actually asks ("how much load
can this SoC class absorb before p99 users start missing deadlines"),
answered with the same journaled, cached, deterministic machinery as
every other experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from ..fleet.aggregate import FleetAccumulator
from ..fleet.spec import FleetSpec, ScenarioDraw
from .sweep import run_sweep

#: Registered scenario whose open-loop load the grid scales.
FLEET_SCENARIO_NAME = "poisson-eight"

#: Policy under test (fleet studies run one fleet per policy).
FLEET_POLICY = "camdn-full"

#: Device counts of the grid (population axis).
DEVICE_GRID: Tuple[int, ...] = (8, 16)

#: Offered-load multipliers of the grid (arrival-rate axis).
ARRIVAL_GRID: Tuple[float, ...] = (0.25, 0.5, 1.0, 1.5)

#: Fleet-wide QoS-violation rate past which the load point counts as
#: collapsed (one in five measured inferences missing its deadline).
COLLAPSE_THRESHOLD = 0.2

#: Per-stream latency-target multiplier applied fleet-wide (QoS-M).
FLEET_QOS_SCALE = 1.0


@dataclass(frozen=True)
class FleetCapacityRow:
    """One (devices, arrival scale) point of the capacity grid."""

    devices: int
    arrival_scale: float
    inferences: int
    qos_violation_rate: float
    latency_p50_ms: float
    latency_p95_ms: float
    latency_p99_ms: float
    queue_delay_p99_ms: float
    collapsed: bool


def capacity_fleet(devices: int, arrival_scale: float,
                   scale: float = 1.0,
                   policy: str = FLEET_POLICY) -> FleetSpec:
    """The fleet at one grid point (QoS-M deadlines on every device)."""
    return FleetSpec(
        devices=devices,
        policy=policy,
        scenario_draws=(
            ScenarioDraw(
                scenario=FLEET_SCENARIO_NAME,
                arrival_scale=arrival_scale,
            ),
        ),
        scale=scale,
        qos_mode=policy.startswith("camdn"),
        seed=2025,
    )


def _with_qos(spec, qos_scale: float):
    """The scenario spec with QoS deadlines on every stream."""
    return replace(
        spec,
        streams=tuple(
            replace(s, qos_scale=qos_scale) for s in spec.streams
        ),
    )


def run_fleet_capacity(
    scale: float = 1.0,
    devices_grid: Sequence[int] = DEVICE_GRID,
    arrival_grid: Sequence[float] = ARRIVAL_GRID,
    jobs: Optional[int] = None,
    use_cache: bool = True,
    policy: str = FLEET_POLICY,
) -> List[FleetCapacityRow]:
    """Run the capacity grid; rows in (devices, arrival scale) order.

    Every grid point expands its fleet to cells up front and the whole
    grid runs as **one** sweep, so the process pool is shared across
    points and cache hits skip straight to aggregation.  Aggregation
    folds per-device summaries in canonical cell order — the grid is
    deterministic under any ``jobs``.
    """
    grid = [
        (devices, arrival_scale)
        for devices in devices_grid
        for arrival_scale in arrival_grid
    ]
    point_cells = []
    for devices, arrival_scale in grid:
        spec = capacity_fleet(devices, arrival_scale, scale=scale,
                              policy=policy)
        cells = spec.expand()
        cells = [
            replace(c, scenario=_with_qos(c.scenario, FLEET_QOS_SCALE))
            for c in cells
        ]
        point_cells.append(cells)
    flat = [cell for cells in point_cells for cell in cells]
    results = run_sweep(flat, max_workers=jobs, use_cache=use_cache,
                        shard_size=8)

    rows: List[FleetCapacityRow] = []
    offset = 0
    for (devices, arrival_scale), cells in zip(grid, point_cells):
        accumulator = FleetAccumulator()
        accumulator.fold_results(results[offset:offset + len(cells)])
        offset += len(cells)
        summary = accumulator.fleet_summary()
        latency = summary["latency_ms"] or {}
        queue = summary["queue_delay_ms"] or {}
        rate = summary["qos_violation_rate"]
        rows.append(FleetCapacityRow(
            devices=devices,
            arrival_scale=arrival_scale,
            inferences=summary["inferences"],
            qos_violation_rate=rate,
            latency_p50_ms=latency.get("p50", 0.0),
            latency_p95_ms=latency.get("p95", 0.0),
            latency_p99_ms=latency.get("p99", 0.0),
            queue_delay_p99_ms=queue.get("p99", 0.0),
            collapsed=rate > COLLAPSE_THRESHOLD,
        ))
    return rows


def collapse_point(rows: Sequence[FleetCapacityRow],
                   devices: int) -> Optional[float]:
    """The lowest collapsed arrival scale for one fleet size."""
    scales = sorted(
        row.arrival_scale for row in rows
        if row.devices == devices and row.collapsed
    )
    return scales[0] if scales else None


def format_fleet_capacity(rows: Sequence[FleetCapacityRow]) -> str:
    lines = [
        f"Fleet capacity — population percentiles vs offered load "
        f"({FLEET_POLICY} on {FLEET_SCENARIO_NAME}, QoS-M)",
        f"  {'devices':<9}{'load':>6}{'inf':>7}{'p50 ms':>8}"
        f"{'p95 ms':>8}{'p99 ms':>8}{'q99 ms':>8}{'QoS viol':>10}",
    ]
    last_devices = None
    for row in rows:
        label = (
            f"{row.devices}" if row.devices != last_devices else ""
        )
        last_devices = row.devices
        flag = "  <-- collapse" if row.collapsed else ""
        lines.append(
            f"  {label:<9}{row.arrival_scale:>6.2f}"
            f"{row.inferences:>7}{row.latency_p50_ms:>8.2f}"
            f"{row.latency_p95_ms:>8.2f}{row.latency_p99_ms:>8.2f}"
            f"{row.queue_delay_p99_ms:>8.2f}"
            f"{row.qos_violation_rate:>10.1%}{flag}"
        )
    for devices in dict.fromkeys(row.devices for row in rows):
        knee = collapse_point(rows, devices)
        lines.append(
            f"  {devices}-device fleet: "
            + (
                f"QoS collapses at {knee:.2f}x offered load"
                if knee is not None
                else "no collapse inside the grid"
            )
        )
    return "\n".join(lines)
