"""Table III: area breakdown of the CaMDN architecture (45 nm)."""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..config import SoCConfig
from ..core.area import area_breakdown_table

#: Paper Table III reference values: component -> (area um^2, percent).
PAPER_TABLE3: Dict[str, Tuple[float, float]] = {
    "Scratchpad": (6302e3, 79.7),
    "PE Array": (1302e3, 16.5),
    "CPT": (73e3, 0.9),
    "Data Array": (21878e3, 88.7),
    "Tag Array": (2398e3, 9.7),
    "NEC": (66e3, 0.3),
}


def run_table3(soc: SoCConfig | None = None
               ) -> Dict[str, List[Tuple[str, float, float]]]:
    """Regenerate the Table III breakdown for ``soc`` (default Table II)."""
    return area_breakdown_table(soc)


def format_table3(
    breakdown: Dict[str, List[Tuple[str, float, float]]]
) -> str:
    lines = ["Table III — area breakdown (45 nm analytic model)"]
    for side, rows in breakdown.items():
        lines.append(f"  {side}")
        for name, area, pct in rows:
            ref = PAPER_TABLE3.get(name)
            ref_text = (
                f"   (paper {ref[0] / 1e3:.0f}k / {ref[1]:.1f}%)"
                if ref else ""
            )
            lines.append(
                f"    {name:<18}{area / 1e3:>9.0f}k um^2 {pct:>6.1f}%"
                f"{ref_text}"
            )
    return "\n".join(lines)
