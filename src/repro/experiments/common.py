"""Shared experiment plumbing: scaling knobs and isolated-latency probes."""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..config import SoCConfig
from ..core.prepared import prepare_workload
from ..schedulers import make_scheduler
from ..sim.engine import MultiTenantEngine, SimulationResult
from ..sim.workload import ClosedLoopWorkload, WorkloadSpec


@dataclass(frozen=True)
class ExperimentScale:
    """Knob trading fidelity for wall-clock time.

    ``scale=1.0`` reproduces the full measurement windows; smaller values
    shrink the simulated steady-state window proportionally (benchmarks use
    ~0.25 so pytest-benchmark iterations stay cheap).
    """

    scale: float = 1.0

    def __post_init__(self) -> None:
        if not 0 < self.scale <= 4.0:
            raise ValueError("scale must be in (0, 4]")

    @property
    def duration_s(self) -> float:
        """Steady-state window length."""
        return 0.4 * self.scale

    @property
    def warmup_s(self) -> float:
        return 0.08 * self.scale


def run_policy(
    soc: SoCConfig,
    policy_name: str,
    model_keys: Sequence[str],
    scale: ExperimentScale,
    qos_scale: float = float("inf"),
    qos_mode: bool = False,
    legacy_loop: Optional[bool] = None,
) -> SimulationResult:
    """Simulate one (policy, workload) cell.

    ``legacy_loop`` selects the engine's pre-kernel scan loop (the
    equivalence oracle used by tests and ``bench_engine.py``); the
    default (``None``) follows the ``REPRO_LEGACY_ENGINE`` environment
    variable.
    """
    kwargs = {}
    if qos_mode and policy_name.startswith("camdn"):
        kwargs["qos_mode"] = True
    prepare_workload(policy_name, model_keys, soc)
    scheduler = make_scheduler(policy_name, **kwargs)
    spec = WorkloadSpec(
        model_keys=list(model_keys),
        duration_s=scale.duration_s,
        warmup_s=scale.warmup_s,
        qos_scale=qos_scale,
    )
    workload = ClosedLoopWorkload(spec)
    return MultiTenantEngine(soc, scheduler, workload,
                             legacy_loop=legacy_loop).run()


@functools.lru_cache(maxsize=None)
def _isolated_latency(model_key: str, cache_bytes: int,
                      policy_name: str) -> float:
    """Single-tenant latency of one model (memoized)."""
    soc = SoCConfig().with_cache_bytes(cache_bytes)
    result = run_policy(
        soc, policy_name, (model_key,), ExperimentScale(scale=0.5)
    )
    return result.metrics.macro_avg_latency_s()


def isolated_latencies(model_keys: Sequence[str],
                       soc: SoCConfig,
                       policy_name: str = "baseline"
                       ) -> Dict[str, float]:
    """Per-model single-tenant latency (``T_isolated`` for STP/fairness)."""
    return {
        key: _isolated_latency(key, soc.cache.total_bytes, policy_name)
        for key in dict.fromkeys(model_keys)
    }
