"""Shared experiment plumbing: the unified ``run_scenario`` pipeline,
scaling knobs and isolated-latency probes.

Every experiment harness — the fig2/7/8/9 sweeps, the ablations, the
churn harness, benchmarks and the ``simulate()`` convenience API — funnels
through :func:`run_scenario`: one place that prepares the workload
bundle, builds the scheduler and drives the engine over a declarative
:class:`~repro.sim.scenario.ScenarioSpec`.
"""

from __future__ import annotations

import functools
import warnings
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Union

from ..config import SoCConfig
from ..core.prepared import prepare_workload
from ..errors import WorkloadError
from ..runconfig import RUN_CONFIG_KEYS, RunConfig
from ..schedulers import make_scheduler
from ..schedulers.base import SchedulerPolicy
from ..sim.engine import MultiTenantEngine, SimulationResult
from ..sim.faults import get_fault_schedule
from ..sim.scenario import ScenarioSpec, get_scenario
from ..sim.trace import EventTraceRecorder
from ..sim.workload import ScenarioWorkload, WorkloadSpec


@dataclass(frozen=True)
class ExperimentScale:
    """Knob trading fidelity for wall-clock time.

    ``scale=1.0`` reproduces the full measurement windows; smaller values
    shrink the simulated steady-state window proportionally (benchmarks use
    ~0.25 so pytest-benchmark iterations stay cheap).

    Attributes:
        scale: window multiplier, in (0, 4].
        base_duration_s: full-scale window end.
        base_warmup_s: full-scale measurement start; must precede the
            window end or the measurement window would be silently empty
            (rejected with :class:`~repro.errors.WorkloadError`).
    """

    scale: float = 1.0
    base_duration_s: float = 0.4
    base_warmup_s: float = 0.08

    def __post_init__(self) -> None:
        if not 0 < self.scale <= 4.0:
            raise ValueError("scale must be in (0, 4]")
        if self.base_duration_s <= 0:
            raise WorkloadError("duration must be positive")
        if not 0 <= self.base_warmup_s < self.base_duration_s:
            raise WorkloadError(
                f"warmup_s ({self.warmup_s}) must precede duration_s "
                f"({self.duration_s}); the measurement window would be "
                f"empty"
            )

    @property
    def duration_s(self) -> float:
        """Steady-state window length."""
        return self.base_duration_s * self.scale

    @property
    def warmup_s(self) -> float:
        return self.base_warmup_s * self.scale


def _lower_legacy_kwargs(kwargs: dict) -> Optional[RunConfig]:
    """The deprecation shim: pop the old ``run_scenario`` run-control
    keywords out of ``kwargs`` (leaving only policy kwargs) and lower
    them into a :class:`~repro.runconfig.RunConfig`.

    Returns ``None`` when no legacy keyword was passed.
    """
    legacy = {k: kwargs.pop(k) for k in RUN_CONFIG_KEYS & kwargs.keys()}
    if not legacy:
        return None
    warnings.warn(
        f"passing {sorted(legacy)} to run_scenario() as keyword "
        f"arguments is deprecated; pass "
        f"config=RunConfig({', '.join(sorted(legacy))}) instead",
        DeprecationWarning,
        stacklevel=3,
    )
    return RunConfig(**legacy)


def run_scenario(
    spec: Union[ScenarioSpec, str],
    soc: Optional[SoCConfig] = None,
    policy: Union[str, SchedulerPolicy] = "baseline",
    *,
    config: Optional[RunConfig] = None,
    **policy_kwargs,
) -> SimulationResult:
    """Simulate one scenario under one policy (the single entry point).

    Args:
        spec: a :class:`~repro.sim.scenario.ScenarioSpec`, or the name of
            a registered scenario.
        soc: hardware configuration (defaults to paper Table II).
        policy: scheduler name (``"baseline"``, ``"moca"``, ``"aurora"``,
            ``"camdn-hw"``, ``"camdn-full"``) or a ready-built policy
            instance.
        config: run-control configuration (QoS integration, fault
            injection, trace capture, watchdog budgets, checkpointing,
            kernel backend); see :class:`~repro.runconfig.RunConfig`.
            Defaults to ``RunConfig()``.
        **policy_kwargs: forwarded to the scheduler constructor when
            ``policy`` is a name.

    The pre-``RunConfig`` keyword signature (``qos_mode=``, ``faults=``,
    ``capture_trace=``, ``max_wall_s=``, ...) keeps working through a
    shim that lowers the keywords into a :class:`RunConfig` and emits a
    :class:`DeprecationWarning`; both forms are byte-identical.

    Returns:
        The :class:`~repro.sim.engine.SimulationResult` with metrics.
    """
    legacy = _lower_legacy_kwargs(policy_kwargs)
    if legacy is not None:
        if config is not None:
            raise ValueError(
                "pass config=RunConfig(...) or the deprecated "
                "run-control keywords, not both"
            )
        config = legacy
    if config is None:
        config = RunConfig()
    if isinstance(spec, str):
        spec = get_scenario(spec)
    faults = config.faults
    if isinstance(faults, str):
        faults = get_fault_schedule(faults)
    soc = soc or SoCConfig()
    if isinstance(policy, SchedulerPolicy):
        if config.qos_mode or policy_kwargs:
            raise ValueError(
                "qos_mode / policy kwargs only apply when the policy is "
                "given by name; configure the instance directly instead"
            )
        scheduler = policy
        policy_name = policy.name
    else:
        policy_name = policy
        if config.qos_mode and policy_name.startswith("camdn") \
                and policy_name != "camdn-qos":
            # "camdn-qos" already pins qos_mode=True in the factory;
            # forwarding it again would be a duplicate keyword.
            policy_kwargs["qos_mode"] = True
        scheduler = make_scheduler(policy_name, **policy_kwargs)
    # Warm (or hit) the process-wide prepared-workload cache: repeated
    # runs over the same (policy, models, SoC) reuse solved mappings,
    # layer cycles and access segments instead of re-deriving them
    # inside the engine run.
    prepare_workload(policy_name, spec.model_keys, soc)
    recorder = EventTraceRecorder() if config.capture_trace else None
    workload = ScenarioWorkload(spec, recorder=recorder)
    engine = MultiTenantEngine(soc, scheduler, workload,
                               trace=config.trace,
                               kernel_backend=config.kernel_backend,
                               event_recorder=recorder,
                               faults=faults)
    result = engine.run(
        max_events=config.max_events,
        max_wall_s=config.max_wall_s,
        checkpoint_every_s=config.checkpoint_every_s,
        checkpoint_dir=config.checkpoint_dir,
        snapshot_at_events=config.snapshot_at_events,
    )
    if recorder is not None:
        result.event_trace = recorder.finish(spec, policy_name)
    return result


def run_policy(
    soc: SoCConfig,
    policy_name: str,
    model_keys: Sequence[str],
    scale: ExperimentScale,
    qos_scale: float = float("inf"),
    qos_mode: bool = False,
) -> SimulationResult:
    """Simulate one (policy, closed-loop workload) cell.

    Compatibility wrapper: lowers the legacy steady-state
    :class:`~repro.sim.workload.WorkloadSpec` shape to its scenario and
    routes through :func:`run_scenario`.
    """
    spec = WorkloadSpec(
        model_keys=list(model_keys),
        duration_s=scale.duration_s,
        warmup_s=scale.warmup_s,
        qos_scale=qos_scale,
    ).to_scenario()
    return run_scenario(spec, soc, policy_name,
                        config=RunConfig(qos_mode=qos_mode))


@functools.lru_cache(maxsize=None)
def _isolated_latency(model_key: str, cache_bytes: int,
                      policy_name: str) -> float:
    """Single-tenant latency of one model (memoized)."""
    soc = SoCConfig().with_cache_bytes(cache_bytes)
    result = run_policy(
        soc, policy_name, (model_key,), ExperimentScale(scale=0.5)
    )
    return result.metrics.macro_avg_latency_s()


def isolated_latencies(model_keys: Sequence[str],
                       soc: SoCConfig,
                       policy_name: str = "baseline"
                       ) -> Dict[str, float]:
    """Per-model single-tenant latency (``T_isolated`` for STP/fairness)."""
    return {
        key: _isolated_latency(key, soc.cache.total_bytes, policy_name)
        for key in dict.fromkeys(model_keys)
    }
