"""Figure 8: average latency and memory access at different scales.

Sweeps shared-cache capacity 4-64 MiB and co-located DNN count 1-16,
comparing the bandwidth-managed baseline (AuRORA as representative, per the
paper) against CaMDN(Full).  The paper reports 34.3-42.3 % latency and
16.0-37.7 % memory-access reductions, growing with tenant count and cache
capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..config import MiB
from .sweep import SweepCell, run_sweep

DNN_COUNTS: Tuple[int, ...] = (1, 2, 4, 8, 16)
CACHE_SIZES_MB: Tuple[int, ...] = (4, 8, 16, 32, 64)


@dataclass(frozen=True)
class Fig8Row:
    """One (cache size, tenant count) cell of the scaling comparison."""

    cache_mb: int
    num_dnns: int
    baseline_latency_ms: float
    camdn_latency_ms: float
    baseline_dram_mb: float
    camdn_dram_mb: float

    @property
    def latency_reduction(self) -> float:
        return 1.0 - self.camdn_latency_ms / self.baseline_latency_ms

    @property
    def dram_reduction(self) -> float:
        return 1.0 - self.camdn_dram_mb / self.baseline_dram_mb


def run_fig8(
    dnn_counts: Sequence[int] = DNN_COUNTS,
    cache_sizes_mb: Sequence[int] = CACHE_SIZES_MB,
    scale: float = 1.0,
    seed: int = 2025,
    jobs: Optional[int] = None,
    use_cache: bool = True,
) -> List[Fig8Row]:
    """Regenerate the Figure 8 scaling comparison."""
    grid = [
        (cache_mb, num_dnns)
        for cache_mb in cache_sizes_mb
        for num_dnns in dnn_counts
    ]
    cells = [
        SweepCell.random_mix(
            policy, num_dnns, seed=seed, scale=scale,
            cache_bytes=cache_mb * MiB,
        )
        for cache_mb, num_dnns in grid
        for policy in ("aurora", "camdn-full")
    ]
    results = run_sweep(cells, max_workers=jobs, use_cache=use_cache)
    rows: List[Fig8Row] = []
    for i, (cache_mb, num_dnns) in enumerate(grid):
        base, camdn = results[2 * i], results[2 * i + 1]
        rows.append(
            Fig8Row(
                cache_mb=cache_mb,
                num_dnns=num_dnns,
                baseline_latency_ms=(
                    base.metrics.macro_avg_latency_s() * 1e3
                ),
                camdn_latency_ms=(
                    camdn.metrics.macro_avg_latency_s() * 1e3
                ),
                baseline_dram_mb=(
                    base.metrics.macro_avg_dram_bytes() / 1e6
                ),
                camdn_dram_mb=(
                    camdn.metrics.macro_avg_dram_bytes() / 1e6
                ),
            )
        )
    return rows


def format_fig8(rows: Sequence[Fig8Row]) -> str:
    lines = [
        "Figure 8 — scaling: AuRORA vs CaMDN(Full)",
        f"  {'cache':>6}{'DNNs':>6}{'base ms':>9}{'CaMDN ms':>10}"
        f"{'lat red.':>10}{'base MB':>9}{'CaMDN MB':>10}{'mem red.':>10}",
    ]
    for row in rows:
        lines.append(
            f"  {row.cache_mb:>5}M{row.num_dnns:>6}"
            f"{row.baseline_latency_ms:>9.2f}{row.camdn_latency_ms:>10.2f}"
            f"{row.latency_reduction:>10.1%}"
            f"{row.baseline_dram_mb:>9.1f}{row.camdn_dram_mb:>10.1f}"
            f"{row.dram_reduction:>10.1%}"
        )
    if rows:
        multi = [r for r in rows if r.num_dnns > 1]
        lat = [r.latency_reduction for r in multi]
        mem = [r.dram_reduction for r in multi]
        lines.append(
            f"  multi-tenant reductions: latency "
            f"{min(lat):.1%}..{max(lat):.1%} "
            f"(paper 34.3%..42.3%), memory {min(mem):.1%}..{max(mem):.1%} "
            f"(paper 16.0%..37.7%)"
        )
    return "\n".join(lines)
