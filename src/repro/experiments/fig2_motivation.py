"""Figure 2: cache inefficiency with multi-tenant DNNs (motivation).

Random model mixes are dispatched on the NPU-integrated SoC with an
unmanaged transparent shared cache, sweeping the number of co-located DNNs
(1..32) and the shared-cache capacity (4..64 MiB).  The paper observes, at
32 DNNs: hit rate dropping 18.9-59.7 %, memory access growing 32.7-64.1 %
and average latency growing 3.46-5.65x versus single-tenant execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..config import MiB
from .sweep import SweepCell, run_sweep

#: Paper sweep axes.
DNN_COUNTS: Tuple[int, ...] = (1, 2, 4, 8, 16, 32)
CACHE_SIZES_MB: Tuple[int, ...] = (4, 8, 16, 32, 64)


@dataclass(frozen=True)
class Fig2Row:
    """One point of the Figure 2 sweep."""

    cache_mb: int
    num_dnns: int
    hit_rate: float
    dram_mb_per_model: float
    avg_latency_ms: float


def run_fig2(
    dnn_counts: Sequence[int] = DNN_COUNTS,
    cache_sizes_mb: Sequence[int] = CACHE_SIZES_MB,
    scale: float = 1.0,
    seed: int = 2025,
    jobs: Optional[int] = None,
    use_cache: bool = True,
) -> List[Fig2Row]:
    """Regenerate the Figure 2 sweep (transparent-cache baseline)."""
    grid = [
        (cache_mb, num_dnns)
        for cache_mb in cache_sizes_mb
        for num_dnns in dnn_counts
    ]
    cells = [
        SweepCell.random_mix(
            "baseline", num_dnns, seed=seed, scale=scale,
            cache_bytes=cache_mb * MiB,
        )
        for cache_mb, num_dnns in grid
    ]
    results = run_sweep(cells, max_workers=jobs, use_cache=use_cache)
    rows: List[Fig2Row] = []
    for (cache_mb, num_dnns), result in zip(grid, results):
        rows.append(
            Fig2Row(
                cache_mb=cache_mb,
                num_dnns=num_dnns,
                hit_rate=result.metrics.overall_hit_rate(),
                dram_mb_per_model=(
                    result.metrics.macro_avg_dram_bytes() / 1e6
                ),
                avg_latency_ms=(
                    result.metrics.macro_avg_latency_s() * 1e3
                ),
            )
        )
    return rows


def format_fig2(rows: Sequence[Fig2Row]) -> str:
    """Render the three Figure 2 panels as text tables."""
    lines = ["Figure 2 — transparent shared cache under multi-tenancy"]
    for metric, fmt in (
        ("hit_rate", "{:.3f}"),
        ("dram_mb_per_model", "{:.1f}"),
        ("avg_latency_ms", "{:.2f}"),
    ):
        lines.append("")
        lines.append(f"  panel: {metric}")
        caches = sorted({r.cache_mb for r in rows})
        counts = sorted({r.num_dnns for r in rows})
        header = "  cache\\N " + "".join(f"{n:>9}" for n in counts)
        lines.append(header)
        for cache_mb in caches:
            cells = []
            for n in counts:
                row = next(
                    r for r in rows
                    if r.cache_mb == cache_mb and r.num_dnns == n
                )
                cells.append(f"{fmt.format(getattr(row, metric)):>9}")
            lines.append(f"  {cache_mb:>5}MB " + "".join(cells))
    return "\n".join(lines)


def degradation_summary(rows: Sequence[Fig2Row]) -> dict:
    """Paper-quoted degradations at the largest tenant count."""
    counts = sorted({r.num_dnns for r in rows})
    lo, hi = counts[0], counts[-1]
    hit_drops = []
    access_growths = []
    latency_growths = []
    for cache_mb in sorted({r.cache_mb for r in rows}):
        first = next(r for r in rows
                     if r.cache_mb == cache_mb and r.num_dnns == lo)
        last = next(r for r in rows
                    if r.cache_mb == cache_mb and r.num_dnns == hi)
        if first.hit_rate > 0:
            hit_drops.append(1.0 - last.hit_rate / first.hit_rate)
        access_growths.append(
            last.dram_mb_per_model / first.dram_mb_per_model - 1.0
        )
        latency_growths.append(
            last.avg_latency_ms / first.avg_latency_ms
        )
    return {
        "hit_rate_drop_range": (min(hit_drops), max(hit_drops)),
        "memory_access_growth_range": (
            min(access_growths), max(access_growths)
        ),
        "latency_growth_range": (
            min(latency_growths), max(latency_growths)
        ),
    }
