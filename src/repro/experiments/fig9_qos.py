"""Figure 9: QoS comparison (SLA satisfaction, STP, fairness).

Following the paper (and AuRORA), three QoS levels scale the Table I
latency targets: QoS-H = 0.8x, QoS-M = 1.0x, QoS-L = 1.2x.  CaMDN runs
with AuRORA's bandwidth and NPU allocation on top of its cache scheduling
(``qos_mode=True``).  The paper reports average improvements of 5.9x SLA,
2.5x STP and 3.0x fairness over the baselines, with AuRORA showing lower
fairness than MoCA under the tightened targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import SoCConfig
from ..models.zoo import BENCHMARK_MODELS
from ..sim.qos import fairness, sla_rate, system_throughput
from .common import isolated_latencies
from .sweep import SweepCell, run_sweep

#: QoS levels: label -> latency-target multiplier.
QOS_LEVELS: Tuple[Tuple[str, float], ...] = (
    ("QoS-H", 0.8),
    ("QoS-M", 1.0),
    ("QoS-L", 1.2),
)

#: Policies compared in Figure 9.
QOS_POLICIES: Tuple[str, ...] = ("moca", "aurora", "camdn-full")

#: 16 streams over the benchmark suite (all NPUs occupied).
QOS_WORKLOAD = tuple(BENCHMARK_MODELS) * 2


@dataclass(frozen=True)
class Fig9Row:
    """One (policy, QoS level) cell."""

    policy: str
    qos_level: str
    qos_scale: float
    sla: float
    stp: float
    fairness: float


def run_fig9(scale: float = 1.0,
             model_keys: Sequence[str] = QOS_WORKLOAD,
             jobs: Optional[int] = None,
             use_cache: bool = True) -> List[Fig9Row]:
    """Regenerate the Figure 9 QoS comparison."""
    soc = SoCConfig()
    isolated = isolated_latencies(model_keys, soc)
    grid = [
        (policy, level, qos_scale)
        for policy in QOS_POLICIES
        for level, qos_scale in QOS_LEVELS
    ]
    cells = [
        SweepCell(
            policy=policy,
            model_keys=tuple(model_keys),
            qos_scale=qos_scale,
            qos_mode=True,
            scale=scale,
        )
        for policy, _, qos_scale in grid
    ]
    results = run_sweep(cells, soc=soc, max_workers=jobs,
                        use_cache=use_cache)
    rows: List[Fig9Row] = []
    for (policy, level, qos_scale), result in zip(grid, results):
        rows.append(
            Fig9Row(
                policy=policy,
                qos_level=level,
                qos_scale=qos_scale,
                sla=sla_rate(result.metrics),
                stp=system_throughput(result.metrics, isolated),
                fairness=fairness(result.metrics, isolated),
            )
        )
    return rows


def improvement_summary(rows: Sequence[Fig9Row]) -> Dict[str, float]:
    """Average CaMDN improvement over the better baseline per level."""
    ratios = {"sla": [], "stp": [], "fairness": []}
    for level, _ in QOS_LEVELS:
        camdn = next(r for r in rows
                     if r.policy == "camdn-full" and r.qos_level == level)
        baselines = [r for r in rows
                     if r.policy != "camdn-full" and r.qos_level == level]
        for metric in ratios:
            base = max(
                max(getattr(r, metric) for r in baselines), 1e-6
            )
            ratios[metric].append(getattr(camdn, metric) / base)
    return {
        metric: sum(values) / len(values)
        for metric, values in ratios.items()
    }


def format_fig9(rows: Sequence[Fig9Row]) -> str:
    lines = [
        "Figure 9 — QoS comparison (SLA / STP / fairness)",
        f"  {'policy':<12}{'level':<8}{'SLA':>8}{'STP':>8}{'fair':>8}",
    ]
    for row in rows:
        lines.append(
            f"  {row.policy:<12}{row.qos_level:<8}"
            f"{row.sla:>8.1%}{row.stp:>8.2f}{row.fairness:>8.3f}"
        )
    summary = improvement_summary(rows)
    lines.append(
        f"  CaMDN avg improvement vs best baseline: "
        f"SLA {summary['sla']:.2f}x (paper 5.9x), "
        f"STP {summary['stp']:.2f}x (paper 2.5x), "
        f"fairness {summary['fairness']:.2f}x (paper 3.0x)"
    )
    return "\n".join(lines)
