"""Figure 7: model-wise speedup of CaMDN over AuRORA.

All 16 NPUs are kept busy (16 co-located streams covering the 8 benchmark
models twice) and per-model average latencies are compared.  The paper
reports CaMDN(Full) at up to 2.56x (1.88x average) over AuRORA, and
CaMDN(Full) over CaMDN(HW-only) at 1.18x average, with the largest wins on
MobileNet-v2 and EfficientNet-b0 (intermediate-data-heavy models that LBM
serves entirely from cache).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..models.zoo import BENCHMARK_MODELS
from .sweep import SweepCell, run_sweep

#: 16 streams = each benchmark model twice (all NPUs busy, Section IV-A4).
SPEEDUP_WORKLOAD = tuple(BENCHMARK_MODELS) * 2

#: Policies compared in Figure 7, in presentation order.
SPEEDUP_POLICIES = ("aurora", "camdn-hw", "camdn-full")


@dataclass(frozen=True)
class Fig7Row:
    """Per-model speedups versus the AuRORA baseline."""

    model: str
    aurora_latency_ms: float
    hw_only_latency_ms: float
    full_latency_ms: float

    @property
    def hw_only_speedup(self) -> float:
        return self.aurora_latency_ms / self.hw_only_latency_ms

    @property
    def full_speedup(self) -> float:
        return self.aurora_latency_ms / self.full_latency_ms


def run_fig7(scale: float = 1.0,
             model_keys: Sequence[str] = SPEEDUP_WORKLOAD,
             jobs: Optional[int] = None,
             use_cache: bool = True) -> List[Fig7Row]:
    """Regenerate the Figure 7 model-wise speedup comparison."""
    cells = [
        SweepCell(policy=policy, model_keys=tuple(model_keys), scale=scale)
        for policy in SPEEDUP_POLICIES
    ]
    results = run_sweep(cells, max_workers=jobs, use_cache=use_cache)
    summaries: Dict[str, Dict[str, float]] = {}
    for policy, result in zip(SPEEDUP_POLICIES, results):
        summaries[policy] = {
            abbr: s.avg_latency_s * 1e3
            for abbr, s in result.metrics.by_model().items()
        }
    rows: List[Fig7Row] = []
    for abbr in dict.fromkeys(model_keys):
        if not all(abbr in summaries[p] for p in summaries):
            continue
        rows.append(
            Fig7Row(
                model=abbr,
                aurora_latency_ms=summaries["aurora"][abbr],
                hw_only_latency_ms=summaries["camdn-hw"][abbr],
                full_latency_ms=summaries["camdn-full"][abbr],
            )
        )
    return rows


def format_fig7(rows: Sequence[Fig7Row]) -> str:
    lines = [
        "Figure 7 — model-wise speedup over AuRORA (16 NPUs all busy)",
        f"  {'model':<6}{'AuRORA ms':>11}{'HW-only ms':>12}"
        f"{'Full ms':>10}{'HW-only x':>11}{'Full x':>8}",
    ]
    for row in rows:
        lines.append(
            f"  {row.model:<6}{row.aurora_latency_ms:>11.2f}"
            f"{row.hw_only_latency_ms:>12.2f}"
            f"{row.full_latency_ms:>10.2f}"
            f"{row.hw_only_speedup:>11.2f}{row.full_speedup:>8.2f}"
        )
    if rows:
        avg_hw = sum(r.hw_only_speedup for r in rows) / len(rows)
        avg_full = sum(r.full_speedup for r in rows) / len(rows)
        max_full = max(r.full_speedup for r in rows)
        lines.append(
            f"  {'Avg.':<6}{'':>11}{'':>12}{'':>10}"
            f"{avg_hw:>11.2f}{avg_full:>8.2f}"
        )
        lines.append(
            f"  paper: Full up to 2.56x, avg 1.88x | "
            f"measured: up to {max_full:.2f}x, avg {avg_full:.2f}x"
        )
    return "\n".join(lines)
