"""Experiment runner CLI.

Usage::

    python -m repro.experiments.runner fig2 [--scale 0.5] [--jobs 4]
    python -m repro.experiments.runner all

``--jobs`` fans the experiment's independent simulation cells out over a
process pool (see :mod:`repro.experiments.sweep`); the default picks one
worker per CPU.  Experiments without a cell grid (fig3, table3) ignore it.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, Optional

from .fig2_motivation import format_fig2, run_fig2
from .fig3_reuse import format_fig3, run_fig3
from .fig7_speedup import format_fig7, run_fig7
from .fig8_scaling import format_fig8, run_fig8
from .fig9_qos import format_fig9, run_fig9
from .table3_area import format_table3, run_table3


def _fig2(scale: float, jobs: Optional[int]) -> str:
    return format_fig2(run_fig2(scale=scale, jobs=jobs))


def _fig3(scale: float, jobs: Optional[int]) -> str:
    return format_fig3(run_fig3())


def _fig7(scale: float, jobs: Optional[int]) -> str:
    return format_fig7(run_fig7(scale=scale, jobs=jobs))


def _fig8(scale: float, jobs: Optional[int]) -> str:
    return format_fig8(run_fig8(scale=scale, jobs=jobs))


def _fig9(scale: float, jobs: Optional[int]) -> str:
    return format_fig9(run_fig9(scale=scale, jobs=jobs))


def _table3(scale: float, jobs: Optional[int]) -> str:
    return format_table3(run_table3())


EXPERIMENTS: Dict[str, Callable[[float, Optional[int]], str]] = {
    "fig2": _fig2,
    "fig3": _fig3,
    "fig7": _fig7,
    "fig8": _fig8,
    "fig9": _fig9,
    "table3": _table3,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate CaMDN paper tables and figures."
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which experiment to run",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="measurement-window scale (smaller = faster, default 1.0)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for sweep cells (default: one per CPU)",
    )
    args = parser.parse_args(argv)

    names = sorted(EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    for name in names:
        start = time.time()
        print(EXPERIMENTS[name](args.scale, args.jobs))
        print(f"  [{name} regenerated in {time.time() - start:.1f}s]")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
