"""Experiment runner CLI.

Usage::

    python -m repro.experiments.runner fig2 [--scale 0.5]
    python -m repro.experiments.runner all
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict

from .fig2_motivation import format_fig2, run_fig2
from .fig3_reuse import format_fig3, run_fig3
from .fig7_speedup import format_fig7, run_fig7
from .fig8_scaling import format_fig8, run_fig8
from .fig9_qos import format_fig9, run_fig9
from .table3_area import format_table3, run_table3


def _fig2(scale: float) -> str:
    return format_fig2(run_fig2(scale=scale))


def _fig3(scale: float) -> str:
    return format_fig3(run_fig3())


def _fig7(scale: float) -> str:
    return format_fig7(run_fig7(scale=scale))


def _fig8(scale: float) -> str:
    return format_fig8(run_fig8(scale=scale))


def _fig9(scale: float) -> str:
    return format_fig9(run_fig9(scale=scale))


def _table3(scale: float) -> str:
    return format_table3(run_table3())


EXPERIMENTS: Dict[str, Callable[[float], str]] = {
    "fig2": _fig2,
    "fig3": _fig3,
    "fig7": _fig7,
    "fig8": _fig8,
    "fig9": _fig9,
    "table3": _table3,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate CaMDN paper tables and figures."
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which experiment to run",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="measurement-window scale (smaller = faster, default 1.0)",
    )
    args = parser.parse_args(argv)

    names = sorted(EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    for name in names:
        start = time.time()
        print(EXPERIMENTS[name](args.scale))
        print(f"  [{name} regenerated in {time.time() - start:.1f}s]")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
