"""Experiment runner CLI.

Usage::

    python -m repro.experiments.runner fig2 [--scale 0.5] [--jobs 4]
    python -m repro.experiments.runner all --no-cache

``--jobs`` fans the experiment's independent simulation cells out over a
process pool (see :mod:`repro.experiments.sweep`); the default picks one
worker per CPU.  Sweep cells are served from the persistent on-disk
result cache when an identical cell was simulated before; ``--no-cache``
forces fresh simulation (CI uses this so the engine is always
exercised).  Experiments without a cell grid (fig3, table3) ignore both
flags.

``--profile FILE`` wraps each experiment in :mod:`cProfile` and dumps
the stats to ``FILE`` (pstats format; load with
``python -m pstats FILE`` or ``snakeviz``), so the next hot-path hunt
starts from data instead of guesses.  Profiling forces ``--jobs 1`` and
``--no-cache`` — a process pool would scatter the samples across
workers, and cache hits would profile JSON loading instead of the
engine.

After each experiment the runner prints an engine-observability line:
cells simulated vs. served from cache, events processed, and the
events/sec throughput of the fresh simulations.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, Optional

from ..sim.scenario import scenario_registry
from .fig2_motivation import format_fig2, run_fig2
from .fig3_reuse import format_fig3, run_fig3
from .fig7_speedup import format_fig7, run_fig7
from .fig8_scaling import format_fig8, run_fig8
from .fig9_qos import format_fig9, run_fig9
from .fig_churn import format_churn, run_churn
from .sweep import last_sweep_stats, reset_sweep_stats
from .table3_area import format_table3, run_table3


def _fig2(scale: float, jobs: Optional[int], use_cache: bool) -> str:
    return format_fig2(run_fig2(scale=scale, jobs=jobs,
                                use_cache=use_cache))


def _fig3(scale: float, jobs: Optional[int], use_cache: bool) -> str:
    return format_fig3(run_fig3())


def _fig7(scale: float, jobs: Optional[int], use_cache: bool) -> str:
    return format_fig7(run_fig7(scale=scale, jobs=jobs,
                                use_cache=use_cache))


def _fig8(scale: float, jobs: Optional[int], use_cache: bool) -> str:
    return format_fig8(run_fig8(scale=scale, jobs=jobs,
                                use_cache=use_cache))


def _fig9(scale: float, jobs: Optional[int], use_cache: bool) -> str:
    return format_fig9(run_fig9(scale=scale, jobs=jobs,
                                use_cache=use_cache))


def _table3(scale: float, jobs: Optional[int], use_cache: bool) -> str:
    return format_table3(run_table3())


def _churn(scale: float, jobs: Optional[int], use_cache: bool) -> str:
    return format_churn(run_churn(scale=scale, jobs=jobs,
                                  use_cache=use_cache))


EXPERIMENTS: Dict[str, Callable[[float, Optional[int], bool], str]] = {
    "fig2": _fig2,
    "fig3": _fig3,
    "fig7": _fig7,
    "fig8": _fig8,
    "fig9": _fig9,
    "table3": _table3,
    "churn": _churn,
}


def format_scenario_list() -> str:
    """The named-scenario registry as a table."""
    lines = ["Registered scenarios (--list-scenarios):"]
    for name, (spec, description) in sorted(
        scenario_registry().items()
    ):
        window = (
            f"{spec.duration_s * 1e3:.0f} ms window"
            if spec.duration_s is not None else "count mode"
        )
        dynamics = "dynamic" if spec.has_dynamics else "static"
        lines.append(
            f"  {name:<16} {spec.num_streams:>2} streams  {window:<14} "
            f"{dynamics:<8} {description}"
        )
    return "\n".join(lines)


def _engine_stats_line() -> str:
    """Observability footer from the last sweep (empty if no sweep ran)."""
    stats = last_sweep_stats()
    if not stats or not stats.get("cells"):
        return ""
    line = (
        f"  [engine: {stats['cells']:.0f} cells "
        f"({stats['cached_cells']:.0f} cached), "
        f"{stats['events']:,.0f} events"
    )
    if stats["events_per_s"] > 0:
        line += f", {stats['events_per_s']:,.0f} events/s"
    return line + "]"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate CaMDN paper tables and figures."
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which experiment to run",
    )
    parser.add_argument(
        "--list-scenarios",
        action="store_true",
        help="print the named-scenario registry and exit",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="measurement-window scale (smaller = faster, default 1.0)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for sweep cells (default: one per CPU)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the persistent sweep-result cache (always simulate)",
    )
    parser.add_argument(
        "--profile",
        metavar="FILE",
        default=None,
        help="cProfile the experiment hot path and dump pstats to FILE "
             "(implies --jobs 1 and --no-cache)",
    )
    args = parser.parse_args(argv)

    if args.list_scenarios:
        print(format_scenario_list())
        return 0
    if args.experiment is None:
        parser.error("an experiment name (or --list-scenarios) is "
                     "required")

    profiler = None
    jobs = args.jobs
    use_cache = not args.no_cache
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        jobs = 1
        use_cache = False

    names = sorted(EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    for name in names:
        start = time.time()
        reset_sweep_stats()
        if profiler is not None:
            profiler.enable()
        output = EXPERIMENTS[name](args.scale, jobs, use_cache)
        if profiler is not None:
            profiler.disable()
        print(output)
        stats_line = _engine_stats_line()
        if stats_line:
            print(stats_line)
        print(f"  [{name} regenerated in {time.time() - start:.1f}s]")
        print()
    if profiler is not None:
        import pstats

        profiler.dump_stats(args.profile)
        top = pstats.Stats(profiler)
        top.sort_stats("cumulative")
        print(f"profile written to {args.profile} "
              f"(load with `python -m pstats {args.profile}`); top 10:")
        top.print_stats(10)
    return 0


if __name__ == "__main__":
    sys.exit(main())
