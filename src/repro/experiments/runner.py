"""Experiment runner CLI.

Usage::

    python -m repro.experiments.runner fig2 [--scale 0.5] [--jobs 4]
    python -m repro.experiments.runner all --no-cache
    python -m repro.experiments.runner --scenario poisson-eight \\
        --policy camdn-full --capture-trace run.trace.json
    python -m repro.experiments.runner --scenario steady-quad \\
        --faults degraded-soc --capture-trace faulted.trace.json
    python -m repro.experiments.runner --replay-trace run.trace.json
    python -m repro.experiments.runner --campaign run.journal \\
        --campaign-scenarios poisson-eight,churn-eight --deadline-s 120
    python -m repro.experiments.runner --resume run.journal
    python -m repro.experiments.runner --fleet fleet.json \\
        --campaign fleet.journal --jobs 8
    python -m repro.experiments.runner --resume fleet.journal
    python -m repro.experiments.runner fleet-capacity --scale 0.25

``--fleet FILE`` simulates a device population (see
:mod:`repro.fleet`): FILE is a JSON :class:`~repro.fleet.spec.FleetSpec`
that expands deterministically into per-device cells, runs them through
the sweep/campaign machinery, and prints one ``{"fleet": ...}`` JSON
line of population percentiles (p50/p95/p99 latency, QoS-violation
rate) — byte-identical under any ``--jobs`` and across resume cycles.
With ``--campaign JOURNAL`` the fleet is journaled and crash-safe;
``--resume JOURNAL`` detects the fleet sidecar automatically and picks
the population back up.

``--campaign FILE`` runs a scenario × policy cell grid under a
crash-safe write-ahead journal (see
:class:`~repro.experiments.sweep.CampaignJournal`): every cell start and
completion is fsync'd to the journal and each result commits atomically,
so a campaign killed at any instant — SIGKILL included — restarts with
``--resume FILE``, skipping completed cells and re-running in-flight
ones, and produces a result grid byte-identical to an uninterrupted run.
``--deadline-s`` arms a per-cell wall-clock watchdog (a hung cell is
killed and retried with jittered backoff).

The runner exits nonzero when any sweep or campaign cell fails after
retries; ``--keep-going`` restores the old always-zero behaviour for
pipelines that prefer to inspect the printed failure report instead.

``--jobs`` fans the experiment's independent simulation cells out over a
process pool (see :mod:`repro.experiments.sweep`); the default picks one
worker per CPU.  Sweep cells are served from the persistent on-disk
result cache when an identical cell was simulated before; ``--no-cache``
forces fresh simulation (CI uses this so the engine is always
exercised).  Experiments without a cell grid (fig3, table3) ignore both
flags.

``--scenario NAME --capture-trace FILE`` runs one registered scenario
under ``--policy`` (default ``camdn-full``) and writes the versioned,
content-hashed event trace (see :mod:`repro.sim.trace`); ``--faults
NAME`` injects a registered fault schedule (``--list-faults``) into
that run;
``--replay-trace FILE`` re-feeds a captured trace as a scenario —
under the same policy and SoC the replay reproduces the captured run's
``metric_summary()`` byte-identically.

``--profile FILE`` wraps the run in :mod:`cProfile` and dumps the
stats to ``FILE`` (pstats format; load with ``python -m pstats FILE``
or ``snakeviz``), so the next hot-path hunt starts from data instead
of guesses.  It applies to every run mode — experiments,
``--scenario`` captures, ``--replay-trace`` and ``--campaign`` — and
always profiles *through* ``run_scenario`` in-process: profiling
forces ``--jobs 1`` (the serial sweep path, so engine and allocator
frames land in this process instead of scattering across pool
workers) and ``--no-cache`` (cache hits would profile JSON loading
instead of the engine).

After each experiment the runner prints an engine-observability line:
cells simulated vs. served from cache, events processed, and the
events/sec throughput of the fresh simulations.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
import time
from typing import Callable, Dict, Optional

from ..sim.faults import fault_schedule_registry
from ..sim.scenario import scenario_registry
from .fig2_motivation import format_fig2, run_fig2
from .fig3_reuse import format_fig3, run_fig3
from .fig7_speedup import format_fig7, run_fig7
from .fig8_scaling import format_fig8, run_fig8
from .fig9_qos import format_fig9, run_fig9
from .fig_churn import format_churn, run_churn
from .fig_fleet import format_fleet_capacity, run_fleet_capacity
from .fig_resilience import format_resilience, run_resilience
from .sweep import (
    last_sweep_failures,
    last_sweep_stats,
    reset_sweep_stats,
)
from .table3_area import format_table3, run_table3


def _fig2(scale: float, jobs: Optional[int], use_cache: bool) -> str:
    return format_fig2(run_fig2(scale=scale, jobs=jobs,
                                use_cache=use_cache))


def _fig3(scale: float, jobs: Optional[int], use_cache: bool) -> str:
    return format_fig3(run_fig3())


def _fig7(scale: float, jobs: Optional[int], use_cache: bool) -> str:
    return format_fig7(run_fig7(scale=scale, jobs=jobs,
                                use_cache=use_cache))


def _fig8(scale: float, jobs: Optional[int], use_cache: bool) -> str:
    return format_fig8(run_fig8(scale=scale, jobs=jobs,
                                use_cache=use_cache))


def _fig9(scale: float, jobs: Optional[int], use_cache: bool) -> str:
    return format_fig9(run_fig9(scale=scale, jobs=jobs,
                                use_cache=use_cache))


def _table3(scale: float, jobs: Optional[int], use_cache: bool) -> str:
    return format_table3(run_table3())


def _churn(scale: float, jobs: Optional[int], use_cache: bool) -> str:
    return format_churn(run_churn(scale=scale, jobs=jobs,
                                  use_cache=use_cache))


def _resilience(scale: float, jobs: Optional[int],
                use_cache: bool) -> str:
    return format_resilience(run_resilience(scale=scale, jobs=jobs,
                                            use_cache=use_cache))


def _fleet_capacity(scale: float, jobs: Optional[int],
                    use_cache: bool) -> str:
    return format_fleet_capacity(
        run_fleet_capacity(scale=scale, jobs=jobs, use_cache=use_cache)
    )


EXPERIMENTS: Dict[str, Callable[[float, Optional[int], bool], str]] = {
    "fig2": _fig2,
    "fig3": _fig3,
    "fig7": _fig7,
    "fig8": _fig8,
    "fig9": _fig9,
    "table3": _table3,
    "churn": _churn,
    "resilience": _resilience,
    "fleet-capacity": _fleet_capacity,
}


def format_scenario_list() -> str:
    """The named-scenario registry as a table."""
    lines = ["Registered scenarios (--list-scenarios):"]
    for name, (spec, description) in sorted(
        scenario_registry().items()
    ):
        window = (
            f"{spec.duration_s * 1e3:.0f} ms window"
            if spec.duration_s is not None else "count mode"
        )
        dynamics = "dynamic" if spec.has_dynamics else "static"
        lines.append(
            f"  {name:<16} {spec.num_streams:>2} streams  {window:<14} "
            f"{dynamics:<8} {description}"
        )
    return "\n".join(lines)


def format_fault_list() -> str:
    """The named fault-schedule registry as a table."""
    lines = ["Registered fault schedules (--list-faults):"]
    for name, (spec, description) in sorted(
        fault_schedule_registry().items()
    ):
        kinds = ",".join(sorted({e.kind for e in spec.events})) or "-"
        lines.append(
            f"  {name:<18} {len(spec.events):>2} events  "
            f"{kinds:<48} {description}"
        )
    return "\n".join(lines)


def _run_capture(scenario_name: str, policy: str, scale: float,
                 trace_path: str,
                 faults: Optional[str] = None) -> int:
    """Run one registered scenario and write its event trace."""
    import json

    from ..runconfig import RunConfig
    from ..sim.faults import get_fault_schedule
    from ..sim.scenario import get_scenario
    from .common import run_scenario

    spec = get_scenario(scenario_name).scaled(scale)
    fault_spec = (
        get_fault_schedule(faults).scaled(scale)
        if faults is not None else None
    )
    result = run_scenario(
        spec, policy=policy,
        config=RunConfig(capture_trace=True, faults=fault_spec),
    )
    trace = result.event_trace
    path = trace.save(trace_path)
    print(json.dumps(result.metric_summary(), sort_keys=True))
    print(
        f"  [captured {len(trace.events)} events "
        f"({trace.count('arrival')} arrivals, "
        f"{trace.count('completion')} completions) -> {path}; "
        f"content hash {trace.content_hash[:12]}]"
    )
    return 0


def _run_replay(trace_path: str, policy: Optional[str]) -> int:
    """Re-run a captured trace as a replay scenario."""
    import json

    from ..sim.trace import EventTrace
    from .common import run_scenario

    trace = EventTrace.load(trace_path)
    replay_policy = policy or trace.policy
    result = run_scenario(trace.replay_scenario(), policy=replay_policy)
    print(json.dumps(result.metric_summary(), sort_keys=True))
    print(
        f"  [replayed {trace_path} ({len(trace.events)} events, "
        f"policy {replay_policy}; captured under {trace.policy})]"
    )
    return 0


#: All scheduler policies a default campaign grid covers.
CAMPAIGN_POLICIES = ("baseline", "moca", "aurora", "camdn-hw",
                     "camdn-full")


def _run_campaign_cli(journal_path: str, resume: bool,
                      scenarios: Optional[str], policies: Optional[str],
                      faults: Optional[str], scale: float,
                      jobs: Optional[int], use_cache: bool,
                      deadline_s: Optional[float]) -> int:
    """Run (or resume) a journaled scenario × policy campaign.

    Prints one JSON line per cell — ``{"cell", "policy", "summary"}``
    in cell order — so two campaign invocations compare byte-for-byte,
    then the engine stats footer.  Returns 1 when any cell failed after
    retries (``--keep-going`` downgrades that in :func:`main`).
    """
    import json

    from ..sim.faults import get_fault_schedule
    from ..sim.scenario import get_scenario, scenario_names
    from .sweep import SweepCell, resume_campaign, run_campaign

    reset_sweep_stats()
    if resume:
        results = resume_campaign(journal_path, max_workers=jobs,
                                  use_cache=use_cache,
                                  deadline_s=deadline_s)
        from .sweep import CampaignJournal

        cells, _soc, _done, _failed, _started = \
            CampaignJournal(journal_path).read()
    else:
        scenario_list = (
            scenarios.split(",") if scenarios else scenario_names()
        )
        policy_list = (
            policies.split(",") if policies else list(CAMPAIGN_POLICIES)
        )
        fault_spec = (
            get_fault_schedule(faults) if faults is not None else None
        )
        cells = [
            SweepCell.from_scenario(policy, get_scenario(name),
                                    scale=scale, faults=fault_spec)
            for name in scenario_list
            for policy in policy_list
        ]
        results = run_campaign(cells, journal_path, max_workers=jobs,
                               use_cache=use_cache,
                               deadline_s=deadline_s)
    for i, result in enumerate(results):
        print(json.dumps({
            "cell": i,
            "policy": cells[i].policy,
            "summary": (
                result.metric_summary() if result is not None else None
            ),
        }, sort_keys=True))
    stats_line = _engine_stats_line()
    if stats_line:
        print(stats_line)
    return 1 if last_sweep_failures() else 0


def _run_fleet_cli(spec_path: str, journal_path: Optional[str],
                   jobs: Optional[int], use_cache: bool,
                   deadline_s: Optional[float]) -> int:
    """Run a fleet described by a JSON spec file.

    With ``journal_path`` the fleet runs under the crash-safe campaign
    journal (plus the ``.fleet.json`` sidecar) so ``--resume`` can pick
    it up; without, it runs as an ephemeral sharded sweep.  Prints one
    ``{"fleet": <population summary>}`` JSON line — byte-identical
    across worker counts and resume cycles — then the stats footer.
    Returns 1 when any device cell failed after retries.
    """
    import json

    from ..core.serialize import fleet_spec_from_dict
    from ..fleet.runner import run_fleet

    reset_sweep_stats()
    with open(spec_path, encoding="utf-8") as fh:
        spec = fleet_spec_from_dict(json.load(fh))
    result = run_fleet(spec, journal_path=journal_path,
                       max_workers=jobs, use_cache=use_cache,
                       deadline_s=deadline_s)
    print(json.dumps({"fleet": result.fleet_summary()},
                     sort_keys=True))
    stats_line = _engine_stats_line()
    if stats_line:
        print(stats_line)
    return 1 if result.failures else 0


def _resume_fleet_cli(journal_path: str, jobs: Optional[int],
                      use_cache: bool,
                      deadline_s: Optional[float]) -> int:
    """Resume a journaled fleet from its journal + sidecar."""
    import json

    from ..fleet.runner import resume_fleet

    reset_sweep_stats()
    result = resume_fleet(journal_path, max_workers=jobs,
                          use_cache=use_cache, deadline_s=deadline_s)
    print(json.dumps({"fleet": result.fleet_summary()},
                     sort_keys=True))
    stats_line = _engine_stats_line()
    if stats_line:
        print(stats_line)
    return 1 if result.failures else 0


def _engine_stats_line() -> str:
    """Observability footer from the last sweep (empty if no sweep ran)."""
    stats = last_sweep_stats()
    if not stats or not stats.get("cells"):
        return ""
    line = (
        f"  [engine: {stats['cells']:.0f} cells "
        f"({stats['cached_cells']:.0f} cached), "
        f"{stats['events']:,.0f} events"
    )
    if stats["events_per_s"] > 0:
        line += f", {stats['events_per_s']:,.0f} events/s"
    line += "]"
    failures = last_sweep_failures()
    if failures:
        detail = "; ".join(
            f"cell {f['index']} ({f['policy']}): {f['error']}"
            for f in failures
        )
        line += f"\n  [WARNING: {len(failures)} cell(s) failed after " \
                f"retry — {detail}]"
    return line


@contextlib.contextmanager
def _profiled(profiler):
    """Collect samples while the body runs (no-op without a profiler)."""
    if profiler is None:
        yield
        return
    profiler.enable()
    try:
        yield
    finally:
        profiler.disable()


def _dump_profile(profiler, path: str) -> None:
    """Write collected samples as pstats and print the top of the dump."""
    if profiler is None:
        return
    import pstats

    profiler.dump_stats(path)
    top = pstats.Stats(profiler)
    top.sort_stats("cumulative")
    print(f"profile written to {path} "
          f"(load with `python -m pstats {path}`); top 10:")
    top.print_stats(10)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate CaMDN paper tables and figures."
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which experiment to run",
    )
    parser.add_argument(
        "--list-scenarios",
        action="store_true",
        help="print the named-scenario registry and exit",
    )
    parser.add_argument(
        "--list-faults",
        action="store_true",
        help="print the named fault-schedule registry and exit",
    )
    parser.add_argument(
        "--faults",
        metavar="NAME",
        default=None,
        help="registered fault schedule injected into a --scenario run",
    )
    parser.add_argument(
        "--scenario",
        metavar="NAME",
        default=None,
        help="registered scenario to run standalone "
             "(with --capture-trace)",
    )
    parser.add_argument(
        "--policy",
        metavar="NAME",
        default=None,
        help="scheduling policy for --scenario / --replay-trace "
             "(default: camdn-full, or the captured policy on replay)",
    )
    parser.add_argument(
        "--capture-trace",
        metavar="FILE",
        default=None,
        help="write the run's event trace (requires --scenario)",
    )
    parser.add_argument(
        "--replay-trace",
        metavar="FILE",
        default=None,
        help="re-run a captured event trace as a replay scenario",
    )
    parser.add_argument(
        "--campaign",
        metavar="FILE",
        default=None,
        help="run a scenario x policy grid under a crash-safe "
             "write-ahead journal at FILE (with --fleet: the fleet's "
             "journal)",
    )
    parser.add_argument(
        "--resume",
        metavar="FILE",
        default=None,
        help="resume a crashed campaign (or fleet — auto-detected "
             "from the .fleet.json sidecar) from its journal, "
             "skipping completed cells",
    )
    parser.add_argument(
        "--fleet",
        metavar="FILE",
        default=None,
        help="simulate a device population described by a JSON fleet "
             "spec; add --campaign JOURNAL to make it resumable",
    )
    parser.add_argument(
        "--campaign-scenarios",
        metavar="LIST",
        default=None,
        help="comma-separated scenario names for --campaign "
             "(default: every registered scenario)",
    )
    parser.add_argument(
        "--campaign-policies",
        metavar="LIST",
        default=None,
        help="comma-separated policy names for --campaign "
             "(default: all five)",
    )
    parser.add_argument(
        "--deadline-s",
        type=float,
        default=None,
        help="per-cell wall-clock watchdog for --campaign/--resume; "
             "a cell exceeding it is killed and retried",
    )
    parser.add_argument(
        "--keep-going",
        action="store_true",
        help="exit 0 even when cells failed after retries "
             "(default: nonzero exit on any failed cell)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="measurement-window scale (smaller = faster, default 1.0)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for sweep cells (default: one per CPU)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the persistent sweep-result cache (always simulate)",
    )
    parser.add_argument(
        "--profile",
        metavar="FILE",
        default=None,
        help="cProfile the experiment hot path and dump pstats to FILE "
             "(implies --jobs 1 and --no-cache)",
    )
    args = parser.parse_args(argv)

    if args.list_scenarios:
        print(format_scenario_list())
        return 0
    if args.list_faults:
        print(format_fault_list())
        return 0

    profiler = None
    jobs = args.jobs
    use_cache = not args.no_cache
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        jobs = 1
        use_cache = False

    if args.replay_trace is not None:
        with _profiled(profiler):
            code = _run_replay(args.replay_trace, args.policy)
        _dump_profile(profiler, args.profile)
        return code
    if args.fleet is not None:
        if args.resume is not None:
            parser.error("--fleet starts a new fleet; use --resume "
                         "FILE alone to pick one back up")
        with _profiled(profiler):
            code = _run_fleet_cli(
                args.fleet,
                journal_path=args.campaign,
                jobs=jobs,
                use_cache=use_cache,
                deadline_s=args.deadline_s,
            )
        _dump_profile(profiler, args.profile)
        return 0 if args.keep_going else code
    if args.resume is not None:
        from ..fleet.runner import fleet_sidecar_path

        if args.campaign is not None:
            parser.error("--campaign and --resume are mutually "
                         "exclusive")
        if fleet_sidecar_path(args.resume).exists():
            with _profiled(profiler):
                code = _resume_fleet_cli(
                    args.resume, jobs=jobs, use_cache=use_cache,
                    deadline_s=args.deadline_s,
                )
            _dump_profile(profiler, args.profile)
            return 0 if args.keep_going else code
    if args.campaign is not None or args.resume is not None:
        with _profiled(profiler):
            code = _run_campaign_cli(
                args.campaign or args.resume,
                resume=args.resume is not None,
                scenarios=args.campaign_scenarios,
                policies=args.campaign_policies,
                faults=args.faults,
                scale=args.scale,
                jobs=jobs,
                use_cache=use_cache,
                deadline_s=args.deadline_s,
            )
        _dump_profile(profiler, args.profile)
        return 0 if args.keep_going else code
    if args.scenario is not None:
        if args.capture_trace is None:
            parser.error("--scenario requires --capture-trace FILE")
        with _profiled(profiler):
            code = _run_capture(
                args.scenario, args.policy or "camdn-full", args.scale,
                args.capture_trace, faults=args.faults,
            )
        _dump_profile(profiler, args.profile)
        return code
    if args.capture_trace is not None:
        parser.error("--capture-trace requires --scenario NAME")
    if args.faults is not None:
        parser.error("--faults requires --scenario NAME or --campaign")
    if args.experiment is None:
        parser.error("an experiment name (or --list-scenarios, "
                     "--scenario, --replay-trace, --campaign) is "
                     "required")

    names = sorted(EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    any_failed = False
    for name in names:
        start = time.time()
        reset_sweep_stats()
        with _profiled(profiler):
            output = EXPERIMENTS[name](args.scale, jobs, use_cache)
        print(output)
        stats_line = _engine_stats_line()
        if stats_line:
            print(stats_line)
        if last_sweep_failures():
            any_failed = True
        print(f"  [{name} regenerated in {time.time() - start:.1f}s]")
        print()
    _dump_profile(profiler, args.profile)
    # A cell that failed after retries is a failed run: exit nonzero so
    # CI pipelines notice (--keep-going opts back into exit 0).
    if any_failed and not args.keep_going:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
