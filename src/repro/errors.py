"""Exception hierarchy for the CaMDN reproduction.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigError(ReproError):
    """An SoC / NPU / cache / DRAM configuration is internally inconsistent."""


class MappingError(ReproError):
    """The layer mapper could not produce a legal mapping candidate."""


class CacheAddressError(ReproError):
    """A virtual or physical cache address is malformed or out of range."""


class PageAllocationError(ReproError):
    """The cache page allocator could not satisfy a request."""


class CPTError(ReproError):
    """A cache page table operation is invalid (bad vcpn, double map, ...)."""


class SimulationError(ReproError):
    """The discrete-event engine reached an inconsistent state."""


class WorkloadError(ReproError):
    """A multi-tenant workload description is invalid."""


class ModelGraphError(ReproError):
    """A DNN model graph is malformed (dangling tensor, bad shape, ...)."""


class SnapshotError(ReproError):
    """An engine snapshot is unreadable, corrupt, or version-mismatched."""
