"""Way-masked LRU replacement state for one cache set.

The general-purpose subspace of a CaMDN cache slice runs ordinary LRU, but
only over the ways the :class:`~repro.core.way_mask.WayMask` leaves to CPU
traffic; NPU-subspace ways never participate (the NEC manages them
explicitly).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from ..errors import ConfigError


class LRUState:
    """LRU ordering over an allowed subset of ways in one set."""

    def __init__(self, allowed_ways: Iterable[int]) -> None:
        self._order: List[int] = list(allowed_ways)
        if len(set(self._order)) != len(self._order):
            raise ConfigError("duplicate ways in LRU state")

    @property
    def allowed_ways(self) -> List[int]:
        """Ways this policy may use (MRU last)."""
        return list(self._order)

    def touch(self, way: int) -> None:
        """Mark ``way`` most-recently-used.

        Raises:
            ConfigError: the way is not managed by this policy.
        """
        if way not in self._order:
            raise ConfigError(f"way {way} not managed by this LRU state")
        self._order.remove(way)
        self._order.append(way)

    def victim(self) -> Optional[int]:
        """Least-recently-used way, or ``None`` if the policy owns no
        ways (e.g. all ways assigned to the NPU subspace)."""
        if not self._order:
            return None
        return self._order[0]

    def restrict(self, allowed_ways: Iterable[int]) -> None:
        """Re-partition: keep relative recency of ways that remain."""
        allowed = set(allowed_ways)
        kept = [w for w in self._order if w in allowed]
        new = [w for w in sorted(allowed) if w not in kept]
        self._order = new + kept
