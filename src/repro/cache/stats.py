"""Hit/miss/traffic counters for cache models."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CacheStats:
    """Access counters for one cache (or one tenant's view of it)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hit fraction; 0.0 when no accesses have happened."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def record_hit(self, count: int = 1) -> None:
        self.hits += count

    def record_miss(self, count: int = 1) -> None:
        self.misses += count

    def record_eviction(self, count: int = 1, dirty: bool = False) -> None:
        self.evictions += count
        if dirty:
            self.writebacks += count

    def merge(self, other: "CacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.evictions += other.evictions
        self.writebacks += other.writebacks

    def reset(self) -> None:
        self.hits = self.misses = self.evictions = self.writebacks = 0
