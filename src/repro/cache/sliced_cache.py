"""Functional sliced set-associative shared cache (Figure 4).

The cache is split into ``num_slices`` address-interleaved slices, each a
set-associative array of ``num_ways`` ways.  A :class:`~repro.core.way_mask.
WayMask` divides every slice between:

* a *general-purpose subspace* — tag-matched, LRU-replaced, serving normal
  (CPU) physical-address requests through :meth:`cpu_access`;
* an *NPU subspace* — tag-free data storage controlled line-by-line by the
  slice's NEC (installed via :meth:`install_necs`).

This functional model backs the integration tests that demonstrate
isolation: CPU traffic can never evict NPU-subspace lines and vice versa.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..config import CacheConfig
from ..core.nec import NEC, NECFabric
from ..core.way_mask import WayMask
from ..errors import CacheAddressError
from .replacement import LRUState
from .stats import CacheStats


class _Slice:
    """One cache slice: tag/data arrays plus per-set LRU over CPU ways."""

    def __init__(self, index: int, cache: CacheConfig,
                 way_mask: WayMask) -> None:
        sets, ways = cache.sets_per_slice, cache.num_ways
        self.index = index
        self.cache = cache
        self.way_mask = way_mask
        self.tags: List[List[Optional[int]]] = [
            [None] * ways for _ in range(sets)
        ]
        self.data: List[List[Optional[int]]] = [
            [None] * ways for _ in range(sets)
        ]
        self.dirty: List[List[bool]] = [
            [False] * ways for _ in range(sets)
        ]
        self.lru: List[LRUState] = [
            LRUState(way_mask.cpu_way_indices()) for _ in range(sets)
        ]


class SlicedSharedCache:
    """The shared cache of the NPU-integrated SoC."""

    def __init__(self, cache: CacheConfig, memory) -> None:
        self.config = cache
        self.memory = memory
        self.way_mask = WayMask(cache.num_ways, cache.npu_ways)
        self.slices = [
            _Slice(i, cache, self.way_mask) for i in range(cache.num_slices)
        ]
        self.cpu_stats = CacheStats()
        self.nec_fabric: Optional[NECFabric] = None

    # ------------------------------------------------------------------
    # NPU side
    # ------------------------------------------------------------------

    def install_necs(self) -> NECFabric:
        """Instantiate one NEC per slice, wired to the slice data arrays."""
        necs = [
            NEC(s.index, self.config, s.data, self.memory)
            for s in self.slices
        ]
        self.nec_fabric = NECFabric(necs)
        return self.nec_fabric

    # ------------------------------------------------------------------
    # CPU (general-purpose) side
    # ------------------------------------------------------------------

    def _decompose(self, paddr: int) -> Tuple[int, int, int]:
        """Split a physical memory address into (slice, set, tag)."""
        if paddr < 0:
            raise CacheAddressError(f"negative address {paddr:#x}")
        line = paddr // self.config.line_bytes
        slice_index = line % self.config.num_slices
        per_slice = line // self.config.num_slices
        set_index = per_slice % self.config.sets_per_slice
        tag = per_slice // self.config.sets_per_slice
        return slice_index, set_index, tag

    def cpu_access(self, paddr: int, write: bool = False) -> bool:
        """Perform a transparent (tag-matched, LRU) access.

        Only ways outside the NPU subspace participate.  Returns ``True`` on
        hit.  A miss fills the LRU victim from memory (writing back dirty
        victims); if the way mask leaves no CPU ways, the access bypasses
        the cache entirely and counts as a miss.
        """
        slice_index, set_index, tag = self._decompose(paddr)
        slc = self.slices[slice_index]
        lru = slc.lru[set_index]
        for way in lru.allowed_ways:
            if slc.tags[set_index][way] == tag:
                lru.touch(way)
                if write:
                    slc.dirty[set_index][way] = True
                self.cpu_stats.record_hit()
                return True
        self.cpu_stats.record_miss()
        victim = lru.victim()
        if victim is None:
            return False  # no CPU ways: uncached access
        if slc.tags[set_index][victim] is not None:
            self.cpu_stats.record_eviction(
                dirty=slc.dirty[set_index][victim]
            )
            if slc.dirty[set_index][victim]:
                self.memory.write_line(
                    self._compose(slice_index, set_index,
                                  slc.tags[set_index][victim]),
                    slc.data[set_index][victim] or 0,
                )
        slc.tags[set_index][victim] = tag
        slc.data[set_index][victim] = self.memory.read_line(
            paddr // self.config.line_bytes
        )
        slc.dirty[set_index][victim] = write
        lru.touch(victim)
        return False

    def _compose(self, slice_index: int, set_index: int, tag: int) -> int:
        """Rebuild the memory line address from (slice, set, tag)."""
        per_slice = tag * self.config.sets_per_slice + set_index
        return per_slice * self.config.num_slices + slice_index

    # ------------------------------------------------------------------

    def cpu_resident_lines(self) -> int:
        """Valid lines currently held in CPU-subspace ways."""
        count = 0
        cpu_ways = self.way_mask.cpu_way_indices()
        for slc in self.slices:
            for set_tags in slc.tags:
                count += sum(
                    1 for w in cpu_ways if set_tags[w] is not None
                )
        return count

    def npu_line(self, slice_index: int, set_index: int,
                 way_index: int) -> Optional[int]:
        """Direct read of an NPU-subspace data-array entry (test hook)."""
        if not self.way_mask.is_npu_way(way_index):
            raise CacheAddressError(
                f"way {way_index} is not in the NPU subspace"
            )
        return self.slices[slice_index].data[set_index][way_index]

    def snapshot_npu_subspace(self) -> Dict[Tuple[int, int, int], int]:
        """All valid NPU-subspace lines keyed by (slice, set, way)."""
        snapshot: Dict[Tuple[int, int, int], int] = {}
        for slc in self.slices:
            for set_index, row in enumerate(slc.data):
                for way in self.way_mask.npu_way_indices():
                    if row[way] is not None:
                        snapshot[(slc.index, set_index, way)] = row[way]
        return snapshot
