"""Analytic transparent shared-cache model (baselines, Figure 2).

Without CaMDN, the shared cache is hardware-managed and transparent: every
tenant's traffic competes for the same LRU stack.  This model predicts, per
layer, the cache hit rate and resulting DRAM traffic from the layer's
*access segments* — groups of bytes sharing a reuse distance — under a given
contention level.

Model: a block with intrinsic (solo-run) reuse distance ``d`` is still
resident when re-referenced iff fewer than ``C`` bytes of competing traffic
entered the LRU stack in between.  Co-tenants inflate the effective distance
by the ratio of total active traffic to the task's own traffic:

    d_eff = d * (own_rate + other_rate) / own_rate

and the hit probability is ``exp(-d_eff / C)`` — an exponential stack-
distance survival curve that is exact for random replacement and a good
closed-form proxy for LRU.  This produces the paper's Figure 2 shape: hit
rate collapses and memory traffic grows as tenants are added, and larger
caches delay the collapse.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from ..errors import SimulationError
from ..models.graph import ModelGraph


@dataclass(frozen=True)
class AccessSegment:
    """Bytes of a layer's traffic sharing one reuse pattern.

    Attributes:
        bytes_: segment volume in bytes.
        reuse_distance: intrinsic (solo) reuse distance in bytes;
            ``inf`` marks streaming data with no future reuse.
        writes: True when the segment is written (misses still cost DRAM
            write traffic once evicted).
    """

    bytes_: float
    reuse_distance: float
    writes: bool = False


def layer_access_segments(
    graph: ModelGraph, layer_index: int, dtype_bytes: int = 1
) -> List[AccessSegment]:
    """Decompose one layer's cache traffic into reuse segments.

    Segments:

    * **weights** — within one inference weights are streamed once (the
      "non-reusable data occupying cache space" of Section II-C), but the
      experiments re-dispatch each model continuously, so weights are
      re-referenced one full inference later: their reuse distance is the
      model's whole per-inference traffic.
    * **input** — produced by the previous layer; reuse distance is the
      producer-to-consumer gap (half the producer's working set for the
      direct edge).  Skip-edge operands get their own segments with the
      intervening layers' traffic as distance.
    * **output** — written now, re-read by its consumers; accounted at the
      consumer's input segment, so here it contributes write traffic.
    """
    if not 0 <= layer_index < len(graph.layers):
        raise SimulationError(f"layer index {layer_index} out of range")
    layer = graph.layers[layer_index]
    segments: List[AccessSegment] = []

    if layer.weight_elems:
        # Weights are re-referenced one inference later; the unique data
        # flowing through the LRU stack in between is at least the model's
        # compulsory traffic.
        inference_traffic = graph.compulsory_traffic_elems() * dtype_bytes
        segments.append(
            AccessSegment(
                bytes_=layer.weight_elems * dtype_bytes,
                reuse_distance=float(inference_traffic),
            )
        )

    if layer.input_elems:
        skip_bytes = 0.0
        for edge in graph.skip_edges:
            if edge.consumer != layer_index:
                continue
            producer = graph.layers[edge.producer]
            bytes_ = producer.output_elems * dtype_bytes
            distance = sum(
                graph.layers[i].total_elems * dtype_bytes
                for i in range(edge.producer + 1, edge.consumer)
            )
            segments.append(
                AccessSegment(bytes_=bytes_, reuse_distance=float(distance))
            )
            skip_bytes += bytes_
        direct_bytes = max(
            layer.input_elems * dtype_bytes - skip_bytes, 0.0
        )
        if direct_bytes:
            distance = _producer_distance(graph, layer_index, dtype_bytes)
            segments.append(
                AccessSegment(bytes_=direct_bytes, reuse_distance=distance)
            )

    if layer.output_elems:
        segments.append(
            AccessSegment(
                bytes_=layer.output_elems * dtype_bytes,
                reuse_distance=math.inf,
                writes=True,
            )
        )
    return segments


def _producer_distance(
    graph: ModelGraph, consumer: int, dtype_bytes: int
) -> float:
    """Reuse distance of the tensor feeding layer ``consumer``."""
    if consumer == 0:
        return math.inf  # model input comes from DRAM regardless
    producer = consumer - 1
    own = graph.layers[producer].total_elems * dtype_bytes / 2
    intervening = sum(
        graph.layers[i].total_elems * dtype_bytes
        for i in range(producer + 1, consumer)
    )
    return max(own, intervening)


class TransparentCacheModel:
    """Hit-rate and DRAM-traffic predictor for a transparent shared cache."""

    def __init__(self, capacity_bytes: float) -> None:
        if capacity_bytes <= 0:
            raise SimulationError("cache capacity must be positive")
        self.capacity_bytes = capacity_bytes

    def hit_probability(self, reuse_distance: float,
                        contention_factor: float = 1.0) -> float:
        """Probability that data at ``reuse_distance`` survives in cache.

        Args:
            reuse_distance: intrinsic reuse distance in bytes (may be inf).
            contention_factor: total active traffic rate divided by this
                task's rate (>= 1); 1.0 means the task runs alone.
        """
        if contention_factor < 1.0:
            raise SimulationError("contention factor must be >= 1")
        if math.isinf(reuse_distance):
            return 0.0
        d_eff = reuse_distance * contention_factor
        return math.exp(-d_eff / self.capacity_bytes)

    def layer_traffic(
        self,
        segments: Sequence[AccessSegment],
        contention_factor: float = 1.0,
    ) -> tuple:
        """Predict (dram_bytes, hits, accesses) for one layer's segments.

        Reads that hit stay on-chip; reads that miss cost DRAM reads.
        Writes always cost DRAM traffic eventually (dirty eviction under
        contention) but are not cache *lookups* counted toward hit rate.
        """
        dram_bytes = 0.0
        hit_bytes = 0.0
        access_bytes = 0.0
        for seg in segments:
            if seg.writes:
                dram_bytes += seg.bytes_
                continue
            access_bytes += seg.bytes_
            p = self.hit_probability(seg.reuse_distance, contention_factor)
            hit_bytes += seg.bytes_ * p
            dram_bytes += seg.bytes_ * (1.0 - p)
        return dram_bytes, hit_bytes, access_bytes

    def model_traffic(
        self,
        graph: ModelGraph,
        dtype_bytes: int = 1,
        contention_factor: float = 1.0,
    ) -> tuple:
        """Predict whole-model (dram_bytes, hit_rate) at a contention level.
        """
        dram = 0.0
        hits = 0.0
        accesses = 0.0
        for i in range(len(graph.layers)):
            segs = layer_access_segments(graph, i, dtype_bytes)
            d, h, a = self.layer_traffic(segs, contention_factor)
            dram += d
            hits += h
            accesses += a
        hit_rate = hits / accesses if accesses else 0.0
        return dram, hit_rate
