"""Shared-cache substrate: functional sliced cache and analytic models."""

from .stats import CacheStats
from .replacement import LRUState
from .sliced_cache import SlicedSharedCache
from .transparent import (
    AccessSegment,
    TransparentCacheModel,
    layer_access_segments,
)

__all__ = [
    "CacheStats",
    "LRUState",
    "SlicedSharedCache",
    "AccessSegment",
    "TransparentCacheModel",
    "layer_access_segments",
]
