"""Layer specifications lowered to GEMM dimensions.

Every layer is described by the tensor footprints that matter to the memory
system (weight / input / output element counts) plus a GEMM lowering
``(M, N, K)`` that the systolic-array timing model and the layer mapper
consume:

* convolution (im2col):  ``M = OH*OW``, ``N = OC``, ``K = IC*KH*KW``
* depth-wise convolution: ``M = OH*OW``, ``N = C``, ``K = KH*KW`` (the
  reduction dimension is tiny, which is why depth-wise layers underutilize a
  systolic array)
* matmul / attention:     literal ``(M, N, K)``

Element counts are dtype-agnostic; multiply by ``SoCConfig.dtype_bytes`` to
get bytes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ModelGraphError


class LayerKind(enum.Enum):
    """Computational class of a layer; drives the compute-efficiency model."""

    CONV = "conv"
    DWCONV = "dwconv"
    MATMUL = "matmul"
    ATTENTION = "attention"
    POOL = "pool"
    ELEMWISE = "elemwise"


@dataclass(frozen=True)
class LayerSpec:
    """A single DNN layer, as seen by the memory and compute models.

    Attributes:
        name: human-readable layer name, unique within a model.
        kind: computational class (:class:`LayerKind`).
        m / n / k: GEMM lowering dimensions.
        weight_elems: static parameter elements read from DRAM.  Zero for
            pooling, element-wise and activation-activation matmuls.
        input_elems: activation elements consumed.
        output_elems: activation elements produced.
        macs: multiply-accumulate operations.
        groups: number of independent GEMMs sharing the ``(m, n, k)`` shape
            (e.g. attention heads); total MACs are ``groups * m * n * k``
            for matmul-like layers.
    """

    name: str
    kind: LayerKind
    m: int
    n: int
    k: int
    weight_elems: int
    input_elems: int
    output_elems: int
    macs: int
    groups: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelGraphError("layer name must be non-empty")
        for field_name in ("m", "n", "k", "groups"):
            if getattr(self, field_name) <= 0:
                raise ModelGraphError(
                    f"{self.name}: {field_name} must be positive"
                )
        for field_name in ("weight_elems", "input_elems", "output_elems",
                           "macs"):
            if getattr(self, field_name) < 0:
                raise ModelGraphError(
                    f"{self.name}: {field_name} cannot be negative"
                )
        if self.input_elems == 0 and self.kind is not LayerKind.ELEMWISE:
            raise ModelGraphError(f"{self.name}: layer consumes no input")

    @property
    def total_elems(self) -> int:
        """All elements touched by the layer once (no refetch)."""
        return self.weight_elems + self.input_elems + self.output_elems

    @property
    def is_memory_dominated(self) -> bool:
        """Heuristic: more than one element moved per two MACs."""
        return self.macs < 2 * self.total_elems

    @property
    def arithmetic_intensity(self) -> float:
        """MACs per element moved (compulsory traffic only)."""
        if self.total_elems == 0:
            return 0.0
        return self.macs / self.total_elems


def _out_dim(size: int, kernel: int, stride: int, padding: int) -> int:
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ModelGraphError(
            f"non-positive output dim for size={size} kernel={kernel} "
            f"stride={stride} padding={padding}"
        )
    return out


def conv2d(
    name: str,
    h: int,
    w: int,
    c_in: int,
    c_out: int,
    kernel: int,
    stride: int = 1,
    padding: int | None = None,
) -> LayerSpec:
    """Standard 2-D convolution lowered to GEMM via im2col.

    ``padding=None`` selects "same"-style padding ``kernel // 2``.
    """
    if padding is None:
        padding = kernel // 2
    oh = _out_dim(h, kernel, stride, padding)
    ow = _out_dim(w, kernel, stride, padding)
    m = oh * ow
    n = c_out
    k = c_in * kernel * kernel
    return LayerSpec(
        name=name,
        kind=LayerKind.CONV,
        m=m,
        n=n,
        k=k,
        weight_elems=c_out * c_in * kernel * kernel,
        input_elems=h * w * c_in,
        output_elems=oh * ow * c_out,
        macs=m * n * k,
    )


def dwconv2d(
    name: str,
    h: int,
    w: int,
    channels: int,
    kernel: int,
    stride: int = 1,
    padding: int | None = None,
) -> LayerSpec:
    """Depth-wise 2-D convolution (one filter per channel)."""
    if padding is None:
        padding = kernel // 2
    oh = _out_dim(h, kernel, stride, padding)
    ow = _out_dim(w, kernel, stride, padding)
    return LayerSpec(
        name=name,
        kind=LayerKind.DWCONV,
        m=oh * ow,
        n=channels,
        k=kernel * kernel,
        weight_elems=channels * kernel * kernel,
        input_elems=h * w * channels,
        output_elems=oh * ow * channels,
        macs=oh * ow * channels * kernel * kernel,
    )


def conv1d(
    name: str,
    length: int,
    c_in: int,
    c_out: int,
    kernel: int,
    stride: int = 1,
    padding: int = 0,
) -> LayerSpec:
    """1-D convolution (audio feature extractors); lowered like conv2d."""
    out_len = _out_dim(length, kernel, stride, padding)
    m = out_len
    n = c_out
    k = c_in * kernel
    return LayerSpec(
        name=name,
        kind=LayerKind.CONV,
        m=m,
        n=n,
        k=k,
        weight_elems=c_out * c_in * kernel,
        input_elems=length * c_in,
        output_elems=out_len * c_out,
        macs=m * n * k,
    )


def matmul(
    name: str,
    m: int,
    n: int,
    k: int,
    has_weights: bool = True,
) -> LayerSpec:
    """Dense matmul ``[m,k] x [k,n]``; the ``[k,n]`` operand is a static
    weight when ``has_weights`` is true."""
    return LayerSpec(
        name=name,
        kind=LayerKind.MATMUL,
        m=m,
        n=n,
        k=k,
        weight_elems=k * n if has_weights else 0,
        input_elems=m * k if has_weights else m * k + k * n,
        output_elems=m * n,
        macs=m * n * k,
    )


def attention_matmul(
    name: str,
    seq: int,
    head_dim: int,
    heads: int,
    transposed: bool = False,
) -> LayerSpec:
    """Activation-activation matmul inside multi-head attention.

    ``transposed=False`` is the Q @ K^T score computation
    (``[seq, d] x [d, seq]`` per head); ``transposed=True`` is the
    scores @ V computation (``[seq, seq] x [seq, d]`` per head).
    Both operands are activations, so ``weight_elems`` is zero.
    """
    if transposed:
        m, n, k = seq, head_dim, seq
    else:
        m, n, k = seq, seq, head_dim
    return LayerSpec(
        name=name,
        kind=LayerKind.ATTENTION,
        m=m,
        n=n,
        k=k,
        weight_elems=0,
        input_elems=heads * (m * k + k * n),
        output_elems=heads * m * n,
        macs=heads * m * n * k,
        groups=heads,
    )


def pool2d(
    name: str,
    h: int,
    w: int,
    channels: int,
    kernel: int,
    stride: int | None = None,
) -> LayerSpec:
    """Average/max pooling; no weights, one op per window element."""
    if stride is None:
        stride = kernel
    oh = _out_dim(h, kernel, stride, 0)
    ow = _out_dim(w, kernel, stride, 0)
    return LayerSpec(
        name=name,
        kind=LayerKind.POOL,
        m=oh * ow,
        n=channels,
        k=kernel * kernel,
        weight_elems=0,
        input_elems=h * w * channels,
        output_elems=oh * ow * channels,
        macs=oh * ow * channels * kernel * kernel,
    )


def elementwise(name: str, elems: int, operands: int = 2) -> LayerSpec:
    """Element-wise op (residual add, activation, layernorm, ...)."""
    return LayerSpec(
        name=name,
        kind=LayerKind.ELEMWISE,
        m=elems,
        n=1,
        k=1,
        weight_elems=0,
        input_elems=elems * operands,
        output_elems=elems,
        macs=elems,
    )
