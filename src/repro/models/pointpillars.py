"""PointPillars layer graph (Lang et al., CVPR 2019) — Table I "PP."."""

from __future__ import annotations

from typing import List

from .graph import ModelGraph, SkipEdge
from .layers import LayerSpec, conv2d, elementwise, matmul

#: Backbone blocks: (num convs, channels, stride of first conv).
_BACKBONE = ((4, 64, 2), (6, 128, 2), (6, 256, 2))

#: Pseudo-image grid produced by pillar scatter (KITTI-style).
_GRID_H, _GRID_W = 248, 216


def build_pointpillars(num_pillars: int = 6000,
                       points_per_pillar: int = 32) -> ModelGraph:
    """Build the PointPillars graph.

    The pillar feature network is a shared PointNet (9 -> 64 matmul over all
    points); scatter forms a 496x432x64 pseudo-image; a three-block 2-D CNN
    backbone with upsampling heads and SSD detection heads follows.
    """
    layers: List[LayerSpec] = []
    skips: List[SkipEdge] = []

    total_points = num_pillars * points_per_pillar
    layers.append(matmul("pfn_linear", total_points, 64, 9))
    layers.append(
        elementwise("pillar_scatter", _GRID_H * _GRID_W * 64, operands=1)
    )

    h, w = _GRID_H, _GRID_W
    c_in = 64
    up_sources: List[int] = []
    for block_idx, (num_convs, channels, first_stride) in \
            enumerate(_BACKBONE):
        for conv_idx in range(num_convs):
            stride = first_stride if conv_idx == 0 else 1
            layers.append(
                conv2d(f"bb{block_idx + 1}_conv{conv_idx + 1}", h, w, c_in,
                       channels, kernel=3, stride=stride)
            )
            h, w = h // stride, w // stride
            c_in = channels
        up_sources.append(len(layers) - 1)

    # Upsampling heads: each backbone block output is deconvolved to the
    # stride-2 resolution at 128 channels, then concatenated.
    up_h, up_w = _GRID_H // 2, _GRID_W // 2
    for i, src in enumerate(up_sources):
        src_layer = layers[src]
        # Transposed conv modeled as a conv at the upsampled resolution.
        layers.append(
            conv2d(f"up{i + 1}", up_h, up_w, src_layer.n, 128, kernel=3)
        )
        skips.append(SkipEdge(src, len(layers) - 1))
    layers.append(
        elementwise("concat", up_h * up_w * 128 * 3, operands=3)
    )

    head_c = 128 * 3
    layers.append(conv2d("head_cls", up_h, up_w, head_c, 2 * 1,
                         kernel=1, padding=0))
    layers.append(conv2d("head_box", up_h, up_w, head_c, 2 * 7,
                         kernel=1, padding=0))
    layers.append(conv2d("head_dir", up_h, up_w, head_c, 2 * 2,
                         kernel=1, padding=0))

    return ModelGraph(
        name="PointPillars",
        abbr="PP.",
        layers=tuple(layers),
        skip_edges=tuple(skips),
        qos_target_ms=100.0,
        domain="Point Cloud",
        model_type="Conv",
    )
