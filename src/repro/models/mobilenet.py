"""MobileNet-v2 layer graph (Sandler et al., CVPR 2018) — Table I "MB."."""

from __future__ import annotations

from typing import List

from .graph import ModelGraph, SkipEdge
from .layers import LayerSpec, conv2d, dwconv2d, elementwise, matmul, pool2d

#: (expansion t, output channels c, repeats n, stride s) — the paper's
#: Table 2 inverted-residual configuration.
_INVERTED_RESIDUALS = (
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
)


def build_mobilenet_v2(input_size: int = 224) -> ModelGraph:
    """Build the MobileNet-v2 graph.

    Inverted residual blocks expand to 1x1 expand, 3x3 depth-wise, 1x1
    project convolutions; blocks with stride 1 and matching channels carry a
    residual skip edge.  The dominance of depth-wise layers and large
    expanded activations makes this model the paper's best case for CaMDN's
    layer-block mapping.
    """
    layers: List[LayerSpec] = []
    skips: List[SkipEdge] = []

    h = w = input_size
    layers.append(conv2d("conv_stem", h, w, 3, 32, kernel=3, stride=2))
    h = w = input_size // 2
    c_in = 32

    for stage_idx, (t, c, n, s) in enumerate(_INVERTED_RESIDUALS):
        for block_idx in range(n):
            stride = s if block_idx == 0 else 1
            prefix = f"ir{stage_idx + 1}_{block_idx + 1}"
            hidden = c_in * t
            block_input_idx = len(layers) - 1
            if t != 1:
                layers.append(
                    conv2d(f"{prefix}_expand", h, w, c_in, hidden,
                           kernel=1, stride=1, padding=0)
                )
            layers.append(
                dwconv2d(f"{prefix}_dw", h, w, hidden, kernel=3,
                         stride=stride)
            )
            oh, ow = h // stride, w // stride
            layers.append(
                conv2d(f"{prefix}_project", oh, ow, hidden, c,
                       kernel=1, stride=1, padding=0)
            )
            if stride == 1 and c_in == c:
                layers.append(
                    elementwise(f"{prefix}_add", oh * ow * c, operands=2)
                )
                skips.append(SkipEdge(block_input_idx, len(layers) - 1))
            h, w = oh, ow
            c_in = c

    layers.append(
        conv2d("conv_head", h, w, c_in, 1280, kernel=1, stride=1, padding=0)
    )
    layers.append(pool2d("avgpool", h, w, 1280, kernel=h))
    layers.append(matmul("fc", 1, 1000, 1280))

    return ModelGraph(
        name="MobileNet-v2",
        abbr="MB.",
        layers=tuple(layers),
        skip_edges=tuple(skips),
        qos_target_ms=2.8,
        domain="Computer Vision",
        model_type="DwConv",
    )
