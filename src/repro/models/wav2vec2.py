"""Wav2Vec2-base layer graph (Baevski et al., NeurIPS 2020) — Table I "WV."."""

from __future__ import annotations

from typing import List

from .graph import ModelGraph, SkipEdge
from .layers import LayerSpec, conv1d, matmul
from .transformer_common import encoder_stack

#: Feature-extractor conv1d stack: (channels, kernel, stride).
_FEATURE_CONVS = (
    (512, 10, 5),
    (512, 3, 2),
    (512, 3, 2),
    (512, 3, 2),
    (512, 3, 2),
    (512, 2, 2),
    (512, 2, 2),
)


def build_wav2vec2_base(audio_seconds: float = 1.0,
                        sample_rate: int = 16000) -> ModelGraph:
    """Build the Wav2Vec2-base graph for ``audio_seconds`` of audio.

    The raw waveform passes through seven strided 1-D convolutions
    (downsampling by 320x) and a linear feature projection, then 12
    transformer encoder blocks at d=768.
    """
    layers: List[LayerSpec] = []
    skips: List[SkipEdge] = []

    length = int(audio_seconds * sample_rate)
    c_in = 1
    for i, (c_out, kernel, stride) in enumerate(_FEATURE_CONVS):
        layers.append(
            conv1d(f"feat_conv{i + 1}", length, c_in, c_out, kernel,
                   stride=stride)
        )
        length = (length - kernel) // stride + 1
        c_in = c_out

    d_model, heads, d_ff, blocks = 768, 12, 3072, 12
    layers.append(matmul("feat_proj", length, d_model, c_in))
    encoder_stack("enc", blocks, length, d_model, heads, d_ff, layers, skips)
    layers.append(matmul("final_proj", length, 256, d_model))

    return ModelGraph(
        name="Wav2Vec2-base",
        abbr="WV.",
        layers=tuple(layers),
        skip_edges=tuple(skips),
        qos_target_ms=16.7,
        domain="Audio Processing",
        model_type="Trans",
    )
