"""Reuse-count and reuse-distance profiling (paper Figure 3).

The paper's motivation rests on two statistics over the data a DNN moves
through the shared cache:

* **Reuse count** — expected number of repeated cache accesses to a piece of
  data.  Figure 3(a) buckets: ``1``, ``[2,4]``, ``[5,8]``, ``[9,inf)``.
  On average 68.0 % of data has count 1 (no future reuse).
* **Reuse distance** — bytes of *other* data accessed between two uses of
  the same piece of data, measured for intermediate (inter-layer) tensors.
  Figure 3(b) buckets: ``(0,1MB]``, ``(1,2MB]``, ``(2,4MB]``, ``(4MB,inf)``.
  On average 61.8 % of intermediate data sits above 1 MB and 47.9 % above
  2 MB.

The profiler derives both statistics from the layer graph alone:

* weight tensors are streamed once per inference (count 1) unless the
  default tiling refetches them;
* an intermediate tensor's count is one write plus one read per consumer
  (direct successor + skip edges);
* an intermediate tensor's reuse distance to consumer ``c`` is the sum of
  compulsory traffic of the layers executed between producer and ``c``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from .graph import ModelGraph

#: Figure 3(a) reuse-count buckets: (label, lo, hi) inclusive.
REUSE_COUNT_BUCKETS: Tuple[Tuple[str, int, float], ...] = (
    ("1", 1, 1),
    ("[2,4]", 2, 4),
    ("[5,8]", 5, 8),
    ("[9,inf)", 9, float("inf")),
)

#: Figure 3(b) reuse-distance buckets in bytes: (label, lo, hi] exclusive/inc.
MiB = 1024 * 1024
REUSE_DISTANCE_BUCKETS: Tuple[Tuple[str, float, float], ...] = (
    ("(0MB,1MB]", 0, 1 * MiB),
    ("(1MB,2MB]", 1 * MiB, 2 * MiB),
    ("(2MB,4MB]", 2 * MiB, 4 * MiB),
    ("(4MB,inf)", 4 * MiB, float("inf")),
)


@dataclass
class ReuseProfile:
    """Byte-weighted reuse statistics of one model.

    Attributes:
        model: model abbreviation.
        count_bytes: bytes per Figure 3(a) bucket label.
        distance_bytes: intermediate-tensor bytes per Figure 3(b) bucket.
    """

    model: str
    count_bytes: Dict[str, int] = field(default_factory=dict)
    distance_bytes: Dict[str, int] = field(default_factory=dict)

    @property
    def total_bytes(self) -> int:
        return sum(self.count_bytes.values())

    @property
    def total_intermediate_bytes(self) -> int:
        return sum(self.distance_bytes.values())

    def count_fractions(self) -> Dict[str, float]:
        """Figure 3(a) percentages (as fractions) for this model."""
        total = self.total_bytes
        if total == 0:
            return {label: 0.0 for label, _, _ in REUSE_COUNT_BUCKETS}
        return {
            label: self.count_bytes.get(label, 0) / total
            for label, _, _ in REUSE_COUNT_BUCKETS
        }

    def distance_fractions(self) -> Dict[str, float]:
        """Figure 3(b) percentages (as fractions) for this model."""
        total = self.total_intermediate_bytes
        if total == 0:
            return {label: 0.0 for label, _, _ in REUSE_DISTANCE_BUCKETS}
        return {
            label: self.distance_bytes.get(label, 0) / total
            for label, _, _ in REUSE_DISTANCE_BUCKETS
        }

    def fraction_no_reuse(self) -> float:
        """Fraction of data with reuse count exactly 1."""
        return self.count_fractions()["1"]

    def fraction_distance_above(self, threshold_bytes: int) -> float:
        """Fraction of intermediate bytes with reuse distance above
        ``threshold_bytes`` (must align with a bucket boundary)."""
        total = self.total_intermediate_bytes
        if total == 0:
            return 0.0
        above = sum(
            bytes_
            for (label, lo, _hi), bytes_ in zip(
                REUSE_DISTANCE_BUCKETS,
                (self.distance_bytes.get(label, 0)
                 for label, _, _ in REUSE_DISTANCE_BUCKETS),
            )
            if lo >= threshold_bytes
        )
        return above / total


def _count_bucket(count: int) -> str:
    for label, lo, hi in REUSE_COUNT_BUCKETS:
        if lo <= count <= hi:
            return label
    raise AssertionError(f"unbucketable reuse count {count}")


def _distance_bucket(distance_bytes: float) -> str:
    for label, lo, hi in REUSE_DISTANCE_BUCKETS:
        if lo < distance_bytes <= hi:
            return label
    return REUSE_DISTANCE_BUCKETS[-1][0]


def profile_model(graph: ModelGraph, dtype_bytes: int = 1) -> ReuseProfile:
    """Profile one model's reuse counts and distances.

    All statistics are byte-weighted: a 1 MB tensor with count 1 contributes
    1 MB to the count-1 bucket.
    """
    profile = ReuseProfile(model=graph.abbr)
    counts: Dict[str, int] = {label: 0 for label, _, _ in
                              REUSE_COUNT_BUCKETS}
    distances: Dict[str, int] = {label: 0 for label, _, _ in
                                 REUSE_DISTANCE_BUCKETS}

    layer_traffic = [
        layer.total_elems * dtype_bytes for layer in graph.layers
    ]
    n = len(graph.layers)

    for i, layer in enumerate(graph.layers):
        # Weights: streamed once per inference.
        if layer.weight_elems:
            counts[_count_bucket(1)] += layer.weight_elems * dtype_bytes

        # The layer's output tensor: one write + one read per consumer.
        out_bytes = layer.output_elems * dtype_bytes
        if out_bytes == 0:
            continue
        consumers: List[int] = []
        if i + 1 < n:
            consumers.append(i + 1)
        consumers.extend(
            c for c in graph.skip_consumers(i) if c not in consumers
        )
        if not consumers:
            # Model output: written once, never re-read on chip.
            counts[_count_bucket(1)] += out_bytes
            continue
        counts[_count_bucket(1 + len(consumers))] += out_bytes

        # Reuse distance per consumer: traffic of intervening layers.  The
        # write->first-read distance for the direct successor is roughly the
        # producer's own working set; skip consumers accumulate everything
        # in between.
        for consumer in consumers:
            intervening = sum(layer_traffic[i + 1:consumer])
            distance = max(intervening, layer_traffic[i] // 2)
            distances[_distance_bucket(distance)] += out_bytes

    profile.count_bytes = counts
    profile.distance_bytes = distances
    return profile


def profile_suite(
    graphs: Sequence[ModelGraph], dtype_bytes: int = 1
) -> Dict[str, ReuseProfile]:
    """Profile a list of models, keyed by abbreviation."""
    return {g.abbr: profile_model(g, dtype_bytes) for g in graphs}


def average_fractions(
    profiles: Sequence[ReuseProfile],
) -> Tuple[Dict[str, float], Dict[str, float]]:
    """Byte-weighted average of count and distance fractions over models.

    Returns:
        ``(count_fractions, distance_fractions)`` averaged across models
        with equal model weight (matching the paper's "Avg." bars).
    """
    if not profiles:
        return {}, {}
    count_avg: Dict[str, float] = {label: 0.0 for label, _, _ in
                                   REUSE_COUNT_BUCKETS}
    dist_avg: Dict[str, float] = {label: 0.0 for label, _, _ in
                                  REUSE_DISTANCE_BUCKETS}
    for profile in profiles:
        for label, frac in profile.count_fractions().items():
            count_avg[label] += frac / len(profiles)
        for label, frac in profile.distance_fractions().items():
            dist_avg[label] += frac / len(profiles)
    return count_avg, dist_avg
