"""ResNet50 layer graph (He et al., CVPR 2016) — paper Table I "RS."."""

from __future__ import annotations

from typing import List

from .graph import ModelGraph, SkipEdge
from .layers import LayerSpec, conv2d, elementwise, matmul, pool2d

#: (num_blocks, base_channels, stride of first block) per stage.
_STAGES = ((3, 64, 1), (4, 128, 2), (6, 256, 2), (3, 512, 2))
_EXPANSION = 4


def build_resnet50(input_size: int = 224) -> ModelGraph:
    """Build the ResNet50 graph at ``input_size`` x ``input_size`` x 3.

    Bottleneck blocks are expanded into their 1x1 / 3x3 / 1x1 convolutions
    plus the residual add; each add carries a skip edge from the block input
    (or the downsampling projection) so the reuse profiler sees the true
    residual reuse distance.
    """
    layers: List[LayerSpec] = []
    skips: List[SkipEdge] = []

    h = w = input_size
    layers.append(conv2d("conv1", h, w, 3, 64, kernel=7, stride=2))
    h = w = input_size // 2
    layers.append(pool2d("maxpool", h, w, 64, kernel=2, stride=2))
    h = w = h // 2
    c_in = 64

    for stage_idx, (num_blocks, base, first_stride) in enumerate(_STAGES):
        c_out = base * _EXPANSION
        for block_idx in range(num_blocks):
            stride = first_stride if block_idx == 0 else 1
            prefix = f"s{stage_idx + 1}b{block_idx + 1}"
            # Identity (or projection) source for the residual add.
            if c_in != c_out or stride != 1:
                layers.append(
                    conv2d(f"{prefix}_proj", h, w, c_in, c_out,
                           kernel=1, stride=stride, padding=0)
                )
            identity_idx = len(layers) - 1
            layers.append(
                conv2d(f"{prefix}_conv1", h, w, c_in, base,
                       kernel=1, stride=1, padding=0)
            )
            layers.append(
                conv2d(f"{prefix}_conv2", h, w, base, base,
                       kernel=3, stride=stride)
            )
            oh = h // stride
            ow = w // stride
            layers.append(
                conv2d(f"{prefix}_conv3", oh, ow, base, c_out,
                       kernel=1, stride=1, padding=0)
            )
            layers.append(
                elementwise(f"{prefix}_add", oh * ow * c_out, operands=2)
            )
            skips.append(SkipEdge(identity_idx, len(layers) - 1))
            h, w = oh, ow
            c_in = c_out

    layers.append(pool2d("avgpool", h, w, c_in, kernel=h))
    layers.append(matmul("fc", 1, 1000, c_in))

    return ModelGraph(
        name="ResNet50",
        abbr="RS.",
        layers=tuple(layers),
        skip_edges=tuple(skips),
        qos_target_ms=6.7,
        domain="Computer Vision",
        model_type="Conv",
    )
