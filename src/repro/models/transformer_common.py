"""Shared transformer encoder-block construction.

ViT-base-16, BERT-base and Wav2Vec2-base all use the same encoder block
(pre/post-norm differences do not affect the memory system); this module
builds one block as explicit GEMMs plus attention matmuls and residual adds,
wiring skip edges for the two residual connections per block.
"""

from __future__ import annotations

from typing import List, Tuple

from .graph import SkipEdge
from .layers import LayerSpec, attention_matmul, elementwise, matmul


def append_encoder_block(
    layers: List[LayerSpec],
    skips: List[SkipEdge],
    prefix: str,
    seq: int,
    d_model: int,
    heads: int,
    d_ff: int,
) -> None:
    """Append one transformer encoder block to ``layers`` in place.

    The block is lowered to:

    * QKV projection     — matmul [seq, d] x [d, 3d]
    * attention scores   — per-head [seq, hd] x [hd, seq]
    * attention output   — per-head [seq, seq] x [seq, hd]
    * output projection  — matmul [seq, d] x [d, d]  (+ residual add)
    * FFN up / down      — matmuls [seq, d]x[d, ff] and [seq, ff]x[ff, d]
      (+ residual add)
    """
    head_dim = d_model // heads
    attn_input_idx = len(layers) - 1
    layers.append(matmul(f"{prefix}_qkv", seq, 3 * d_model, d_model))
    layers.append(
        attention_matmul(f"{prefix}_scores", seq, head_dim, heads)
    )
    layers.append(
        attention_matmul(f"{prefix}_context", seq, head_dim, heads,
                         transposed=True)
    )
    layers.append(matmul(f"{prefix}_proj", seq, d_model, d_model))
    layers.append(
        elementwise(f"{prefix}_add_attn", seq * d_model, operands=2)
    )
    if attn_input_idx >= 0:
        skips.append(SkipEdge(attn_input_idx, len(layers) - 1))
    ffn_input_idx = len(layers) - 1
    layers.append(matmul(f"{prefix}_ffn_up", seq, d_ff, d_model))
    layers.append(matmul(f"{prefix}_ffn_down", seq, d_model, d_ff))
    layers.append(
        elementwise(f"{prefix}_add_ffn", seq * d_model, operands=2)
    )
    skips.append(SkipEdge(ffn_input_idx, len(layers) - 1))


def encoder_stack(
    prefix: str,
    num_blocks: int,
    seq: int,
    d_model: int,
    heads: int,
    d_ff: int,
    layers: List[LayerSpec] | None = None,
    skips: List[SkipEdge] | None = None,
) -> Tuple[List[LayerSpec], List[SkipEdge]]:
    """Build ``num_blocks`` encoder blocks, continuing existing lists."""
    if layers is None:
        layers = []
    if skips is None:
        skips = []
    for i in range(num_blocks):
        append_encoder_block(
            layers, skips, f"{prefix}{i + 1}", seq, d_model, heads, d_ff
        )
    return layers, skips
