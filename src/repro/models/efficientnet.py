"""EfficientNet-b0 layer graph (Tan & Le, ICML 2019) — Table I "EF."."""

from __future__ import annotations

from typing import List

from .graph import ModelGraph, SkipEdge
from .layers import LayerSpec, conv2d, dwconv2d, elementwise, matmul, pool2d

#: (expansion t, output channels c, repeats n, stride s, kernel) —
#: the b0 MBConv stage configuration.
_MBCONV_STAGES = (
    (1, 16, 1, 1, 3),
    (6, 24, 2, 2, 3),
    (6, 40, 2, 2, 5),
    (6, 80, 3, 2, 3),
    (6, 112, 3, 1, 5),
    (6, 192, 4, 2, 5),
    (6, 320, 1, 1, 3),
)

#: Squeeze-and-excitation bottleneck ratio (relative to block input chans).
_SE_RATIO = 0.25


def build_efficientnet_b0(input_size: int = 224) -> ModelGraph:
    """Build the EfficientNet-b0 graph.

    MBConv blocks expand to 1x1 expand, kxk depth-wise, squeeze-excitation
    (two tiny matmuls on pooled features) and 1x1 project; stride-1
    same-channel blocks carry residual skip edges.
    """
    layers: List[LayerSpec] = []
    skips: List[SkipEdge] = []

    h = w = input_size
    layers.append(conv2d("conv_stem", h, w, 3, 32, kernel=3, stride=2))
    h = w = input_size // 2
    c_in = 32

    for stage_idx, (t, c, n, s, kernel) in enumerate(_MBCONV_STAGES):
        for block_idx in range(n):
            stride = s if block_idx == 0 else 1
            prefix = f"mb{stage_idx + 1}_{block_idx + 1}"
            hidden = c_in * t
            se_dim = max(1, int(c_in * _SE_RATIO))
            block_input_idx = len(layers) - 1
            if t != 1:
                layers.append(
                    conv2d(f"{prefix}_expand", h, w, c_in, hidden,
                           kernel=1, stride=1, padding=0)
                )
            layers.append(
                dwconv2d(f"{prefix}_dw", h, w, hidden, kernel=kernel,
                         stride=stride)
            )
            oh, ow = h // stride, w // stride
            layers.append(
                matmul(f"{prefix}_se_reduce", 1, se_dim, hidden)
            )
            layers.append(
                matmul(f"{prefix}_se_expand", 1, hidden, se_dim)
            )
            layers.append(
                conv2d(f"{prefix}_project", oh, ow, hidden, c,
                       kernel=1, stride=1, padding=0)
            )
            if stride == 1 and c_in == c:
                layers.append(
                    elementwise(f"{prefix}_add", oh * ow * c, operands=2)
                )
                skips.append(SkipEdge(block_input_idx, len(layers) - 1))
            h, w = oh, ow
            c_in = c

    layers.append(
        conv2d("conv_head", h, w, c_in, 1280, kernel=1, stride=1, padding=0)
    )
    layers.append(pool2d("avgpool", h, w, 1280, kernel=h))
    layers.append(matmul("fc", 1, 1000, 1280))

    return ModelGraph(
        name="EfficientNet-b0",
        abbr="EF.",
        layers=tuple(layers),
        skip_edges=tuple(skips),
        qos_target_ms=2.8,
        domain="Computer Vision",
        model_type="DwConv",
    )
