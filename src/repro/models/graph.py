"""Model graphs: ordered layer sequences with skip edges and layer blocks.

A :class:`ModelGraph` is a topologically ordered list of
:class:`~repro.models.layers.LayerSpec` entries.  Execution is sequential
(one layer at a time per NPU group, as on real NPUs); *skip edges* record
residual connections whose producer tensor stays live past the next layer —
they lengthen reuse distances, which is exactly the effect Figure 3(b) of the
paper measures.

Layer blocks (:func:`segment_into_blocks`) are the granularity at which
CaMDN's layer-block mapping (LBM) keeps intermediate tensors resident in the
shared cache (Section III-C2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Sequence

from ..errors import ModelGraphError
from .layers import LayerSpec


@dataclass(frozen=True)
class SkipEdge:
    """A residual connection from layer ``producer`` to layer ``consumer``.

    Indices refer to positions in :attr:`ModelGraph.layers`; the tensor
    produced by ``producer`` is re-read when ``consumer`` executes.
    """

    producer: int
    consumer: int

    def __post_init__(self) -> None:
        if self.producer < 0:
            raise ModelGraphError("skip edge producer index is negative")
        if self.consumer <= self.producer:
            raise ModelGraphError(
                "skip edge must point forward in execution order"
            )


@dataclass(frozen=True)
class ModelGraph:
    """A DNN model as an ordered layer sequence.

    Attributes:
        name: full model name (e.g. ``"ResNet50"``).
        abbr: paper abbreviation (e.g. ``"RS."``).
        layers: execution-ordered layer specs.
        skip_edges: residual connections (see :class:`SkipEdge`).
        qos_target_ms: latency target from paper Table I.
        domain: application domain label from Table I.
        model_type: paper model-type label (Conv / DwConv / Trans / LSTM).
    """

    name: str
    abbr: str
    layers: Sequence[LayerSpec]
    skip_edges: Sequence[SkipEdge] = field(default_factory=tuple)
    qos_target_ms: float = 0.0
    domain: str = ""
    model_type: str = ""

    def __post_init__(self) -> None:
        if not self.layers:
            raise ModelGraphError(f"{self.name}: model has no layers")
        names = [layer.name for layer in self.layers]
        if len(set(names)) != len(names):
            raise ModelGraphError(f"{self.name}: duplicate layer names")
        for edge in self.skip_edges:
            if edge.consumer >= len(self.layers):
                raise ModelGraphError(
                    f"{self.name}: skip edge consumer {edge.consumer} is out "
                    f"of range"
                )
        if self.qos_target_ms < 0:
            raise ModelGraphError(f"{self.name}: negative QoS target")

    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self) -> Iterator[LayerSpec]:
        return iter(self.layers)

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    @property
    def total_macs(self) -> int:
        """Total multiply-accumulates for one inference."""
        return sum(layer.macs for layer in self.layers)

    @property
    def total_weight_elems(self) -> int:
        """Total static parameter elements."""
        return sum(layer.weight_elems for layer in self.layers)

    @property
    def total_activation_elems(self) -> int:
        """Total activation elements produced across all layers."""
        return sum(layer.output_elems for layer in self.layers)

    @property
    def peak_intermediate_elems(self) -> int:
        """Largest single inter-layer tensor (elements)."""
        return max(layer.output_elems for layer in self.layers)

    def compulsory_traffic_elems(self) -> int:
        """Minimum possible off-chip traffic for one inference: every weight
        read once, model input read once, model output written once.

        This is the lower bound an ideal (infinite) cache would achieve; the
        gap between it and simulated traffic is the refetch overhead the
        paper attacks.
        """
        return (
            self.total_weight_elems
            + self.layers[0].input_elems
            + self.layers[-1].output_elems
        )

    def skip_consumers(self, producer: int) -> List[int]:
        """Indices of layers that re-read layer ``producer``'s output via a
        skip edge (excluding the immediate successor)."""
        return sorted(
            edge.consumer
            for edge in self.skip_edges
            if edge.producer == producer
        )

    def last_use(self, producer: int) -> int:
        """Index of the last layer that reads layer ``producer``'s output."""
        consumers = self.skip_consumers(producer)
        direct = producer + 1 if producer + 1 < len(self.layers) else producer
        return max([direct] + consumers)

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.name} ({self.abbr}): {self.num_layers} layers, "
            f"{self.total_macs / 1e9:.2f} GMACs, "
            f"{self.total_weight_elems / 1e6:.2f} M weight elems, "
            f"QoS {self.qos_target_ms} ms"
        )


@dataclass(frozen=True)
class LayerBlock:
    """A contiguous run of layers treated as one LBM unit.

    Attributes:
        start: index of the first layer in the block (inclusive).
        end: index one past the last layer in the block (exclusive).
        intermediate_elems: peak bytes-agnostic element count of intermediate
            tensors that must stay cache-resident if the block runs in LBM
            mode.
    """

    start: int
    end: int
    intermediate_elems: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ModelGraphError("invalid layer block bounds")

    @property
    def num_layers(self) -> int:
        return self.end - self.start

    def contains(self, layer_index: int) -> bool:
        return self.start <= layer_index < self.end


def segment_into_blocks(
    graph: ModelGraph,
    max_intermediate_bytes: int,
    dtype_bytes: int = 1,
) -> List[LayerBlock]:
    """Segment ``graph`` into layer blocks for LBM.

    The paper segments models into layer blocks so that LBM never pins too
    much cache for too long (Section III-C2).  A greedy scan extends the
    current block while the *live* intermediate footprint (the tensors that
    would have to stay cache-resident, including skip-edge producers) stays
    within ``max_intermediate_bytes`` and the block does not cross a skip
    edge boundary in a way that would leave a producer un-cached.

    Args:
        graph: the model to segment.
        max_intermediate_bytes: cache budget a block may pin.
        dtype_bytes: bytes per tensor element.

    Returns:
        Blocks covering every layer exactly once, in order.
    """
    if max_intermediate_bytes <= 0:
        raise ModelGraphError("max_intermediate_bytes must be positive")

    blocks: List[LayerBlock] = []
    start = 0
    n = len(graph.layers)
    for i in range(n):
        peak = _block_peak(graph, start, i + 1, dtype_bytes)
        block_len = i - start + 1
        if peak > max_intermediate_bytes and block_len > 1:
            # Close the block before this layer and restart.
            prev_peak = _block_peak(graph, start, i, dtype_bytes)
            blocks.append(LayerBlock(start, i, prev_peak // dtype_bytes))
            start = i
    blocks.append(
        LayerBlock(start, n, _block_peak(graph, start, n, dtype_bytes)
                   // dtype_bytes)
    )
    return blocks


def _block_peak(
    graph: ModelGraph, start: int, end: int, dtype_bytes: int
) -> int:
    """Peak live intermediate footprint (bytes) of layers [start, end).

    Measured *during* each layer's execution: the outputs of earlier
    in-block layers still needed at or after layer ``i`` (which includes
    layer ``i``'s direct input) plus layer ``i``'s own output if it stays
    in-block (the tail layer's output streams to DRAM under LBM).
    """
    peak = 0
    for i in range(start, end):
        live = graph.layers[i].output_elems if i < end - 1 else 0
        for j in range(start, i):
            if graph.last_use(j) >= i and graph.layers[j].output_elems:
                live += graph.layers[j].output_elems
        peak = max(peak, live * dtype_bytes)
    return peak
