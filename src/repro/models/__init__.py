"""DNN model substrate: benchmark models as shape-accurate layer graphs.

The paper evaluates eight models (Table I) spanning convolution, depth-wise
convolution, transformer and LSTM workloads.  Cache behaviour depends only on
tensor shapes, reuse structure and MAC counts, so each model is represented
as a :class:`~repro.models.graph.ModelGraph` of
:class:`~repro.models.layers.LayerSpec` entries rather than real weights.
"""

from .layers import (
    LayerKind,
    LayerSpec,
    attention_matmul,
    conv2d,
    dwconv2d,
    elementwise,
    matmul,
    pool2d,
)
from .graph import ModelGraph, SkipEdge, segment_into_blocks
from .zoo import (
    BENCHMARK_MODELS,
    MODEL_BUILDERS,
    QOS_TARGETS_MS,
    build_model,
    load_benchmark_suite,
)

__all__ = [
    "LayerKind",
    "LayerSpec",
    "ModelGraph",
    "SkipEdge",
    "attention_matmul",
    "conv2d",
    "dwconv2d",
    "elementwise",
    "matmul",
    "pool2d",
    "segment_into_blocks",
    "BENCHMARK_MODELS",
    "MODEL_BUILDERS",
    "QOS_TARGETS_MS",
    "build_model",
    "load_benchmark_suite",
]
