"""BERT-base layer graph (Devlin et al., NAACL 2019) — Table I "BE."."""

from __future__ import annotations

from typing import List

from .graph import ModelGraph, SkipEdge
from .layers import LayerSpec, elementwise, matmul
from .transformer_common import encoder_stack


def build_bert_base(seq_len: int = 128) -> ModelGraph:
    """Build the BERT-base graph at sequence length ``seq_len``.

    Token/position embeddings are lookups (no MACs) modeled as an
    element-wise layer producing the embedded sequence; 12 encoder blocks at
    d=768, 12 heads, FFN 3072; pooler matmul on the CLS token.
    """
    d_model, heads, d_ff, blocks = 768, 12, 3072, 12

    layers: List[LayerSpec] = [
        elementwise("embeddings", seq_len * d_model, operands=3)
    ]
    skips: List[SkipEdge] = []
    encoder_stack("enc", blocks, seq_len, d_model, heads, d_ff, layers,
                  skips)
    layers.append(matmul("pooler", 1, d_model, d_model))

    return ModelGraph(
        name="BERT-base",
        abbr="BE.",
        layers=tuple(layers),
        skip_edges=tuple(skips),
        qos_target_ms=40.0,
        domain="Natural Language Processing",
        model_type="Trans",
    )
