"""Benchmark model registry (paper Table I).

========================  =====  ======  =======
Model                     Abbr.  Type    QoS(ms)
========================  =====  ======  =======
ResNet50                  RS.    Conv    6.7
MobileNet-v2              MB.    DwConv  2.8
EfficientNet-b0           EF.    DwConv  2.8
ViT-base-16               VT.    Trans   40.0
BERT-base                 BE.    Trans   40.0
GNMT                      GN.    LSTM    6.7
Wav2Vec2-base             WV.    Trans   16.7
PointPillars              PP.    Conv    100.0
========================  =====  ======  =======
"""

from __future__ import annotations

import functools
from typing import Callable, Dict, List

from ..errors import ModelGraphError
from .bert import build_bert_base
from .efficientnet import build_efficientnet_b0
from .gnmt import build_gnmt
from .graph import ModelGraph
from .mobilenet import build_mobilenet_v2
from .pointpillars import build_pointpillars
from .resnet import build_resnet50
from .vit import build_vit_base_16
from .wav2vec2 import build_wav2vec2_base

#: Table I model order, keyed by paper abbreviation.
MODEL_BUILDERS: Dict[str, Callable[[], ModelGraph]] = {
    "RS.": build_resnet50,
    "MB.": build_mobilenet_v2,
    "EF.": build_efficientnet_b0,
    "VT.": build_vit_base_16,
    "BE.": build_bert_base,
    "GN.": build_gnmt,
    "WV.": build_wav2vec2_base,
    "PP.": build_pointpillars,
}

#: Paper Table I abbreviations in presentation order.
BENCHMARK_MODELS = tuple(MODEL_BUILDERS)

#: Paper Table I QoS latency targets in milliseconds.
QOS_TARGETS_MS: Dict[str, float] = {
    "RS.": 6.7,
    "MB.": 2.8,
    "EF.": 2.8,
    "VT.": 40.0,
    "BE.": 40.0,
    "GN.": 6.7,
    "WV.": 16.7,
    "PP.": 100.0,
}


@functools.lru_cache(maxsize=None)
def build_model(key: str) -> ModelGraph:
    """Build (and cache) a benchmark model by abbreviation or full name.

    Raises:
        ModelGraphError: ``key`` names no benchmark model.
    """
    if key in MODEL_BUILDERS:
        return MODEL_BUILDERS[key]()
    for abbr, builder in MODEL_BUILDERS.items():
        graph = builder()
        if graph.name == key:
            return graph
    raise ModelGraphError(
        f"unknown model {key!r}; known: {sorted(MODEL_BUILDERS)}"
    )


def load_benchmark_suite() -> List[ModelGraph]:
    """Return all eight Table I models in paper order."""
    return [build_model(abbr) for abbr in BENCHMARK_MODELS]
