"""GNMT layer graph (Wu et al., 2016) — Table I "GN.".

GNMT is an 8-layer encoder / 8-layer decoder LSTM seq2seq model with
inter-layer residual connections and attention.  Each LSTM layer is lowered
to its gate GEMM with the time dimension folded into ``M``: an LSTM layer
over ``T`` steps with hidden size ``H`` computes
``[T, 2H] x [2H, 4H]`` worth of MACs against a weight matrix that is reused
across all ``T`` steps — the long-reuse-distance weight traffic that makes
LSTMs cache-sensitive.
"""

from __future__ import annotations

from typing import List

from .graph import ModelGraph, SkipEdge
from .layers import LayerSpec, attention_matmul, elementwise, matmul

_HIDDEN = 1024
_ENC_LAYERS = 8
_DEC_LAYERS = 8
_VOCAB = 32000


def build_gnmt(seq_len: int = 25) -> ModelGraph:
    """Build the GNMT graph at source/target length ``seq_len``."""
    layers: List[LayerSpec] = []
    skips: List[SkipEdge] = []

    layers.append(elementwise("src_embed", seq_len * _HIDDEN, operands=1))
    # Encoder: layer 1 is bidirectional (2x gate GEMM), 2..8 unidirectional
    # with residual connections from layer 3 on (as in the GNMT paper).
    layers.append(
        matmul("enc1_gates", 2 * seq_len, 4 * _HIDDEN, 2 * _HIDDEN)
    )
    for i in range(2, _ENC_LAYERS + 1):
        residual_src = len(layers) - 1
        layers.append(
            matmul(f"enc{i}_gates", seq_len, 4 * _HIDDEN, 2 * _HIDDEN)
        )
        if i >= 3:
            layers.append(
                elementwise(f"enc{i}_res", seq_len * _HIDDEN, operands=2)
            )
            skips.append(SkipEdge(residual_src, len(layers) - 1))

    layers.append(elementwise("tgt_embed", seq_len * _HIDDEN, operands=1))
    layers.append(
        attention_matmul("attn_scores", seq_len, _HIDDEN, heads=1)
    )
    layers.append(
        attention_matmul("attn_context", seq_len, _HIDDEN, heads=1,
                         transposed=True)
    )
    for i in range(1, _DEC_LAYERS + 1):
        residual_src = len(layers) - 1
        layers.append(
            matmul(f"dec{i}_gates", seq_len, 4 * _HIDDEN, 2 * _HIDDEN)
        )
        if i >= 3:
            layers.append(
                elementwise(f"dec{i}_res", seq_len * _HIDDEN, operands=2)
            )
            skips.append(SkipEdge(residual_src, len(layers) - 1))

    layers.append(matmul("softmax_proj", seq_len, _VOCAB, _HIDDEN))

    return ModelGraph(
        name="GNMT",
        abbr="GN.",
        layers=tuple(layers),
        skip_edges=tuple(skips),
        qos_target_ms=6.7,
        domain="Natural Language Processing",
        model_type="LSTM",
    )
