"""ViT-base-16 layer graph (Dosovitskiy et al., ICLR 2021) — Table I "VT."."""

from __future__ import annotations

from typing import List

from .graph import ModelGraph, SkipEdge
from .layers import LayerSpec, matmul
from .transformer_common import encoder_stack


def build_vit_base_16(input_size: int = 224) -> ModelGraph:
    """Build the ViT-base-16 graph.

    Patch embedding is the 16x16 stride-16 convolution lowered to a matmul
    over ``(input_size/16)^2`` patches; 12 encoder blocks at d=768, 12 heads,
    FFN 3072; classification head on the CLS token.
    """
    patches = (input_size // 16) ** 2
    seq = patches + 1  # CLS token
    d_model, heads, d_ff, blocks = 768, 12, 3072, 12

    layers: List[LayerSpec] = [
        matmul("patch_embed", patches, d_model, 16 * 16 * 3)
    ]
    skips: List[SkipEdge] = []
    encoder_stack("enc", blocks, seq, d_model, heads, d_ff, layers, skips)
    layers.append(matmul("head", 1, 1000, d_model))

    return ModelGraph(
        name="ViT-base-16",
        abbr="VT.",
        layers=tuple(layers),
        skip_edges=tuple(skips),
        qos_target_ms=40.0,
        domain="Computer Vision",
        model_type="Trans",
    )
