"""Memoized prepared-workload layer (the simulation fast path).

Every ``simulate()`` call used to re-derive the same pure, deterministic
per-model artifacts — systolic layer cycles, the offline mapping file,
transparent-cache access segments and the isolated-latency estimate —
before the engine could start.  Worse, slack-aware policies recomputed the
isolated-latency estimate through an ``lru_cache`` keyed on the whole
:class:`~repro.models.graph.ModelGraph`, hashing hundreds of frozen layer
dataclasses on every bandwidth reallocation.

This module factors that work into two cacheable objects:

* :class:`PreparedModel` — everything derivable from ``(model, SoCConfig)``
  alone, shared by every policy;
* :class:`PreparedWorkload` — a policy-tagged bundle of prepared models for
  one multi-tenant scenario, keyed by ``(policy, model_keys, SoCConfig)``.

Both caches are process-wide: repeated ``simulate()`` calls across tests,
benchmarks and experiment sweeps reuse them instead of re-solving.  Cache
hit/miss counters are exposed so tests can assert the fast path is taken.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

from ..cache.transparent import AccessSegment, layer_access_segments
from ..config import SoCConfig
from ..models.graph import ModelGraph
from ..models.zoo import build_model
from ..npu.systolic import SystolicModel
from .mapper.layer_mapper import LayerMapper
from .mct import ModelMappingFile


@dataclass(frozen=True)
class CacheInfo:
    """Hit/miss counters of one prepared-object cache."""

    hits: int
    misses: int
    size: int


@dataclass(frozen=True)
class PreparedModel:
    """Pure per-``(model, SoC)`` artifacts shared by every policy.

    Attributes:
        graph: the model's layer graph.
        soc: the SoC the artifacts were derived for.
        layer_cycles: single-core systolic cycles per layer.
        mapping_file: the offline CaMDN mapping (default mapper knobs).
        segments: per-layer transparent-cache access segments (compulsory
            fetches plus scratchpad-tiling refetch), used by the
            shared-cache baselines.
        isolated_latency_s: crude single-tenant latency estimate (the
            ``T_isolated`` proxy slack-aware policies compare against).
    """

    graph: ModelGraph
    soc: SoCConfig
    layer_cycles: Tuple[int, ...]
    mapping_file: ModelMappingFile
    segments: Tuple[Tuple[AccessSegment, ...], ...]
    isolated_latency_s: float


@dataclass(frozen=True)
class PreparedWorkload:
    """Prepared models for one ``(policy, model mix, SoC)`` scenario."""

    policy: str
    model_keys: Tuple[str, ...]
    soc: SoCConfig
    models: Tuple[PreparedModel, ...]

    def graphs(self) -> Tuple[ModelGraph, ...]:
        """One graph per co-located stream, in stream order."""
        return tuple(m.graph for m in self.models)


_MODEL_CACHE: Dict[tuple, PreparedModel] = {}
_WORKLOAD_CACHE: Dict[tuple, PreparedWorkload] = {}
_STATS = {"model_hits": 0, "model_misses": 0,
          "workload_hits": 0, "workload_misses": 0}


def _build_segments(
    graph: ModelGraph, mapping_file: ModelMappingFile, soc: SoCConfig
) -> Tuple[Tuple[AccessSegment, ...], ...]:
    """Per-layer segments: compulsory fetches + tiling refetch traffic."""
    dtype = soc.dtype_bytes
    per_layer = []
    for i, layer in enumerate(graph.layers):
        segments = list(layer_access_segments(graph, i, dtype))
        compulsory = layer.total_elems * dtype
        tiled = mapping_file.mcts[i].lwm[0].dram_bytes
        refetch = max(tiled - compulsory, 0.0)
        if refetch > 0:
            working_set = layer.total_elems * dtype
            segments.append(
                AccessSegment(
                    bytes_=refetch,
                    reuse_distance=float(working_set),
                )
            )
        per_layer.append(tuple(segments))
    return tuple(per_layer)


def _isolated_latency_s(graph: ModelGraph, soc: SoCConfig) -> float:
    """Max of compute-bound and memory-bound single-tenant estimates."""
    compute = graph.total_macs / (
        soc.npu.macs_per_cycle * soc.npu.frequency_hz
    )
    memory = (
        graph.compulsory_traffic_elems() * soc.dtype_bytes
        / soc.dram.total_bandwidth_bytes_per_s
    )
    return max(compute, memory)


def prepare_model(
    model: Union[str, ModelGraph], soc: Optional[SoCConfig] = None
) -> PreparedModel:
    """Return the (cached) prepared artifacts of one model on one SoC.

    Args:
        model: a Table I abbreviation / model name, or a built graph.
        soc: hardware configuration (defaults to paper Table II).

    The memo key is ``(graph.name, soc)`` — model graphs are interned by
    :func:`~repro.models.zoo.build_model`, and every derivation below is a
    pure function of the graph and the SoC parameters.
    """
    soc = soc or SoCConfig()
    graph = model if isinstance(model, ModelGraph) else build_model(model)
    key = (graph.name, soc)
    cached = _MODEL_CACHE.get(key)
    # Guard the name key with an identity check: zoo graphs are interned
    # by build_model, so a different object under a cached name is a
    # user-built graph that must not inherit the zoo model's artifacts.
    if cached is not None and cached.graph is graph:
        _STATS["model_hits"] += 1
        return cached
    _STATS["model_misses"] += 1
    systolic = SystolicModel(soc.npu)
    mapping_file = LayerMapper(soc).map_model(graph)
    prepared = PreparedModel(
        graph=graph,
        soc=soc,
        layer_cycles=tuple(
            systolic.layer_cycles(layer) for layer in graph.layers
        ),
        mapping_file=mapping_file,
        segments=_build_segments(graph, mapping_file, soc),
        isolated_latency_s=_isolated_latency_s(graph, soc),
    )
    _MODEL_CACHE[key] = prepared
    return prepared


def prepare_workload(
    policy: str,
    model_keys: Sequence[str],
    soc: Optional[SoCConfig] = None,
) -> PreparedWorkload:
    """Return the (cached) prepared bundle for one multi-tenant scenario.

    Keyed by ``(policy, model_keys, soc)``.  Per-model artifacts are shared
    across policies through :func:`prepare_model`, so a new policy over a
    known model mix only pays for the bundle, never for re-solving.
    """
    soc = soc or SoCConfig()
    key = (policy, tuple(model_keys), soc)
    cached = _WORKLOAD_CACHE.get(key)
    if cached is not None:
        _STATS["workload_hits"] += 1
        return cached
    _STATS["workload_misses"] += 1
    prepared = PreparedWorkload(
        policy=policy,
        model_keys=tuple(model_keys),
        soc=soc,
        models=tuple(prepare_model(k, soc) for k in model_keys),
    )
    _WORKLOAD_CACHE[key] = prepared
    return prepared


def prepared_cache_info() -> Dict[str, CacheInfo]:
    """Hit/miss counters for both prepared-object caches."""
    return {
        "models": CacheInfo(
            hits=_STATS["model_hits"],
            misses=_STATS["model_misses"],
            size=len(_MODEL_CACHE),
        ),
        "workloads": CacheInfo(
            hits=_STATS["workload_hits"],
            misses=_STATS["workload_misses"],
            size=len(_WORKLOAD_CACHE),
        ),
    }


def clear_prepared_caches() -> None:
    """Drop all prepared objects and reset counters (for tests).

    Also clears the underlying in-process mapping memos (solved loop
    nests and model mapping files) so a subsequent run re-derives them.
    The on-disk mapping-file store is left intact (point
    ``REPRO_MAPPING_CACHE_DIR`` at an empty dir — or set it empty to
    disable — for a fully cold run).
    """
    from .mapper.solver import SubspaceSolver

    _MODEL_CACHE.clear()
    _WORKLOAD_CACHE.clear()
    LayerMapper._SHARED_CACHE.clear()
    SubspaceSolver._SOLVE_CACHE.clear()
    for stat in _STATS:
        _STATS[stat] = 0
