"""Hardware cache page table (Section III-B3, Figure 5(b)).

Each NPU carries a CPT that translates the running model's *virtual cache
address* (``vcaddr``) into a *physical cache address* (``pcaddr``).  The
virtual cache page number (``vcpn``, upper bits of the vcaddr) indexes the
CPT to obtain a physical cache page number (``pcpn``); the page offset is
carried through.

The pcaddr is divided into four bit-fields, low to high::

    | way index | set index | slice index | byte offset |
      (high)                                 (low)

so that consecutive lines of a page interleave across all slices for higher
cache bandwidth utilization — the property verified by
``tests/core/test_cpt.py``.

For the paper's 16 MiB cache with 32 KiB pages the CPT holds at most 512
entries of 3 bytes (pcpn + valid bit): a 1.5 KiB SRAM, 0.9 % of NPU area
(Table III).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..config import CacheConfig
from ..errors import CacheAddressError, CPTError


@dataclass(frozen=True)
class PhysicalCacheAddress:
    """A decoded physical cache address.

    Attributes:
        pcpn: physical cache page number.
        slice_index: target cache slice.
        set_index: set within the slice.
        way_index: way within the set (within the NPU subspace ways).
        byte_offset: offset within the cache line.
    """

    pcpn: int
    slice_index: int
    set_index: int
    way_index: int
    byte_offset: int

    def as_tuple(self) -> tuple:
        return (self.slice_index, self.set_index, self.way_index,
                self.byte_offset)


class CachePageTable:
    """Per-NPU vcaddr -> pcaddr translation table."""

    #: Bytes of SRAM per CPT entry (pcpn + valid bit), per the paper.
    ENTRY_BYTES = 3

    def __init__(self, cache: CacheConfig) -> None:
        self.cache = cache
        self.max_entries = cache.num_pages
        self._table: Dict[int, int] = {}
        # Decode constants, precomputed once: CPT entries are installed
        # and translated on the allocator's per-layer resize path, so
        # the per-call config attribute walks are hoisted here.
        self._page_bytes = cache.page_bytes
        self._line_bytes = cache.line_bytes
        self._lines_per_page = cache.page_bytes // cache.line_bytes
        self._num_slices = cache.num_slices
        self._sets_per_slice = cache.sets_per_slice
        self._npu_ways = cache.npu_ways
        self._way_base = cache.num_ways - cache.npu_ways

    # ------------------------------------------------------------------
    # Table management
    # ------------------------------------------------------------------

    @property
    def num_mapped(self) -> int:
        """Number of valid entries."""
        return len(self._table)

    @property
    def sram_bytes(self) -> int:
        """SRAM footprint of the table (paper: 1.5 KiB for 512 entries)."""
        return self.max_entries * self.ENTRY_BYTES

    def map(self, vcpn: int, pcpn: int) -> None:
        """Install translation ``vcpn -> pcpn``.

        Raises:
            CPTError: vcpn/pcpn out of range or vcpn already valid.
        """
        # Range checks inlined (_check_vcpn) — one entry is installed
        # per delta page of every region grow.
        if not 0 <= vcpn < self.max_entries:
            raise CPTError(
                f"vcpn {vcpn} out of range [0, {self.max_entries})"
            )
        if not 0 <= pcpn < self.max_entries:
            raise CPTError(f"pcpn {pcpn} out of range")
        if vcpn in self._table:
            raise CPTError(f"vcpn {vcpn} already mapped")
        self._table[vcpn] = pcpn

    def unmap(self, vcpn: int) -> int:
        """Invalidate entry ``vcpn``; returns the released pcpn."""
        if not 0 <= vcpn < self.max_entries:
            raise CPTError(
                f"vcpn {vcpn} out of range [0, {self.max_entries})"
            )
        pcpn = self._table.pop(vcpn, None)
        if pcpn is None:
            raise CPTError(f"vcpn {vcpn} is not mapped")
        return pcpn

    def remap_all(self, pcpns: List[int]) -> None:
        """Replace the whole table: vcpn ``i`` maps to ``pcpns[i]``.

        This is the bulk "modify CPT" step of the online allocation flow
        (Figure 6): after a page request succeeds, the granted physical
        pages back the model's contiguous virtual space.
        """
        if len(pcpns) > self.max_entries:
            raise CPTError(
                f"{len(pcpns)} entries exceed CPT capacity "
                f"{self.max_entries}"
            )
        self._table = {vcpn: pcpn for vcpn, pcpn in enumerate(pcpns)}

    def lookup(self, vcpn: int) -> Optional[int]:
        """Return the pcpn for ``vcpn`` or ``None`` if invalid."""
        self._check_vcpn(vcpn)
        return self._table.get(vcpn)

    def mapped_vcpns(self) -> List[int]:
        """Sorted valid vcpns."""
        return sorted(self._table)

    # ------------------------------------------------------------------
    # Address translation
    # ------------------------------------------------------------------

    def translate(self, vcaddr: int) -> PhysicalCacheAddress:
        """Translate a virtual cache address into a decoded pcaddr.

        Raises:
            CacheAddressError: vcaddr out of the mapped virtual space or the
                page is invalid (the hardware would raise a fault).
        """
        if vcaddr < 0:
            raise CacheAddressError(f"negative vcaddr {vcaddr:#x}")
        vcpn, page_offset = divmod(vcaddr, self._page_bytes)
        if vcpn >= self.max_entries:
            raise CacheAddressError(
                f"vcaddr {vcaddr:#x} beyond virtual space"
            )
        pcpn = self._table.get(vcpn)
        if pcpn is None:
            raise CacheAddressError(f"vcpn {vcpn} has no valid mapping")
        return self.decode_paddr(pcpn, page_offset)

    def decode_paddr(self, pcpn: int,
                     page_offset: int) -> PhysicalCacheAddress:
        """Decode (pcpn, offset) into slice/set/way/byte fields.

        Line-interleaving: the global line number within the NPU subspace is
        ``pcpn * lines_per_page + line_in_page``; its low bits select the
        slice, the next bits the set, the high bits the way — matching
        Figure 5(b) (byte offset lowest, then slice, set, way).
        """
        if not 0 <= page_offset < self._page_bytes:
            raise CacheAddressError(f"page offset {page_offset} out of range")
        line_bytes = self._line_bytes
        line_global = pcpn * self._lines_per_page + \
            page_offset // line_bytes
        byte_offset = page_offset % line_bytes

        slice_index = line_global % self._num_slices
        per_slice = line_global // self._num_slices
        set_index = per_slice % self._sets_per_slice
        way_local = per_slice // self._sets_per_slice
        if way_local >= self._npu_ways:
            raise CacheAddressError(
                f"pcpn {pcpn} decodes beyond the NPU subspace ways"
            )
        # NPU ways occupy the high way indices (see WayMask).
        way_index = self._way_base + way_local
        return PhysicalCacheAddress(
            pcpn=pcpn,
            slice_index=slice_index,
            set_index=set_index,
            way_index=way_index,
            byte_offset=byte_offset,
        )

    def _check_vcpn(self, vcpn: int) -> None:
        if not 0 <= vcpn < self.max_entries:
            raise CPTError(
                f"vcpn {vcpn} out of range [0, {self.max_entries})"
            )
