"""Analytic area model (paper Table III, 45 nm).

The paper synthesizes the CaMDN architecture with Synopsys DC in a 45 nm
process and reports this breakdown:

===========  ==========  =====   ===========  ==========  =====
NPU                              Cache slice
-----------------------------   -------------------------------
Component    Area (um^2)  %      Component    Area (um^2)  %
===========  ==========  =====   ===========  ==========  =====
Scratchpad   6302k       79.7    Data array   21878k      88.7
PE array     1302k       16.5    Tag array    2398k       9.7
CPT          73k         0.9     NEC          66k         0.3
others       228k        2.9     others       334k        1.3
total        7905k       100.0   total        24676k      100.0
===========  ==========  =====   ===========  ==========  =====

We replace the synthesis flow with per-component area constants (um^2 per
SRAM bit / per PE / fixed logic) calibrated so the Table II configuration
reproduces the table above; the model then extrapolates to other
configurations (different scratchpad sizes, cache capacities, CPT entry
counts) for the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..config import SoCConfig

#: 45 nm single-port SRAM density for small scratchpad-style macros
#: (um^2 per bit), calibrated to 6302k um^2 for a 256 KiB scratchpad.
SPAD_UM2_PER_BIT = 6302e3 / (256 * 1024 * 8)

#: 45 nm high-density array macro (um^2 per bit), calibrated to 21878k um^2
#: for a 2 MiB cache-slice data array.
DATA_ARRAY_UM2_PER_BIT = 21878e3 / (2 * 1024 * 1024 * 8)

#: Tag array density (um^2 per bit): tag+state bits are latency-critical and
#: less dense; calibrated to 2398k um^2 for a 2048-set, 16-way slice.
_TAG_BITS_PER_LINE = 26
TAG_ARRAY_UM2_PER_BIT = 2398e3 / (2048 * 16 * _TAG_BITS_PER_LINE)

#: Area of one 8-bit MAC processing element with pipeline registers.
PE_UM2 = 1302e3 / (32 * 32)

#: CPT translation/indexing logic beyond its SRAM bits.
CPT_LOGIC_UM2 = 73e3 - 512 * 3 * 8 * SPAD_UM2_PER_BIT

#: NEC control logic (request decoder, dual interface, state machines).
NEC_LOGIC_UM2 = 66e3

#: Remaining NPU logic (instruction buffer, decoder, DMA, SIMD).
NPU_OTHERS_UM2 = 228e3

#: Remaining slice logic (cache controller, queues, interconnect port).
SLICE_OTHERS_UM2 = 334e3


@dataclass(frozen=True)
class AreaModel:
    """Area estimator bound to an SoC configuration."""

    soc: SoCConfig

    # -- NPU side -------------------------------------------------------

    def scratchpad_area(self) -> float:
        bits = self.soc.npu.scratchpad_bytes * 8
        return bits * SPAD_UM2_PER_BIT

    def pe_array_area(self) -> float:
        return self.soc.npu.pe_rows * self.soc.npu.pe_cols * PE_UM2

    def cpt_area(self) -> float:
        """CPT SRAM (max_entries x 3 bytes) plus translation logic."""
        from .cpt import CachePageTable

        entries = self.soc.cache.num_pages
        sram_bits = entries * CachePageTable.ENTRY_BYTES * 8
        return sram_bits * SPAD_UM2_PER_BIT + CPT_LOGIC_UM2

    def npu_others_area(self) -> float:
        return NPU_OTHERS_UM2

    def npu_total_area(self) -> float:
        return (
            self.scratchpad_area()
            + self.pe_array_area()
            + self.cpt_area()
            + self.npu_others_area()
        )

    # -- Cache slice side ----------------------------------------------

    def data_array_area(self) -> float:
        bits = self.soc.cache.slice_bytes * 8
        return bits * DATA_ARRAY_UM2_PER_BIT

    def tag_array_area(self) -> float:
        cache = self.soc.cache
        bits = cache.sets_per_slice * cache.num_ways * _TAG_BITS_PER_LINE
        return bits * TAG_ARRAY_UM2_PER_BIT

    def nec_area(self) -> float:
        return NEC_LOGIC_UM2

    def slice_others_area(self) -> float:
        return SLICE_OTHERS_UM2

    def slice_total_area(self) -> float:
        return (
            self.data_array_area()
            + self.tag_array_area()
            + self.nec_area()
            + self.slice_others_area()
        )

    # -- Paper-facing overhead ratios ------------------------------------

    def cpt_overhead_fraction(self) -> float:
        """CPT share of total NPU area (paper: 0.9 %)."""
        return self.cpt_area() / self.npu_total_area()

    def nec_overhead_fraction(self) -> float:
        """NEC share of total slice area (paper: 0.3 %)."""
        return self.nec_area() / self.slice_total_area()

    def cpt_sram_bytes(self) -> int:
        """CPT SRAM footprint (paper: 1.5 KiB for a 16 MiB cache)."""
        from .cpt import CachePageTable

        return self.soc.cache.num_pages * CachePageTable.ENTRY_BYTES


def area_breakdown_table(soc: SoCConfig | None = None
                         ) -> Dict[str, List[Tuple[str, float, float]]]:
    """Reproduce Table III: rows of (component, area_um2, percent).

    Returns:
        ``{"NPU": [...], "Cache Slice": [...]}`` with rows ordered as the
        paper prints them, totals last.
    """
    model = AreaModel(soc or SoCConfig())
    npu_total = model.npu_total_area()
    slice_total = model.slice_total_area()
    npu_rows = [
        ("Scratchpad", model.scratchpad_area()),
        ("PE Array", model.pe_array_area()),
        ("CPT", model.cpt_area()),
        ("others", model.npu_others_area()),
        ("NPU total", npu_total),
    ]
    slice_rows = [
        ("Data Array", model.data_array_area()),
        ("Tag Array", model.tag_array_area()),
        ("NEC", model.nec_area()),
        ("others", model.slice_others_area()),
        ("Cache Slice total", slice_total),
    ]
    return {
        "NPU": [
            (name, area, 100.0 * area / npu_total)
            for name, area in npu_rows
        ],
        "Cache Slice": [
            (name, area, 100.0 * area / slice_total)
            for name, area in slice_rows
        ],
    }
