"""NPU-exclusive controller (Section III-B2, Figure 5(a)).

An NEC sits in each cache slice behind a dual interface: normal cache
requests keep flowing to the hardware cache controller, while NPU-specific
requests are handled by the NEC, which reads/writes data-array lines
directly and generates memory requests to the memory controllers.

The NEC replaces hardware-managed replacement with explicit, line-granular
semantics:

* basic — ``READ_LINE`` / ``WRITE_LINE`` (cache <-> NPU) and
  ``FETCH_LINE`` / ``WRITEBACK_LINE`` (memory <-> cache);
* advanced — ``BYPASS_READ`` / ``BYPASS_WRITE`` move non-reusable data
  straight between memory and the NPU without occupying cache space, and
  ``MULTICAST_READ`` / ``MULTICAST_BYPASS_READ`` combine identical requests
  from a group of NPUs running the same model, cutting memory and NoC
  traffic.

This module is *functional*: it moves line-sized values between a backing
memory, the slice data arrays and the requesting NPU, and counts the traffic
that the performance model consumes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..config import CacheConfig
from ..errors import CacheAddressError
from .cpt import PhysicalCacheAddress


class NECOp(enum.Enum):
    """NPU-controlled cache access semantics."""

    READ_LINE = "read_line"
    WRITE_LINE = "write_line"
    FETCH_LINE = "fetch_line"
    WRITEBACK_LINE = "writeback_line"
    BYPASS_READ = "bypass_read"
    BYPASS_WRITE = "bypass_write"
    MULTICAST_READ = "multicast_read"
    MULTICAST_BYPASS_READ = "multicast_bypass_read"


@dataclass(frozen=True)
class NECRequest:
    """One NPU-originated request at the NEC interface.

    Attributes:
        op: requested semantic.
        paddr: decoded physical cache address (``None`` for pure bypass
            ops, which never touch the data array).
        mem_addr: backing-memory line address for ops that touch DRAM.
        data: line value for writes.
        group_size: number of NPUs whose identical requests were combined
            (multicast ops; 1 otherwise).
    """

    op: NECOp
    paddr: Optional[PhysicalCacheAddress] = None
    mem_addr: Optional[int] = None
    data: Optional[int] = None
    group_size: int = 1


@dataclass
class NECStats:
    """Traffic counters maintained by one NEC."""

    op_counts: Dict[NECOp, int] = field(default_factory=dict)
    dram_read_lines: int = 0
    dram_write_lines: int = 0
    cache_read_lines: int = 0
    cache_write_lines: int = 0
    multicast_lines_saved: int = 0

    def record(self, op: NECOp, group_size: int = 1) -> None:
        self.op_counts[op] = self.op_counts.get(op, 0) + 1
        if op in (NECOp.FETCH_LINE, NECOp.BYPASS_READ,
                  NECOp.MULTICAST_BYPASS_READ):
            self.dram_read_lines += 1
        if op in (NECOp.WRITEBACK_LINE, NECOp.BYPASS_WRITE):
            self.dram_write_lines += 1
        if op in (NECOp.READ_LINE, NECOp.MULTICAST_READ):
            self.cache_read_lines += 1
        if op in (NECOp.WRITE_LINE, NECOp.FETCH_LINE):
            self.cache_write_lines += 1
        if op in (NECOp.MULTICAST_READ, NECOp.MULTICAST_BYPASS_READ):
            self.multicast_lines_saved += group_size - 1

    def dram_bytes(self, line_bytes: int) -> int:
        """Total DRAM traffic in bytes."""
        return (self.dram_read_lines + self.dram_write_lines) * line_bytes

    def merge(self, other: "NECStats") -> None:
        """Accumulate ``other`` into this counter set."""
        for op, count in other.op_counts.items():
            self.op_counts[op] = self.op_counts.get(op, 0) + count
        self.dram_read_lines += other.dram_read_lines
        self.dram_write_lines += other.dram_write_lines
        self.cache_read_lines += other.cache_read_lines
        self.cache_write_lines += other.cache_write_lines
        self.multicast_lines_saved += other.multicast_lines_saved


class NEC:
    """The NPU-exclusive controller of one cache slice.

    Args:
        slice_index: which slice this NEC belongs to.
        cache: shared cache configuration.
        data_array: the slice's data array, indexed ``[set][way]``; shared
            with the slice's normal cache controller.
        memory: backing main memory (line-address -> value mapping with
            ``read_line`` / ``write_line`` methods).
    """

    def __init__(self, slice_index: int, cache: CacheConfig,
                 data_array: List[List[Optional[int]]], memory) -> None:
        self.slice_index = slice_index
        self.cache = cache
        self.data_array = data_array
        self.memory = memory
        self.stats = NECStats()

    # ------------------------------------------------------------------

    def handle(self, request: NECRequest) -> Optional[Tuple[int, ...]]:
        """Handle one request; returns delivered line value(s) for reads."""
        op = request.op
        if op is NECOp.READ_LINE:
            value = self._read_array(request.paddr)
            self.stats.record(op)
            return (value,)
        if op is NECOp.WRITE_LINE:
            self._write_array(request.paddr, request.data)
            self.stats.record(op)
            return None
        if op is NECOp.FETCH_LINE:
            value = self.memory.read_line(request.mem_addr)
            self._write_array(request.paddr, value)
            self.stats.record(op)
            return None
        if op is NECOp.WRITEBACK_LINE:
            value = self._read_array(request.paddr)
            self.memory.write_line(request.mem_addr, value)
            self.stats.record(op)
            return None
        if op is NECOp.BYPASS_READ:
            value = self.memory.read_line(request.mem_addr)
            self.stats.record(op)
            return (value,)
        if op is NECOp.BYPASS_WRITE:
            self.memory.write_line(request.mem_addr, request.data)
            self.stats.record(op)
            return None
        if op is NECOp.MULTICAST_READ:
            value = self._read_array(request.paddr)
            self.stats.record(op, request.group_size)
            return tuple([value] * request.group_size)
        if op is NECOp.MULTICAST_BYPASS_READ:
            value = self.memory.read_line(request.mem_addr)
            self.stats.record(op, request.group_size)
            return tuple([value] * request.group_size)
        raise CacheAddressError(f"unknown NEC op {op!r}")

    # ------------------------------------------------------------------

    def _check(self, paddr: Optional[PhysicalCacheAddress]) -> \
            PhysicalCacheAddress:
        if paddr is None:
            raise CacheAddressError("NEC array op requires a pcaddr")
        if paddr.slice_index != self.slice_index:
            raise CacheAddressError(
                f"pcaddr routed to slice {self.slice_index} but targets "
                f"slice {paddr.slice_index}"
            )
        npu_way_base = self.cache.num_ways - self.cache.npu_ways
        if paddr.way_index < npu_way_base:
            raise CacheAddressError(
                f"way {paddr.way_index} is outside the NPU subspace"
            )
        return paddr

    def _read_array(self, paddr: Optional[PhysicalCacheAddress]) -> int:
        paddr = self._check(paddr)
        value = self.data_array[paddr.set_index][paddr.way_index]
        if value is None:
            raise CacheAddressError(
                f"read of uninitialized line set={paddr.set_index} "
                f"way={paddr.way_index} in slice {self.slice_index}"
            )
        return value

    def _write_array(self, paddr: Optional[PhysicalCacheAddress],
                     data: Optional[int]) -> None:
        paddr = self._check(paddr)
        if data is None:
            raise CacheAddressError("NEC write requires data")
        self.data_array[paddr.set_index][paddr.way_index] = data


class NECFabric:
    """Routes decoded requests to the per-slice NECs and aggregates stats."""

    def __init__(self, necs: List[NEC]) -> None:
        self.necs = necs

    def handle(self, request: NECRequest) -> Optional[Tuple[int, ...]]:
        """Route ``request`` to its target slice (bypass ops go to slice 0:
        they never touch a data array, so any NEC may generate the memory
        request)."""
        if request.paddr is None:
            return self.necs[0].handle(request)
        return self.necs[request.paddr.slice_index].handle(request)

    def total_stats(self) -> NECStats:
        """Aggregate stats across all slices."""
        total = NECStats()
        for nec in self.necs:
            total.merge(nec.stats)
        return total
