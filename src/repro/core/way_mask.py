"""Way-partition registers (Section III-B1).

CaMDN divides the shared cache into a general-purpose subspace and an NPU
subspace by way partitioning: a way-mask register per cache slice masks off
the ways reserved for the NPU subspace.  In Figure 4's example, ways 0-1
serve CPU traffic and ways 2-7 belong to the NPU subspace.
"""

from __future__ import annotations

from ..errors import ConfigError


class WayMask:
    """Per-slice way-mask register.

    The mask is a bit vector over ways; bit ``w`` set means way ``w`` belongs
    to the NPU subspace (masked off from the hardware-managed replacement
    policy of the general-purpose subspace).
    """

    def __init__(self, num_ways: int, npu_ways: int) -> None:
        if num_ways <= 0:
            raise ConfigError("num_ways must be positive")
        if not 0 <= npu_ways <= num_ways:
            raise ConfigError("npu_ways out of range")
        self.num_ways = num_ways
        # Assign the highest-numbered ways to the NPU, as in Figure 4.
        self._mask = ((1 << npu_ways) - 1) << (num_ways - npu_ways)

    @property
    def mask(self) -> int:
        """Raw register value (bit w set = way w is NPU-owned)."""
        return self._mask

    @property
    def npu_ways(self) -> int:
        """Number of ways currently assigned to the NPU subspace."""
        return bin(self._mask).count("1")

    @property
    def cpu_ways(self) -> int:
        """Number of ways left to general-purpose traffic."""
        return self.num_ways - self.npu_ways

    def is_npu_way(self, way: int) -> bool:
        """Does way ``way`` belong to the NPU subspace?"""
        self._check_way(way)
        return bool(self._mask >> way & 1)

    def npu_way_indices(self) -> list:
        """Sorted way indices belonging to the NPU subspace."""
        return [w for w in range(self.num_ways) if self.is_npu_way(w)]

    def cpu_way_indices(self) -> list:
        """Sorted way indices available to general-purpose replacement."""
        return [w for w in range(self.num_ways) if not self.is_npu_way(w)]

    def repartition(self, npu_ways: int) -> None:
        """Change the NPU/CPU split (different application scenarios adapt
        different proportions, per Section III-B1)."""
        if not 0 <= npu_ways <= self.num_ways:
            raise ConfigError("npu_ways out of range")
        self._mask = ((1 << npu_ways) - 1) << (self.num_ways - npu_ways)

    def _check_way(self, way: int) -> None:
        if not 0 <= way < self.num_ways:
            raise ConfigError(
                f"way {way} out of range [0, {self.num_ways})"
            )

    def __repr__(self) -> str:
        bits = format(self._mask, f"0{self.num_ways}b")
        return f"WayMask({bits})"
