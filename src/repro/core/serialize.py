"""Mapping-file serialization (the on-disk "Model Mapping File" of
Figure 6).

The offline mapping phase is expensive relative to dispatch, so real
deployments persist its output.  This module round-trips
:class:`~repro.core.mct.ModelMappingFile` objects through plain JSON —
compact, diff-able, and free of pickle's versioning hazards.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from ..errors import MappingError
from .mct import (
    CacheMapEntry,
    LoopLevel,
    MappingCandidate,
    MappingCandidateTable,
    ModelMappingFile,
)

#: Format version written into every file; bumped on schema changes.
SCHEMA_VERSION = 1


def _candidate_to_dict(candidate: MappingCandidate) -> dict:
    return {
        "kind": candidate.kind,
        "usage_limit_bytes": candidate.usage_limit_bytes,
        "cache_bytes": candidate.cache_bytes,
        "dram_bytes": candidate.dram_bytes,
        "compute_cycles": candidate.compute_cycles,
        "loop_table": [
            {"dim": l.dim, "factor": l.factor, "level": l.level}
            for l in candidate.loop_table
        ],
        "cache_map": [
            {
                "tensor": e.tensor,
                "vcaddr": e.vcaddr,
                "size": e.size,
                "reuse": e.reuse,
                "bypass": e.bypass,
            }
            for e in candidate.cache_map
        ],
    }


def _candidate_from_dict(data: dict) -> MappingCandidate:
    return MappingCandidate(
        kind=data["kind"],
        usage_limit_bytes=data["usage_limit_bytes"],
        cache_bytes=data["cache_bytes"],
        dram_bytes=data["dram_bytes"],
        compute_cycles=data["compute_cycles"],
        loop_table=tuple(
            LoopLevel(l["dim"], l["factor"], l["level"])
            for l in data["loop_table"]
        ),
        cache_map=tuple(
            CacheMapEntry(
                tensor=e["tensor"],
                vcaddr=e["vcaddr"],
                size=e["size"],
                reuse=e["reuse"],
                bypass=e["bypass"],
            )
            for e in data["cache_map"]
        ),
    )


def mapping_file_to_dict(mapping_file: ModelMappingFile) -> dict:
    """Serialize a mapping file to a JSON-ready dictionary."""
    return {
        "schema_version": SCHEMA_VERSION,
        "model_name": mapping_file.model_name,
        "usage_levels": list(mapping_file.usage_levels),
        "blocks": [list(block) for block in mapping_file.blocks],
        "mcts": [
            {
                "layer_index": mct.layer_index,
                "layer_name": mct.layer_name,
                "est_latency_s": mct.est_latency_s,
                "lwm": [_candidate_to_dict(c) for c in mct.lwm],
                "lbm": (
                    _candidate_to_dict(mct.lbm)
                    if mct.lbm is not None else None
                ),
            }
            for mct in mapping_file.mcts
        ],
    }


def mapping_file_from_dict(data: dict) -> ModelMappingFile:
    """Deserialize a mapping file (validating the schema version)."""
    version = data.get("schema_version")
    if version != SCHEMA_VERSION:
        raise MappingError(
            f"unsupported mapping-file schema {version!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    mcts = []
    for entry in data["mcts"]:
        mct = MappingCandidateTable(
            layer_index=entry["layer_index"],
            layer_name=entry["layer_name"],
        )
        mct.lwm = [_candidate_from_dict(c) for c in entry["lwm"]]
        mct.lbm = (
            _candidate_from_dict(entry["lbm"])
            if entry["lbm"] is not None else None
        )
        mct.est_latency_s = entry["est_latency_s"]
        mcts.append(mct)
    return ModelMappingFile(
        model_name=data["model_name"],
        usage_levels=tuple(data["usage_levels"]),
        mcts=mcts,
        blocks=[tuple(block) for block in data["blocks"]],
    )


def save_mapping_file(mapping_file: ModelMappingFile,
                      path: Union[str, Path]) -> Path:
    """Write a mapping file as JSON; returns the path written."""
    path = Path(path)
    path.write_text(
        json.dumps(mapping_file_to_dict(mapping_file), indent=1)
    )
    return path


def load_mapping_file(path: Union[str, Path]) -> ModelMappingFile:
    """Read a JSON mapping file.

    Raises:
        MappingError: the file is not a supported mapping file.
    """
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise MappingError(f"cannot read mapping file {path}: {exc}") \
            from exc
    return mapping_file_from_dict(data)
