"""On-disk serialization: mapping files, SoC configs, engine results.

The offline mapping phase is expensive relative to dispatch, so real
deployments persist its output.  This module round-trips
:class:`~repro.core.mct.ModelMappingFile` objects through plain JSON —
compact, diff-able, and free of pickle's versioning hazards.

It also provides the canonical-JSON plumbing behind the persistent sweep
cache (:mod:`repro.experiments.sweep`): stable dictionaries for
:class:`~repro.config.SoCConfig` and
:class:`~repro.sim.engine.SimulationResult`, plus a content hash over
canonical JSON.  Floats round-trip exactly (``repr``-based shortest
representation), so a deserialized result is byte-identical to the run
that produced it.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Union

from ..config import CacheConfig, DRAMConfig, NPUConfig, SoCConfig
from ..errors import MappingError
from .mct import (
    CacheMapEntry,
    LoopLevel,
    MappingCandidate,
    MappingCandidateTable,
    ModelMappingFile,
)

if TYPE_CHECKING:
    from ..sim.engine import SimulationResult

#: Format version written into every file; bumped on schema changes.
SCHEMA_VERSION = 1

#: Schema of serialized simulation results (sweep-cache entries); bump
#: whenever :class:`SimulationResult` / metrics records change shape.
#: v2: scenario-era results (offered/cancelled inference counts and the
#: offered-load ratio) — v1 entries predate the scenario subsystem and
#: are never deserialized.
#: v3: conservation-law accounting (completed/dropped inference counts).
RESULT_SCHEMA_VERSION = 3


def _candidate_to_dict(candidate: MappingCandidate) -> dict:
    return {
        "kind": candidate.kind,
        "usage_limit_bytes": candidate.usage_limit_bytes,
        "cache_bytes": candidate.cache_bytes,
        "dram_bytes": candidate.dram_bytes,
        "compute_cycles": candidate.compute_cycles,
        "loop_table": [
            {"dim": l.dim, "factor": l.factor, "level": l.level}
            for l in candidate.loop_table
        ],
        "cache_map": [
            {
                "tensor": e.tensor,
                "vcaddr": e.vcaddr,
                "size": e.size,
                "reuse": e.reuse,
                "bypass": e.bypass,
            }
            for e in candidate.cache_map
        ],
    }


def _candidate_from_dict(data: dict) -> MappingCandidate:
    return MappingCandidate(
        kind=data["kind"],
        usage_limit_bytes=data["usage_limit_bytes"],
        cache_bytes=data["cache_bytes"],
        dram_bytes=data["dram_bytes"],
        compute_cycles=data["compute_cycles"],
        loop_table=tuple(
            LoopLevel(l["dim"], l["factor"], l["level"])
            for l in data["loop_table"]
        ),
        cache_map=tuple(
            CacheMapEntry(
                tensor=e["tensor"],
                vcaddr=e["vcaddr"],
                size=e["size"],
                reuse=e["reuse"],
                bypass=e["bypass"],
            )
            for e in data["cache_map"]
        ),
    )


def mapping_file_to_dict(mapping_file: ModelMappingFile) -> dict:
    """Serialize a mapping file to a JSON-ready dictionary."""
    return {
        "schema_version": SCHEMA_VERSION,
        "model_name": mapping_file.model_name,
        "usage_levels": list(mapping_file.usage_levels),
        "blocks": [list(block) for block in mapping_file.blocks],
        "mcts": [
            {
                "layer_index": mct.layer_index,
                "layer_name": mct.layer_name,
                "est_latency_s": mct.est_latency_s,
                "lwm": [_candidate_to_dict(c) for c in mct.lwm],
                "lbm": (
                    _candidate_to_dict(mct.lbm)
                    if mct.lbm is not None else None
                ),
            }
            for mct in mapping_file.mcts
        ],
    }


def mapping_file_from_dict(data: dict) -> ModelMappingFile:
    """Deserialize a mapping file (validating the schema version)."""
    version = data.get("schema_version")
    if version != SCHEMA_VERSION:
        raise MappingError(
            f"unsupported mapping-file schema {version!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    mcts = []
    for entry in data["mcts"]:
        mct = MappingCandidateTable(
            layer_index=entry["layer_index"],
            layer_name=entry["layer_name"],
        )
        mct.lwm = [_candidate_from_dict(c) for c in entry["lwm"]]
        mct.lbm = (
            _candidate_from_dict(entry["lbm"])
            if entry["lbm"] is not None else None
        )
        mct.est_latency_s = entry["est_latency_s"]
        mcts.append(mct)
    return ModelMappingFile(
        model_name=data["model_name"],
        usage_levels=tuple(data["usage_levels"]),
        mcts=mcts,
        blocks=[tuple(block) for block in data["blocks"]],
    )


def save_mapping_file(mapping_file: ModelMappingFile,
                      path: Union[str, Path]) -> Path:
    """Write a mapping file as JSON; returns the path written.

    The write is atomic and durable (temp file + fsync + rename): a
    writer killed at any instant leaves either the previous content or
    the complete new content, never a torn file.
    """
    path = Path(path)
    text = json.dumps(mapping_file_to_dict(mapping_file), indent=1)
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    try:
        _write_text_durable(tmp, text)
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return path


def scenario_spec_to_dict(spec) -> dict:
    """Canonical JSON-ready form of a
    :class:`~repro.sim.scenario.ScenarioSpec` (exact float round-trip;
    part of the sweep cell cache key)."""
    return spec.to_dict()


def scenario_spec_from_dict(data: dict):
    """Inverse of :func:`scenario_spec_to_dict`.

    Raises:
        WorkloadError: the payload is not a supported scenario schema.
    """
    from ..sim.scenario import ScenarioSpec

    return ScenarioSpec.from_dict(data)


def fault_spec_to_dict(spec) -> dict:
    """Canonical JSON-ready form of a
    :class:`~repro.sim.faults.FaultSpec` (versioned, exact float
    round-trip; part of the sweep cell cache key)."""
    return spec.to_dict()


def fault_spec_from_dict(data: dict):
    """Inverse of :func:`fault_spec_to_dict`.

    Raises:
        WorkloadError: the payload is not a supported fault schema.
    """
    from ..sim.faults import FaultSpec

    return FaultSpec.from_dict(data)


def fleet_spec_to_dict(spec) -> dict:
    """Canonical JSON-ready form of a
    :class:`~repro.fleet.spec.FleetSpec` (versioned, exact float
    round-trip; keys the fleet journal sidecar)."""
    return spec.to_dict()


def fleet_spec_from_dict(data: dict):
    """Inverse of :func:`fleet_spec_to_dict`.

    Raises:
        WorkloadError: the payload is not a supported fleet schema.
    """
    from ..fleet.spec import FleetSpec

    return FleetSpec.from_dict(data)


def fleet_spec_content_hash(spec) -> str:
    """Stable content hash of a fleet population.

    Salted with the package version and source digest like the sweep
    cell keys, so a fleet hash can key caches without ever serving
    results across code changes.
    """
    from .. import __version__  # deferred: package root mid-import

    return stable_content_hash({
        "repro_version": __version__,
        "source_salt": source_content_salt(),
        "fleet": fleet_spec_to_dict(spec),
    })


def event_trace_to_dict(trace) -> dict:
    """Canonical JSON-ready form of a
    :class:`~repro.sim.trace.EventTrace` (versioned, content-hashed;
    exact float round-trip)."""
    return trace.to_dict()


def event_trace_from_dict(data: dict):
    """Inverse of :func:`event_trace_to_dict`.

    Raises:
        WorkloadError: the payload is not a supported (intact) trace.
    """
    from ..sim.trace import EventTrace

    return EventTrace.from_dict(data)


def save_event_trace(trace, path: Union[str, Path]) -> Path:
    """Write an event trace as JSON; returns the path written."""
    return trace.save(path)


def load_event_trace(path: Union[str, Path]):
    """Read a JSON event-trace file (validating schema and hash).

    Raises:
        WorkloadError: the file is unreadable or not a supported trace.
    """
    from ..sim.trace import EventTrace

    return EventTrace.load(path)


def stable_content_hash(payload: dict) -> str:
    """SHA-256 over canonical JSON (sorted keys, exact float reprs).

    Stable across processes and platforms for JSON-representable
    payloads, so it can key on-disk caches.
    """
    canonical = json.dumps(payload, sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


_SOURCE_SALT: Optional[str] = None


def source_content_salt() -> str:
    """Digest of the package's own source files (cached per process).

    On-disk caches of simulation outputs must not survive code changes:
    salting keys with this digest invalidates every entry whenever any
    ``repro`` source file changes, in either direction — maximally safe,
    while identical trees still share warm caches across runs.
    """
    global _SOURCE_SALT
    if _SOURCE_SALT is None:
        package_root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for source in sorted(package_root.rglob("*.py")):
            digest.update(str(source.relative_to(package_root)).encode())
            digest.update(source.read_bytes())
        _SOURCE_SALT = digest.hexdigest()
    return _SOURCE_SALT


def resolve_cache_dir(env_var: str, subdir: str) -> Optional[Path]:
    """Shared cache-directory resolution for the persistent stores.

    ``env_var`` overrides the location; an empty value disables the
    store (returns ``None``).  Default: ``$XDG_CACHE_HOME/camdn-repro/
    <subdir>`` (falling back to ``~/.cache``).
    """
    env = os.environ.get(env_var)
    if env is not None:
        return Path(env).expanduser() if env else None
    base = os.environ.get("XDG_CACHE_HOME")
    root = Path(base).expanduser() if base else Path.home() / ".cache"
    return root / "camdn-repro" / subdir


def _write_text_durable(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` and fsync it (data on disk before the
    caller publishes the file with a rename)."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
        fh.flush()
        os.fsync(fh.fileno())


def atomic_write_text(path: Path, text: str) -> None:
    """Best-effort atomic durable write (tmp + fsync + rename); never
    raises OSError.

    Persistent caches are optimizations — a failed write must not fail
    the computation that produced the value.  The fsync-before-rename
    ordering means a crash at any instant leaves either the old entry or
    the complete new one, never a torn file.
    """
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        _write_text_durable(tmp, text)
        os.replace(tmp, path)
    except OSError:
        pass


def soc_config_to_dict(soc: SoCConfig) -> dict:
    """Canonical JSON-ready form of a full SoC configuration."""
    return {
        "npu": {
            "pe_rows": soc.npu.pe_rows,
            "pe_cols": soc.npu.pe_cols,
            "scratchpad_bytes": soc.npu.scratchpad_bytes,
            "frequency_hz": soc.npu.frequency_hz,
            "dwconv_efficiency": soc.npu.dwconv_efficiency,
        },
        "num_npu_cores": soc.num_npu_cores,
        "cache": {
            "total_bytes": soc.cache.total_bytes,
            "num_slices": soc.cache.num_slices,
            "num_ways": soc.cache.num_ways,
            "npu_ways": soc.cache.npu_ways,
            "line_bytes": soc.cache.line_bytes,
            "page_bytes": soc.cache.page_bytes,
        },
        "dram": {
            "total_bandwidth_bytes_per_s":
                soc.dram.total_bandwidth_bytes_per_s,
            "num_channels": soc.dram.num_channels,
            "access_latency_s": soc.dram.access_latency_s,
        },
        "dtype_bytes": soc.dtype_bytes,
    }


def soc_config_from_dict(data: dict) -> SoCConfig:
    """Inverse of :func:`soc_config_to_dict`."""
    return SoCConfig(
        npu=NPUConfig(**data["npu"]),
        num_npu_cores=data["num_npu_cores"],
        cache=CacheConfig(**data["cache"]),
        dram=DRAMConfig(**data["dram"]),
        dtype_bytes=data["dtype_bytes"],
    )


#: Field order of serialized per-inference records.
_RECORD_FIELDS = (
    "instance_id", "stream_id", "model_abbr", "arrival_time",
    "start_time", "finish_time", "latency_s", "dram_bytes",
    "hit_bytes", "access_bytes", "qos_target_s", "met_deadline",
)


def simulation_result_to_dict(result: "SimulationResult") -> dict:
    """Serialize an engine run (including its metrics records)."""
    return {
        "result_schema_version": RESULT_SCHEMA_VERSION,
        "scheduler_name": result.scheduler_name,
        "sim_time_s": result.sim_time_s,
        "scheduler_stats": dict(result.scheduler_stats),
        "wall_time_s": result.wall_time_s,
        "events_processed": result.events_processed,
        "offered_inferences": result.offered_inferences,
        "cancelled_inferences": result.cancelled_inferences,
        "completed_inferences": result.completed_inferences,
        "dropped_inferences": result.dropped_inferences,
        "offered_load_ratio": result.offered_load_ratio,
        "records": [
            [getattr(rec, f) for f in _RECORD_FIELDS]
            for rec in result.metrics.records
        ],
    }


def simulation_result_from_dict(data: dict) -> "SimulationResult":
    """Inverse of :func:`simulation_result_to_dict`.

    Raises:
        MappingError: the payload is not a supported result schema.
    """
    from ..sim.engine import SimulationResult
    from ..sim.metrics import InstanceRecord, MetricsCollector

    version = data.get("result_schema_version")
    if version != RESULT_SCHEMA_VERSION:
        raise MappingError(
            f"unsupported result schema {version!r} "
            f"(expected {RESULT_SCHEMA_VERSION})"
        )
    metrics = MetricsCollector()
    for values in data["records"]:
        metrics.records.append(
            InstanceRecord(**dict(zip(_RECORD_FIELDS, values)))
        )
    return SimulationResult(
        scheduler_name=data["scheduler_name"],
        sim_time_s=data["sim_time_s"],
        metrics=metrics,
        scheduler_stats=dict(data["scheduler_stats"]),
        wall_time_s=data["wall_time_s"],
        events_processed=data["events_processed"],
        offered_inferences=data["offered_inferences"],
        cancelled_inferences=data["cancelled_inferences"],
        completed_inferences=data["completed_inferences"],
        dropped_inferences=data["dropped_inferences"],
        offered_load_ratio=data["offered_load_ratio"],
    )


def load_mapping_file(path: Union[str, Path]) -> ModelMappingFile:
    """Read a JSON mapping file.

    Raises:
        MappingError: the file is not a supported mapping file.
    """
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise MappingError(f"cannot read mapping file {path}: {exc}") \
            from exc
    return mapping_file_from_dict(data)
