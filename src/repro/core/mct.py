"""Mapping candidate tables (Section III-C3, Figure 6 middle).

The offline mapping phase emits, per layer, a *mapping candidate table*
(MCT) holding one layer-wise mapping (LWM) candidate per cache-usage level
plus one layer-block mapping (LBM) candidate.  Candidates are stored in a
compact format — a loop table (permutation + factors) and a cache map table
(how tensors land in vcaddr space) — instead of unrolled NPU instructions,
so storing many candidates per layer stays cheap.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import MappingError


@dataclass(frozen=True)
class LoopLevel:
    """One entry of a candidate's loop table.

    Attributes:
        dim: loop dimension name (``"m"``, ``"n"`` or ``"k"`` after GEMM
            lowering).
        factor: tile trip count at this level (outer loops) or tile size
            (innermost level), mirroring Figure 6's factor rows.
        level: memory level the loop iterates over (``"dram"``, ``"cache"``
            or ``"npu"``).
    """

    dim: str
    factor: int
    level: str

    def __post_init__(self) -> None:
        if self.dim not in ("m", "n", "k"):
            raise MappingError(f"unknown loop dim {self.dim!r}")
        if self.factor <= 0:
            raise MappingError(f"loop factor must be positive ({self.dim})")
        if self.level not in ("dram", "cache", "npu"):
            raise MappingError(f"unknown memory level {self.level!r}")


@dataclass(frozen=True)
class CacheMapEntry:
    """One row of a candidate's cache map table (Figure 6).

    Attributes:
        tensor: ``"weight"``, ``"input"``, ``"output"`` or ``"bias"``.
        vcaddr: base virtual cache address of the tensor (byte offset in
            the model's exclusive region); meaningless when bypassed.
        size: bytes the tensor occupies in cache (0 when bypassed).
        reuse: the tensor is retained in cache for reuse.
        bypass: the tensor streams through bypass semantics and never
            occupies cache space.
    """

    tensor: str
    vcaddr: int
    size: int
    reuse: bool
    bypass: bool

    def __post_init__(self) -> None:
        if self.size < 0 or self.vcaddr < 0:
            raise MappingError(f"{self.tensor}: negative size/vcaddr")
        if self.bypass and self.size:
            raise MappingError(f"{self.tensor}: bypassed but sized")
        if self.reuse and self.bypass:
            raise MappingError(f"{self.tensor}: reuse and bypass conflict")


@dataclass(frozen=True)
class MappingCandidate:
    """One mapping of one layer, at one cache-usage level.

    Attributes:
        kind: ``"LWM"`` or ``"LBM"``.
        usage_limit_bytes: the cache-usage level this candidate targets.
        cache_bytes: bytes of cache the candidate actually uses.
        dram_bytes: predicted DRAM traffic for executing the layer with
            this mapping (the solver's objective).
        compute_cycles: NPU cycles for the layer.
        loop_table: loop permutation and factors.
        cache_map: per-tensor cache placement rows.
    """

    kind: str
    usage_limit_bytes: int
    cache_bytes: int
    dram_bytes: float
    compute_cycles: int
    loop_table: Tuple[LoopLevel, ...] = ()
    cache_map: Tuple[CacheMapEntry, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ("LWM", "LBM"):
            raise MappingError(f"unknown candidate kind {self.kind!r}")
        if self.cache_bytes > self.usage_limit_bytes:
            raise MappingError(
                f"candidate uses {self.cache_bytes} B over its "
                f"{self.usage_limit_bytes} B level"
            )
        if self.dram_bytes < 0 or self.compute_cycles < 0:
            raise MappingError("negative cost in mapping candidate")
        mapped = sum(e.size for e in self.cache_map if not e.bypass)
        if mapped > max(self.cache_bytes, 0):
            raise MappingError(
                f"cache map places {mapped} B but candidate claims "
                f"{self.cache_bytes} B"
            )

    def pages_needed(self, page_bytes: int) -> int:
        """Cache pages (``Pneed``) this candidate requires."""
        return math.ceil(self.cache_bytes / page_bytes)


@dataclass
class MappingCandidateTable:
    """All candidates of one layer.

    Attributes:
        layer_index: position in the model graph.
        layer_name: layer name (for reporting).
        lwm: LWM candidates sorted by ascending cache usage; the first
            entry is the zero-cache fallback every layer must have.
        lbm: the LBM candidate, or ``None`` for layers where LBM is
            impossible (e.g. the intermediate footprint exceeds the cache).
        est_latency_s: profiling-based layer latency estimate
            (``layer.Test`` in Algorithm 1), filled by the profiler.
    """

    layer_index: int
    layer_name: str
    lwm: List[MappingCandidate] = field(default_factory=list)
    lbm: Optional[MappingCandidate] = None
    est_latency_s: float = 0.0

    def validate(self, page_bytes: int) -> None:
        """Check MCT invariants used by Algorithm 1's candidate walk."""
        if not self.lwm:
            raise MappingError(
                f"layer {self.layer_name}: MCT has no LWM candidates"
            )
        pages = [c.pages_needed(page_bytes) for c in self.lwm]
        if pages != sorted(pages):
            raise MappingError(
                f"layer {self.layer_name}: LWM candidates not sorted by "
                f"page need"
            )
        if self.lwm[0].cache_bytes != 0:
            raise MappingError(
                f"layer {self.layer_name}: missing zero-cache fallback"
            )

    def smaller_than(self, candidate: MappingCandidate,
                     page_bytes: int) -> Optional[MappingCandidate]:
        """Next-smaller candidate used on timeout (Figure 6 right: every
        timeout downgrades to the candidate needing fewer pages)."""
        target = candidate.pages_needed(page_bytes)
        smaller = [
            c for c in self.lwm if c.pages_needed(page_bytes) < target
        ]
        if not smaller:
            return None
        return smaller[-1]


@dataclass
class ModelMappingFile:
    """Offline mapping output for one model (Figure 6 left).

    Attributes:
        model_name: model this file belongs to.
        usage_levels: the cache-usage levels (bytes) the mapper targeted.
        mcts: one MCT per layer, in execution order.
        blocks: LBM layer blocks as (start, end) index pairs.
    """

    model_name: str
    usage_levels: Tuple[int, ...]
    mcts: List[MappingCandidateTable]
    blocks: List[Tuple[int, int]] = field(default_factory=list)

    def mct_for(self, layer_index: int) -> MappingCandidateTable:
        if not 0 <= layer_index < len(self.mcts):
            raise MappingError(
                f"{self.model_name}: no MCT for layer {layer_index}"
            )
        return self.mcts[layer_index]

    def block_of(self, layer_index: int) -> Optional[Tuple[int, int]]:
        """The (start, end) block containing ``layer_index``."""
        for start, end in self.blocks:
            if start <= layer_index < end:
                return (start, end)
        return None

    def is_block_head(self, layer_index: int) -> bool:
        """Is this layer the head of its LBM block (Algorithm 1 line 10)?"""
        block = self.block_of(layer_index)
        return block is not None and block[0] == layer_index

    def block_est_latency_s(self, layer_index: int) -> float:
        """Profiled latency of the whole block containing ``layer_index``
        (``layerBlock.Test`` in Algorithm 1)."""
        block = self.block_of(layer_index)
        if block is None:
            return self.mcts[layer_index].est_latency_s
        return sum(
            self.mcts[i].est_latency_s for i in range(block[0], block[1])
        )

    def total_dram_bytes(self, level_bytes: int) -> float:
        """Whole-model DRAM traffic if every layer ran its largest LWM
        candidate within ``level_bytes`` (a static what-if helper)."""
        total = 0.0
        for mct in self.mcts:
            fitting = [
                c for c in mct.lwm if c.cache_bytes <= level_bytes
            ]
            total += min(c.dram_bytes for c in fitting) if fitting \
                else mct.lwm[0].dram_bytes
        return total
