"""Mapping candidate tables (Section III-C3, Figure 6 middle).

The offline mapping phase emits, per layer, a *mapping candidate table*
(MCT) holding one layer-wise mapping (LWM) candidate per cache-usage level
plus one layer-block mapping (LBM) candidate.  Candidates are stored in a
compact format — a loop table (permutation + factors) and a cache map table
(how tensors land in vcaddr space) — instead of unrolled NPU instructions,
so storing many candidates per layer stays cheap.

Algorithm 1 runs against every MCT at the beginning of every layer of
every task, so each MCT lazily builds an :class:`MCTGeometry` — the
page-granular view of its candidates at one page size (``Pneed`` per
candidate, distinct page counts sorted for ``bisect``, the LBM
footprint).  The geometry turns the allocator's candidate walks into
O(log |LWM|) lookups while reproducing the exact semantics of the
original linear scans (first-of-max on selection, last-below on
downgrade), so allocation decisions are bit-identical.  Geometries are
cached on the MCT keyed by page size; an MCT's ``lwm``/``lbm`` must not
be mutated after its first geometry is built (call
:meth:`MappingCandidateTable.invalidate_geometry` if a test must).
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import MappingError


@dataclass(frozen=True)
class LoopLevel:
    """One entry of a candidate's loop table.

    Attributes:
        dim: loop dimension name (``"m"``, ``"n"`` or ``"k"`` after GEMM
            lowering).
        factor: tile trip count at this level (outer loops) or tile size
            (innermost level), mirroring Figure 6's factor rows.
        level: memory level the loop iterates over (``"dram"``, ``"cache"``
            or ``"npu"``).
    """

    dim: str
    factor: int
    level: str

    def __post_init__(self) -> None:
        if self.dim not in ("m", "n", "k"):
            raise MappingError(f"unknown loop dim {self.dim!r}")
        if self.factor <= 0:
            raise MappingError(f"loop factor must be positive ({self.dim})")
        if self.level not in ("dram", "cache", "npu"):
            raise MappingError(f"unknown memory level {self.level!r}")


@dataclass(frozen=True)
class CacheMapEntry:
    """One row of a candidate's cache map table (Figure 6).

    Attributes:
        tensor: ``"weight"``, ``"input"``, ``"output"`` or ``"bias"``.
        vcaddr: base virtual cache address of the tensor (byte offset in
            the model's exclusive region); meaningless when bypassed.
        size: bytes the tensor occupies in cache (0 when bypassed).
        reuse: the tensor is retained in cache for reuse.
        bypass: the tensor streams through bypass semantics and never
            occupies cache space.
    """

    tensor: str
    vcaddr: int
    size: int
    reuse: bool
    bypass: bool

    def __post_init__(self) -> None:
        if self.size < 0 or self.vcaddr < 0:
            raise MappingError(f"{self.tensor}: negative size/vcaddr")
        if self.bypass and self.size:
            raise MappingError(f"{self.tensor}: bypassed but sized")
        if self.reuse and self.bypass:
            raise MappingError(f"{self.tensor}: reuse and bypass conflict")


@dataclass(frozen=True)
class MappingCandidate:
    """One mapping of one layer, at one cache-usage level.

    Attributes:
        kind: ``"LWM"`` or ``"LBM"``.
        usage_limit_bytes: the cache-usage level this candidate targets.
        cache_bytes: bytes of cache the candidate actually uses.
        dram_bytes: predicted DRAM traffic for executing the layer with
            this mapping (the solver's objective).
        compute_cycles: NPU cycles for the layer.
        loop_table: loop permutation and factors.
        cache_map: per-tensor cache placement rows.
    """

    kind: str
    usage_limit_bytes: int
    cache_bytes: int
    dram_bytes: float
    compute_cycles: int
    loop_table: Tuple[LoopLevel, ...] = ()
    cache_map: Tuple[CacheMapEntry, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ("LWM", "LBM"):
            raise MappingError(f"unknown candidate kind {self.kind!r}")
        if self.cache_bytes > self.usage_limit_bytes:
            raise MappingError(
                f"candidate uses {self.cache_bytes} B over its "
                f"{self.usage_limit_bytes} B level"
            )
        if self.dram_bytes < 0 or self.compute_cycles < 0:
            raise MappingError("negative cost in mapping candidate")
        mapped = sum(e.size for e in self.cache_map if not e.bypass)
        if mapped > max(self.cache_bytes, 0):
            raise MappingError(
                f"cache map places {mapped} B but candidate claims "
                f"{self.cache_bytes} B"
            )

    def pages_needed(self, page_bytes: int) -> int:
        """Cache pages (``Pneed``) this candidate requires."""
        return math.ceil(self.cache_bytes / page_bytes)


class MCTGeometry:
    """Page-granular view of one MCT at one page size.

    Precomputed once per (MCT, ``page_bytes``) so Algorithm 1's candidate
    walks become array lookups.  All index methods reproduce the exact
    pick order of the original linear scans, including on LWM lists that
    are not sorted by page need (legal for hand-built test MCTs):

    * :meth:`select_index` — earliest candidate achieving the largest
      page count ``<= budget`` (falling back to ``lwm[0]``), matching the
      selection loop of Algorithm 1 lines 16-22;
    * :meth:`last_fitting_index` — last candidate with pages
      ``<= budget`` (the HW-only static-split walk);
    * :meth:`next_smaller_index` — last candidate with pages strictly
      below a target (the timeout downgrade walk).

    ``decision_cache`` is an opaque scratch dict for higher layers (the
    dynamic allocator memoizes immutable per-candidate decision objects
    there); this module never reads it.
    """

    __slots__ = (
        "page_bytes", "lwm_pages", "lbm_pages", "unique_pages",
        "first_of_unique", "last_of_unique", "is_sorted", "single_level",
        "trivial", "decision_cache",
    )

    def __init__(self, mct: "MappingCandidateTable",
                 page_bytes: int) -> None:
        if page_bytes <= 0:
            raise MappingError("page_bytes must be positive")
        self.page_bytes = page_bytes
        self.lwm_pages: Tuple[int, ...] = tuple(
            c.pages_needed(page_bytes) for c in mct.lwm
        )
        self.lbm_pages: Optional[int] = (
            mct.lbm.pages_needed(page_bytes)
            if mct.lbm is not None else None
        )
        first: Dict[int, int] = {}
        last: Dict[int, int] = {}
        for i, pages in enumerate(self.lwm_pages):
            if pages not in first:
                first[pages] = i
            last[pages] = i
        self.unique_pages: List[int] = sorted(first)
        self.first_of_unique: List[int] = [
            first[p] for p in self.unique_pages
        ]
        self.last_of_unique: List[int] = [
            last[p] for p in self.unique_pages
        ]
        self.is_sorted: bool = all(
            a <= b for a, b in zip(self.lwm_pages, self.lwm_pages[1:])
        )
        #: Every LWM candidate needs the same page count (true for
        #: streaming pool/element-wise layers, which have one zero-cache
        #: candidate): selection is independent of the page budget, so
        #: the allocator can skip ``predAvailPages`` entirely.
        self.single_level: bool = len(self.unique_pages) <= 1
        #: Exactly one LWM candidate: every walk returns index 0.
        self.trivial: bool = len(self.lwm_pages) == 1
        self.decision_cache: Dict = {}

    # ------------------------------------------------------------------
    # Candidate lookups (exact replicas of the original linear scans)
    # ------------------------------------------------------------------

    def select_index(self, budget: int) -> int:
        """Index of the selection-loop winner for a page ``budget``.

        The original scan starts from ``lwm[0]`` and only moves to a
        candidate needing *strictly more* pages, so a value no larger
        than ``lwm[0]``'s own need can never win — the fallback stays
        index 0 even when smaller candidates fit (relevant only for
        unsorted hand-built MCTs; validated MCTs lead with zero pages).
        """
        k = bisect_right(self.unique_pages, budget) - 1
        if k < 0 or self.unique_pages[k] <= self.lwm_pages[0]:
            return 0
        return self.first_of_unique[k]

    def last_fitting_index(self, budget: int) -> int:
        """Index of the HW-only walk winner for a page ``budget``."""
        if self.is_sorted:
            k = bisect_right(self.lwm_pages, budget) - 1
            return k if k >= 0 else 0
        k = bisect_right(self.unique_pages, budget) - 1
        if k < 0:
            return 0
        return max(self.last_of_unique[: k + 1])

    def next_smaller_index(self, target_pages: int) -> int:
        """Index of the last candidate strictly below ``target_pages``
        (``-1`` when none exists — the zero-page floor)."""
        if self.is_sorted:
            return bisect_left(self.lwm_pages, target_pages) - 1
        best = -1
        for i, pages in enumerate(self.lwm_pages):
            if pages < target_pages:
                best = i
        return best

    def max_pages_at_most(self, budget: int) -> int:
        """Largest candidate page count ``<= budget`` (0 when none) —
        the ``Pnext`` prediction of Algorithm 1's end-of-layer update."""
        k = bisect_right(self.unique_pages, budget) - 1
        return self.unique_pages[k] if k >= 0 else 0


@dataclass
class MappingCandidateTable:
    """All candidates of one layer.

    Attributes:
        layer_index: position in the model graph.
        layer_name: layer name (for reporting).
        lwm: LWM candidates sorted by ascending cache usage; the first
            entry is the zero-cache fallback every layer must have.
        lbm: the LBM candidate, or ``None`` for layers where LBM is
            impossible (e.g. the intermediate footprint exceeds the cache).
        est_latency_s: profiling-based layer latency estimate
            (``layer.Test`` in Algorithm 1), filled by the profiler.
    """

    layer_index: int
    layer_name: str
    lwm: List[MappingCandidate] = field(default_factory=list)
    lbm: Optional[MappingCandidate] = None
    est_latency_s: float = 0.0
    #: Lazily-built geometries keyed by page size; never serialized.
    _geometry: Dict[int, MCTGeometry] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def geometry(self, page_bytes: int) -> MCTGeometry:
        """The (cached) page-granular view at ``page_bytes``.

        The candidate lists must not change after the first call; tests
        that rebuild ``lwm``/``lbm`` in place must call
        :meth:`invalidate_geometry`.
        """
        geom = self._geometry.get(page_bytes)
        if geom is None:
            geom = MCTGeometry(self, page_bytes)
            self._geometry[page_bytes] = geom
        return geom

    def invalidate_geometry(self) -> None:
        """Drop cached geometries after an in-place candidate edit."""
        self._geometry.clear()

    def validate(self, page_bytes: int) -> None:
        """Check MCT invariants used by Algorithm 1's candidate walk."""
        if not self.lwm:
            raise MappingError(
                f"layer {self.layer_name}: MCT has no LWM candidates"
            )
        pages = [c.pages_needed(page_bytes) for c in self.lwm]
        if pages != sorted(pages):
            raise MappingError(
                f"layer {self.layer_name}: LWM candidates not sorted by "
                f"page need"
            )
        if self.lwm[0].cache_bytes != 0:
            raise MappingError(
                f"layer {self.layer_name}: missing zero-cache fallback"
            )

    def smaller_than(self, candidate: MappingCandidate,
                     page_bytes: int) -> Optional[MappingCandidate]:
        """Next-smaller candidate used on timeout (Figure 6 right: every
        timeout downgrades to the candidate needing fewer pages)."""
        geom = self.geometry(page_bytes)
        i = geom.next_smaller_index(candidate.pages_needed(page_bytes))
        if i < 0:
            return None
        return self.lwm[i]


@dataclass
class ModelMappingFile:
    """Offline mapping output for one model (Figure 6 left).

    Attributes:
        model_name: model this file belongs to.
        usage_levels: the cache-usage levels (bytes) the mapper targeted.
        mcts: one MCT per layer, in execution order.
        blocks: LBM layer blocks as (start, end) index pairs.

    The block lookup tables (layer -> block, per-layer block latency) are
    built lazily on first use and assume ``blocks`` and the MCTs'
    ``est_latency_s`` are final by then — true for mapper- and
    serializer-produced files; tests that mutate them afterwards must
    call :meth:`invalidate_caches`.
    """

    model_name: str
    usage_levels: Tuple[int, ...]
    mcts: List[MappingCandidateTable]
    blocks: List[Tuple[int, int]] = field(default_factory=list)
    #: layer -> containing block table; ``None`` until first use.
    _layer_blocks: Optional[List[Optional[Tuple[int, int]]]] = field(
        default=None, init=False, repr=False, compare=False
    )
    #: layer -> ``layerBlock.Test`` table; ``None`` until first use.
    _block_est: Optional[List[float]] = field(
        default=None, init=False, repr=False, compare=False
    )
    #: page_bytes -> per-layer geometry tuple; built on first use.
    _layer_geoms: Dict[int, Tuple[MCTGeometry, ...]] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _head_flags: Optional[Tuple[bool, ...]] = field(
        default=None, init=False, repr=False, compare=False
    )
    _block_lat: Optional[Tuple[float, ...]] = field(
        default=None, init=False, repr=False, compare=False
    )
    #: factor -> per-layer ``est_latency_s * factor`` tuples (the
    #: allocator caches its timeout horizon here; factor 1.0 is the raw
    #: latency table).
    _scaled_lat: Dict[float, Tuple[float, ...]] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def invalidate_caches(self) -> None:
        """Drop the lazy block tables (after mutating blocks/latencies)."""
        self._layer_blocks = None
        self._block_est = None
        self._head_flags = None
        self._block_lat = None
        self._scaled_lat.clear()
        self._layer_geoms.clear()
        for mct in self.mcts:
            mct.invalidate_geometry()

    def scaled_latencies(self, factor: float) -> Tuple[float, ...]:
        """Per-layer ``est_latency_s * factor`` (cached per factor)."""
        table = self._scaled_lat.get(factor)
        if table is None:
            if factor == 1.0:
                table = tuple(m.est_latency_s for m in self.mcts)
            else:
                table = tuple(
                    m.est_latency_s * factor for m in self.mcts
                )
            self._scaled_lat[factor] = table
        return table

    def layer_geometries(self, page_bytes: int) -> Tuple[MCTGeometry, ...]:
        """Per-layer geometries at ``page_bytes``, built once per file.

        Mapping files are memoized process-wide, so every task of the
        same model shares this tuple: the allocator indexes it per layer
        instead of probing each MCT's geometry cache.
        """
        geoms = self._layer_geoms.get(page_bytes)
        if geoms is None:
            geoms = tuple(
                mct.geometry(page_bytes) for mct in self.mcts
            )
            self._layer_geoms[page_bytes] = geoms
        return geoms

    def _layer_block_table(self) -> List[Optional[Tuple[int, int]]]:
        table = self._layer_blocks
        if table is None:
            table = [None] * len(self.mcts)
            for start, end in self.blocks:
                block = (start, end)
                for i in range(start, min(end, len(table))):
                    table[i] = block
            self._layer_blocks = table
        return table

    def _block_est_table(self) -> List[float]:
        table = self._block_est
        if table is None:
            blocks = self._layer_block_table()
            table = []
            for i, mct in enumerate(self.mcts):
                block = blocks[i]
                if block is None:
                    table.append(mct.est_latency_s)
                else:
                    table.append(sum(
                        self.mcts[j].est_latency_s
                        for j in range(block[0], block[1])
                    ))
            self._block_est = table
        return table

    def block_head_flags(self) -> Tuple[bool, ...]:
        """Per-layer ``is_block_head`` flags (cached)."""
        flags = self._head_flags
        if flags is None:
            flags = tuple(
                block is not None and block[0] == i
                for i, block in enumerate(self._layer_block_table())
            )
            self._head_flags = flags
        return flags

    def block_latencies(self) -> Tuple[float, ...]:
        """Per-layer ``layerBlock.Test`` values (cached table)."""
        lat = self._block_lat
        if lat is None:
            lat = tuple(self._block_est_table())
            self._block_lat = lat
        return lat

    def mct_for(self, layer_index: int) -> MappingCandidateTable:
        if not 0 <= layer_index < len(self.mcts):
            raise MappingError(
                f"{self.model_name}: no MCT for layer {layer_index}"
            )
        return self.mcts[layer_index]

    def block_of(self, layer_index: int) -> Optional[Tuple[int, int]]:
        """The (start, end) block containing ``layer_index``."""
        if not 0 <= layer_index < len(self.mcts):
            # Out-of-table layers are never inside a block (preserves the
            # pre-table behavior of scanning the block list directly).
            for start, end in self.blocks:
                if start <= layer_index < end:
                    return (start, end)
            return None
        return self._layer_block_table()[layer_index]

    def is_block_head(self, layer_index: int) -> bool:
        """Is this layer the head of its LBM block (Algorithm 1 line 10)?"""
        block = self.block_of(layer_index)
        return block is not None and block[0] == layer_index

    def block_est_latency_s(self, layer_index: int) -> float:
        """Profiled latency of the whole block containing ``layer_index``
        (``layerBlock.Test`` in Algorithm 1)."""
        return self._block_est_table()[layer_index]

    def total_dram_bytes(self, level_bytes: int) -> float:
        """Whole-model DRAM traffic if every layer ran its largest LWM
        candidate within ``level_bytes`` (a static what-if helper)."""
        total = 0.0
        for mct in self.mcts:
            fitting = [
                c for c in mct.lwm if c.cache_bytes <= level_bytes
            ]
            total += min(c.dram_bytes for c in fitting) if fitting \
                else mct.lwm[0].dram_bytes
        return total
