"""The CaMDN system facade (Figure 6, both halves).

:class:`CaMDNSystem` wires the architecture (regions over the NPU subspace)
to the scheduling (offline mapper + Algorithm 1) and exposes the layer-
granular protocol the multi-tenant simulator drives:

1. ``admit_task``   — register a task; run/reuse the offline mapping.
2. ``begin_layer``  — Algorithm 1 selects a candidate; the system tries to
   grant its pages (resizing the task's exclusive region and its CPT).
3. ``retry_layer``  — after a timeout, downgrade to a smaller candidate.
4. ``finish_layer`` — update the predictor arrays.
5. ``retire_task``  — destroy the region, freeing every page.

Two modes:

* ``"full"``    — CaMDN(Full): cache-aware mapping + dynamic allocation.
* ``"hw_only"`` — CaMDN(HW-only): the architecture alone; cache capacity is
  split equally among active NPUs with no runtime adjustment (the paper's
  ablation baseline in Figure 7).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..config import SoCConfig
from ..errors import PageAllocationError, SimulationError
from ..models.graph import ModelGraph
from .allocator import AllocationDecision, DynamicCacheAllocator
from .mapper.layer_mapper import LayerMapper
from .mct import ModelMappingFile
from .region import RegionManager


@dataclass
class LayerGrant:
    """Outcome of a begin/retry step for one layer.

    Attributes:
        decision: the (possibly downgraded) allocation decision.
        granted: pages were granted and the CPT updated; the layer may run.
        wait_timeout_s: when not granted, how long Algorithm 1 allows
            waiting before the next downgrade.
    """

    decision: AllocationDecision
    granted: bool
    wait_timeout_s: float = 0.0


class CaMDNSystem:
    """Architecture-scheduling co-design controller."""

    def __init__(self, soc: SoCConfig, mode: str = "full",
                 mapper: Optional[LayerMapper] = None) -> None:
        if mode not in ("full", "hw_only"):
            raise SimulationError(f"unknown CaMDN mode {mode!r}")
        self.soc = soc
        self.mode = mode
        self._hw_only = mode == "hw_only"
        self.mapper = mapper or LayerMapper(soc)
        self.regions = RegionManager(soc.cache)
        self.allocator = DynamicCacheAllocator(
            page_bytes=soc.cache.page_bytes,
            total_pages=soc.cache.num_pages,
        )
        self._graphs: Dict[str, ModelGraph] = {}
        #: task_id -> (allocator TaskState, region): the layer protocol
        #: resolves a task once here instead of per-subsystem dict walks.
        self._ctx: Dict[str, tuple] = {}
        #: id(decision) -> (decision, LayerGrant) memos.  A decision
        #: fully determines both grant outcomes (the denied grant's wait
        #: timeout is the decision's own), and the allocator memoizes
        #: decisions per MCT, so steady state reuses a handful of grant
        #: objects instead of building one per layer.  The decision is
        #: held in the value to pin its id.
        self._granted_memo: Dict[int, tuple] = {}
        self._denied_memo: Dict[int, tuple] = {}
        #: HW-only static share ``total_pages // active_tasks``, kept
        #: current by admit/retire instead of being re-divided per layer.
        self._share = self.allocator.total_pages

    def __getstate__(self) -> dict:
        """Pickle support for engine checkpoints: the grant memos are
        keyed by ``id()``, which is meaningless in another process, so
        they ship empty and rebuild lazily (grants are pure values)."""
        state = self.__dict__.copy()
        state["_granted_memo"] = {}
        state["_denied_memo"] = {}
        return state

    # ------------------------------------------------------------------
    # Task lifecycle
    # ------------------------------------------------------------------

    def admit_task(self, task_id: str,
                   graph: ModelGraph) -> ModelMappingFile:
        """Register a task and ensure its offline mapping exists."""
        mapping_file = self.mapper.map_model(graph)
        state = self.allocator.register_task(task_id, mapping_file)
        region = self.regions.create_region(task_id, 0)
        self._graphs[task_id] = graph
        self._ctx[task_id] = (state, region)
        self._share = self.allocator.total_pages // max(
            len(self._graphs), 1
        )
        return mapping_file

    def retire_task(self, task_id: str, now: float) -> None:
        """Free the task's region and predictor state."""
        self.allocator.finish_task(task_id, now)
        self.allocator.unregister_task(task_id)
        self.regions.destroy_region(task_id)
        del self._graphs[task_id]
        del self._ctx[task_id]
        self._share = self.allocator.total_pages // max(
            len(self._graphs), 1
        )

    @property
    def active_tasks(self) -> int:
        return len(self._graphs)

    # ------------------------------------------------------------------
    # Fault injection: ECC page retirement
    # ------------------------------------------------------------------

    def retire_pages(self, count: int, rng_key: str) -> Tuple[int, ...]:
        """Permanently retire up to ``count`` SPM pages (ECC fault).

        Victims are drawn without replacement from the non-retired
        population by an RNG seeded with ``rng_key`` (a pure function of
        the fault spec), so retirement is identical across engine paths
        and worker processes.  A free victim retires directly; an owned
        victim is evacuated through the region manager — remapped in
        place when a free page exists, or the owner shrinks by one page
        (the degradation path: future grants flow through the normal MCT
        downgrade geometry against the reduced capacity).  The count is
        clamped so at least one usable page remains.

        Returns the tuple of retired pcpns.
        """
        page_alloc = self.regions.allocator
        count = min(count, page_alloc.usable_pages - 1)
        if count <= 0:
            return ()
        candidates = [
            p for p in range(page_alloc.num_pages)
            if not page_alloc.is_retired(p)
        ]
        rng = random.Random(rng_key)
        victims = rng.sample(candidates, count)
        alloc = self.allocator
        for pcpn in victims:
            # Ownership is resolved per victim at processing time: an
            # earlier victim's evacuation may have granted a later
            # victim as the replacement.
            owner = page_alloc.owner_of(pcpn)
            if owner is None:
                page_alloc.retire_free(pcpn)
                continue
            region = self.regions.region_of(owner)
            shrank = self.regions.retire_owned(region, pcpn)
            if shrank:
                # Forced shrink: sync the dynamic allocator's palloc
                # accounting (mirrors the inlined commit in _try_grant).
                ctx = self._ctx.get(owner)
                if ctx is not None:
                    slot = ctx[0]._slot
                    alloc._palloc_sum -= 1
                    alloc._palloc[slot] -= 1
        # The logical capacity Algorithm 1 reasons over shrinks with the
        # physical pool (total_pages >= palloc_sum holds: every victim
        # was free or came out of an owner's holding).
        alloc.total_pages -= len(victims)
        self._share = alloc.total_pages // max(len(self._graphs), 1)
        return tuple(victims)

    # ------------------------------------------------------------------
    # Layer protocol
    # ------------------------------------------------------------------

    def begin_layer(self, task_id: str, layer_index: int,
                    now: float) -> LayerGrant:
        """Select a candidate and try to grant its pages."""
        ctx = self._ctx.get(task_id)
        if ctx is None:
            # Registered on the allocator but never admitted (no
            # region): selection proceeds, the grant is always denied —
            # the pre-context code converted the missing-region resize
            # failure into a denied grant.  Unknown tasks raise here.
            state = self.allocator.task(task_id)
            if self._hw_only:
                decision = self._hw_only_decision(state, layer_index)
            else:
                decision = self.allocator.select_prepared(
                    state, layer_index, now
                )
            return self._denied(decision)
        state, region = ctx
        if self._hw_only:
            decision = self._hw_only_decision(state, layer_index)
        else:
            decision = self.allocator.select_prepared(
                state, layer_index, now
            )
        return self._try_grant(state, region, layer_index, decision)

    def retry_layer(self, task_id: str, layer_index: int,
                    grant: LayerGrant) -> LayerGrant:
        """Timeout path: downgrade and retry (Figure 6 right loop).

        The zero-page fallback always succeeds, so repeated retries
        terminate.
        """
        ctx = self._ctx.get(task_id)
        if ctx is None:
            state = self.allocator.task(task_id)  # raises if unknown
            decision = self.allocator.downgrade_prepared(
                state, layer_index, grant.decision
            )
            if decision is None:
                raise SimulationError(
                    f"{task_id}: zero-page candidate failed to be granted"
                )
            return self._denied(decision)
        state, region = ctx
        decision = self.allocator.downgrade_prepared(
            state, layer_index, grant.decision
        )
        if decision is None:
            raise SimulationError(
                f"{task_id}: zero-page candidate failed to be granted"
            )
        return self._try_grant(state, region, layer_index, decision)

    def finish_layer(self, task_id: str, layer_index: int,
                     now: float) -> None:
        """Layer boundary: update the prediction arrays."""
        ctx = self._ctx.get(task_id)
        if ctx is None:
            # end_layer needs no region; raises for unknown tasks.
            self.allocator.end_layer(task_id, layer_index, now)
            return
        self.allocator.end_layer_prepared(ctx[0], layer_index, now)

    # ------------------------------------------------------------------

    def _try_grant(self, state, region, layer_index: int,
                   decision: AllocationDecision) -> LayerGrant:
        needed = decision.pages_needed
        if needed != len(region.pcpns):
            if needed - len(region.pcpns) > self.regions.free_pages:
                return self._denied(decision)
            try:
                self.regions._resize(region, needed)
            except PageAllocationError:
                return self._denied(decision)
        # Inlined allocator.commit_prepared (hot path); the arithmetic is
        # skipped when the allocation is unchanged (the common case for
        # consecutive layers at the same usage level).
        alloc = self.allocator
        slot = state._slot
        if alloc._palloc[slot] != needed:
            alloc._palloc_sum += needed - alloc._palloc[slot]
            alloc._palloc[slot] = needed
        if decision.enables_lbm:
            state.lbm_block = state.mapping_file.block_of(layer_index)
        entry = self._granted_memo.get(id(decision))
        if entry is None or entry[0] is not decision:
            entry = (decision, LayerGrant(decision=decision, granted=True))
            self._granted_memo[id(decision)] = entry
        return entry[1]

    def _denied(self, decision: AllocationDecision) -> LayerGrant:
        entry = self._denied_memo.get(id(decision))
        if entry is None or entry[0] is not decision:
            entry = (decision, LayerGrant(
                decision=decision,
                granted=False,
                wait_timeout_s=decision.timeout_s,
            ))
            self._denied_memo[id(decision)] = entry
        return entry[1]

    def _hw_only_decision(self, state,
                          layer_index: int) -> AllocationDecision:
        """CaMDN(HW-only): equal static split, no prediction.

        Each active task gets ``total_pages / active_tasks`` pages; the
        largest candidate fitting that static share is used, preferring LBM
        when it fits.  Decisions are memoized on the MCT geometry keyed
        by the share (and, for LBM, whether the grant enables the block),
        so steady-state selection is a pair of dict probes.
        """
        if not 0 <= layer_index < len(state.geoms):
            state.mapping_file.mct_for(layer_index)  # raises MappingError
        geom = state.geoms[layer_index]
        cache = geom.decision_cache
        lbm_pages = geom.lbm_pages
        if lbm_pages is None and geom.trivial:
            # One candidate, no LBM: the walk always lands on index 0.
            decision = cache.get(0)
            if decision is None:
                decision = AllocationDecision(
                    candidate=state.mcts[layer_index].lwm[0],
                    pages_needed=geom.lwm_pages[0],
                    timeout_s=0.0,
                )
                cache[0] = decision
            return decision
        share = self._share
        if lbm_pages is not None and lbm_pages <= share:
            block = state.lbm_block
            enables = block is None or not (
                block[0] <= layer_index < block[1]
            )
            key = "hw_lbm_on" if enables else "hw_lbm_keep"
            decision = cache.get(key)
            if decision is None:
                decision = AllocationDecision(
                    candidate=state.mcts[layer_index].lbm,
                    pages_needed=lbm_pages,
                    timeout_s=0.0,
                    enables_lbm=enables,
                )
                cache[key] = decision
            return decision
        i = geom.last_fitting_index(share)
        # Bare int keys cannot collide with the allocator's str/tuple
        # keys in the shared decision cache.
        decision = cache.get(i)
        if decision is None:
            decision = AllocationDecision(
                candidate=state.mcts[layer_index].lwm[i],
                pages_needed=geom.lwm_pages[i],
                timeout_s=0.0,
            )
            cache[i] = decision
        return decision

    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Cross-check the allocator's page accounting with the regions."""
        self.allocator.check_invariants()
        self.regions.check_invariants()
        for task_id, state in self.allocator.tasks.items():
            region = self.regions.region_of(task_id)
            pages = region.num_pages if region else 0
            if pages != state.palloc:
                raise SimulationError(
                    f"{task_id}: region holds {pages} pages but allocator "
                    f"records {state.palloc}"
                )
