"""The CaMDN system facade (Figure 6, both halves).

:class:`CaMDNSystem` wires the architecture (regions over the NPU subspace)
to the scheduling (offline mapper + Algorithm 1) and exposes the layer-
granular protocol the multi-tenant simulator drives:

1. ``admit_task``   — register a task; run/reuse the offline mapping.
2. ``begin_layer``  — Algorithm 1 selects a candidate; the system tries to
   grant its pages (resizing the task's exclusive region and its CPT).
3. ``retry_layer``  — after a timeout, downgrade to a smaller candidate.
4. ``finish_layer`` — update the predictor arrays.
5. ``retire_task``  — destroy the region, freeing every page.

Two modes:

* ``"full"``    — CaMDN(Full): cache-aware mapping + dynamic allocation.
* ``"hw_only"`` — CaMDN(HW-only): the architecture alone; cache capacity is
  split equally among active NPUs with no runtime adjustment (the paper's
  ablation baseline in Figure 7).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..config import SoCConfig
from ..errors import PageAllocationError, SimulationError
from ..models.graph import ModelGraph
from .allocator import AllocationDecision, DynamicCacheAllocator
from .mapper.layer_mapper import LayerMapper
from .mct import ModelMappingFile
from .region import RegionManager


@dataclass
class LayerGrant:
    """Outcome of a begin/retry step for one layer.

    Attributes:
        decision: the (possibly downgraded) allocation decision.
        granted: pages were granted and the CPT updated; the layer may run.
        wait_timeout_s: when not granted, how long Algorithm 1 allows
            waiting before the next downgrade.
    """

    decision: AllocationDecision
    granted: bool
    wait_timeout_s: float = 0.0


class CaMDNSystem:
    """Architecture-scheduling co-design controller."""

    def __init__(self, soc: SoCConfig, mode: str = "full",
                 mapper: Optional[LayerMapper] = None) -> None:
        if mode not in ("full", "hw_only"):
            raise SimulationError(f"unknown CaMDN mode {mode!r}")
        self.soc = soc
        self.mode = mode
        self.mapper = mapper or LayerMapper(soc)
        self.regions = RegionManager(soc.cache)
        self.allocator = DynamicCacheAllocator(
            page_bytes=soc.cache.page_bytes,
            total_pages=soc.cache.num_pages,
        )
        self._graphs: Dict[str, ModelGraph] = {}

    # ------------------------------------------------------------------
    # Task lifecycle
    # ------------------------------------------------------------------

    def admit_task(self, task_id: str,
                   graph: ModelGraph) -> ModelMappingFile:
        """Register a task and ensure its offline mapping exists."""
        mapping_file = self.mapper.map_model(graph)
        self.allocator.register_task(task_id, mapping_file)
        self.regions.create_region(task_id, 0)
        self._graphs[task_id] = graph
        return mapping_file

    def retire_task(self, task_id: str, now: float) -> None:
        """Free the task's region and predictor state."""
        self.allocator.finish_task(task_id, now)
        self.allocator.unregister_task(task_id)
        self.regions.destroy_region(task_id)
        del self._graphs[task_id]

    @property
    def active_tasks(self) -> int:
        return len(self._graphs)

    # ------------------------------------------------------------------
    # Layer protocol
    # ------------------------------------------------------------------

    def begin_layer(self, task_id: str, layer_index: int,
                    now: float) -> LayerGrant:
        """Select a candidate and try to grant its pages."""
        if self.mode == "hw_only":
            decision = self._hw_only_decision(task_id, layer_index, now)
        else:
            decision = self.allocator.select(task_id, layer_index, now)
        return self._try_grant(task_id, layer_index, decision)

    def retry_layer(self, task_id: str, layer_index: int,
                    grant: LayerGrant) -> LayerGrant:
        """Timeout path: downgrade and retry (Figure 6 right loop).

        The zero-page fallback always succeeds, so repeated retries
        terminate.
        """
        decision = self.allocator.downgrade(
            task_id, layer_index, grant.decision
        )
        if decision is None:
            raise SimulationError(
                f"{task_id}: zero-page candidate failed to be granted"
            )
        return self._try_grant(task_id, layer_index, decision)

    def finish_layer(self, task_id: str, layer_index: int,
                     now: float) -> None:
        """Layer boundary: update the prediction arrays."""
        self.allocator.end_layer(task_id, layer_index, now)

    # ------------------------------------------------------------------

    def _try_grant(self, task_id: str, layer_index: int,
                   decision: AllocationDecision) -> LayerGrant:
        region = self.regions.region_of(task_id)
        current = region.num_pages if region else 0
        needed_delta = decision.pages_needed - current
        if needed_delta > self.regions.free_pages:
            return LayerGrant(
                decision=decision,
                granted=False,
                wait_timeout_s=decision.timeout_s,
            )
        try:
            self.regions.resize_region(task_id, decision.pages_needed)
        except PageAllocationError:
            return LayerGrant(
                decision=decision,
                granted=False,
                wait_timeout_s=decision.timeout_s,
            )
        self.allocator.commit(task_id, decision, layer_index)
        return LayerGrant(decision=decision, granted=True)

    def _hw_only_decision(self, task_id: str, layer_index: int,
                          now: float) -> AllocationDecision:
        """CaMDN(HW-only): equal static split, no prediction.

        Each active task gets ``total_pages / active_tasks`` pages; the
        largest candidate fitting that static share is used, preferring LBM
        when it fits.
        """
        state = self.allocator.task(task_id)
        mct = state.mapping_file.mct_for(layer_index)
        share = self.allocator.total_pages // max(self.active_tasks, 1)
        page_bytes = self.soc.cache.page_bytes
        if mct.lbm is not None and \
                mct.lbm.pages_needed(page_bytes) <= share:
            return AllocationDecision(
                candidate=mct.lbm,
                pages_needed=mct.lbm.pages_needed(page_bytes),
                timeout_s=0.0,
                enables_lbm=not state.has_enabled_lbm(layer_index),
            )
        best = mct.lwm[0]
        for candidate in mct.lwm:
            if candidate.pages_needed(page_bytes) <= share:
                best = candidate
        return AllocationDecision(
            candidate=best,
            pages_needed=best.pages_needed(page_bytes),
            timeout_s=0.0,
        )

    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Cross-check the allocator's page accounting with the regions."""
        self.allocator.check_invariants()
        self.regions.check_invariants()
        for task_id, state in self.allocator.tasks.items():
            region = self.regions.region_of(task_id)
            pages = region.num_pages if region else 0
            if pages != state.palloc:
                raise SimulationError(
                    f"{task_id}: region holds {pages} pages but allocator "
                    f"records {state.palloc}"
                )
