"""Model-exclusive region management (Section III-B3).

A *region* is the set of physical cache pages a model currently owns,
exposed to the model's NPU(s) as a contiguous virtual cache address space
through the CPT.  The :class:`RegionManager` keeps the global page
allocator and every model's CPT consistent: growing a region allocates
pages and appends CPT entries; shrinking releases the highest virtual pages
first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..config import CacheConfig
from ..errors import PageAllocationError
from .cpt import CachePageTable
from .pages import CachePageAllocator


@dataclass
class ModelRegion:
    """One model's exclusive slice of the NPU subspace.

    Attributes:
        task_id: owning model/task identifier.
        cpt: the CPT exposing the region as virtual cache space.
        pcpns: physical pages backing virtual pages 0..n-1, in vcpn order.
    """

    task_id: str
    cpt: CachePageTable
    pcpns: List[int]

    @property
    def num_pages(self) -> int:
        return len(self.pcpns)

    @property
    def bytes(self) -> int:
        return self.num_pages * self.cpt.cache.page_bytes


class RegionManager:
    """Keeps page ownership and CPT contents consistent across models."""

    def __init__(self, cache: CacheConfig,
                 allocator: Optional[CachePageAllocator] = None) -> None:
        self.cache = cache
        self.allocator = allocator or CachePageAllocator(cache.num_pages)
        self._regions: Dict[str, ModelRegion] = {}

    # ------------------------------------------------------------------

    @property
    def free_pages(self) -> int:
        """Pages not owned by any region."""
        return self.allocator.free_pages

    def region_of(self, task_id: str) -> Optional[ModelRegion]:
        """The region owned by ``task_id`` (``None`` if it has none)."""
        return self._regions.get(task_id)

    def regions(self) -> List[ModelRegion]:
        """All live regions sorted by task id."""
        return [self._regions[t] for t in sorted(self._regions)]

    # ------------------------------------------------------------------

    def create_region(self, task_id: str, num_pages: int) -> ModelRegion:
        """Create a region of ``num_pages`` pages for ``task_id``.

        Raises:
            PageAllocationError: the task already has a region or not
                enough pages are free.
        """
        if task_id in self._regions:
            raise PageAllocationError(f"{task_id} already has a region")
        grant = self.allocator.allocate(task_id, num_pages)
        cpt = CachePageTable(self.cache)
        cpt.remap_all(list(grant.pcpns))
        region = ModelRegion(task_id=task_id, cpt=cpt,
                             pcpns=list(grant.pcpns))
        self._regions[task_id] = region
        return region

    def resize_region(self, task_id: str, target_pages: int) -> int:
        """Grow/shrink ``task_id``'s region to ``target_pages`` pages.

        Returns the signed page delta.  The resize is delta-based: only
        the page difference is granted or released, and only the affected
        CPT entries change.  Growth appends new virtual pages (existing
        vcpn->pcpn mappings — and therefore cached data — are preserved);
        shrinkage drops the highest vcpns first.

        Raises:
            PageAllocationError: unknown task or not enough free pages to
                grow (callers treat this as a wait-and-retry condition).
        """
        region = self._regions.get(task_id)
        if region is None:
            raise PageAllocationError(f"{task_id} has no region")
        return self._resize(region, target_pages)

    def _resize(self, region: ModelRegion, target_pages: int) -> int:
        """Delta-resize a region already resolved from its task id."""
        pcpns = region.pcpns
        current = len(pcpns)
        delta = target_pages - current
        if delta > 0:
            grant = self.allocator.allocate(region.task_id, delta)
            cpt_map = region.cpt.map
            for vcpn, pcpn in enumerate(grant.pcpns, start=current):
                cpt_map(vcpn, pcpn)
            pcpns.extend(grant.pcpns)
        elif delta < 0:
            victims = pcpns[delta:]
            cpt_unmap = region.cpt.unmap
            for vcpn in range(target_pages, current):
                cpt_unmap(vcpn)
            del pcpns[delta:]
            self.allocator.release(region.task_id, victims)
        return delta

    def retire_owned(self, region: ModelRegion, pcpn: int) -> bool:
        """Evacuate an ECC-retired physical page out of ``region``.

        With a free replacement page the backing is swapped in place
        (the virtual page keeps its vcpn; region size is preserved);
        with no free page the region shrinks by one page — the last
        virtual page's backing moves into the hole and the top vcpn
        unmaps, so the region stays virtually contiguous.

        Returns:
            True when the region shrank (the caller must sync any
            page-count bookkeeping), False on an in-place swap.
        """
        vcpn = region.pcpns.index(pcpn)
        replacement = self.allocator.evacuate(region.task_id, pcpn)
        cpt = region.cpt
        if replacement is not None:
            cpt.unmap(vcpn)
            cpt.map(vcpn, replacement)
            region.pcpns[vcpn] = replacement
            return False
        last = region.num_pages - 1
        if vcpn == last:
            cpt.unmap(vcpn)
            region.pcpns.pop()
            return True
        last_pcpn = region.pcpns[last]
        cpt.unmap(last)
        cpt.unmap(vcpn)
        cpt.map(vcpn, last_pcpn)
        region.pcpns[vcpn] = last_pcpn
        region.pcpns.pop()
        return True

    def destroy_region(self, task_id: str) -> int:
        """Release every page of ``task_id``'s region; returns page count."""
        region = self._regions.pop(task_id, None)
        if region is None:
            raise PageAllocationError(f"{task_id} has no region")
        released = self.allocator.release(task_id)
        return released

    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Regions and allocator agree; CPTs are internally consistent."""
        self.allocator.check_invariants()
        for task_id, region in self._regions.items():
            held = self.allocator.pages_of(task_id)
            if sorted(region.pcpns) != held:
                raise PageAllocationError(
                    f"{task_id}: region pages {sorted(region.pcpns)} != "
                    f"allocator view {held}"
                )
            for vcpn, pcpn in enumerate(region.pcpns):
                if region.cpt.lookup(vcpn) != pcpn:
                    raise PageAllocationError(
                        f"{task_id}: CPT entry {vcpn} inconsistent"
                    )
            if region.cpt.num_mapped != region.num_pages:
                raise PageAllocationError(
                    f"{task_id}: CPT has stale entries"
                )
