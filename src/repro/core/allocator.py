"""Dynamic cache allocation (Section III-D, Algorithm 1).

The algorithm runs at the beginning of every layer of every task.  It keeps
three global arrays, updated at the end of each layer:

* ``Tnext[t]`` — profiling-based predicted time of task ``t``'s next
  reallocation (its next layer boundary);
* ``Pnext[t]`` — pages ``t`` is predicted to need at that reallocation;
* ``Palloc[t]`` — pages currently allocated to ``t``.

``predAvailPages(Tahead, tcur)`` (lines 1-6) sums the currently idle pages
with every page co-tenants are predicted to free before ``Tahead``.  The
selection logic (lines 7-22) prefers an already-enabled LBM block, then
tries to enable LBM at block heads when the predicted availability covers
the block footprint, and otherwise picks the largest LWM candidate fitting
the prediction.  Timeout thresholds are 20 % of the profiled layer (or
block) latency; every timeout downgrades the request to the next-smaller
candidate (Figure 6 right).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..errors import SimulationError
from .mct import MappingCandidate, MappingCandidateTable, ModelMappingFile

#: Fraction of the profiled latency used as the wait-ahead horizon and
#: timeout threshold (``Test * 0.2`` in Algorithm 1 lines 11 and 16).
LOOKAHEAD_FRACTION = 0.2


@dataclass
class TaskState:
    """Per-task allocation bookkeeping (Algorithm 1's global arrays)."""

    task_id: str
    mapping_file: ModelMappingFile
    palloc: int = 0
    tnext: float = math.inf
    pnext: int = 0
    lbm_block: Optional[Tuple[int, int]] = None

    def has_enabled_lbm(self, layer_index: int) -> bool:
        """``hasEnabledLBM`` (line 7): LBM is active for this layer's
        block."""
        return (
            self.lbm_block is not None
            and self.lbm_block[0] <= layer_index < self.lbm_block[1]
        )


@dataclass(frozen=True)
class AllocationDecision:
    """Output of Algorithm 1 for one layer.

    Attributes:
        candidate: selected mapping (``Mcur``).
        pages_needed: cache pages required (``Pcur``).
        timeout_s: waiting threshold (``Tahead`` as a *deadline instant* is
            kept by the caller; this is the wait budget from "now").
            ``inf`` when LBM is already enabled (line 9).
        enables_lbm: this decision turns LBM on for the layer's block.
    """

    candidate: MappingCandidate
    pages_needed: int
    timeout_s: float
    enables_lbm: bool = False


class DynamicCacheAllocator:
    """Algorithm 1 over a set of co-located tasks."""

    def __init__(self, page_bytes: int, total_pages: int) -> None:
        if page_bytes <= 0 or total_pages <= 0:
            raise SimulationError("page geometry must be positive")
        self.page_bytes = page_bytes
        self.total_pages = total_pages
        self._tasks: Dict[str, TaskState] = {}

    # ------------------------------------------------------------------
    # Task lifecycle
    # ------------------------------------------------------------------

    def register_task(self, task_id: str,
                      mapping_file: ModelMappingFile) -> TaskState:
        if task_id in self._tasks:
            raise SimulationError(f"{task_id} already registered")
        state = TaskState(task_id=task_id, mapping_file=mapping_file)
        self._tasks[task_id] = state
        return state

    def unregister_task(self, task_id: str) -> None:
        if task_id not in self._tasks:
            raise SimulationError(f"{task_id} is not registered")
        del self._tasks[task_id]

    def task(self, task_id: str) -> TaskState:
        state = self._tasks.get(task_id)
        if state is None:
            raise SimulationError(f"{task_id} is not registered")
        return state

    @property
    def tasks(self) -> Dict[str, TaskState]:
        return dict(self._tasks)

    # ------------------------------------------------------------------
    # Algorithm 1
    # ------------------------------------------------------------------

    def idle_pages(self) -> int:
        """Pages not allocated to any registered task."""
        return self.total_pages - sum(
            t.palloc for t in self._tasks.values()
        )

    def pred_avail_pages(self, t_ahead: float, tcur: str) -> int:
        """``predAvailPages`` (lines 1-6)."""
        p_ahead = self.idle_pages()
        for task_id, state in self._tasks.items():
            if task_id == tcur:
                continue
            if state.tnext < t_ahead:
                p_ahead += state.palloc - state.pnext
        return p_ahead

    def select(self, tcur: str, layer_index: int,
               now: float) -> AllocationDecision:
        """Lines 7-22: pick the mapping candidate for ``tcur``'s layer."""
        state = self.task(tcur)
        mct = state.mapping_file.mct_for(layer_index)

        # Lines 7-9: LBM already enabled for this block.
        if state.has_enabled_lbm(layer_index) and mct.lbm is not None:
            return AllocationDecision(
                candidate=mct.lbm,
                pages_needed=mct.lbm.pages_needed(self.page_bytes),
                timeout_s=math.inf,
            )

        # Lines 10-15: try to enable LBM at a block head.
        if state.mapping_file.is_block_head(layer_index) and \
                mct.lbm is not None:
            block_est = state.mapping_file.block_est_latency_s(layer_index)
            t_ahead = now + block_est * LOOKAHEAD_FRACTION
            p_ahead = self.pred_avail_pages(t_ahead, tcur) + state.palloc
            lbm_pages = mct.lbm.pages_needed(self.page_bytes)
            if lbm_pages < p_ahead:
                return AllocationDecision(
                    candidate=mct.lbm,
                    pages_needed=lbm_pages,
                    timeout_s=block_est * LOOKAHEAD_FRACTION,
                    enables_lbm=True,
                )

        # Lines 16-22: largest LWM candidate within the prediction.
        t_ahead = now + mct.est_latency_s * LOOKAHEAD_FRACTION
        p_ahead = self.pred_avail_pages(t_ahead, tcur) + state.palloc
        best = mct.lwm[0]
        for candidate in mct.lwm:
            pages = candidate.pages_needed(self.page_bytes)
            if best.pages_needed(self.page_bytes) < pages <= p_ahead:
                best = candidate
        return AllocationDecision(
            candidate=best,
            pages_needed=best.pages_needed(self.page_bytes),
            timeout_s=mct.est_latency_s * LOOKAHEAD_FRACTION,
        )

    def downgrade(self, tcur: str, layer_index: int,
                  decision: AllocationDecision
                  ) -> Optional[AllocationDecision]:
        """Timeout path: next-smaller candidate, or ``None`` when already
        at the zero-page fallback (which always succeeds)."""
        state = self.task(tcur)
        mct = state.mapping_file.mct_for(layer_index)
        if decision.candidate.kind == "LBM":
            # Dropping out of LBM: fall back to the best-fitting LWM.
            lwm_decision = AllocationDecision(
                candidate=mct.lwm[-1],
                pages_needed=mct.lwm[-1].pages_needed(self.page_bytes),
                timeout_s=decision.timeout_s,
            )
            return lwm_decision
        smaller = mct.smaller_than(decision.candidate, self.page_bytes)
        if smaller is None:
            return None
        return AllocationDecision(
            candidate=smaller,
            pages_needed=smaller.pages_needed(self.page_bytes),
            timeout_s=decision.timeout_s,
        )

    # ------------------------------------------------------------------
    # Bookkeeping at layer boundaries
    # ------------------------------------------------------------------

    def commit(self, tcur: str, decision: AllocationDecision,
               layer_index: int) -> None:
        """Record a successful page grant for ``tcur``."""
        state = self.task(tcur)
        state.palloc = decision.pages_needed
        if decision.enables_lbm:
            state.lbm_block = state.mapping_file.block_of(layer_index)

    def end_layer(self, tcur: str, layer_index: int, now: float) -> None:
        """Update ``Tnext``/``Pnext`` at the end of a layer (the paper's
        "updated at the end of each layer").

        ``Tnext`` is the predicted end of the *next* layer (the task's next
        reallocation opportunity after the imminent one); ``Pnext`` is the
        pages it is predicted to hold then — the LBM footprint while inside
        an enabled block, otherwise the largest LWM candidate not exceeding
        the current allocation (tasks tend to stay at their usage level).
        """
        state = self.task(tcur)
        mf = state.mapping_file
        next_index = layer_index + 1
        if next_index >= len(mf.mcts):
            # Last layer: everything frees at completion.
            state.tnext = now + mf.mcts[layer_index].est_latency_s
            state.pnext = 0
            if state.lbm_block and layer_index >= state.lbm_block[1] - 1:
                state.lbm_block = None
            return
        next_mct = mf.mct_for(next_index)
        state.tnext = now + next_mct.est_latency_s
        if state.has_enabled_lbm(next_index) and next_mct.lbm is not None:
            state.pnext = next_mct.lbm.pages_needed(self.page_bytes)
        else:
            fitting = [
                c.pages_needed(self.page_bytes)
                for c in next_mct.lwm
                if c.pages_needed(self.page_bytes) <= state.palloc
            ]
            state.pnext = max(fitting) if fitting else 0
        if state.lbm_block and layer_index >= state.lbm_block[1] - 1:
            state.lbm_block = None

    def finish_task(self, tcur: str, now: float) -> None:
        """Mark a completed inference: all pages become reclaimable."""
        state = self.task(tcur)
        state.palloc = 0
        state.pnext = 0
        state.tnext = math.inf
        state.lbm_block = None

    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Total allocated pages never exceed the NPU subspace."""
        total = sum(t.palloc for t in self._tasks.values())
        if total > self.total_pages:
            raise SimulationError(
                f"allocated {total} pages > {self.total_pages} available"
            )
