"""Dynamic cache allocation (Section III-D, Algorithm 1).

The algorithm runs at the beginning of every layer of every task.  It keeps
three global arrays, updated at the end of each layer:

* ``Tnext[t]`` — profiling-based predicted time of task ``t``'s next
  reallocation (its next layer boundary);
* ``Pnext[t]`` — pages ``t`` is predicted to need at that reallocation;
* ``Palloc[t]`` — pages currently allocated to ``t``.

``predAvailPages(Tahead, tcur)`` (lines 1-6) sums the currently idle pages
with every page co-tenants are predicted to free before ``Tahead``.  The
selection logic (lines 7-22) prefers an already-enabled LBM block, then
tries to enable LBM at block heads when the predicted availability covers
the block footprint, and otherwise picks the largest LWM candidate fitting
the prediction.  Timeout thresholds are 20 % of the profiled layer (or
block) latency; every timeout downgrades the request to the next-smaller
candidate (Figure 6 right).

Since PR 2 made the event loop itself cheap, this module *is* the hot
path of the CaMDN policies, so the paper's global arrays are stored
literally: flat parallel lists (``Tnext``/``Pnext``/``Palloc``) in task
registration order, mirroring the structure-of-arrays design of
:mod:`repro.sim.kernel`.  A running ``sum(Palloc)`` makes
:meth:`DynamicCacheAllocator.idle_pages` O(1), ``predAvailPages`` is a
tight scan over the flat arrays, and candidate walks go through the
precomputed :class:`~repro.core.mct.MCTGeometry` ``bisect`` tables
instead of recomputing ``pages_needed`` per comparison.  Because every
selection input (candidate pages, layer latency, lookahead fraction) is
fixed per MCT, the resulting :class:`AllocationDecision` objects are
immutable and memoized on the geometry — steady-state ``select`` builds
no objects at all.  :class:`TaskState` stays the public per-task view;
its ``palloc``/``tnext``/``pnext`` attributes are properties that write
through to the arrays, so external mutation (tests, diagnostics) can
never desynchronize the aggregates.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import SimulationError
from .mct import MappingCandidate, ModelMappingFile

#: Fraction of the profiled latency used as the wait-ahead horizon and
#: timeout threshold (``Test * 0.2`` in Algorithm 1 lines 11 and 16).
LOOKAHEAD_FRACTION = 0.2


class TaskState:
    """Per-task allocation bookkeeping (Algorithm 1's global arrays).

    A view over one slot of the allocator's flat ``Tnext``/``Pnext``/
    ``Palloc`` arrays: reads and writes go straight to the arrays (and
    keep the running ``sum(Palloc)`` aggregate exact), so this object can
    be handed out freely without copying state.
    """

    __slots__ = ("task_id", "mapping_file", "lbm_block", "mcts", "geoms",
                 "heads", "block_est", "ests", "timeouts", "_alloc",
                 "_slot")

    def __init__(self, task_id: str, mapping_file: ModelMappingFile,
                 alloc: "DynamicCacheAllocator", slot: int) -> None:
        self.task_id = task_id
        self.mapping_file = mapping_file
        #: Active LBM block as (start, end), or ``None``.
        self.lbm_block: Optional[Tuple[int, int]] = None
        #: Direct references into the (shared) mapping file's lazy
        #: tables: per-layer MCTs, geometries at the allocator's page
        #: size, block-head flags and block latencies — the per-layer hot
        #: path is list indexing, not method calls or dict probes.
        self.mcts = mapping_file.mcts
        self.geoms = mapping_file.layer_geometries(alloc.page_bytes)
        self.heads = mapping_file.block_head_flags()
        self.block_est = mapping_file.block_latencies()
        self.ests = mapping_file.scaled_latencies(1.0)
        self.timeouts = mapping_file.scaled_latencies(LOOKAHEAD_FRACTION)
        self._alloc = alloc
        self._slot = slot

    @property
    def palloc(self) -> int:
        return self._alloc._palloc[self._slot]

    @palloc.setter
    def palloc(self, pages: int) -> None:
        alloc = self._alloc
        alloc._palloc_sum += pages - alloc._palloc[self._slot]
        alloc._palloc[self._slot] = pages

    @property
    def tnext(self) -> float:
        return self._alloc._tnext[self._slot]

    @tnext.setter
    def tnext(self, t: float) -> None:
        self._alloc._tnext[self._slot] = t

    @property
    def pnext(self) -> int:
        return self._alloc._pnext[self._slot]

    @pnext.setter
    def pnext(self, pages: int) -> None:
        self._alloc._pnext[self._slot] = pages

    def has_enabled_lbm(self, layer_index: int) -> bool:
        """``hasEnabledLBM`` (line 7): LBM is active for this layer's
        block."""
        return (
            self.lbm_block is not None
            and self.lbm_block[0] <= layer_index < self.lbm_block[1]
        )

    def __repr__(self) -> str:
        return (
            f"TaskState(task_id={self.task_id!r}, palloc={self.palloc}, "
            f"tnext={self.tnext}, pnext={self.pnext}, "
            f"lbm_block={self.lbm_block})"
        )


@dataclass(frozen=True)
class AllocationDecision:
    """Output of Algorithm 1 for one layer.

    Attributes:
        candidate: selected mapping (``Mcur``).
        pages_needed: cache pages required (``Pcur``).
        timeout_s: waiting threshold (``Tahead`` as a *deadline instant* is
            kept by the caller; this is the wait budget from "now").
            ``inf`` when LBM is already enabled (line 9).
        enables_lbm: this decision turns LBM on for the layer's block.
    """

    candidate: MappingCandidate
    pages_needed: int
    timeout_s: float
    enables_lbm: bool = False


class DynamicCacheAllocator:
    """Algorithm 1 over a set of co-located tasks."""

    def __init__(self, page_bytes: int, total_pages: int) -> None:
        if page_bytes <= 0 or total_pages <= 0:
            raise SimulationError("page geometry must be positive")
        self.page_bytes = page_bytes
        self.total_pages = total_pages
        # Flat SoA predictor arrays in registration order, plus the
        # per-slot TaskState views and the id -> slot index.
        self._ids: List[str] = []
        self._states: List[TaskState] = []
        self._pos: Dict[str, int] = {}
        self._palloc: List[int] = []
        self._tnext: List[float] = []
        self._pnext: List[int] = []
        #: Running ``sum(Palloc)`` (kept exact by the palloc setter).
        self._palloc_sum: int = 0

    # ------------------------------------------------------------------
    # Task lifecycle
    # ------------------------------------------------------------------

    def register_task(self, task_id: str,
                      mapping_file: ModelMappingFile) -> TaskState:
        if task_id in self._pos:
            raise SimulationError(f"{task_id} already registered")
        slot = len(self._ids)
        state = TaskState(task_id, mapping_file, self, slot)
        self._pos[task_id] = slot
        self._ids.append(task_id)
        self._states.append(state)
        self._palloc.append(0)
        self._tnext.append(math.inf)
        self._pnext.append(0)
        return state

    def unregister_task(self, task_id: str) -> None:
        slot = self._pos.pop(task_id, None)
        if slot is None:
            raise SimulationError(f"{task_id} is not registered")
        self._palloc_sum -= self._palloc[slot]
        del self._ids[slot]
        del self._states[slot]
        del self._palloc[slot]
        del self._tnext[slot]
        del self._pnext[slot]
        # Compact: later slots shift down by one (registration order is
        # preserved, mirroring the legacy insertion-ordered dict).
        for j in range(slot, len(self._ids)):
            self._pos[self._ids[j]] = j
            self._states[j]._slot = j

    def task(self, task_id: str) -> TaskState:
        slot = self._pos.get(task_id)
        if slot is None:
            raise SimulationError(f"{task_id} is not registered")
        return self._states[slot]

    @property
    def tasks(self) -> Dict[str, TaskState]:
        return dict(zip(self._ids, self._states))

    # ------------------------------------------------------------------
    # Algorithm 1
    # ------------------------------------------------------------------

    def idle_pages(self) -> int:
        """Pages not allocated to any registered task."""
        return self.total_pages - self._palloc_sum

    def pred_avail_pages(self, t_ahead: float, tcur: str) -> int:
        """``predAvailPages`` (lines 1-6)."""
        return self._pred_avail(t_ahead, self._pos.get(tcur, -1))

    def _pred_avail(self, t_ahead: float, skip: int) -> int:
        """``predAvailPages`` over the flat arrays, excluding slot
        ``skip``.  Sums every task's predicted free, then compensates the
        excluded slot — cheaper than an index test per iteration, and
        identical integer arithmetic (addition is commutative on ints).
        """
        p_ahead = self.total_pages - self._palloc_sum
        palloc = self._palloc
        pnext = self._pnext
        tnext = self._tnext
        for t, pa, pn in zip(tnext, palloc, pnext):
            if t < t_ahead:
                p_ahead += pa - pn
        if 0 <= skip < len(palloc) and tnext[skip] < t_ahead:
            p_ahead -= palloc[skip] - pnext[skip]
        return p_ahead

    def select(self, tcur: str, layer_index: int,
               now: float) -> AllocationDecision:
        """Lines 7-22: pick the mapping candidate for ``tcur``'s layer."""
        return self.select_prepared(self.task(tcur), layer_index, now)

    def select_prepared(self, state: TaskState, layer_index: int,
                        now: float) -> AllocationDecision:
        """:meth:`select` for a task already resolved to its state."""
        if not 0 <= layer_index < len(state.geoms):
            state.mapping_file.mct_for(layer_index)  # raises MappingError
        geom = state.geoms[layer_index]
        cache = geom.decision_cache
        lbm_pages = geom.lbm_pages

        if lbm_pages is not None:
            # Lines 7-9: LBM already enabled for this block.
            block = state.lbm_block
            if block is not None and \
                    block[0] <= layer_index < block[1]:
                decision = cache.get("lbm_sticky")
                if decision is None:
                    decision = AllocationDecision(
                        candidate=state.mcts[layer_index].lbm,
                        pages_needed=lbm_pages,
                        timeout_s=math.inf,
                    )
                    cache["lbm_sticky"] = decision
                return decision

            # Lines 10-15: try to enable LBM at a block head.
            if state.heads[layer_index]:
                timeout = state.block_est[layer_index] * \
                    LOOKAHEAD_FRACTION
                slot = state._slot
                p_ahead = self._pred_avail(now + timeout, slot) + \
                    self._palloc[slot]
                if lbm_pages < p_ahead:
                    key = ("lbm_head", timeout)
                    decision = cache.get(key)
                    if decision is None:
                        decision = AllocationDecision(
                            candidate=state.mcts[layer_index].lbm,
                            pages_needed=lbm_pages,
                            timeout_s=timeout,
                            enables_lbm=True,
                        )
                        cache[key] = decision
                    return decision

        # Lines 16-22: largest LWM candidate within the prediction.
        timeout = state.timeouts[layer_index]
        if geom.single_level:
            # Every candidate needs the same page count, so the winner is
            # independent of the availability prediction (it is always
            # ``lwm[0]``): skip the ``predAvailPages`` scan.  The cached
            # decision is revalidated against this task's timeout table
            # (decision caches are shared across mapping files only via
            # the file memo, but the check costs one compare).
            decision = cache.get("lwm0")
            if decision is None or decision.timeout_s != timeout:
                decision = AllocationDecision(
                    candidate=state.mcts[layer_index].lwm[0],
                    pages_needed=geom.lwm_pages[0],
                    timeout_s=timeout,
                )
                cache["lwm0"] = decision
            return decision
        slot = state._slot
        p_ahead = self._pred_avail(now + timeout, slot) + \
            self._palloc[slot]
        i = geom.select_index(p_ahead)
        key = ("lwm", i, timeout)
        decision = cache.get(key)
        if decision is None:
            decision = AllocationDecision(
                candidate=state.mcts[layer_index].lwm[i],
                pages_needed=geom.lwm_pages[i],
                timeout_s=timeout,
            )
            cache[key] = decision
        return decision

    def downgrade(self, tcur: str, layer_index: int,
                  decision: AllocationDecision
                  ) -> Optional[AllocationDecision]:
        """Timeout path: next-smaller candidate, or ``None`` when already
        at the zero-page fallback (which always succeeds)."""
        return self.downgrade_prepared(self.task(tcur), layer_index,
                                       decision)

    def downgrade_prepared(self, state: TaskState, layer_index: int,
                           decision: AllocationDecision
                           ) -> Optional[AllocationDecision]:
        """:meth:`downgrade` for a task already resolved to its state.

        Downgraded decisions are memoized on the geometry like selection
        results (keyed by candidate index and carried timeout): repeated
        timeout storms reuse one immutable object per step, which also
        keeps the grant memos keyed on decision identity bounded.
        """
        if not 0 <= layer_index < len(state.mcts):
            state.mapping_file.mct_for(layer_index)  # raises MappingError
        mct = state.mcts[layer_index]
        geom = state.geoms[layer_index]
        cache = geom.decision_cache
        if decision.candidate.kind == "LBM":
            # Dropping out of LBM: fall back to the best-fitting LWM.
            key = ("dg", len(geom.lwm_pages) - 1, decision.timeout_s)
            downgraded = cache.get(key)
            if downgraded is None:
                downgraded = AllocationDecision(
                    candidate=mct.lwm[-1],
                    pages_needed=geom.lwm_pages[-1],
                    timeout_s=decision.timeout_s,
                )
                cache[key] = downgraded
            return downgraded
        i = geom.next_smaller_index(
            decision.candidate.pages_needed(self.page_bytes)
        )
        if i < 0:
            return None
        key = ("dg", i, decision.timeout_s)
        downgraded = cache.get(key)
        if downgraded is None:
            downgraded = AllocationDecision(
                candidate=mct.lwm[i],
                pages_needed=geom.lwm_pages[i],
                timeout_s=decision.timeout_s,
            )
            cache[key] = downgraded
        return downgraded

    # ------------------------------------------------------------------
    # Bookkeeping at layer boundaries
    # ------------------------------------------------------------------

    def commit(self, tcur: str, decision: AllocationDecision,
               layer_index: int) -> None:
        """Record a successful page grant for ``tcur``."""
        self.commit_prepared(self.task(tcur), decision, layer_index)

    def commit_prepared(self, state: TaskState,
                        decision: AllocationDecision,
                        layer_index: int) -> None:
        """:meth:`commit` for a task already resolved to its state."""
        slot = state._slot
        pages = decision.pages_needed
        self._palloc_sum += pages - self._palloc[slot]
        self._palloc[slot] = pages
        if decision.enables_lbm:
            state.lbm_block = state.mapping_file.block_of(layer_index)

    def end_layer(self, tcur: str, layer_index: int, now: float) -> None:
        """Update ``Tnext``/``Pnext`` at the end of a layer (the paper's
        "updated at the end of each layer").

        ``Tnext`` is the predicted end of the *next* layer (the task's next
        reallocation opportunity after the imminent one); ``Pnext`` is the
        pages it is predicted to hold then — the LBM footprint while inside
        an enabled block, otherwise the largest LWM candidate not exceeding
        the current allocation (tasks tend to stay at their usage level).
        """
        self.end_layer_prepared(self.task(tcur), layer_index, now)

    def end_layer_prepared(self, state: TaskState, layer_index: int,
                           now: float) -> None:
        """:meth:`end_layer` for a task already resolved to its state."""
        slot = state._slot
        ests = state.ests
        block = state.lbm_block
        next_index = layer_index + 1
        if next_index >= len(ests):
            # Last layer: everything frees at completion.
            self._tnext[slot] = now + state.mcts[layer_index].est_latency_s
            self._pnext[slot] = 0
            if block and layer_index >= block[1] - 1:
                state.lbm_block = None
            return
        self._tnext[slot] = now + ests[next_index]
        geom = state.geoms[next_index]
        if block is not None and geom.lbm_pages is not None and \
                block[0] <= next_index < block[1]:
            self._pnext[slot] = geom.lbm_pages
        elif geom.single_level:
            unique = geom.unique_pages
            self._pnext[slot] = unique[0] if unique and \
                unique[0] <= self._palloc[slot] else 0
        else:
            # Inlined MCTGeometry.max_pages_at_most (hot path).
            unique = geom.unique_pages
            k = bisect_right(unique, self._palloc[slot]) - 1
            self._pnext[slot] = unique[k] if k >= 0 else 0
        if block and layer_index >= block[1] - 1:
            state.lbm_block = None

    def finish_task(self, tcur: str, now: float) -> None:
        """Mark a completed inference: all pages become reclaimable."""
        slot = self._pos.get(tcur)
        if slot is None:
            raise SimulationError(f"{tcur} is not registered")
        self._palloc_sum -= self._palloc[slot]
        self._palloc[slot] = 0
        self._pnext[slot] = 0
        self._tnext[slot] = math.inf
        self._states[slot].lbm_block = None

    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Total allocated pages never exceed the NPU subspace, and the
        running aggregate agrees with the array it summarizes."""
        total = sum(self._palloc)
        if total != self._palloc_sum:
            raise SimulationError(
                f"palloc aggregate {self._palloc_sum} != array sum {total}"
            )
        if total > self.total_pages:
            raise SimulationError(
                f"allocated {total} pages > {self.total_pages} available"
            )
        for task_id, slot in self._pos.items():
            if self._ids[slot] != task_id or \
                    self._states[slot]._slot != slot:
                raise SimulationError(
                    f"{task_id}: SoA slot index out of sync"
                )
