"""Problem-space shrinking heuristics (Section III-C1).

The paper's layer mapper "first shrinks the problem space according to a set
of heuristic rules [that] improve the utilization of cache line, NPU-private
storage and compute resource, and reduce the choices of loop permutation".
This module encodes those rules:

1. **PE alignment** — tile sizes along ``n`` and ``k`` are multiples of the
   PE-array columns/rows (full cache lines and full array utilization);
   ``m`` tiles are multiples of the array height for full pipelining.
2. **Scratchpad fit** — tile working sets (double-buffered) must fit the
   256 KiB private scratchpad; oversized tiles are discarded before the
   solver runs.
3. **Permutation pruning** — only the innermost tile loop changes
   first-order DRAM traffic, so the 6 loop permutations collapse to 3
   innermost choices.
4. **Pin dominance** — pinning a tensor only pays when the tiling refetches
   it, so subspaces that pin a never-refetched tensor are dropped.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import FrozenSet, Iterator, List, Tuple

from ...config import NPUConfig
from .dram_model import PINNABLE, TilingChoice, refetch_factors, \
    scratchpad_bytes
from .loopnest import GEMMShape, tile_candidates


@dataclass(frozen=True)
class Subspace:
    """One disjoint solver subspace: a pinning subset and innermost loop."""

    pinned: FrozenSet[str]
    innermost: str


@dataclass
class HeuristicRules:
    """Configured pruning rules bound to an NPU configuration."""

    npu: NPUConfig
    dtype_bytes: int = 1
    max_tiles_per_dim: int = 8
    _stats: dict = field(default_factory=dict)

    def tile_space(self, shape: GEMMShape) -> Iterator[Tuple[int, int, int]]:
        """Yield PE-aligned, scratchpad-feasible (tm, tn, tk) triples."""
        tms = tile_candidates(shape.m, self.npu.pe_rows,
                              self.max_tiles_per_dim)
        tns = tile_candidates(shape.n, self.npu.pe_cols,
                              self.max_tiles_per_dim)
        tks = tile_candidates(shape.k, self.npu.pe_rows,
                              self.max_tiles_per_dim)
        total = kept = 0
        for tm, tn, tk in itertools.product(tms, tns, tks):
            total += 1
            choice = TilingChoice(tm=tm, tn=tn, tk=tk, innermost="m")
            if scratchpad_bytes(choice, self.dtype_bytes) > \
                    self.npu.scratchpad_bytes:
                continue
            kept += 1
            yield (tm, tn, tk)
        self._stats["tile_space_total"] = total
        self._stats["tile_space_kept"] = kept

    def subspaces(self, shape: GEMMShape,
                  usage_limit_bytes: int) -> List[Subspace]:
        """Disjoint (pinning, innermost) subspaces worth solving.

        Rules applied:

        * a pinned subset must fit ``usage_limit_bytes`` outright;
        * with a zero limit, only the empty pin set survives;
        * pinning a tensor that no feasible tiling refetches is dominated
          and dropped (checked against the most refetch-prone tiling).
        """
        sizes = {
            "weight": shape.weight_elems * self.dtype_bytes,
            "input": shape.input_elems * self.dtype_bytes,
            "output": shape.output_elems * self.dtype_bytes,
        }
        subspaces: List[Subspace] = []
        for r in range(len(PINNABLE) + 1):
            for combo in itertools.combinations(PINNABLE, r):
                pinned = frozenset(combo)
                if sum(sizes[t] for t in pinned) > usage_limit_bytes:
                    continue
                for innermost in ("m", "n", "k"):
                    if self._pin_dominated(pinned, innermost):
                        continue
                    subspaces.append(Subspace(pinned, innermost))
        return subspaces

    @staticmethod
    def _pin_dominated(pinned: FrozenSet[str], innermost: str) -> bool:
        """A pinned tensor that this innermost choice never refetches can
        be dropped: the pin buys nothing and only costs pages."""
        never_refetched = {"m": "weight", "n": "input", "k": "output"}
        return never_refetched[innermost] in pinned

    @property
    def stats(self) -> dict:
        """Pruning statistics from the last :meth:`tile_space` call."""
        return dict(self._stats)


def most_refetched_tensor(shape: GEMMShape,
                          choice: TilingChoice) -> str:
    """The tensor with the largest refetch traffic under ``choice`` —
    the best pinning target per byte (used by greedy fallbacks)."""
    factors = refetch_factors(shape, choice)
    sizes = {
        "weight": shape.weight_elems,
        "input": shape.input_elems,
        "output": shape.output_elems,
    }
    return max(
        PINNABLE,
        key=lambda t: (factors[t] - 1) * sizes[t],
    )
