"""The cache-aware layer mapper (Section III-C, Figure 6 left).

For each layer the mapper generates one LWM candidate per cache-usage level
(the ``CUs`` list of Figure 6: 0 KiB, 256 KiB, 512 KiB, ...) plus an LBM
candidate, writes them into the layer's MCT, and bundles all MCTs into the
model's mapping file.  Latency estimates (``Test`` in Algorithm 1) come from
the systolic compute model and a fair-share bandwidth assumption, playing
the role of the paper's profiling pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import ClassVar, Dict, List, Optional, Tuple

from ...config import KiB, MiB, SoCConfig
from ...models.graph import ModelGraph
from ...models.layers import LayerKind, LayerSpec
from ...npu.systolic import SystolicModel
from ..mct import (
    CacheMapEntry,
    LoopLevel,
    MappingCandidate,
    MappingCandidateTable,
    ModelMappingFile,
)
from .dram_model import TilingChoice, refetch_factors
from .lbm import build_lbm_candidates, plan_blocks
from .loopnest import GEMMShape, trip_count
from .solver import SolvedMapping, SubspaceSolver

#: Environment override for the on-disk mapping-file cache location; an
#: empty value disables disk persistence (the process memo remains).
MAPPING_CACHE_DIR_ENV = "REPRO_MAPPING_CACHE_DIR"


def mapping_cache_dir() -> Optional[Path]:
    """Resolved mapping-file cache directory, or ``None`` when disabled."""
    from ..serialize import resolve_cache_dir

    return resolve_cache_dir(MAPPING_CACHE_DIR_ENV, "mappings")


#: Figure 6's cache-usage levels: 0 KiB, 256 KiB, 512 KiB, 1 MiB, 2 MiB,
#: 4 MiB.  The paper's list is open-ended ("[0KB, 256KB, 512KB, ...]");
#: :func:`usage_levels_for` extends it for larger caches.
DEFAULT_USAGE_LEVELS: Tuple[int, ...] = (
    0,
    256 * KiB,
    512 * KiB,
    1 * MiB,
    2 * MiB,
    4 * MiB,
)


def usage_levels_for(soc: SoCConfig) -> Tuple[int, ...]:
    """Cache-usage levels adapted to the SoC's NPU subspace.

    Doubling levels from 256 KiB up to a third of the NPU subspace: a
    single tenant should never be offered a candidate that monopolizes the
    shared NPU subspace, but larger caches must expose larger levels or
    CaMDN cannot exploit them (the paper's Figure 8 shows CaMDN's advantage
    *growing* with cache capacity).
    """
    ceiling = max(soc.cache.npu_subspace_bytes // 3, 256 * KiB)
    levels = [0]
    level = 256 * KiB
    while level <= ceiling:
        levels.append(level)
        level *= 2
    return tuple(levels)


@dataclass
class LayerMapper:
    """Offline cache-aware mapper for one SoC configuration.

    Attributes:
        soc: hardware configuration (``HC`` input of Figure 6).
        usage_levels: cache-usage levels (``CU`` input of Figure 6).
        lbm_occupancy_fraction: block budget as a fraction of the NPU
            subspace.
    """

    soc: SoCConfig
    usage_levels: Optional[Tuple[int, ...]] = None
    lbm_occupancy_fraction: float = 0.25

    #: Process-wide memo shared by every mapper instance: offline mapping
    #: is deterministic in (model, relevant hardware parameters), and the
    #: experiment sweeps re-map the same eight models many times.
    _SHARED_CACHE: ClassVar[Dict[tuple, ModelMappingFile]] = {}

    def __post_init__(self) -> None:
        if self.usage_levels is None:
            self.usage_levels = usage_levels_for(self.soc)
        self._solver = SubspaceSolver(self.soc.npu, self.soc.dtype_bytes)
        self._systolic = SystolicModel(self.soc.npu)

    def _memo_key(self, graph: ModelGraph) -> tuple:
        soc = self.soc
        return (
            graph.name,
            soc.npu.scratchpad_bytes,
            soc.npu.pe_rows,
            soc.npu.pe_cols,
            soc.cache.npu_subspace_bytes,
            soc.cache.page_bytes,
            soc.dtype_bytes,
            soc.num_npu_cores,
            self.usage_levels,
            self.lbm_occupancy_fraction,
        )

    # ------------------------------------------------------------------

    def map_model(self, graph: ModelGraph) -> ModelMappingFile:
        """Run the offline mapping phase for ``graph`` (memoized).

        Two cache layers: the process-wide memo, then the on-disk
        mapping-file store (the persisted "Model Mapping File" of
        Figure 6 — real deployments persist the offline phase's output,
        and so do we).  Disk entries are keyed by a content hash of the
        memo key plus the package version and round-trip through the
        exact JSON serializers of :mod:`repro.core.serialize`, so a
        loaded mapping is float-for-float the one that was solved.
        """
        key = self._memo_key(graph)
        cached = self._SHARED_CACHE.get(key)
        if cached is not None:
            return cached
        disk_path = self._disk_path(key)
        loaded = self._load_disk(disk_path)
        if loaded is not None:
            self._SHARED_CACHE[key] = loaded
            return loaded
        mapping_file = self._solve_model(graph)
        self._SHARED_CACHE[key] = mapping_file
        self._store_disk(disk_path, mapping_file)
        return mapping_file

    def _disk_path(self, key: tuple) -> Optional[Path]:
        cache_dir = mapping_cache_dir()
        if cache_dir is None:
            return None
        from ... import __version__
        from ..serialize import source_content_salt, stable_content_hash

        digest = stable_content_hash({
            "repro_version": __version__,
            "source_salt": source_content_salt(),
            "key": list(key),
        })
        return cache_dir / f"{digest}.json"

    @staticmethod
    def _load_disk(path: Optional[Path]) -> Optional[ModelMappingFile]:
        """A persisted mapping file, or ``None`` on miss/corruption.

        A present-but-unparseable entry (truncated write, corruption) is
        logged and unlinked so the mapping re-solves and the entry is
        rebuilt transparently.
        """
        if path is None or not path.exists():
            return None
        from ..serialize import load_mapping_file

        try:
            return load_mapping_file(path)
        except Exception as exc:
            import logging

            logging.getLogger(__name__).warning(
                "mapping cache entry %s corrupt (%s); invalidating and "
                "re-solving", path.name, exc,
            )
            try:
                path.unlink()
            except OSError:
                pass
            return None

    @staticmethod
    def _store_disk(path: Optional[Path],
                    mapping_file: ModelMappingFile) -> None:
        if path is None:
            return
        import json

        from ..serialize import atomic_write_text, mapping_file_to_dict

        # Best-effort: a failed write must not fail the mapping phase.
        atomic_write_text(
            path, json.dumps(mapping_file_to_dict(mapping_file), indent=1)
        )

    def _solve_model(self, graph: ModelGraph) -> ModelMappingFile:
        blocks = plan_blocks(graph, self.soc, self.lbm_occupancy_fraction)
        lbm_candidates = build_lbm_candidates(
            graph, blocks, self._solver, self.soc
        )

        mcts: List[MappingCandidateTable] = []
        for i, layer in enumerate(graph.layers):
            mct = self._map_layer(layer, i)
            lbm = lbm_candidates.get(i)
            if lbm is not None:
                mct.lbm = MappingCandidate(
                    kind=lbm.kind,
                    usage_limit_bytes=lbm.usage_limit_bytes,
                    cache_bytes=lbm.cache_bytes,
                    dram_bytes=lbm.dram_bytes,
                    compute_cycles=self._systolic.layer_cycles(layer),
                    loop_table=lbm.loop_table,
                    cache_map=lbm.cache_map,
                )
            mct.est_latency_s = self._estimate_latency(layer, mct)
            mct.validate(self.soc.cache.page_bytes)
            mcts.append(mct)

        return ModelMappingFile(
            model_name=graph.name,
            usage_levels=self.usage_levels,
            mcts=mcts,
            blocks=[(b.start, b.end) for b in blocks],
        )

    # ------------------------------------------------------------------

    def _map_layer(self, layer: LayerSpec,
                   layer_index: int) -> MappingCandidateTable:
        """Generate the LWM candidates of one layer across usage levels."""
        mct = MappingCandidateTable(
            layer_index=layer_index, layer_name=layer.name
        )
        if layer.kind in (LayerKind.POOL, LayerKind.ELEMWISE):
            mct.lwm = [self._streaming_candidate(layer)]
            return mct

        shape = GEMMShape.of(layer)
        seen_cache_bytes: Dict[int, MappingCandidate] = {}
        for level in self.usage_levels:
            solved = self._solver.solve(shape, usage_limit_bytes=level)
            candidate = self._to_candidate(layer, shape, solved, level)
            existing = seen_cache_bytes.get(candidate.cache_bytes)
            if existing is None or \
                    candidate.dram_bytes < existing.dram_bytes:
                seen_cache_bytes[candidate.cache_bytes] = candidate
        mct.lwm = sorted(
            seen_cache_bytes.values(), key=lambda c: c.cache_bytes
        )
        return mct

    def _streaming_candidate(self, layer: LayerSpec) -> MappingCandidate:
        """Pool/element-wise layers stream both operands (bypass)."""
        dtype = self.soc.dtype_bytes
        dram = (layer.input_elems + layer.output_elems) * dtype
        cache_map = (
            CacheMapEntry(tensor="input", vcaddr=0, size=0, reuse=False,
                          bypass=True),
            CacheMapEntry(tensor="output", vcaddr=0, size=0, reuse=False,
                          bypass=True),
        )
        return MappingCandidate(
            kind="LWM",
            usage_limit_bytes=0,
            cache_bytes=0,
            dram_bytes=float(dram),
            compute_cycles=self._systolic.layer_cycles(layer),
            cache_map=cache_map,
        )

    def _to_candidate(
        self,
        layer: LayerSpec,
        shape: GEMMShape,
        solved: SolvedMapping,
        level: int,
    ) -> MappingCandidate:
        """Package a solver result as an MCT entry."""
        choice = solved.choice
        loop_table = (
            LoopLevel("m", trip_count(shape.m, choice.tm), "dram"),
            LoopLevel("n", trip_count(shape.n, choice.tn), "dram"),
            LoopLevel("k", trip_count(shape.k, choice.tk), "dram"),
            LoopLevel(choice.innermost, 1, "cache"),
            LoopLevel("m", choice.tm, "npu"),
            LoopLevel("n", choice.tn, "npu"),
            LoopLevel("k", choice.tk, "npu"),
        )
        cache_map = self._cache_map(layer, shape, choice)
        return MappingCandidate(
            kind="LWM",
            usage_limit_bytes=level,
            cache_bytes=solved.cache_bytes,
            dram_bytes=solved.dram_bytes,
            compute_cycles=self._systolic.layer_cycles(layer),
            loop_table=loop_table,
            cache_map=cache_map,
        )

    def _cache_map(
        self, layer: LayerSpec, shape: GEMMShape, choice: TilingChoice
    ) -> Tuple[CacheMapEntry, ...]:
        """Lay pinned tensors out in vcaddr space; others are bypassed."""
        dtype = self.soc.dtype_bytes
        sizes = {
            "weight": shape.weight_elems * dtype,
            "input": shape.input_elems * dtype,
            "output": shape.output_elems * dtype,
        }
        factors = refetch_factors(shape, choice)
        entries: List[CacheMapEntry] = []
        vcaddr = 0
        for tensor in ("weight", "input", "output"):
            if tensor == "weight" and not layer.weight_elems:
                continue
            if tensor in choice.pinned:
                entries.append(
                    CacheMapEntry(
                        tensor=tensor,
                        vcaddr=vcaddr,
                        size=sizes[tensor],
                        reuse=factors[tensor] > 1,
                        bypass=False,
                    )
                )
                vcaddr += sizes[tensor]
            else:
                entries.append(
                    CacheMapEntry(
                        tensor=tensor, vcaddr=0, size=0, reuse=False,
                        bypass=True,
                    )
                )
        return tuple(entries)

    def _estimate_latency(self, layer: LayerSpec,
                          mct: MappingCandidateTable) -> float:
        """Profiling-style ``Test``: compute/memory max at fair bandwidth."""
        compute_s = (
            self._systolic.layer_cycles(layer) / self.soc.npu.frequency_hz
        )
        fair_bw = (
            self.soc.dram.total_bandwidth_bytes_per_s
            / self.soc.num_npu_cores
        )
        smallest = mct.lwm[0]
        memory_s = smallest.dram_bytes / fair_bw
        return max(compute_s, memory_s)

    # ------------------------------------------------------------------

    def mapping_stats(self, graph: ModelGraph) -> Dict[str, float]:
        """Aggregate statistics of a model's mapping file (for reports)."""
        mf = self.map_model(graph)
        level_traffic = {
            level: mf.total_dram_bytes(level) for level in self.usage_levels
        }
        base = level_traffic[0]
        best = min(level_traffic.values())
        return {
            "layers": len(mf.mcts),
            "blocks": len(mf.blocks),
            "lbm_layers": sum(1 for m in mf.mcts if m.lbm is not None),
            "dram_bytes_level0": base,
            "dram_bytes_best_level": best,
            "traffic_reduction": 1.0 - best / base if base else 0.0,
        }
