"""Loop-nest utilities for the layer mapper.

After GEMM lowering every layer is a triple-nested loop over ``(m, n, k)``.
The mapper tiles each dimension; this module provides the tiling vocabulary:
tile-size candidate enumeration and trip-count arithmetic (ceil division —
partial tiles are allowed and padded in time, as on real NPUs).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from ...errors import MappingError
from ...models.layers import LayerSpec


@dataclass(frozen=True)
class GEMMShape:
    """GEMM dimensions of one layer, with per-group accounting.

    ``groups`` independent GEMMs of identical shape (attention heads) run
    back-to-back; tiling decisions are per-GEMM.

    The ``*_elems`` fields hold the layer's *actual* tensor footprints,
    which can be smaller than the dense GEMM operand sizes: im2col lowering
    of a convolution expands the input by the kernel overlap, but the
    unique data moved from memory (and pinned in cache) is only the
    original activation tensor.  A value of 0 means "derive from the dense
    GEMM dims".
    """

    m: int
    n: int
    k: int
    groups: int = 1
    input_elems: int = 0
    weight_elems: int = 0
    output_elems: int = 0

    def __post_init__(self) -> None:
        if min(self.m, self.n, self.k, self.groups) <= 0:
            raise MappingError("GEMM dims must be positive")
        if self.input_elems == 0:
            object.__setattr__(
                self, "input_elems", self.groups * self.m * self.k
            )
        if self.weight_elems == 0:
            object.__setattr__(
                self, "weight_elems", self.groups * self.k * self.n
            )
        if self.output_elems == 0:
            object.__setattr__(
                self, "output_elems", self.groups * self.m * self.n
            )

    @classmethod
    def of(cls, layer: LayerSpec) -> "GEMMShape":
        """Shape of ``layer`` carrying its true tensor footprints.

        Weightless matmuls (attention) still stream a stationary ``[k, n]``
        operand; it is an activation, but for refetch analysis it plays the
        weight role, so its bytes move from the layer's input footprint to
        the shape's weight stream.
        """
        if layer.weight_elems > 0:
            weight = layer.weight_elems
            input_ = max(layer.input_elems, 1)
        else:
            weight = layer.groups * layer.k * layer.n
            input_ = max(layer.input_elems - weight,
                         layer.groups * layer.m * layer.k)
        return cls(
            m=layer.m,
            n=layer.n,
            k=layer.k,
            groups=layer.groups,
            input_elems=input_,
            weight_elems=weight,
            output_elems=max(layer.output_elems, 1),
        )


def trip_count(dim: int, tile: int) -> int:
    """Number of tile iterations covering ``dim`` with tiles of ``tile``."""
    if dim <= 0 or tile <= 0:
        raise MappingError("dim and tile must be positive")
    return math.ceil(dim / tile)


def tile_candidates(dim: int, alignment: int,
                    max_candidates: int = 8) -> List[int]:
    """Candidate tile sizes for a dimension of extent ``dim``.

    Heuristic rule (Section III-C1): tiles are multiples of the PE-array
    dimension ``alignment`` so cache lines and array rows/columns stay fully
    utilized; geometric spacing keeps the candidate count small.  The full
    dimension is always a candidate (no tiling).
    """
    if dim <= 0 or alignment <= 0:
        raise MappingError("dim and alignment must be positive")
    if dim <= alignment:
        return [dim]
    candidates = {dim}
    tile = alignment
    while tile < dim and len(candidates) < max_candidates:
        candidates.add(tile)
        tile *= 2
    return sorted(candidates)
