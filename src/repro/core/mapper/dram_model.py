"""DRAM-access volume model for a tiling choice.

For GEMM ``[M,K] x [K,N] -> [M,N]`` tiled as ``(tm, tn, tk)`` with tile
loops ordered outer-to-inner, classic refetch analysis gives per-tensor
DRAM traffic multipliers:

* the **weight** tensor ``[K,N]`` is invariant to the ``m`` loop: it is
  re-streamed once per ``m``-tile unless the ``m`` loop is innermost
  (weight tile stays on chip while ``m`` iterates);
* the **input** tensor ``[M,K]`` is invariant to ``n``: re-streamed
  ``ceil(N/tn)`` times unless ``n`` is innermost;
* the **output** tensor ``[M,N]`` is invariant to ``k``: with ``k`` not
  innermost, partial sums spill and reload once per extra ``k``-tile
  (``2*ceil(K/tk) - 1`` total transfers).

CaMDN's cache regions break these multipliers: a tensor pinned in the
model-exclusive region is fetched from DRAM exactly once (or zero times for
LBM inputs already produced into cache); refetches hit the cache instead.
Non-pinned tensors use bypass semantics and never pollute the region.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet

from ...errors import MappingError
from .loopnest import GEMMShape, trip_count

#: Tensors the mapper may pin in the model-exclusive cache region.
PINNABLE = ("weight", "input", "output")


@dataclass(frozen=True)
class TilingChoice:
    """One point of the mapper's search space.

    Attributes:
        tm / tn / tk: tile sizes along M / N / K.
        innermost: which tile loop is innermost (``"m"``, ``"n"``, ``"k"``);
            only the innermost loop changes first-order refetch behaviour.
        pinned: subset of :data:`PINNABLE` kept resident in the model's
            cache region.
        lbm_input: the input tensor is already cache-resident, produced by
            the previous layer of an LBM block (zero DRAM for it).
        lbm_output: the output tensor stays in cache for the next layer of
            an LBM block (zero DRAM for it).
    """

    tm: int
    tn: int
    tk: int
    innermost: str
    pinned: FrozenSet[str] = frozenset()
    lbm_input: bool = False
    lbm_output: bool = False

    def __post_init__(self) -> None:
        if min(self.tm, self.tn, self.tk) <= 0:
            raise MappingError("tile sizes must be positive")
        if self.innermost not in ("m", "n", "k"):
            raise MappingError(f"bad innermost loop {self.innermost!r}")
        unknown = set(self.pinned) - set(PINNABLE)
        if unknown:
            raise MappingError(f"unknown pinned tensors {sorted(unknown)}")


#: Tile-loop iteration order per innermost choice (outermost first); must
#: match :data:`repro.core.isa._LOOP_ORDERS`.
LOOP_ORDERS = {
    "m": ("k", "n", "m"),
    "n": ("k", "m", "n"),
    "k": ("m", "n", "k"),
}


def _reload_factor(order: tuple, trips: dict, invariant: str) -> int:
    """Times a tensor invariant to loop ``invariant`` is streamed.

    A tile is reloaded when its identity changed since it was last held in
    scratchpad.  For the loop invariant to the tensor:

    * innermost — consecutive iterations reuse the held tile: factor 1;
    * middle — tiles cycle with the innermost loop, so each middle-loop
      iteration revisits them ... unless the innermost loop has a single
      tile, in which case the held tile survives: factor ``trips`` or 1;
    * outermost — every outer iteration replays the whole tile space
      unless that space is a single tile.

    Validated instruction-by-instruction against :mod:`repro.core.isa`.
    """
    position = order.index(invariant)
    if position == 2:  # innermost
        return 1
    if position == 1:  # middle
        innermost = order[2]
        return trips[invariant] if trips[innermost] > 1 else 1
    varying = [dim for dim in order if dim != invariant]
    tile_space = trips[varying[0]] * trips[varying[1]]
    return trips[invariant] if tile_space > 1 else 1


def refetch_factors(shape: GEMMShape, choice: TilingChoice) -> dict:
    """Per-tensor transfer multipliers for ``choice`` ignoring the cache.

    The weight is invariant to ``m``, the input to ``n`` and the output to
    ``k``.  Output partial sums additionally pay a reload on each spill:
    a factor ``f`` of k-revisits costs ``2f - 1`` transfers.
    """
    trips = {
        "m": trip_count(shape.m, choice.tm),
        "n": trip_count(shape.n, choice.tn),
        "k": trip_count(shape.k, choice.tk),
    }
    order = LOOP_ORDERS[choice.innermost]
    weight = _reload_factor(order, trips, "m")
    input_ = _reload_factor(order, trips, "n")
    # Output: invariant to k; each extra visit spills and reloads.
    visits = _reload_factor(order, trips, "k")
    if visits > 1:
        # The k loop is outermost in every non-k-innermost order, so each
        # of the trips[k] passes revisits the live tiles; the spill count
        # follows the number of unfinished departures.
        output = 2 * trips["k"] - 1
    else:
        output = 1
    return {"weight": weight, "input": input_, "output": output}


def dram_traffic_bytes(
    shape: GEMMShape,
    choice: TilingChoice,
    dtype_bytes: int = 1,
) -> float:
    """Predicted DRAM traffic (bytes) for one layer under ``choice``."""
    factors = refetch_factors(shape, choice)
    sizes = {
        "weight": shape.weight_elems * dtype_bytes,
        "input": shape.input_elems * dtype_bytes,
        "output": shape.output_elems * dtype_bytes,
    }
    traffic = 0.0
    for tensor, size in sizes.items():
        if tensor == "input" and choice.lbm_input:
            continue  # produced into cache by the previous block layer
        if tensor == "output" and choice.lbm_output:
            continue  # consumed from cache by the next block layer
        if tensor in choice.pinned:
            traffic += size  # one compulsory transfer, refetches hit cache
        else:
            traffic += size * factors[tensor]
    return traffic


def pinned_cache_bytes(shape: GEMMShape, choice: TilingChoice,
                       dtype_bytes: int = 1) -> int:
    """Bytes of the model's cache region this choice occupies."""
    sizes = {
        "weight": shape.weight_elems * dtype_bytes,
        "input": shape.input_elems * dtype_bytes,
        "output": shape.output_elems * dtype_bytes,
    }
    total = sum(sizes[t] for t in choice.pinned)
    if choice.lbm_input and "input" not in choice.pinned:
        total += sizes["input"]
    if choice.lbm_output and "output" not in choice.pinned:
        total += sizes["output"]
    return total


def scratchpad_bytes(choice: TilingChoice, dtype_bytes: int = 1,
                     double_buffer: bool = True) -> int:
    """Scratchpad footprint of one tile working set.

    Holds an input tile ``tm x tk``, a weight tile ``tk x tn`` and an output
    tile ``tm x tn``; streaming tensors are double-buffered so DMA overlaps
    compute.
    """
    in_tile = choice.tm * choice.tk
    w_tile = choice.tk * choice.tn
    out_tile = choice.tm * choice.tn
    buf = 2 if double_buffer else 1
    return ((in_tile + w_tile) * buf + out_tile) * dtype_bytes
