"""Subspace solver: minimal-DRAM-access tiling per subspace.

The paper constructs "a set of disjoint problem subspaces, each of which is
an integer programming problem that takes minimal DRAM access as the
optimization objective", solves each, and keeps the best result.  After the
heuristic pruning the per-subspace problem is small enough for exact
enumeration, which plays the role of the paper's off-the-shelf solver while
staying dependency-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Dict, Optional, Tuple

from ...config import NPUConfig
from ...errors import MappingError
from .dram_model import (
    TilingChoice,
    dram_traffic_bytes,
    pinned_cache_bytes,
    scratchpad_bytes,
)
from .heuristics import HeuristicRules, Subspace
from .loopnest import GEMMShape


@dataclass(frozen=True)
class SolvedMapping:
    """A solver result: the winning tiling and its costs."""

    choice: TilingChoice
    dram_bytes: float
    cache_bytes: int
    scratchpad_bytes: int


class SubspaceSolver:
    """Exact solver over heuristic-pruned tiling subspaces."""

    #: Process-wide memo of :meth:`solve` results.  A solve is a pure
    #: function of ``(npu, dtype, shape, usage limit, lbm flags)``, and the
    #: same GEMM shapes recur heavily — transformer encoders repeat one
    #: block shape 12 times, and experiment sweeps re-map the same models
    #: under many SoC variants whose usage levels largely overlap.
    _SOLVE_CACHE: ClassVar[Dict[tuple, SolvedMapping]] = {}

    @classmethod
    def export_solve_memo(cls) -> Dict[tuple, SolvedMapping]:
        """Snapshot of the process-wide solve memo.

        Entries are pure ``(inputs) -> result`` pairs of picklable frozen
        dataclasses, so the snapshot can be shipped to sweep worker
        processes (via the executor initializer) to spare each worker the
        cold-start re-solve.
        """
        return dict(cls._SOLVE_CACHE)

    @classmethod
    def install_solve_memo(cls,
                           entries: Dict[tuple, SolvedMapping]) -> None:
        """Merge a memo snapshot (worker-side warm-up)."""
        cls._SOLVE_CACHE.update(entries)

    def __init__(self, npu: NPUConfig, dtype_bytes: int = 1) -> None:
        self.npu = npu
        self.dtype_bytes = dtype_bytes
        self.rules = HeuristicRules(npu=npu, dtype_bytes=dtype_bytes)
        self._memo_prefix: Tuple = (npu, dtype_bytes)

    def solve_subspace(
        self,
        shape: GEMMShape,
        subspace: Subspace,
        usage_limit_bytes: int,
        lbm_input: bool = False,
        lbm_output: bool = False,
    ) -> Optional[SolvedMapping]:
        """Best tiling within one (pinning, innermost) subspace.

        Returns ``None`` when no tiling satisfies the scratchpad and
        cache-usage constraints.
        """
        best: Optional[SolvedMapping] = None
        for tm, tn, tk in self.rules.tile_space(shape):
            choice = TilingChoice(
                tm=tm, tn=tn, tk=tk,
                innermost=subspace.innermost,
                pinned=subspace.pinned,
                lbm_input=lbm_input,
                lbm_output=lbm_output,
            )
            cache_bytes = pinned_cache_bytes(shape, choice,
                                             self.dtype_bytes)
            if cache_bytes > usage_limit_bytes:
                continue
            dram = dram_traffic_bytes(shape, choice, self.dtype_bytes)
            spad = scratchpad_bytes(choice, self.dtype_bytes)
            candidate = SolvedMapping(
                choice=choice,
                dram_bytes=dram,
                cache_bytes=cache_bytes,
                scratchpad_bytes=spad,
            )
            if best is None or self._better(candidate, best):
                best = candidate
        return best

    def solve(
        self,
        shape: GEMMShape,
        usage_limit_bytes: int,
        lbm_input: bool = False,
        lbm_output: bool = False,
    ) -> SolvedMapping:
        """Best tiling across all subspaces at one cache-usage level.

        Raises:
            MappingError: no feasible mapping exists (cannot happen for
                positive scratchpad capacity, since minimal PE-sized tiles
                always fit; guarded for safety).
        """
        key = self._memo_prefix + (
            shape, usage_limit_bytes, lbm_input, lbm_output
        )
        cached = self._SOLVE_CACHE.get(key)
        if cached is not None:
            return cached
        best: Optional[SolvedMapping] = None
        for subspace in self.rules.subspaces(shape, usage_limit_bytes):
            solved = self.solve_subspace(
                shape, subspace, usage_limit_bytes,
                lbm_input=lbm_input, lbm_output=lbm_output,
            )
            if solved is None:
                continue
            if best is None or self._better(solved, best):
                best = solved
        if best is None:
            raise MappingError(
                f"no feasible mapping for GEMM {shape} at "
                f"{usage_limit_bytes} B cache"
            )
        self._SOLVE_CACHE[key] = best
        return best

    @staticmethod
    def _better(a: SolvedMapping, b: SolvedMapping) -> bool:
        """Primary objective: DRAM traffic; ties prefer fewer cache bytes,
        then smaller scratchpad footprints (leaves room for fusion)."""
        return (a.dram_bytes, a.cache_bytes, a.scratchpad_bytes) < \
            (b.dram_bytes, b.cache_bytes, b.scratchpad_bytes)
