"""Cache-aware mapping (Section III-C).

The heuristic-solver-hybrid layer mapper shrinks the tiling problem space
with heuristic rules (:mod:`~repro.core.mapper.heuristics`), splits it into
disjoint subspaces, solves each for minimal DRAM access
(:mod:`~repro.core.mapper.solver`) and emits one candidate per cache-usage
level into the layer's MCT (:mod:`~repro.core.mapper.layer_mapper`).
Layer-block mapping candidates come from :mod:`~repro.core.mapper.lbm`.
"""

from .loopnest import GEMMShape, tile_candidates, trip_count
from .dram_model import TilingChoice, dram_traffic_bytes, scratchpad_bytes
from .heuristics import HeuristicRules
from .solver import SubspaceSolver
from .layer_mapper import LayerMapper, DEFAULT_USAGE_LEVELS
from .lbm import build_lbm_candidates

__all__ = [
    "GEMMShape",
    "tile_candidates",
    "trip_count",
    "TilingChoice",
    "dram_traffic_bytes",
    "scratchpad_bytes",
    "HeuristicRules",
    "SubspaceSolver",
    "LayerMapper",
    "DEFAULT_USAGE_LEVELS",
    "build_lbm_candidates",
]
