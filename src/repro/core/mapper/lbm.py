"""Layer-block mapping candidates (Section III-C2).

LBM stores intermediate tensors between layers fully in cache and allocates
zero DRAM space to them.  To keep a model from occupying too much cache for
too long, the model is segmented into *layer blocks* and LBM applies only
inside a block: the block's head layer still reads its input from DRAM and
the tail layer writes its output to DRAM, but every producer-consumer edge
inside the block lives purely in the model's exclusive cache region.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from ...config import SoCConfig
from ...models.graph import LayerBlock, ModelGraph, segment_into_blocks
from ...models.layers import LayerSpec
from ..mct import CacheMapEntry, MappingCandidate
from .loopnest import GEMMShape
from .solver import SubspaceSolver


def plan_blocks(
    graph: ModelGraph,
    soc: SoCConfig,
    occupancy_fraction: float = 0.25,
) -> List[LayerBlock]:
    """Segment ``graph`` into LBM blocks.

    The block budget is ``occupancy_fraction`` of the NPU subspace, the
    paper's guard against one model pinning the whole cache.
    """
    budget = max(
        int(soc.cache.npu_subspace_bytes * occupancy_fraction),
        soc.cache.page_bytes,
    )
    return segment_into_blocks(graph, budget, soc.dtype_bytes)


def block_footprint_bytes(block: LayerBlock, dtype_bytes: int) -> int:
    """Cache bytes the block pins while running in LBM mode."""
    return block.intermediate_elems * dtype_bytes


def build_lbm_candidates(
    graph: ModelGraph,
    blocks: List[LayerBlock],
    solver: SubspaceSolver,
    soc: SoCConfig,
) -> Dict[int, MappingCandidate]:
    """Build the per-layer LBM candidate for every layer covered by a block.

    Layers whose block footprint exceeds the NPU subspace get no LBM
    candidate (Algorithm 1 then always falls through to LWM selection).

    Returns:
        layer index -> LBM candidate.
    """
    candidates: Dict[int, MappingCandidate] = {}
    subspace_bytes = soc.cache.npu_subspace_bytes
    for block in blocks:
        footprint = block_footprint_bytes(block, soc.dtype_bytes)
        if footprint > subspace_bytes or block.num_layers < 2:
            continue
        for i in range(block.start, block.end):
            layer = graph.layers[i]
            candidates[i] = _layer_lbm_candidate(
                layer, i, block, footprint, solver, soc
            )
    return candidates


def _layer_lbm_candidate(
    layer: LayerSpec,
    layer_index: int,
    block: LayerBlock,
    footprint_bytes: int,
    solver: SubspaceSolver,
    soc: SoCConfig,
) -> MappingCandidate:
    """The LBM mapping of one in-block layer.

    Residency gating: a tensor participates in LBM only when the block's
    live-set footprint actually covers it.  Layers fed through long skip
    edges (e.g. PointPillars' upsampling heads reading backbone outputs
    produced outside the block) would otherwise claim cache space the
    block accounting never reserved; such inputs conservatively fall back
    to DRAM fetches.
    """
    dtype = soc.dtype_bytes
    in_bytes = layer.input_elems * dtype
    out_bytes = layer.output_elems * dtype
    lbm_output = (
        layer_index < block.end - 1 and out_bytes <= footprint_bytes
    )
    lbm_input = (
        layer_index > block.start
        and in_bytes + (out_bytes if lbm_output else 0) <= footprint_bytes
    )
    shape = GEMMShape.of(layer)
    solved = solver.solve(
        shape,
        usage_limit_bytes=footprint_bytes,
        lbm_input=lbm_input,
        lbm_output=lbm_output,
    )
    cache_map: Tuple[CacheMapEntry, ...] = tuple(
        entry
        for entry in (
            CacheMapEntry(
                tensor="weight", vcaddr=0, size=0, reuse=False, bypass=True
            ) if layer.weight_elems else None,
            CacheMapEntry(
                tensor="input",
                vcaddr=0,
                size=in_bytes if lbm_input else 0,
                reuse=lbm_input,
                bypass=not lbm_input,
            ),
            CacheMapEntry(
                tensor="output",
                vcaddr=in_bytes if lbm_input else 0,
                size=out_bytes if lbm_output else 0,
                reuse=lbm_output,
                bypass=not lbm_output,
            ),
        )
        if entry is not None
    )
    # The candidate claims the whole block footprint: the region must hold
    # every live intermediate of the block, not just this layer's operands.
    cache_bytes = max(footprint_bytes,
                      (in_bytes if lbm_input else 0)
                      + (out_bytes if lbm_output else 0))
    return MappingCandidate(
        kind="LBM",
        usage_limit_bytes=cache_bytes,
        cache_bytes=cache_bytes,
        dram_bytes=solved.dram_bytes,
        compute_cycles=0,  # filled by the layer mapper
        loop_table=(),
        cache_map=cache_map,
    )


def lbm_pages_needed(candidate: Optional[MappingCandidate],
                     page_bytes: int) -> Optional[int]:
    """Convenience: ``Pneed`` of an LBM candidate (None-safe)."""
    if candidate is None:
        return None
    return math.ceil(candidate.cache_bytes / page_bytes)
