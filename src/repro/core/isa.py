"""NPU instruction generation from mapping candidates (Figure 6, right).

After the dynamic allocator selects a mapping candidate and its pages are
granted, the runtime "generates & sends NPU instructions" for the layer.
This module implements that lowering: it walks the candidate's tile loops
in the mapped order and emits tile-granular LOAD / EXEC / STORE
instructions carrying the NEC semantics each tensor uses (cached reads for
pinned tensors, bypass for streamed ones, spills for partial sums).

The generator derives data movement from the *loop iteration structure* —
a tile is (re)loaded exactly when its identity changes between consecutive
iterations — rather than from the closed-form refetch factors of
:mod:`~repro.core.mapper.dram_model`.  ``tests/core/test_isa.py`` uses this
independence to cross-validate the analytic model: for divisible tilings
the generated DRAM traffic equals the closed form exactly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

from ..errors import MappingError
from .mapper.dram_model import TilingChoice
from .mapper.loopnest import GEMMShape, trip_count


class NPUOp(enum.Enum):
    """Tile-granular NPU instruction opcodes."""

    LOAD_TILE = "load"          # DRAM or cache -> scratchpad
    STORE_TILE = "store"        # scratchpad -> DRAM or cache
    SPILL_TILE = "spill"        # partial sums: scratchpad -> DRAM
    RELOAD_TILE = "reload"      # partial sums: DRAM -> scratchpad
    EXEC_TILE = "exec"          # systolic pass over the current tiles


class Source(enum.Enum):
    """Where a moved tile lives on the far side of the scratchpad."""

    DRAM = "dram"
    CACHE = "cache"


@dataclass(frozen=True)
class NPUInstr:
    """One NPU instruction.

    Attributes:
        op: opcode.
        tensor: ``"weight"`` / ``"input"`` / ``"output"`` (EXEC: ``""``).
        tile: tile identity in the tensor's index space.
        elems: elements moved (EXEC: MACs performed).
        source: far-side location for data movement ops.
    """

    op: NPUOp
    tensor: str
    tile: Tuple[int, ...]
    elems: int
    source: Optional[Source] = None


@dataclass
class ProgramStats:
    """Traffic/compute totals of a generated layer program."""

    dram_elems: int = 0
    cache_elems: int = 0
    macs: int = 0
    instructions: int = 0

    def account(self, instr: NPUInstr) -> None:
        self.instructions += 1
        if instr.op is NPUOp.EXEC_TILE:
            self.macs += instr.elems
        elif instr.source is Source.DRAM:
            self.dram_elems += instr.elems
        elif instr.source is Source.CACHE:
            self.cache_elems += instr.elems


_LOOP_ORDERS = {
    # innermost -> iteration order (outermost first).
    "m": ("k", "n", "m"),
    "n": ("k", "m", "n"),
    "k": ("m", "n", "k"),
}


def _tile_extents(shape: GEMMShape, choice: TilingChoice) -> Dict[str, int]:
    return {
        "m": trip_count(shape.m, choice.tm),
        "n": trip_count(shape.n, choice.tn),
        "k": trip_count(shape.k, choice.tk),
    }


def _tile_elems(shape: GEMMShape, choice: TilingChoice,
                tensor: str, tile: Tuple[int, int]) -> int:
    """Elements of one (possibly partial) tile of ``tensor``.

    Tile footprints are scaled to the tensor's *actual* element count so
    that streaming a whole tensor tile-by-tile moves exactly its true
    footprint (im2col overlap is not re-fetched from DRAM).
    """
    if tensor == "weight":
        dims = (shape.k, shape.n)
        tiles = (choice.tk, choice.tn)
        actual = shape.weight_elems
    elif tensor == "input":
        dims = (shape.m, shape.k)
        tiles = (choice.tm, choice.tk)
        actual = shape.input_elems
    else:
        dims = (shape.m, shape.n)
        tiles = (choice.tm, choice.tn)
        actual = shape.output_elems
    extent0 = min(tiles[0], dims[0] - tile[0] * tiles[0])
    extent1 = min(tiles[1], dims[1] - tile[1] * tiles[1])
    if extent0 <= 0 or extent1 <= 0:
        raise MappingError(f"tile {tile} out of range for {tensor}")
    dense = dims[0] * dims[1]
    per_group = actual / shape.groups
    return max(1, round(extent0 * extent1 * per_group / dense))


def generate_layer_program(
    shape: GEMMShape,
    choice: TilingChoice,
) -> Iterator[NPUInstr]:
    """Yield the instruction stream executing ``shape`` under ``choice``.

    Movement rules (mirroring the scratchpad/double-buffer behaviour the
    analytic model assumes):

    * a tensor tile is loaded only when its identity differs from the tile
      currently held in scratchpad;
    * pinned (or LBM-resident) tensors load from DRAM on first touch and
      from the cache region afterwards; streamed tensors always use bypass
      DRAM accesses;
    * output tiles accumulate in scratchpad across consecutive ``k``
      iterations; leaving an unfinished output tile spills the partials and
      returning reloads them (both to DRAM unless the output is pinned).
    """
    extents = _tile_extents(shape, choice)
    order = _LOOP_ORDERS[choice.innermost]
    nk = extents["k"]

    held: Dict[str, Optional[Tuple[int, int]]] = {
        "weight": None, "input": None, "output": None,
    }
    touched: Dict[str, set] = {"weight": set(), "input": set(),
                               "output": set()}
    k_progress: Dict[Tuple[int, int], int] = {}

    pinned_like = {
        "weight": "weight" in choice.pinned,
        "input": "input" in choice.pinned or choice.lbm_input,
        "output": "output" in choice.pinned or choice.lbm_output,
    }

    def load(tensor: str, tile: Tuple[int, ...]) -> Iterator[NPUInstr]:
        elems = _tile_elems(shape, choice, tensor, tile[-2:])
        if pinned_like[tensor]:
            if tensor == "input" and choice.lbm_input:
                source = Source.CACHE  # produced in-cache by the block
            elif tile in touched[tensor]:
                source = Source.CACHE
            else:
                source = Source.DRAM
        else:
            source = Source.DRAM
        touched[tensor].add(tile)
        yield NPUInstr(NPUOp.LOAD_TILE, tensor, tile, elems, source)

    def flush_output(new_tile: Optional[Tuple[int, int]]
                     ) -> Iterator[NPUInstr]:
        old = held["output"]
        if old is None or old == new_tile:
            return
        elems = _tile_elems(shape, choice, "output", old[-2:])
        done = k_progress.get(old, 0) >= nk
        if done:
            # Completed results reach DRAM once unless the next block
            # layer consumes them from cache (LBM).
            source = Source.CACHE if choice.lbm_output else Source.DRAM
            yield NPUInstr(NPUOp.STORE_TILE, "output", old, elems, source)
        else:
            # Partial sums spill to the model's region when pinned.
            source = (
                Source.CACHE if pinned_like["output"] else Source.DRAM
            )
            yield NPUInstr(NPUOp.SPILL_TILE, "output", old, elems, source)

    def acquire_output(tile: Tuple[int, int]) -> Iterator[NPUInstr]:
        if held["output"] == tile:
            return
        if 0 < k_progress.get(tile, 0) < nk:
            elems = _tile_elems(shape, choice, "output", tile[-2:])
            out_source = (
                Source.CACHE if pinned_like["output"] else Source.DRAM
            )
            yield NPUInstr(NPUOp.RELOAD_TILE, "output", tile, elems,
                           out_source)

    for group in range(shape.groups):
        for i0 in range(extents[order[0]]):
            for i1 in range(extents[order[1]]):
                for i2 in range(extents[order[2]]):
                    index = {order[0]: i0, order[1]: i1, order[2]: i2}
                    w_tile = (index["k"], index["n"])
                    i_tile = (index["m"], index["k"])
                    o_tile = (index["m"], index["n"])
                    if group:
                        # Independent GEMMs: distinct tile identities.
                        w_tile = (group,) + w_tile  # type: ignore
                        i_tile = (group,) + i_tile  # type: ignore
                        o_tile = (group,) + o_tile  # type: ignore

                    if held["weight"] != w_tile:
                        yield from load("weight", w_tile)
                        held["weight"] = w_tile
                    if held["input"] != i_tile:
                        yield from load("input", i_tile)
                        held["input"] = i_tile
                    if held["output"] != o_tile:
                        yield from flush_output(o_tile)
                        yield from acquire_output(o_tile)
                        held["output"] = o_tile

                    macs = (
                        _tile_elems(shape, choice, "output", o_tile[-2:])
                        * min(choice.tk,
                              shape.k - index["k"] * choice.tk)
                    )
                    yield NPUInstr(NPUOp.EXEC_TILE, "", o_tile,
                                   max(macs, 1))
                    k_progress[o_tile] = k_progress.get(o_tile, 0) + 1
        # Drain the last output tile of the group.
        yield from flush_output(None)
        held = {"weight": None, "input": None, "output": None}


def program_stats(shape: GEMMShape, choice: TilingChoice) -> ProgramStats:
    """Execute the generator and accumulate traffic/compute totals."""
    stats = ProgramStats()
    for instr in generate_layer_program(shape, choice):
        stats.account(instr)
    return stats


def lbm_extra_dram_elems(shape: GEMMShape, choice: TilingChoice) -> int:
    """DRAM elements the analytic model expects for this choice.

    Mirrors :func:`~repro.core.mapper.dram_model.dram_traffic_bytes` at
    ``dtype_bytes=1`` so tests can compare generator and closed form.
    """
    from .mapper.dram_model import dram_traffic_bytes

    return int(dram_traffic_bytes(shape, choice, dtype_bytes=1))
