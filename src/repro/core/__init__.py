"""CaMDN core: the paper's primary contribution.

Architecture (Section III-B): way-partitioned NPU subspace
(:mod:`~repro.core.way_mask`), page allocator (:mod:`~repro.core.pages`),
per-NPU cache page tables (:mod:`~repro.core.cpt`), NPU-exclusive
controllers (:mod:`~repro.core.nec`) and model-exclusive regions
(:mod:`~repro.core.region`).

Scheduling (Sections III-C/D): the cache-aware layer mapper
(:mod:`~repro.core.mapper`), mapping candidate tables
(:mod:`~repro.core.mct`) and the dynamic cache allocation algorithm
(:mod:`~repro.core.allocator`).

:mod:`~repro.core.camdn` ties everything into the
:class:`~repro.core.camdn.CaMDNSystem` facade, and
:mod:`~repro.core.area` reproduces the Table III area breakdown.
"""

from .way_mask import WayMask
from .pages import CachePageAllocator, PageRange
from .cpt import CachePageTable, PhysicalCacheAddress
from .nec import NEC, NECOp, NECRequest, NECStats
from .region import ModelRegion, RegionManager
from .mct import (
    CacheMapEntry,
    LoopLevel,
    MappingCandidate,
    MappingCandidateTable,
    ModelMappingFile,
)
from .allocator import AllocationDecision, DynamicCacheAllocator, TaskState
from .camdn import CaMDNSystem
from .prepared import (
    PreparedModel,
    PreparedWorkload,
    clear_prepared_caches,
    prepare_model,
    prepare_workload,
    prepared_cache_info,
)
from .area import AreaModel, area_breakdown_table
from .isa import NPUInstr, NPUOp, generate_layer_program, program_stats
from .serialize import load_mapping_file, save_mapping_file

__all__ = [
    "WayMask",
    "CachePageAllocator",
    "PageRange",
    "CachePageTable",
    "PhysicalCacheAddress",
    "NEC",
    "NECOp",
    "NECRequest",
    "NECStats",
    "ModelRegion",
    "RegionManager",
    "CacheMapEntry",
    "LoopLevel",
    "MappingCandidate",
    "MappingCandidateTable",
    "ModelMappingFile",
    "AllocationDecision",
    "DynamicCacheAllocator",
    "TaskState",
    "CaMDNSystem",
    "PreparedModel",
    "PreparedWorkload",
    "prepare_model",
    "prepare_workload",
    "prepared_cache_info",
    "clear_prepared_caches",
    "AreaModel",
    "area_breakdown_table",
    "NPUInstr",
    "NPUOp",
    "generate_layer_program",
    "program_stats",
    "save_mapping_file",
    "load_mapping_file",
]
