"""Cache page allocator for the NPU subspace (Section III-B3).

The NPU subspace is divided into pages of identical size (32 KiB for a
16 MiB cache) and assigned to models.  This module owns the global free
list; per-model address translation lives in :mod:`~repro.core.cpt`.

Physical cache pages are identified by *physical cache page number*
(``pcpn``), numbered 0..N-1 across the whole NPU subspace.  Consecutive
lines inside a page interleave across slices (Figure 5(b)), which the CPT
handles; the allocator itself only tracks ownership.

Ownership is tracked twice, and the two views are kept consistent on
every grant and free (``check_invariants`` asserts it):

* per-owner **sorted pcpn lists** — grants take the lowest free pages
  (already ascending) and merge in O(pages); frees splice sorted victim
  runs back into the free list in O(pages) instead of re-sorting it;
* a **pcpn -> owner reverse map** making :meth:`CachePageAllocator.owner_of`
  O(1) instead of a scan over every owner's page set.

Both views exist because the dynamic allocation algorithm resizes some
region at nearly every layer of every task: this module's operations are
on the per-layer critical path of the CaMDN policies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import PageAllocationError


@dataclass(frozen=True)
class PageRange:
    """A set of physical pages granted to one owner."""

    owner: str
    pcpns: tuple

    @property
    def num_pages(self) -> int:
        return len(self.pcpns)


def _merge_sorted(a: List[int], b: List[int]) -> List[int]:
    """Merge two ascending lists (no duplicates across them)."""
    if not a:
        return list(b)
    if not b:
        return list(a)
    # Common fast paths: one list entirely before the other.
    if a[-1] < b[0]:
        return a + b
    if b[-1] < a[0]:
        return b + a
    # Interleaved runs: concatenating and sorting lets Timsort merge the
    # two detected runs at C speed (galloping), far faster than an
    # element-wise Python merge loop.
    out = a + b
    out.sort()
    return out


class CachePageAllocator:
    """Free-list allocator over the NPU subspace's physical cache pages.

    Owners are model/task identifiers (strings).  The allocator enforces
    exclusivity: a page belongs to at most one owner — this is the property
    that eliminates inter-model cache contention in CaMDN.
    """

    def __init__(self, num_pages: int) -> None:
        if num_pages <= 0:
            raise PageAllocationError("allocator needs at least one page")
        self.num_pages = num_pages
        #: Free pcpns, always ascending: grants pop from the front,
        #: frees merge sorted runs back in.
        self._free: List[int] = list(range(num_pages))
        #: Per-owner held pcpns, always ascending.
        self._owner_pages: Dict[str, List[int]] = {}
        #: pcpn -> owning model (``None`` while free).
        self._page_owner: List[Optional[str]] = [None] * num_pages
        #: ECC-retired pcpns: permanently out of circulation — never on
        #: the free list, never owned, never re-issued.
        self._retired: set = set()

    @property
    def free_pages(self) -> int:
        """Number of currently unowned pages."""
        return len(self._free)

    @property
    def used_pages(self) -> int:
        """Number of pages owned by some model."""
        return self.num_pages - len(self._free) - len(self._retired)

    @property
    def retired_pages(self) -> int:
        """Number of ECC-retired pages (permanently unusable)."""
        return len(self._retired)

    @property
    def usable_pages(self) -> int:
        """Pages still in circulation (free or owned)."""
        return self.num_pages - len(self._retired)

    def is_retired(self, pcpn: int) -> bool:
        """Has ``pcpn`` been permanently retired?"""
        self._check_pcpn(pcpn)
        return pcpn in self._retired

    def owners(self) -> List[str]:
        """All owners currently holding at least one page."""
        return sorted(o for o, pages in self._owner_pages.items() if pages)

    def pages_of(self, owner: str) -> List[int]:
        """Sorted pcpns held by ``owner`` (empty list if none)."""
        return list(self._owner_pages.get(owner, ()))

    def owner_of(self, pcpn: int) -> Optional[str]:
        """Owner of page ``pcpn`` or ``None`` if free."""
        self._check_pcpn(pcpn)
        return self._page_owner[pcpn]

    def can_allocate(self, num_pages: int) -> bool:
        """Would an allocation of ``num_pages`` succeed right now?"""
        return num_pages <= len(self._free)

    def allocate(self, owner: str, num_pages: int) -> PageRange:
        """Grant ``num_pages`` free pages to ``owner``.

        Grants always take the lowest-numbered free pages, so grant order
        is a pure function of the preceding allocate/release sequence.

        Raises:
            PageAllocationError: not enough free pages.  Callers (the
            dynamic allocation algorithm) treat this as a timeout-retry
            situation rather than a fatal error.
        """
        if num_pages < 0:
            raise PageAllocationError("cannot allocate a negative count")
        free = self._free
        if num_pages > len(free):
            raise PageAllocationError(
                f"{owner}: requested {num_pages} pages, "
                f"only {len(free)} free"
            )
        granted = free[:num_pages]
        del free[:num_pages]
        page_owner = self._page_owner
        for pcpn in granted:
            page_owner[pcpn] = owner
        held = self._owner_pages.get(owner)
        if held is None:
            self._owner_pages[owner] = granted
        elif not held or (granted and held[-1] < granted[0]):
            held.extend(granted)
        else:
            self._owner_pages[owner] = _merge_sorted(held, granted)
        return PageRange(owner=owner, pcpns=tuple(granted))

    def release(self, owner: str, pcpns: Optional[List[int]] = None) -> int:
        """Return pages to the free list.

        Args:
            owner: releasing model.
            pcpns: specific pages to release, or ``None`` for all of the
                owner's pages.

        Returns:
            Number of pages released.

        Raises:
            PageAllocationError: a listed page is not owned by ``owner``.
        """
        held = self._owner_pages.get(owner)
        if pcpns is None:
            victims = list(held) if held else []
        else:
            page_owner = self._page_owner
            for pcpn in pcpns:
                self._check_pcpn(pcpn)
                if page_owner[pcpn] != owner:
                    raise PageAllocationError(
                        f"{owner} does not own page {pcpn}"
                    )
            victims = sorted(set(pcpns))
            if len(victims) != len(pcpns):
                # A duplicate entry would double-free below.
                raise PageAllocationError(
                    f"{owner}: duplicate pages in release list"
                )
        if not victims:
            return 0
        page_owner = self._page_owner
        for pcpn in victims:
            page_owner[pcpn] = None
        if len(victims) == len(held):
            held.clear()
        else:
            victim_set = set(victims)
            self._owner_pages[owner] = [
                p for p in held if p not in victim_set
            ]
        self._free = _merge_sorted(self._free, victims)
        return len(victims)

    def resize_owner(self, owner: str, target_pages: int) -> int:
        """Grow or shrink ``owner`` to exactly ``target_pages`` pages.

        Returns the signed page delta applied.  Shrinking releases the
        highest-numbered pages first (their contents are the most recently
        mapped and cheapest to refill).
        """
        if target_pages < 0:
            raise PageAllocationError("target_pages cannot be negative")
        held = self._owner_pages.get(owner, ())
        delta = target_pages - len(held)
        if delta > 0:
            self.allocate(owner, delta)
        elif delta < 0:
            self.release(owner, held[delta:])
        return delta

    def retire_free(self, pcpn: int) -> None:
        """Permanently retire a currently-free page (ECC fault).

        Retired pages leave the free list forever: :meth:`allocate` can
        never re-issue them, and :meth:`check_invariants` accounts for
        them separately from free and owned pages.

        Raises:
            PageAllocationError: the page is owned, or already retired.
        """
        self._check_pcpn(pcpn)
        if pcpn in self._retired:
            raise PageAllocationError(f"page {pcpn} already retired")
        if self._page_owner[pcpn] is not None:
            raise PageAllocationError(
                f"page {pcpn} is owned by "
                f"{self._page_owner[pcpn]!r}; use evacuate()"
            )
        self._free.remove(pcpn)
        self._retired.add(pcpn)

    def evacuate(self, owner: str, pcpn: int) -> Optional[int]:
        """Permanently retire an *owned* page, granting a replacement.

        The page leaves ``owner``'s holding and circulation in one step.
        When a free page exists, the lowest-numbered one is granted to
        ``owner`` as the replacement (deterministic, like
        :meth:`allocate`) and returned; with no free page the owner
        simply shrinks by one and ``None`` is returned — the caller
        (region manager) must drop a virtual page.

        Raises:
            PageAllocationError: ``owner`` does not own ``pcpn``, or the
                page is already retired.
        """
        self._check_pcpn(pcpn)
        if pcpn in self._retired:
            raise PageAllocationError(f"page {pcpn} already retired")
        if self._page_owner[pcpn] != owner:
            raise PageAllocationError(
                f"{owner} does not own page {pcpn}"
            )
        self._page_owner[pcpn] = None
        self._owner_pages[owner].remove(pcpn)
        self._retired.add(pcpn)
        if not self._free:
            return None
        grant = self.allocate(owner, 1)
        return grant.pcpns[0]

    def _check_pcpn(self, pcpn: int) -> None:
        if not 0 <= pcpn < self.num_pages:
            raise PageAllocationError(
                f"pcpn {pcpn} out of range [0, {self.num_pages})"
            )

    def check_invariants(self) -> None:
        """Assert exclusivity, conservation and reverse-map consistency;
        used by property tests."""
        seen = set(self._free)
        if len(seen) != len(self._free):
            raise PageAllocationError("duplicate pages in free list")
        if self._free != sorted(seen):
            raise PageAllocationError("free list not sorted")
        for pcpn in self._free:
            if self._page_owner[pcpn] is not None:
                raise PageAllocationError(
                    f"free page {pcpn} has owner "
                    f"{self._page_owner[pcpn]!r} in the reverse map"
                )
        for owner, pages in self._owner_pages.items():
            overlap = seen.intersection(pages)
            if overlap:
                raise PageAllocationError(
                    f"pages {sorted(overlap)} double-owned ({owner})"
                )
            if list(pages) != sorted(set(pages)):
                raise PageAllocationError(
                    f"{owner}: held pages not sorted/unique"
                )
            for pcpn in pages:
                if self._page_owner[pcpn] != owner:
                    raise PageAllocationError(
                        f"page {pcpn} owned by {owner} but reverse map "
                        f"says {self._page_owner[pcpn]!r}"
                    )
            seen |= set(pages)
        if seen & self._retired:
            raise PageAllocationError(
                f"retired pages {sorted(seen & self._retired)} are "
                "free or owned"
            )
        if seen | self._retired != set(range(self.num_pages)):
            raise PageAllocationError("page conservation violated")
