"""Cache page allocator for the NPU subspace (Section III-B3).

The NPU subspace is divided into pages of identical size (32 KiB for a
16 MiB cache) and assigned to models.  This module owns the global free
list; per-model address translation lives in :mod:`~repro.core.cpt`.

Physical cache pages are identified by *physical cache page number*
(``pcpn``), numbered 0..N-1 across the whole NPU subspace.  Consecutive
lines inside a page interleave across slices (Figure 5(b)), which the CPT
handles; the allocator itself only tracks ownership.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..errors import PageAllocationError


@dataclass(frozen=True)
class PageRange:
    """A set of physical pages granted to one owner."""

    owner: str
    pcpns: tuple

    @property
    def num_pages(self) -> int:
        return len(self.pcpns)


class CachePageAllocator:
    """Free-list allocator over the NPU subspace's physical cache pages.

    Owners are model/task identifiers (strings).  The allocator enforces
    exclusivity: a page belongs to at most one owner — this is the property
    that eliminates inter-model cache contention in CaMDN.
    """

    def __init__(self, num_pages: int) -> None:
        if num_pages <= 0:
            raise PageAllocationError("allocator needs at least one page")
        self.num_pages = num_pages
        self._free: List[int] = list(range(num_pages))
        self._owner_pages: Dict[str, Set[int]] = {}

    @property
    def free_pages(self) -> int:
        """Number of currently unowned pages."""
        return len(self._free)

    @property
    def used_pages(self) -> int:
        """Number of pages owned by some model."""
        return self.num_pages - self.free_pages

    def owners(self) -> List[str]:
        """All owners currently holding at least one page."""
        return sorted(o for o, pages in self._owner_pages.items() if pages)

    def pages_of(self, owner: str) -> List[int]:
        """Sorted pcpns held by ``owner`` (empty list if none)."""
        return sorted(self._owner_pages.get(owner, ()))

    def owner_of(self, pcpn: int) -> Optional[str]:
        """Owner of page ``pcpn`` or ``None`` if free."""
        self._check_pcpn(pcpn)
        for owner, pages in self._owner_pages.items():
            if pcpn in pages:
                return owner
        return None

    def can_allocate(self, num_pages: int) -> bool:
        """Would an allocation of ``num_pages`` succeed right now?"""
        return num_pages <= self.free_pages

    def allocate(self, owner: str, num_pages: int) -> PageRange:
        """Grant ``num_pages`` free pages to ``owner``.

        Raises:
            PageAllocationError: not enough free pages.  Callers (the
            dynamic allocation algorithm) treat this as a timeout-retry
            situation rather than a fatal error.
        """
        if num_pages < 0:
            raise PageAllocationError("cannot allocate a negative count")
        if num_pages > self.free_pages:
            raise PageAllocationError(
                f"{owner}: requested {num_pages} pages, "
                f"only {self.free_pages} free"
            )
        granted = tuple(self._free[:num_pages])
        del self._free[:num_pages]
        self._owner_pages.setdefault(owner, set()).update(granted)
        return PageRange(owner=owner, pcpns=granted)

    def release(self, owner: str, pcpns: Optional[List[int]] = None) -> int:
        """Return pages to the free list.

        Args:
            owner: releasing model.
            pcpns: specific pages to release, or ``None`` for all of the
                owner's pages.

        Returns:
            Number of pages released.

        Raises:
            PageAllocationError: a listed page is not owned by ``owner``.
        """
        held = self._owner_pages.get(owner, set())
        if pcpns is None:
            pcpns = sorted(held)
        for pcpn in pcpns:
            if pcpn not in held:
                raise PageAllocationError(
                    f"{owner} does not own page {pcpn}"
                )
        for pcpn in pcpns:
            held.remove(pcpn)
            self._free.append(pcpn)
        self._free.sort()
        return len(pcpns)

    def resize_owner(self, owner: str, target_pages: int) -> int:
        """Grow or shrink ``owner`` to exactly ``target_pages`` pages.

        Returns the signed page delta applied.  Shrinking releases the
        highest-numbered pages first (their contents are the most recently
        mapped and cheapest to refill).
        """
        if target_pages < 0:
            raise PageAllocationError("target_pages cannot be negative")
        current = len(self._owner_pages.get(owner, ()))
        delta = target_pages - current
        if delta > 0:
            self.allocate(owner, delta)
        elif delta < 0:
            victims = self.pages_of(owner)[delta:]
            self.release(owner, victims)
        return delta

    def _check_pcpn(self, pcpn: int) -> None:
        if not 0 <= pcpn < self.num_pages:
            raise PageAllocationError(
                f"pcpn {pcpn} out of range [0, {self.num_pages})"
            )

    def check_invariants(self) -> None:
        """Assert exclusivity and conservation; used by property tests."""
        seen: Set[int] = set(self._free)
        if len(seen) != len(self._free):
            raise PageAllocationError("duplicate pages in free list")
        for owner, pages in self._owner_pages.items():
            overlap = seen & pages
            if overlap:
                raise PageAllocationError(
                    f"pages {sorted(overlap)} double-owned ({owner})"
                )
            seen |= pages
        if seen != set(range(self.num_pages)):
            raise PageAllocationError("page conservation violated")
