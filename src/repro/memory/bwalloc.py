"""Memory bandwidth allocation policies.

The baselines the paper compares against are bandwidth-centric schedulers:

* MoCA partitions bandwidth among co-located DNNs according to their memory
  access requirements (demand-proportional with QoS-slack boosts);
* AuRORA co-allocates bandwidth and NPU cores toward latency targets
  (slack-weighted).

These policies are pure functions from per-task demand/slack snapshots to
fractional shares summing to at most 1, so both the fluid simulator and the
unit tests can exercise them directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from ..errors import SimulationError


@dataclass(frozen=True)
class BandwidthAllocation:
    """Result of one allocation round: task id -> share in (0, 1]."""

    shares: Mapping[str, float]

    def __post_init__(self) -> None:
        total = sum(self.shares.values())
        if total > 1.0 + 1e-9:
            raise SimulationError(f"shares sum to {total} > 1")
        for task, share in self.shares.items():
            if share <= 0:
                raise SimulationError(f"{task}: non-positive share {share}")

    def share_of(self, task_id: str) -> float:
        return self.shares.get(task_id, 0.0)


class EqualSharePolicy:
    """Even split among active tasks (the unmanaged baseline)."""

    def allocate(self, demands: Mapping[str, float],
                 slacks: Mapping[str, float] | None = None
                 ) -> BandwidthAllocation:
        """``demands`` maps task id -> bytes/s it could consume."""
        if not demands:
            return BandwidthAllocation(shares={})
        share = 1.0 / len(demands)
        return BandwidthAllocation(
            shares={task: share for task in demands}
        )

    def allocate_list(self, demands: Sequence[float],
                      slacks: Optional[Sequence[float]] = None
                      ) -> List[float]:
        """Positional twin of :meth:`allocate` (same floats, no dicts)."""
        if not demands:
            return []
        share = 1.0 / len(demands)
        return [share] * len(demands)


class DemandProportionalPolicy:
    """MoCA-style: shares proportional to memory-access requirements.

    Tasks that move more bytes per unit time get proportionally more
    bandwidth; a floor keeps light tasks from starving.
    """

    def __init__(self, floor: float = 0.02) -> None:
        if not 0 <= floor < 1:
            raise SimulationError("floor must be in [0, 1)")
        self.floor = floor

    def allocate(self, demands: Mapping[str, float],
                 slacks: Mapping[str, float] | None = None
                 ) -> BandwidthAllocation:
        if not demands:
            return BandwidthAllocation(shares={})
        n = len(demands)
        total_demand = sum(max(d, 0.0) for d in demands.values())
        shares: Dict[str, float] = {}
        floor_total = self.floor * n if self.floor * n < 1 else 0.0
        remaining = 1.0 - floor_total
        for task, demand in demands.items():
            proportional = (
                max(demand, 0.0) / total_demand if total_demand > 0
                else 1.0 / n
            )
            base = self.floor if floor_total else 0.0
            shares[task] = base + remaining * proportional
        return BandwidthAllocation(shares=shares)

    def allocate_list(self, demands: Sequence[float],
                      slacks: Optional[Sequence[float]] = None
                      ) -> List[float]:
        """Positional twin of :meth:`allocate`.

        Bit-identical to the dict path when ``demands`` is given in the
        dict's iteration order: the demand total accumulates in the same
        order and every per-task expression keeps its shape.
        """
        if not demands:
            return []
        n = len(demands)
        floor_total = self.floor * n if self.floor * n < 1 else 0.0
        remaining = 1.0 - floor_total
        base = self.floor if floor_total else 0.0
        if min(demands) >= 0:
            # All-non-negative fast path: max(d, 0.0) is the identity, so
            # the clamped and unclamped totals/ratios are the same floats.
            total_demand = sum(demands)
            if total_demand > 0:
                return [
                    base + remaining * (d / total_demand)
                    for d in demands
                ]
        total_demand = sum([max(d, 0.0) for d in demands])
        return [
            base + remaining * (
                max(d, 0.0) / total_demand if total_demand > 0
                else 1.0 / n
            )
            for d in demands
        ]


class SlackWeightedPolicy:
    """AuRORA-style: tasks behind their latency target get boosted shares.

    Slack is ``(target - predicted_latency) / target``; negative slack means
    the task is missing its deadline.  Weights grow exponentially as slack
    shrinks, so badly-behind tasks dominate the allocation — the behaviour
    that lets AuRORA reach high SLA rates at some fairness cost (a result
    the paper reproduces in Figure 9).
    """

    def __init__(self, urgency: float = 3.0, floor: float = 0.02) -> None:
        if urgency <= 0:
            raise SimulationError("urgency must be positive")
        if not 0 <= floor < 1:
            raise SimulationError("floor must be in [0, 1)")
        self.urgency = urgency
        self.floor = floor

    def allocate(self, demands: Mapping[str, float],
                 slacks: Mapping[str, float] | None = None
                 ) -> BandwidthAllocation:
        if not demands:
            return BandwidthAllocation(shares={})
        slacks = slacks or {}
        weights: Dict[str, float] = {}
        for task, demand in demands.items():
            # Clamp: a hopelessly late task should dominate but not
            # overflow the exponential.
            slack = min(max(slacks.get(task, 0.0), -20.0), 20.0)
            # slack <= 0 -> weight >= 1; generous slack -> weight ~ 0+.
            weight = math.exp(-self.urgency * slack)
            weights[task] = max(demand, 1.0) * weight
        total = sum(weights.values())
        n = len(weights)
        floor_total = self.floor * n if self.floor * n < 1 else 0.0
        remaining = 1.0 - floor_total
        shares = {
            task: (self.floor if floor_total else 0.0)
            + remaining * weight / total
            for task, weight in weights.items()
        }
        return BandwidthAllocation(shares=shares)

    def allocate_list(self, demands: Sequence[float],
                      slacks: Optional[Sequence[float]] = None
                      ) -> List[float]:
        """Positional twin of :meth:`allocate` (see
        :meth:`DemandProportionalPolicy.allocate_list` for the
        bit-identity contract)."""
        if not demands:
            return []
        if slacks is None:
            slacks = [0.0] * len(demands)
        weights = [
            max(d, 1.0) * math.exp(
                -self.urgency * min(max(s, -20.0), 20.0)
            )
            for d, s in zip(demands, slacks)
        ]
        total = sum(weights)
        n = len(weights)
        floor_total = self.floor * n if self.floor * n < 1 else 0.0
        remaining = 1.0 - floor_total
        base = self.floor if floor_total else 0.0
        return [base + remaining * w / total for w in weights]
