"""DRAM substrate: functional backing store and bandwidth models."""

from .dram import DRAMTimingModel, MainMemory
from .bwalloc import (
    BandwidthAllocation,
    DemandProportionalPolicy,
    EqualSharePolicy,
    SlackWeightedPolicy,
)

__all__ = [
    "MainMemory",
    "DRAMTimingModel",
    "BandwidthAllocation",
    "EqualSharePolicy",
    "DemandProportionalPolicy",
    "SlackWeightedPolicy",
]
