"""DRAM models: functional backing store and analytic timing.

Two views of the same subsystem:

* :class:`MainMemory` — a functional line-addressed store used by the NEC
  and cache integration tests (what value lives where).
* :class:`DRAMTimingModel` — the analytic bandwidth/latency model the
  fluid simulator uses (how long moving bytes takes), standing in for the
  paper's DRAMsim3-based backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..config import DRAMConfig
from ..errors import CacheAddressError


class MainMemory:
    """Line-addressed functional memory with traffic counters."""

    def __init__(self, line_bytes: int = 64) -> None:
        self.line_bytes = line_bytes
        self._store: Dict[int, int] = {}
        self.read_lines = 0
        self.write_lines = 0

    def read_line(self, line_addr: int) -> int:
        """Read one line; uninitialized lines read as zero."""
        if line_addr is None or line_addr < 0:
            raise CacheAddressError(f"bad memory line address {line_addr}")
        self.read_lines += 1
        return self._store.get(line_addr, 0)

    def write_line(self, line_addr: int, value: int) -> None:
        """Write one line."""
        if line_addr is None or line_addr < 0:
            raise CacheAddressError(f"bad memory line address {line_addr}")
        if value is None:
            raise CacheAddressError("cannot write None to memory")
        self.write_lines += 1
        self._store[line_addr] = value

    @property
    def total_bytes_moved(self) -> int:
        return (self.read_lines + self.write_lines) * self.line_bytes

    def reset_counters(self) -> None:
        self.read_lines = 0
        self.write_lines = 0


@dataclass
class DRAMTimingModel:
    """Analytic DRAM bandwidth/latency model.

    The fluid simulator divides the aggregate bandwidth among tenants; this
    model converts a byte volume and a bandwidth share into time and keeps
    global traffic accounting.
    """

    config: DRAMConfig = field(default_factory=DRAMConfig)
    total_bytes: int = 0

    def transfer_time_s(self, num_bytes: float, bandwidth_share: float,
                        first_access: bool = False) -> float:
        """Seconds to move ``num_bytes`` at ``bandwidth_share`` (0..1] of
        the aggregate bandwidth, plus one access latency for the first
        touch of a layer."""
        if num_bytes < 0:
            raise CacheAddressError("negative byte volume")
        if bandwidth_share <= 0:
            raise CacheAddressError("bandwidth share must be positive")
        share = min(bandwidth_share, 1.0)
        bw = self.config.total_bandwidth_bytes_per_s * share
        latency = self.config.access_latency_s if first_access else 0.0
        return num_bytes / bw + latency

    def effective_bandwidth(self, bandwidth_share: float) -> float:
        """Bytes/s available at a fractional share."""
        return self.config.total_bandwidth_bytes_per_s * \
            min(max(bandwidth_share, 0.0), 1.0)

    def account(self, num_bytes: float) -> None:
        """Accumulate global DRAM traffic."""
        self.total_bytes += int(num_bytes)
